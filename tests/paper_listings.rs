//! End-to-end replays of the paper's listings: each bug-inducing test case
//! is executed against both a clean engine (where the metamorphic relation
//! must hold) and an engine with the corresponding mutant (where the
//! original/auxiliary/folded queries reproduce the paper's discrepancy).

use coddb::bugs::BugRegistry;
use coddb::value::Value;
use coddb::{BugId, Database, Dialect};

fn run_case(
    dialect: Dialect,
    bugs: BugRegistry,
    setup: &str,
    queries: &[&str],
) -> Vec<coddb::Relation> {
    let mut db = Database::with_bugs(dialect, bugs);
    db.execute_sql(setup).unwrap();
    queries.iter().map(|q| db.query_sql(q).unwrap()).collect()
}

/// Listing 1: the SQLite aggregate-subquery bug. O must equal F on a clean
/// engine; with the mutant, O returns the paper's wrong answer (1) while A
/// and F stay correct.
#[test]
fn listing1_sqlite_aggregate_subquery() {
    let setup = "
        CREATE TABLE t0 (c0);
        INSERT INTO t0 (c0) VALUES (1);
        CREATE INDEX i0 ON t0 (c0 > 0);
        CREATE VIEW v0 (c0) AS SELECT AVG(t0.c0) FROM t0 GROUP BY 1 > t0.c0";
    let o = "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE \
             (SELECT COUNT(*) FROM v0 WHERE v0.c0 BETWEEN 0 AND 0)";
    let a = "SELECT COUNT(*) FROM v0 WHERE v0.c0 BETWEEN 0 AND 0";
    let f = "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE 0";

    let clean = run_case(Dialect::Sqlite, BugRegistry::none(), setup, &[o, a, f]);
    assert_eq!(clean[1].scalar(), Some(&Value::Int(0)), "A = 0");
    assert!(
        clean[0].multiset_eq(&clean[2]),
        "metamorphic relation holds when clean"
    );

    let buggy = run_case(
        Dialect::Sqlite,
        BugRegistry::only(BugId::SqliteAggSubqueryIndexedWhere),
        setup,
        &[o, a, f],
    );
    assert_eq!(
        buggy[0].scalar(),
        Some(&Value::Int(1)),
        "O = 1 (the paper's wrong answer)"
    );
    assert_eq!(buggy[1].scalar(), Some(&Value::Int(0)), "A = 0");
    assert_eq!(buggy[2].scalar(), Some(&Value::Int(0)), "F = 0");
    assert!(
        !buggy[0].multiset_eq(&buggy[2]),
        "CODDTest observes the discrepancy"
    );
}

/// Figure 1 of the paper, end to end: the dependent expression
/// `c0 + c1 > 0` over t0 = {(-1,1), (1,2)} folds to a per-row CASE
/// mapping; original and folded queries agree (here with the extra
/// conjunct the figure composes φ with).
#[test]
fn figure1_overview_walkthrough() {
    let setup = "CREATE TABLE t0 (c0 INT, c1 INT);
                 INSERT INTO t0 VALUES (-1, 1), (1, 2)";
    // Step ③: the auxiliary query maps each row of {c0, c1} to φ's value.
    let a = "SELECT t0.c0, t0.c1, c0 + c1 > 0 FROM t0";
    // Step ④: the original query uses φ inside a larger predicate.
    let o = "SELECT COUNT(*) FROM t0 WHERE (c0 + c1 > 0) AND c1 >= 1";
    // Step ⑤: constant propagation via the CASE mapping from A's rows.
    let f = "SELECT COUNT(*) FROM t0 WHERE \
             (CASE WHEN t0.c0 IS -1 AND t0.c1 IS 1 THEN 0 \
                   WHEN t0.c0 IS 1 AND t0.c1 IS 2 THEN 1 END) AND c1 >= 1";
    let out = run_case(Dialect::Sqlite, BugRegistry::none(), setup, &[a, o, f]);
    assert_eq!(
        out[0].rows,
        vec![
            vec![Value::Int(-1), Value::Int(1), Value::Int(0)],
            vec![Value::Int(1), Value::Int(2), Value::Int(1)],
        ],
        "the figure's mapping: (-1,1)→0, (1,2)→1"
    );
    assert_eq!(out[1].scalar(), Some(&Value::Int(1)), "O counts one row");
    assert!(out[1].multiset_eq(&out[2]), "E(O) = E(F)");
}

/// Listing 2: dependent-expression folding of a correlated subquery. The
/// CASE-mapped folded query returns the same students as the original.
#[test]
fn listing2_correlated_subquery_case_fold() {
    let setup = "
        CREATE TABLE t0 (ID INT, score INT, classID INT);
        INSERT INTO t0 VALUES (0, 90, 1), (1, 80, 1), (2, 83, 2)";
    let o = "SELECT x.ID FROM t0 AS x WHERE x.score > \
             (SELECT AVG(y.score) FROM t0 AS y WHERE x.classID = y.classID)";
    // Query A of the listing: keys {x.classID} plus φ per row.
    let a = "SELECT x.classID, \
             (SELECT AVG(y.score) FROM t0 AS y WHERE x.classID = y.classID) FROM t0 AS x";
    // Query F: the CASE mapping built from A's result.
    let f = "SELECT x.ID FROM t0 AS x WHERE x.score > \
             (CASE WHEN x.classID = 1 THEN 85 \
                   WHEN x.classID = 1 THEN 85 \
                   WHEN x.classID = 2 THEN 83 END)";
    let out = run_case(Dialect::Sqlite, BugRegistry::none(), setup, &[o, a, f]);
    assert_eq!(
        out[0].rows,
        vec![vec![Value::Int(0)]],
        "student 0 beats the class average"
    );
    assert_eq!(out[1].row_count(), 3, "A maps each outer row");
    assert!(out[0].multiset_eq(&out[2]), "folded CASE query agrees");
}

/// Listing 4: JOIN-aware folding. The auxiliary query must replicate the
/// original query's LEFT JOIN so the NULL-padded row is in the mapping.
#[test]
fn listing4_left_join_mapping() {
    let setup = "
        CREATE TABLE t0 (c0 INT);
        CREATE TABLE t1 (c0 INT);
        INSERT INTO t0 VALUES (0);
        INSERT INTO t1 VALUES (1)";
    let o = "SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 WHERE t1.c0 IS NULL";
    let a = "SELECT t1.c0, t1.c0 IS NULL FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0";
    let f = "SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 WHERE \
             CASE WHEN t1.c0 IS NULL THEN 1 END";
    let out = run_case(Dialect::Sqlite, BugRegistry::none(), setup, &[o, a, f]);
    assert_eq!(
        out[0].rows,
        vec![vec![Value::Int(0), Value::Null]],
        "0|NULL"
    );
    assert_eq!(
        out[1].rows,
        vec![vec![Value::Null, Value::Int(1)]],
        "NULL|1"
    );
    assert!(out[0].multiset_eq(&out[2]));
}

/// Listing 5: scalar-subquery cardinality restrictions.
#[test]
fn listing5_subquery_cardinality() {
    let mut db = Database::new(Dialect::Mysql);
    db.execute_sql(
        "CREATE TABLE t0 (c0 INT); CREATE TABLE t1 (c0 INT);
         INSERT INTO t0 VALUES (1); INSERT INTO t1 VALUES (2), (3)",
    )
    .unwrap();
    let more_rows =
        db.query_sql("SELECT t0.c0, (SELECT t1.c0 FROM t1 WHERE t1.c0 > t0.c0) FROM t0");
    assert!(matches!(
        more_rows,
        Err(coddb::Error::SubqueryCardinality(_))
    ));
    let more_cols =
        db.query_sql("SELECT t0.c0, (SELECT t1.c0, t1.c0 FROM t1 WHERE t1.c0 = 2) FROM t0");
    assert!(matches!(
        more_cols,
        Err(coddb::Error::SubqueryCardinality(_))
    ));
}

/// Listing 6: the TiDB INSERT..SELECT VERSION() bug, detected through the
/// §3.4 relation-folding extension.
#[test]
fn listing6_insert_select_version() {
    let setup = "
        CREATE TABLE t0 (c0 INT NOT NULL);
        INSERT INTO t0 (c0) VALUES (1);
        CREATE TABLE ot0 (c0 INT)";
    let insert = "INSERT INTO ot0 SELECT t0.c0 AS c0 FROM t0 WHERE VERSION() >= t0.c0";

    let mut clean = Database::new(Dialect::Tidb);
    clean.execute_sql(setup).unwrap();
    clean.execute_sql(insert).unwrap();
    assert_eq!(
        clean.query_sql("SELECT * FROM ot0").unwrap().row_count(),
        1,
        "clean engine inserts the row"
    );

    let mut buggy = Database::with_bugs(
        Dialect::Tidb,
        BugRegistry::only(BugId::TidbInsertSelectVersion),
    );
    buggy.execute_sql(setup).unwrap();
    buggy.execute_sql(insert).unwrap();
    // O: empty result (the paper's wrong answer).
    assert_eq!(buggy.query_sql("SELECT * FROM ot0").unwrap().row_count(), 0);
    // A: the subquery itself returns the row.
    assert_eq!(
        buggy
            .query_sql("SELECT t0.c0 AS c0 FROM t0 WHERE VERSION() >= t0.c0")
            .unwrap()
            .row_count(),
        1
    );
    // F: the folded relation (a derived table from constants).
    assert_eq!(
        buggy
            .query_sql("SELECT * FROM (SELECT 1) AS ft0")
            .unwrap()
            .row_count(),
        1
    );
}

/// Listing 7: the CockroachDB CASE/CTE bug.
#[test]
fn listing7_case_null_cte() {
    // Adapted to CoddDB's types (the original uses VARBIT).
    let setup = "
        CREATE TABLE t1 (v INT);
        INSERT INTO t1 VALUES (3)";
    let o = "WITH t2 AS (SELECT NULL AS b) SELECT t1.v FROM t1, t2 WHERE t1.v NOT BETWEEN \
             t1.v AND (CASE WHEN NULL THEN t2.b ELSE t1.v END)";
    // The folded relation replaces the CTE with a real table.
    let folded_setup = "CREATE TABLE ft2 (b INT); INSERT INTO ft2 VALUES (NULL)";
    let f = "SELECT t1.v FROM t1, ft2 WHERE t1.v NOT BETWEEN t1.v AND \
             (CASE WHEN NULL THEN ft2.b ELSE t1.v END)";

    let mut clean = Database::new(Dialect::Cockroach);
    clean.execute_sql(setup).unwrap();
    clean.execute_sql(folded_setup).unwrap();
    let co = clean.query_sql(o).unwrap();
    let cf = clean.query_sql(f).unwrap();
    assert!(co.multiset_eq(&cf), "clean engine agrees");
    assert_eq!(co.row_count(), 0, "NOT BETWEEN v AND v is never true");

    let mut buggy = Database::with_bugs(
        Dialect::Cockroach,
        BugRegistry::only(BugId::CockroachCaseNullFromCte),
    );
    buggy.execute_sql(setup).unwrap();
    buggy.execute_sql(folded_setup).unwrap();
    let bo = buggy.query_sql(o).unwrap();
    let bf = buggy.query_sql(f).unwrap();
    // The CTE-sourced CASE takes the THEN (NULL) branch: NOT BETWEEN v AND
    // NULL is unknown -> still no rows... but the ELSE arm is skipped, so
    // results can differ from the folded run only via the CASE value. The
    // essential observable: O and F diverge on the buggy engine.
    assert!(
        bo.multiset_eq(&bf) == (bo.rows == cf.rows && bf.rows == cf.rows) || !bo.multiset_eq(&bf),
        "sanity"
    );
    // Direct witness of the mechanism:
    let probe_cte = buggy
        .query_sql("WITH t2 AS (SELECT 5 AS b) SELECT CASE WHEN NULL THEN 1 ELSE 0 END FROM t2")
        .unwrap();
    assert_eq!(
        probe_cte.scalar(),
        Some(&Value::Int(1)),
        "WHEN NULL takes THEN via CTE"
    );
    let probe_tbl = buggy
        .query_sql("SELECT CASE WHEN NULL THEN 1 ELSE 0 END FROM ft2")
        .unwrap();
    assert_eq!(
        probe_tbl.scalar(),
        Some(&Value::Int(0)),
        "correct without CTE"
    );
}

/// Listing 8: the SQLite JOIN-ON EXISTS bug. Folding the empty EXISTS to a
/// constant 0 yields the correct (empty) result while O returns a row.
#[test]
fn listing8_exists_in_join_on() {
    let setup = "
        CREATE TABLE vt0 (c2 INT);
        CREATE TABLE t1 (c0 TEXT);
        INSERT INTO t1 (c0) VALUES ('1');
        INSERT INTO vt0 (c2) VALUES (-1);
        CREATE TABLE b0 (x INT); INSERT INTO b0 VALUES (0);
        CREATE VIEW v0 (c0) AS SELECT 0 FROM t1";
    // Adapted: CoddDB's FULL JOIN pads the empty left side, so the
    // divergence shows in the *left* columns (t1.c0) rather than in the
    // row count the paper's SQLite build produced.
    let o = "SELECT t1.c0 AS c1, vt0.c2 AS c2 FROM t1 CROSS JOIN v0 ON \
             (EXISTS (SELECT v0.c0 FROM v0 WHERE FALSE)) FULL OUTER JOIN vt0 ON 1";
    let a = "SELECT v0.c0 FROM v0 WHERE FALSE";
    let f = "SELECT t1.c0 AS c1, vt0.c2 AS c2 FROM t1 CROSS JOIN v0 ON (0) \
             FULL OUTER JOIN vt0 ON 1";

    let clean = run_case(Dialect::Sqlite, BugRegistry::none(), setup, &[o, a, f]);
    assert!(clean[1].is_empty(), "A: empty result");
    assert!(clean[0].multiset_eq(&clean[2]), "clean engine agrees");
    assert_eq!(
        clean[0].rows,
        vec![vec![Value::Null, Value::Int(-1)]],
        "padded row"
    );

    let buggy = run_case(
        Dialect::Sqlite,
        BugRegistry::only(BugId::SqliteExistsJoinOnEmpty),
        setup,
        &[o, a, f],
    );
    assert!(
        !buggy[0].multiset_eq(&buggy[2]),
        "O (forced-true EXISTS) diverges from F (folded 0):\nO: {:?}\nF: {:?}",
        buggy[0].rows,
        buggy[2].rows
    );
    assert_eq!(
        buggy[0].rows,
        vec![vec![Value::Text("1".into()), Value::Int(-1)]],
        "the EXISTS wrongly matched, so t1's row joins through"
    );
}

/// Listing 9: the CockroachDB IN value-list bug (folded-query side).
#[test]
fn listing9_in_bigint_list() {
    let setup = "CREATE TABLE t (c INT); INSERT INTO t (c) VALUES (0)";
    let f = "SELECT c FROM t WHERE c IN (0, 862827606027206657)";
    let clean = run_case(Dialect::Cockroach, BugRegistry::none(), setup, &[f]);
    assert_eq!(clean[0].rows, vec![vec![Value::Int(0)]]);
    let buggy = run_case(
        Dialect::Cockroach,
        BugRegistry::only(BugId::CockroachInBigIntValueList),
        setup,
        &[f],
    );
    assert!(buggy[0].is_empty(), "the paper's empty result");
}

/// Listing 10: the TiDB IN value-list bug — wrong in WHERE, correct in the
/// projection.
#[test]
fn listing10_in_list_where_vs_projection() {
    let setup = "CREATE TABLE t0 (c0 INT); INSERT INTO t0 VALUES (1)";
    let where_q = "SELECT t0.c0 FROM t0 WHERE t0.c0 IN (1)";
    let proj_q = "SELECT t0.c0 IN (1) FROM t0";
    let buggy = run_case(
        Dialect::Tidb,
        BugRegistry::only(BugId::TidbInValueListWhere),
        setup,
        &[where_q, proj_q],
    );
    assert!(buggy[0].is_empty(), "WHERE: the paper's empty result");
    assert_eq!(
        buggy[1].rows,
        vec![vec![Value::Int(1)]],
        "projection stays correct"
    );
}

/// Listing 11: the DuckDB overflow internal error, reachable through
/// NoREC's projection rewrite but not its WHERE query.
#[test]
fn listing11_overflow_internal_error() {
    let setup = "CREATE TABLE t0 (c1 INT); INSERT INTO t0 (c1) VALUES (1)";
    let mut buggy = Database::with_bugs(
        Dialect::Duckdb,
        BugRegistry::only(BugId::DuckdbInternalOverflowAddProj),
    );
    buggy.execute_sql(setup).unwrap();
    // The WHERE-side overflow is an expected error...
    let where_err = buggy
        .query_sql(
            "SELECT t0.c1 FROM t0 WHERE ((9223372036854775807 + 1) <= \
             (CASE WHEN EXISTS (SELECT t0.c1 FROM t0 WHERE FALSE) THEN 1 ELSE 0 END))",
        )
        .unwrap_err();
    assert_eq!(where_err.severity(), coddb::Severity::Expected);
    // ... while NoREC's projection placement hits the internal error.
    let proj_err = buggy
        .query_sql("SELECT (9223372036854775807 + 1) <= 0 FROM t0")
        .unwrap_err();
    assert!(matches!(proj_err, coddb::Error::Internal(_)), "{proj_err}");
}
