//! Property-based tests over the core data structures and the central
//! invariants of the reproduction:
//!
//! * the SQL value model's total order really is a total order,
//! * multiset comparison is permutation-invariant,
//! * render → parse round-trips every generated statement,
//! * the optimizer never changes results on a clean engine,
//! * the CODDTest metamorphic relation holds on a clean engine
//!   (no false alarms) for arbitrary seeds,
//! * the LIKE matcher agrees with a naive reference implementation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use coddb::eval::like_match;
use coddb::value::{DataType, Relation, Value};
use coddb::{Database, Dialect};
use coddtest::{Oracle, Session, TestOutcome};
use sqlgen::state::generate_state;
use sqlgen::GenConfig;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1_000_000i64..1_000_000).prop_map(|n| Value::Real(n as f64 / 10.0)),
        "[a-zA-Z0-9 %_]{0,8}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    #[test]
    fn total_order_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering::*;
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        match ab {
            Less => prop_assert_eq!(ba, Greater),
            Greater => prop_assert_eq!(ba, Less),
            Equal => prop_assert_eq!(ba, Equal),
        }
        prop_assert_eq!(a.total_cmp(&a), Equal);
    }

    #[test]
    fn total_order_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        let mut vals = [a, b, c];
        vals.sort_by(|x, y| x.total_cmp(y));
        // After sorting, pairwise order must be consistent.
        prop_assert_ne!(vals[0].total_cmp(&vals[1]), Greater);
        prop_assert_ne!(vals[1].total_cmp(&vals[2]), Greater);
        prop_assert_ne!(vals[0].total_cmp(&vals[2]), Greater);
    }

    #[test]
    fn sql_cmp_is_none_iff_null(a in arb_value(), b in arb_value()) {
        let cmp = a.sql_cmp(&b);
        prop_assert_eq!(cmp.is_none(), a.is_null() || b.is_null());
    }

    #[test]
    fn value_literals_round_trip_through_parser(v in arb_value()) {
        // Reals render with enough precision to round-trip; text escapes.
        let sql = format!("SELECT {}", v.to_sql());
        let mut db = Database::new(Dialect::Sqlite);
        let rel = db.query_sql(&sql).unwrap();
        let got = rel.scalar().unwrap();
        // Bool literals evaluate as themselves; everything else compares
        // with null-safe identity.
        prop_assert!(got.is_identical(&v), "{v:?} -> {sql} -> {got:?}");
    }

    #[test]
    fn multiset_eq_is_permutation_invariant(rows in prop::collection::vec(
        prop::collection::vec(arb_value(), 2), 0..8), seed in any::<u64>())
    {
        let a = Relation::from_rows(vec!["x".into(), "y".into()], rows.clone());
        let mut shuffled = rows.clone();
        // Deterministic shuffle from the seed.
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (s as usize) % (i + 1));
        }
        let b = Relation::from_rows(vec!["x".into(), "y".into()], shuffled);
        prop_assert!(a.multiset_eq(&b));
        // Removing a row breaks equality.
        if !rows.is_empty() {
            let mut c = a.clone();
            c.rows.pop();
            prop_assert!(!a.multiset_eq(&c));
        }
    }

    #[test]
    fn generated_statements_round_trip_through_parser(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dialect = Dialect::ALL[(seed % 5) as usize];
        let (stmts, _) = generate_state(&mut rng, dialect, &GenConfig::default());
        for stmt in &stmts {
            let rendered = stmt.to_string();
            let reparsed = coddb::parser::parse_statements(&rendered)
                .unwrap_or_else(|e| panic!("re-parse failed for {rendered}: {e}"));
            prop_assert_eq!(reparsed.len(), 1);
            prop_assert_eq!(
                reparsed[0].to_string(),
                rendered.clone(),
                "render→parse→render unstable"
            );
        }
    }

    #[test]
    fn optimizer_preserves_semantics(seed in any::<u64>()) {
        // Random state + random predicate query: optimized and unoptimized
        // execution must agree on a clean engine.
        let mut rng = StdRng::seed_from_u64(seed);
        let dialect = Dialect::ALL[(seed % 5) as usize];
        let cfg = GenConfig::default();
        let (stmts, schema) = generate_state(&mut rng, dialect, &cfg);
        let mut db = Database::new(dialect);
        for s in &stmts {
            db.execute(s).unwrap();
        }
        let from = sqlgen::query::gen_from_context(&mut rng, &schema, &cfg, dialect);
        let mut gen = sqlgen::expr::ExprGen::new(dialect, &cfg, &schema, &from.scope);
        let p = gen.gen_predicate(&mut rng, 3);
        let q = sqlgen::query::build_projection_query(&from, Some(p));
        match (db.query(&q), db.query_unoptimized(&q)) {
            (Ok(a), Ok(b)) => prop_assert!(a.multiset_eq(&b), "optimizer changed {q}"),
            (Err(a), Err(b)) => prop_assert_eq!(a.category(), b.category()),
            (a, b) => prop_assert!(
                false,
                "optimizer changed success: {q}\nopt: {a:?}\nunopt: {b:?}"
            ),
        }
    }

    #[test]
    fn codd_metamorphic_relation_holds_on_clean_engine(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dialect = Dialect::ALL[(seed % 5) as usize];
        let (stmts, schema) = generate_state(&mut rng, dialect, &GenConfig::default());
        let mut db = Database::new(dialect);
        for s in &stmts {
            db.execute(s).unwrap();
        }
        let mut oracle = coddtest::codd::CoddTest::default();
        let mut session = Session::new(&mut db);
        for _ in 0..4 {
            let outcome = oracle.run_one(&mut session, &schema, &mut rng);
            if let TestOutcome::Bug(report) = outcome {
                prop_assert!(false, "false alarm on clean {dialect}:\n{}", report.to_display());
            }
        }
    }

    #[test]
    fn like_matcher_agrees_with_reference(
        text in "[abAB%_]{0,6}",
        pattern in "[ab%_]{0,6}",
    ) {
        fn reference(t: &[char], p: &[char]) -> bool {
            match p.split_first() {
                None => t.is_empty(),
                Some(('%', rest)) => {
                    (0..=t.len()).any(|k| reference(&t[k..], rest))
                }
                Some(('_', rest)) => {
                    !t.is_empty() && reference(&t[1..], rest)
                }
                Some((c, rest)) => {
                    t.first() == Some(c) && reference(&t[1..], rest)
                }
            }
        }
        let t: Vec<char> = text.chars().collect();
        let p: Vec<char> = pattern.chars().collect();
        prop_assert_eq!(
            like_match(&text, &pattern, false),
            reference(&t, &p),
            "LIKE mismatch for {:?} ~ {:?}", text, pattern
        );
    }

    #[test]
    fn column_type_inference_accepts_any_row(rows in prop::collection::vec(
        prop::collection::vec(arb_value(), 3), 1..6))
    {
        let rel = Relation::from_rows(vec!["a".into(), "b".into(), "c".into()], rows);
        let types = rel.column_types();
        prop_assert_eq!(types.len(), 3);
        // Every non-null value must be storable in the inferred type.
        for row in &rel.rows {
            for (v, ty) in row.iter().zip(types.iter()) {
                if !v.is_null() && *ty != DataType::Any {
                    prop_assert!(
                        ty.accepts(v.data_type()),
                        "{ty:?} cannot store {v:?}"
                    );
                }
            }
        }
    }
}
