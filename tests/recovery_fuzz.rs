//! Property-based hostile-image fuzzing of the recovery pipeline.
//!
//! The recovery path consumes disk images written by a crashed process —
//! nothing about them can be trusted. These properties feed
//! [`coddb::recovery::scan_log`], [`scan_snapshots`] and [`recover`]
//! arbitrary byte soup, truncations of genuine images, and bit-flipped
//! genuine images, and assert the pipeline *never panics*: every input is
//! answered with `Ok` (clean truncation at the first damaged frame) or a
//! structured `Err` — the scan/replay layer must not index out of bounds,
//! overflow a length read, or over-allocate on a hostile frame header.

use proptest::prelude::*;

use coddb::bugs::{BugRegistry, MediaBugId};
use coddb::recovery::{recover, scan_log, scan_snapshots, scrub_images};
use coddb::wal::StorageMode;
use coddb::{Database, Dialect};

/// A genuine checkpointed run: returns `(log_image, snapshot_image)`.
fn genuine_images(seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut db = Database::new(Dialect::ALL[(seed % 5) as usize]);
    db.set_storage_mode(StorageMode::Durable);
    db.execute_sql(
        "CREATE TABLE t0 (c0 INT, c1 TEXT);
         INSERT INTO t0 VALUES (1, 'a'), (2, 'b'), (3, 'c')",
    )
    .unwrap();
    db.checkpoint().unwrap();
    db.execute_sql(
        "UPDATE t0 SET c1 = 'z' WHERE c0 >= 2;
         DELETE FROM t0 WHERE c0 = 2;
         INSERT INTO t0 VALUES (4, NULL)",
    )
    .unwrap();
    let w = db.wal().unwrap();
    (w.image().to_vec(), w.snapshot_image().to_vec())
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic_the_scanners(
        log in prop::collection::vec(any::<u8>(), 0..256),
        snap in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let bugs = BugRegistry::none();
        // Err or Ok both fine; panics/aborts are the only failure.
        let _ = scan_log(&log, &bugs);
        let _ = scan_snapshots(&snap, &bugs);
        let _ = recover(&log, &snap, Dialect::Sqlite, &bugs);
    }

    #[test]
    fn truncations_of_genuine_images_scan_to_a_clean_prefix(
        seed in any::<u64>(),
        cut_log in any::<u64>(),
        cut_snap in any::<u64>(),
    ) {
        let bugs = BugRegistry::none();
        let (log, snap) = genuine_images(seed);
        let full = scan_log(&log, &bugs).unwrap();
        let log_cut = &log[..(cut_log as usize) % (log.len() + 1)];
        let snap_cut = &snap[..(cut_snap as usize) % (snap.len() + 1)];
        // A truncated genuine log scans to a *prefix* of the full record
        // stream — torn tails drop records, never invent or reorder them.
        let part = scan_log(log_cut, &bugs).unwrap();
        prop_assert!(part.len() <= full.len());
        for (a, b) in part.iter().zip(full.iter()) {
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        let _ = scan_snapshots(snap_cut, &bugs);
        let _ = recover(log_cut, snap_cut, Dialect::Sqlite, &bugs);
    }

    #[test]
    fn bit_flips_in_genuine_images_never_panic_recovery(
        seed in any::<u64>(),
        flip_log in any::<u64>(),
        flip_snap in any::<u64>(),
    ) {
        let bugs = BugRegistry::none();
        let (mut log, mut snap) = genuine_images(seed);
        if !log.is_empty() {
            let i = (flip_log as usize / 8) % log.len();
            log[i] ^= 1 << (flip_log % 8);
        }
        if !snap.is_empty() {
            let i = (flip_snap as usize / 8) % snap.len();
            snap[i] ^= 1 << (flip_snap % 8);
        }
        let _ = scan_log(&log, &bugs);
        let _ = scan_snapshots(&snap, &bugs);
        let _ = recover(&log, &snap, Dialect::Sqlite, &bugs);
    }

    #[test]
    fn hostile_frame_headers_never_panic_or_overallocate(
        len_word in any::<u32>(),
        crc_word in any::<u32>(),
        tail in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        // A frame header promising up to 4 GiB of payload over a tiny
        // image must be rejected by bounds checks, not trusted by an
        // allocation or a slice index.
        let bugs = BugRegistry::none();
        let mut img = Vec::new();
        img.extend_from_slice(&len_word.to_le_bytes());
        img.extend_from_slice(&crc_word.to_le_bytes());
        img.extend_from_slice(&tail);
        let _ = scan_log(&img, &bugs);
        let _ = scan_snapshots(&img, &bugs);
        let _ = recover(&img, &img, Dialect::Sqlite, &bugs);
    }

    #[test]
    fn mid_log_bit_flips_satisfy_detect_or_identical(
        seed in any::<u64>(),
        flip in any::<u64>(),
    ) {
        // At-rest corruption anywhere in the log must be *detected* (scrub
        // finding or a structured recovery error) or *harmless* (recovery
        // byte-identical to the un-flipped baseline). A clean scrub paired
        // with a divergent recovery is the silent-wrong-recovery failure
        // mode this suite exists to catch.
        let bugs = BugRegistry::none();
        let (log, snap) = genuine_images(seed);
        let dialect = Dialect::ALL[(seed % 5) as usize];
        let base = recover(&log, &snap, dialect, &bugs).unwrap();
        let mut rotted = log.clone();
        prop_assert!(!rotted.is_empty());
        let i = (flip as usize / 8) % rotted.len();
        rotted[i] ^= 1 << (flip % 8);
        let report = scrub_images(&rotted, &snap, &bugs);
        match recover(&rotted, &snap, dialect, &bugs) {
            Err(_) => {} // detected: structured error
            Ok(db) => {
                if report.clean() {
                    prop_assert_eq!(
                        db.dump_state(),
                        base.dump_state(),
                        "undetected log bit flip changed the recovered state"
                    );
                }
            }
        }
    }

    #[test]
    fn mid_snapshot_bit_flips_satisfy_detect_or_identical(
        seed in any::<u64>(),
        flip in any::<u64>(),
    ) {
        let bugs = BugRegistry::none();
        let (log, snap) = genuine_images(seed);
        let dialect = Dialect::ALL[(seed % 5) as usize];
        let base = recover(&log, &snap, dialect, &bugs).unwrap();
        let mut rotted = snap.clone();
        prop_assert!(!rotted.is_empty());
        let i = (flip as usize / 8) % rotted.len();
        rotted[i] ^= 1 << (flip % 8);
        let report = scrub_images(&log, &rotted, &bugs);
        match recover(&log, &rotted, dialect, &bugs) {
            Err(_) => {}
            Ok(db) => {
                if report.clean() {
                    prop_assert_eq!(
                        db.dump_state(),
                        base.dump_state(),
                        "undetected snapshot bit flip changed the recovered state"
                    );
                }
            }
        }
    }

    #[test]
    fn scrub_never_panics_under_any_media_mutant(
        log in prop::collection::vec(any::<u8>(), 0..128),
        snap in prop::collection::vec(any::<u8>(), 0..128),
        which in any::<u64>(),
    ) {
        // Media mutants weaken scrub and salvage validation, widening the
        // set of bytes that reach the decoders — no panic allowed anywhere.
        let bug = MediaBugId::ALL[(which as usize) % MediaBugId::ALL.len()];
        let bugs = BugRegistry::only_media(bug);
        let _ = scan_log(&log, &bugs);
        let _ = scan_snapshots(&snap, &bugs);
        let _ = scrub_images(&log, &snap, &bugs);
        let _ = recover(&log, &snap, Dialect::Sqlite, &bugs);
    }

    #[test]
    fn scanners_never_panic_under_any_recovery_mutant(
        log in prop::collection::vec(any::<u8>(), 0..128),
        snap in prop::collection::vec(any::<u8>(), 0..128),
        which in any::<u64>(),
    ) {
        // Mutants weaken validation (e.g. skipping checksum verification),
        // which widens the set of images that reach the decoder — the
        // no-panic guarantee must survive every one of them.
        let bug = coddb::RecoveryBugId::ALL[(which as usize) % coddb::RecoveryBugId::ALL.len()];
        let bugs = BugRegistry::only_recovery(bug);
        let _ = scan_log(&log, &bugs);
        let _ = scan_snapshots(&snap, &bugs);
        let _ = recover(&log, &snap, Dialect::Sqlite, &bugs);
    }
}
