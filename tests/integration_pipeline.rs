//! Cross-crate integration tests: the full pipeline from state generation
//! through oracles to campaign metrics, across every dialect profile.

use coddb::bugs::BugRegistry;
use coddb::{BugId, Database, Dialect};
use coddtest::runner::{attribute_bugs, detects_bug, run_campaign, CampaignConfig};
use coddtest::{make_oracle, Session, TestOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen::state::generate_state;
use sqlgen::GenConfig;

/// Every oracle runs on every dialect without unexpected engine failures
/// or false alarms.
#[test]
fn all_oracles_run_clean_on_all_dialects() {
    for dialect in Dialect::ALL {
        for name in ["codd", "norec", "tlp", "dqe", "eet"] {
            let mut oracle = make_oracle(name).unwrap();
            let mut rng = StdRng::seed_from_u64(0xFEED);
            let (stmts, schema) = generate_state(&mut rng, dialect, &GenConfig::default());
            let mut db = Database::new(dialect);
            for s in &stmts {
                db.execute(s).unwrap();
            }
            let mut session = Session::new(&mut db);
            for _ in 0..8 {
                if let TestOutcome::Bug(r) = oracle.run_one(&mut session, &schema, &mut rng) {
                    panic!("{name} false alarm on clean {dialect}:\n{}", r.to_display());
                }
            }
        }
    }
}

/// Campaign metrics are self-consistent and deterministic.
#[test]
fn campaign_metrics_are_consistent() {
    let cfg = CampaignConfig {
        tests: 150,
        ..CampaignConfig::new(Dialect::Sqlite)
    };
    let mut oracle = make_oracle("codd").unwrap();
    let r1 = run_campaign(oracle.as_mut(), &cfg);
    assert_eq!(r1.tests_run, 150);
    assert_eq!(
        r1.passed + r1.skipped + r1.findings.len() as u64,
        r1.tests_run
    );
    assert!(r1.qpt() > 1.0);
    assert!(r1.coverage_percent > 0.0 && r1.coverage_percent <= 100.0);

    let mut oracle2 = make_oracle("codd").unwrap();
    let r2 = run_campaign(oracle2.as_mut(), &cfg);
    assert_eq!(r1.successful_queries, r2.successful_queries);
    assert_eq!(r1.unsuccessful_queries, r2.unsuccessful_queries);
    assert_eq!(r1.unique_plans, r2.unique_plans);
}

/// A fast subset of the Table 2 matrix (the full empirical matrix is
/// produced by the `table2_oracle_matrix` harness): for a handful of
/// quickly-detectable mutants, CODDTest and exactly the expected
/// baselines find them.
#[test]
fn detection_matrix_fast_subset() {
    // (bug, budget, codd, norec, tlp, dqe) — budgets chosen comfortably
    // above each oracle's observed detection point.
    let cases: &[(BugId, u64, bool, bool, bool, bool)] = &[
        (BugId::TidbInValueListWhere, 1600, true, true, true, false),
        (
            BugId::TidbIsNullTopLevelInverted,
            400,
            true,
            true,
            true,
            false,
        ),
        (
            BugId::MysqlTextIntCompareWhere,
            1200,
            true,
            true,
            true,
            false,
        ),
        (
            BugId::SqliteExistsJoinOnEmpty,
            1600,
            true,
            false,
            false,
            false,
        ),
        (
            BugId::CockroachAnyNonValuesSubquery,
            700,
            true,
            false,
            false,
            false,
        ),
    ];
    for &(bug, budget, codd, norec, tlp, dqe) in cases {
        for (oracle, expected) in [("codd", codd), ("norec", norec), ("tlp", tlp), ("dqe", dqe)] {
            let hit = detects_bug(oracle, bug, budget, 1).is_some();
            assert_eq!(
                hit,
                expected,
                "{oracle} on {}: expected detect={expected} within {budget} tests",
                bug.name()
            );
        }
    }
}

/// Attribution maps a finding back to the responsible mutant even when
/// several mutants are active at once.
#[test]
fn attribution_under_multiple_active_mutants() {
    let cfg = CampaignConfig {
        bugs: BugRegistry::all_for_dialect(Dialect::Tidb),
        tests: 600,
        ..CampaignConfig::new(Dialect::Tidb)
    };
    let mut oracle = make_oracle("codd").unwrap();
    let mut result = run_campaign(oracle.as_mut(), &cfg);
    assert!(
        !result.findings.is_empty(),
        "TiDB profile should yield findings quickly"
    );
    attribute_bugs(&mut result, &cfg, "codd");
    let attributed = result.unique_attributed_bugs();
    assert!(!attributed.is_empty());
    assert!(attributed.iter().all(|b| b.dialect() == Dialect::Tidb));
}

/// Hang/crash/internal mutants surface through campaigns with the right
/// report kinds.
#[test]
fn non_logic_mutants_surface_with_matching_kinds() {
    let probes = [
        (BugId::DuckdbCrashIEJoinRange, coddtest::ReportKind::Crash),
        (BugId::CockroachHangCteReuse, coddtest::ReportKind::Hang),
        (
            BugId::TidbInternalSubstrNegative,
            coddtest::ReportKind::InternalError,
        ),
    ];
    for (bug, kind) in probes {
        let hit = detects_bug("codd", bug, 4000, 3);
        match hit {
            Some((_, report)) => assert_eq!(report.kind, kind, "{}", bug.name()),
            None => panic!("codd did not surface {} within budget", bug.name()),
        }
    }
}

/// The umbrella crate re-exports all three libraries.
#[test]
fn umbrella_reexports_work() {
    let _db = coddtest_suite::coddb::Database::new(coddtest_suite::coddb::Dialect::Sqlite);
    let _cfg = coddtest_suite::sqlgen::GenConfig::default();
    assert!(coddtest_suite::coddtest::make_oracle("codd").is_some());
}
