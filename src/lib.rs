//! Umbrella crate for the CODDTest reproduction workspace.
//!
//! Re-exports the three library crates so examples and integration tests
//! can use a single dependency root:
//!
//! * [`coddb`] — the CoddDB engine substrate,
//! * [`sqlgen`] — random state/expression/query generation,
//! * [`coddtest`] — the CODDTest oracle and the baselines.

pub use coddb;
pub use coddtest;
pub use sqlgen;
