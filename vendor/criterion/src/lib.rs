//! Offline stand-in for the `criterion` bench harness (see
//! `vendor/README.md`).
//!
//! Implements the subset of the criterion API the workspace benches use:
//! warmup, a fixed measurement window, and a mean-ns/iter report printed
//! per benchmark. Not statistically rigorous — the checked-in perf
//! trajectory comes from `crates/bench/src/bin/bench_engine.rs`, which
//! does its own timing — but good enough to compare alternatives locally.

use std::fmt::Display;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(50);
const WINDOW: Duration = Duration::from_millis(300);

/// Harness entry point; also carries an optional substring filter taken
/// from the CLI (`cargo bench -- <filter>`).
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First non-flag CLI argument filters benchmark names, as with the
        // real harness. Flags (e.g. `--bench` added by cargo) are skipped.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Throughput annotation; reported alongside timing when set.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark identifier (`BenchmarkId::from_parameter(p)`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(&id.into().0, &mut f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.0, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { ns_per_iter: None };
        f(&mut bencher);
        match bencher.ns_per_iter {
            Some(ns) => {
                let mut line = format!("{full:<45} {:>12.1} ns/iter", ns);
                if let Some(tp) = self.throughput {
                    let (amount, unit) = match tp {
                        Throughput::Bytes(n) => (n as f64, "MB/s"),
                        Throughput::Elements(n) => (n as f64, "Melem/s"),
                    };
                    let per_sec = amount / (ns * 1e-9) / 1e6;
                    line.push_str(&format!("   {per_sec:>10.1} {unit}"));
                }
                println!("{line}");
            }
            None => println!("{full:<45} (no measurement)"),
        }
    }
}

/// Accepts `&str`/`String` benchmark names.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}
impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}
impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.0)
    }
}

pub struct Bencher {
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Warm up, then measure batches until the window elapses; records the
    /// mean time per iteration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        // Pick a batch size that keeps the clock overhead negligible.
        let per_iter = WARMUP.as_nanos() as u64 / warm_iters.max(1);
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 10_000);

        let mut total_iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < WINDOW {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total_iters += batch;
        }
        let elapsed = start.elapsed();
        self.ns_per_iter = Some(elapsed.as_nanos() as f64 / total_iters.max(1) as f64);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).0, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
