//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, `Just`,
//! `any::<T>()`, integer-range strategies, a `[class]{m,n}` string-regex
//! strategy, `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the generated values), and the per-test case count defaults to 32
//! (override with `PROPTEST_CASES`). Case seeds are a deterministic
//! function of the test path and case index, so failures replay.

pub mod test_runner {
    /// Deterministic per-case RNG (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(test_path: &str, case: u32) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in test_path.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x0000_0100_0000_01B3);
            }
            state ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of values. Object-safe; combinators live on
    /// [`StrategyExt`].
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    pub trait StrategyExt: Strategy + Sized {
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            Box::new(self)
        }
    }

    impl<S: Strategy> StrategyExt for S {}

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Coercion helper used by `prop_oneof!` so all arms unify into the
    /// same boxed strategy type.
    pub fn box_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            })*
        };
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            })*
        };
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String-literal regex strategy supporting the `[class]{m,n}` and
    /// literal-atom subset the workspace tests use (classes may contain
    /// `a-z` ranges; `{n}` and `{m,n}` repetitions apply to the previous
    /// atom).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        enum Atom {
            Class(Vec<char>),
            Lit(char),
        }
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                    let mut members = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j], chars[j + 2]);
                            for c in lo..=hi {
                                members.push(c);
                            }
                            j += 3;
                        } else {
                            members.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(members)
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    Atom::Lit(c)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Optional {n} / {m,n} repetition.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad repetition"),
                        n.trim().parse().expect("bad repetition"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("bad repetition");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push((atom, min, max));
        }

        let mut out = String::new();
        for (atom, min, max) in &atoms {
            let count = *min + rng.below((*max - *min + 1) as u64) as usize;
            for _ in 0..count {
                match atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(members) => {
                        assert!(!members.is_empty(), "empty class in pattern");
                        out.push(members[rng.below(members.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Sizes accepted by [`vec`]: exact, `m..n`, or `m..=n`.
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }
    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }
    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Module alias used as `prop::collection::vec(...)` in tests.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy, StrategyExt};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::box_strategy($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The `proptest!` macro: runs each body `PROPTEST_CASES` times (default
/// 32) with deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = std::env::var("PROPTEST_CASES")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(32);
                for __case in 0..cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::deterministic("regex", 0);
        for _ in 0..200 {
            let s = "[a-c%_]{0,4}".generate(&mut rng);
            assert!(s.len() <= 4);
            assert!(s.chars().all(|c| "abc%_".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![Just(1i64), (10i64..20).prop_map(|v| v * 2)];
        let mut rng = TestRng::deterministic("oneof", 1);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || (20..40).contains(&v), "{v}");
        }
    }

    proptest! {
        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }
    }
}
