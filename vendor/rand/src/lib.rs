//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! The workspace only needs deterministic, seedable randomness with a
//! dyn-safe core trait (oracles take `&mut dyn Rng`). The generator is
//! xoshiro256++ seeded through SplitMix64 — high quality, tiny, and
//! byte-reproducible across platforms, which is what campaign replay and
//! bug attribution rely on.

use std::ops::{Range, RangeInclusive};

/// Dyn-safe random source. Everything else is derived from `next_u64`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable constructor, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the standard small PRNG, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Random {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {
        $(impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly samplable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        })*
    };
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`RngExt::random_range`]. Blanket impls over
/// [`SampleUniform`] (mirroring the real crate) so that integer-literal
/// inference flows from the use site through the range type.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "cannot sample empty range");
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// Convenience methods over any [`Rng`] (including `dyn Rng`).
pub trait RngExt: Rng {
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-3i64..3);
            assert!((-3..3).contains(&v));
            let u: usize = rng.random_range(0..5usize);
            assert!(u < 5);
            let w: i64 = rng.random_range(1..=4i64);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = StdRng::seed_from_u64(1);
        let dy: &mut dyn Rng = &mut rng;
        let _: bool = dy.random();
        let _ = dy.random_range(0..10);
        let _ = dy.random_bool(0.5);
    }

    #[test]
    fn random_bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
