//! Quickstart: find a logic bug with CODDTest in a few lines.
//!
//! This walks the full pipeline on the Listing-1 bug from the paper:
//! a buggy SQLite-profile engine, a CODDTest campaign that finds a
//! discrepancy, attribution back to the injected mutant, and automatic
//! test-case reduction.
//!
//! Run with: `cargo run --example quickstart`

use coddb::bugs::BugRegistry;
use coddb::{BugId, Dialect};
use coddtest::runner::{attribute_bugs, run_campaign, CampaignConfig};

fn main() {
    // 1. Configure a buggy engine: the SQLite profile with the paper's
    //    Listing-1 bug injected (aggregate subquery misevaluated under an
    //    indexed scan).
    let bug = BugId::SqliteAggSubqueryIndexedWhere;
    println!("injected bug: {} — {}\n", bug.name(), bug.description());

    // 2. Run a CODDTest campaign: random database states, random
    //    expressions φ, constant folding through auxiliary queries,
    //    constant propagation into folded queries.
    let cfg = CampaignConfig {
        bugs: BugRegistry::only(bug),
        tests: 5_000,
        stop_on_first_bug: true,
        ..CampaignConfig::new(Dialect::Sqlite)
    };
    let mut oracle = coddtest::make_oracle("codd").expect("codd oracle");
    let mut result = run_campaign(oracle.as_mut(), &cfg);

    let Some(finding) = result.findings.first() else {
        println!(
            "no bug found within {} tests — try a larger budget",
            cfg.tests
        );
        return;
    };
    println!(
        "bug found after {} tests ({} queries executed):\n",
        result.tests_run,
        result.successful_queries + result.unsuccessful_queries
    );
    println!("{}\n", finding.report.to_display());

    // 3. Attribute the finding to the injected mutant (re-runs the exact
    //    test under each enabled mutant in isolation).
    attribute_bugs(&mut result, &cfg, "codd");
    let attributed = &result.findings[0].attributed;
    println!(
        "attributed to mutant(s): {:?}\n",
        attributed.iter().map(|b| b.name()).collect::<Vec<_>>()
    );

    // 4. Reduce the paper's own bug-inducing test case with the built-in
    //    delta-debugging reducer.
    let setup = coddb::parser::parse_statements(
        "CREATE TABLE t0 (c0);
         INSERT INTO t0 (c0) VALUES (1);
         CREATE TABLE noise (x INT);
         INSERT INTO noise VALUES (1), (2), (3);
         CREATE INDEX i0 ON t0 (c0 > 0);
         CREATE VIEW v0 (c0) AS SELECT AVG(t0.c0) FROM t0 GROUP BY 1 > t0.c0",
    )
    .unwrap();
    let original = coddb::parser::parse_select(
        "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE \
         (SELECT COUNT(*) FROM v0 WHERE v0.c0 BETWEEN 0 AND 0)",
    )
    .unwrap();
    let folded =
        coddb::parser::parse_select("SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE 0").unwrap();
    let case = coddtest::reduce::ReducibleCase {
        setup,
        original,
        folded,
    };
    let reduced = coddtest::reduce::reduce(&case, Dialect::Sqlite, &cfg.bugs);
    println!(
        "reduced test case ({} -> {} setup statements):",
        case.setup.len(),
        reduced.setup.len()
    );
    for s in &reduced.setup {
        println!("  {s};");
    }
    println!("  -- original: {};", reduced.original);
    println!("  -- folded:   {};", reduced.folded);
}
