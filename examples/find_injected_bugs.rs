//! Campaign against one emulated DBMS with its full mutant set enabled —
//! the per-dialect slice of Table 1.
//!
//! Run with: `cargo run --release --example find_injected_bugs -- [dialect] [tests]`
//! where dialect is one of sqlite | mysql | cockroach | duckdb | tidb
//! (default: duckdb, whose profile includes crash and hang mutants).

use std::collections::BTreeSet;

use coddb::bugs::{BugId, BugRegistry};
use coddb::Dialect;
use coddtest::runner::{attribute_bugs, run_campaign, CampaignConfig};

fn parse_dialect(s: &str) -> Option<Dialect> {
    match s.to_ascii_lowercase().as_str() {
        "sqlite" => Some(Dialect::Sqlite),
        "mysql" => Some(Dialect::Mysql),
        "cockroach" | "cockroachdb" => Some(Dialect::Cockroach),
        "duckdb" => Some(Dialect::Duckdb),
        "tidb" => Some(Dialect::Tidb),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dialect = args
        .get(1)
        .and_then(|s| parse_dialect(s))
        .unwrap_or(Dialect::Duckdb);
    let tests: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8_000);

    println!(
        "hunting the {} profile's {} injected bugs with CODDTest ({tests} tests)\n",
        dialect,
        BugId::for_dialect(dialect).len(),
    );

    let cfg = CampaignConfig {
        bugs: BugRegistry::all_for_dialect(dialect),
        tests,
        ..CampaignConfig::new(dialect)
    };
    let mut oracle = coddtest::make_oracle("codd").expect("codd oracle");
    let mut result = run_campaign(oracle.as_mut(), &cfg);
    println!(
        "campaign: {} tests, {} passed, {} skipped, {} findings, {} ok / {} err queries, \
         {} unique plans, {:.1}% branch coverage\n",
        result.tests_run,
        result.passed,
        result.skipped,
        result.findings.len(),
        result.successful_queries,
        result.unsuccessful_queries,
        result.unique_plans,
        result.coverage_percent,
    );

    // Show the first finding of each kind in full.
    let mut shown = BTreeSet::new();
    for f in &result.findings {
        if shown.insert(f.report.kind.label()) {
            println!("--- first {} finding ---", f.report.kind.label());
            println!("{}\n", f.report.to_display());
        }
    }

    println!("attributing findings to mutants (re-running each under isolation)...");
    attribute_bugs(&mut result, &cfg, "codd");
    let unique = result.unique_attributed_bugs();
    println!(
        "\nuncovered {} of {} mutants:",
        unique.len(),
        BugId::for_dialect(dialect).len()
    );
    for b in BugId::for_dialect(dialect) {
        let mark = if unique.contains(&b) { "✓" } else { "✗" };
        println!("  {mark} [{:<14}] {}", b.kind().label(), b.name());
    }
}
