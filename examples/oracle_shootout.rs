//! Head-to-head oracle comparison on a single buggy engine — a
//! miniature of the paper's §4.2 experiment.
//!
//! All five oracles (CODDTest, NoREC, TLP, DQE, EET) hunt the same
//! TiDB-profile mutants with the same test budget; the summary shows how
//! their detection sets overlap and differ.
//!
//! Run with: `cargo run --release --example oracle_shootout -- [tests]`

use std::collections::BTreeSet;

use coddb::bugs::{BugId, BugRegistry};
use coddb::Dialect;
use coddtest::runner::{attribute_bugs, run_campaign, CampaignConfig};

fn main() {
    let tests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6_000);
    let dialect = Dialect::Tidb;
    println!("oracle shootout on the {dialect} profile ({tests} tests each)\n");

    let oracles = ["codd", "norec", "tlp", "dqe", "eet"];
    let mut sets: Vec<(String, BTreeSet<BugId>)> = Vec::new();
    for name in oracles {
        let cfg = CampaignConfig {
            bugs: BugRegistry::all_for_dialect(dialect),
            tests,
            ..CampaignConfig::new(dialect)
        };
        let mut oracle = coddtest::make_oracle(name).expect("oracle");
        let mut result = run_campaign(oracle.as_mut(), &cfg);
        attribute_bugs(&mut result, &cfg, name);
        let unique = result.unique_attributed_bugs();
        println!(
            "{name:<8} {} reports -> {} unique bugs, qpt {:.2}, {} unique plans",
            result.findings.len(),
            unique.len(),
            result.qpt(),
            result.unique_plans,
        );
        sets.push((name.to_string(), unique));
    }

    println!("\nper-bug detection:");
    for bug in BugId::for_dialect(dialect) {
        let finders: Vec<&str> = sets
            .iter()
            .filter(|(_, s)| s.contains(&bug))
            .map(|(n, _)| n.as_str())
            .collect();
        println!(
            "  {:<40} [{:<14}] {}",
            bug.name(),
            bug.kind().label(),
            if finders.is_empty() {
                "— undetected —".to_string()
            } else {
                finders.join(", ")
            }
        );
    }

    let codd = &sets[0].1;
    let union_rest: BTreeSet<BugId> = sets[1..]
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .collect();
    let exclusive: Vec<&str> = codd.difference(&union_rest).map(|b| b.name()).collect();
    println!("\nbugs only CODDTest found here: {exclusive:?}");
}
