//! An interactive SQL shell over CoddDB — handy for replaying the paper's
//! listings by hand and for exploring the dialect profiles and mutants.
//!
//! Run with: `cargo run --example sql_shell -- [dialect] [bug-name ...]`
//!
//! Meta-commands: `.tables`, `.bugs`, `.coverage`, `.dialect`, `.quit`;
//! `.explain SELECT ...` prints the physical plan.

use std::io::{BufRead, Write as _};

use coddb::bugs::BugRegistry;
use coddb::{BugId, Database, Dialect, ExecOutcome};

fn parse_dialect(s: &str) -> Option<Dialect> {
    match s.to_ascii_lowercase().as_str() {
        "sqlite" => Some(Dialect::Sqlite),
        "mysql" => Some(Dialect::Mysql),
        "cockroach" | "cockroachdb" => Some(Dialect::Cockroach),
        "duckdb" => Some(Dialect::Duckdb),
        "tidb" => Some(Dialect::Tidb),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dialect = args
        .first()
        .and_then(|s| parse_dialect(s))
        .unwrap_or(Dialect::Sqlite);
    let mut bugs = BugRegistry::none();
    for arg in args.iter().skip(1) {
        match BugId::ALL.iter().find(|b| b.name() == arg) {
            Some(b) => bugs.enable(*b),
            None => eprintln!("unknown bug name: {arg} (see `.bugs`)"),
        }
    }
    let mut db = Database::with_bugs(dialect, bugs);
    println!(
        "CoddDB shell — {} profile. End statements with ';'. `.quit` exits.",
        dialect
    );

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("coddb> ");
        } else {
            print!("  ...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            match trimmed {
                ".quit" | ".exit" => break,
                ".tables" => {
                    println!("tables: {:?}", db.catalog().table_names());
                    println!("views:  {:?}", db.catalog().view_names());
                    println!("indexes:{:?}", db.catalog().index_names());
                }
                ".bugs" => {
                    for b in BugId::ALL {
                        let on = if db.bugs().active(b) { "ON " } else { "off" };
                        println!("  [{on}] {:<42} {}", b.name(), b.description());
                    }
                }
                ".coverage" => {
                    println!(
                        "branch coverage: {:.1}% ({} of {} points)",
                        db.coverage().percent(),
                        db.coverage().hit_count(),
                        db.coverage().total_points()
                    );
                }
                ".dialect" => println!("{dialect} — version {}", dialect.version_string()),
                other if other.starts_with(".explain ") => {
                    let sql = other.trim_start_matches(".explain ").trim_end_matches(';');
                    match db.explain_sql(sql) {
                        Ok(plan) => println!("{plan}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                other => println!("unknown meta-command {other}"),
            }
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        match db.execute_sql(&sql) {
            Ok(outcomes) => {
                for out in outcomes {
                    match out {
                        ExecOutcome::Rows(rel) => println!("{}", rel.to_table_string()),
                        ExecOutcome::Affected(n) => println!("{n} row(s) affected"),
                        ExecOutcome::Ddl => println!("ok"),
                    }
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
}
