//! Crash-recovery differential testing: find a recovery bug end to end.
//!
//! This walks the durable-storage pipeline: an engine whose recovery path
//! carries an injected mutant, a `recover`-oracle campaign that crashes
//! the WAL at seeded operation points and diffs recovery against the
//! committed prefix, attribution back to the recovery mutant, and
//! reduction of the crash scenario along both axes (script and fault
//! plan).
//!
//! Run with: `cargo run --example crash_recovery`

use coddb::bugs::BugRegistry;
use coddb::recovery::recovery_divergence;
use coddb::wal::{FaultMode, FaultPlan};
use coddb::{Dialect, RecoveryBugId};
use coddtest::reduce::{recovery_still_failing, reduce_recovery, RecoveryCase};
use coddtest::runner::{attribute_bugs, run_campaign, CampaignConfig};

fn main() {
    // 1. Inject a recovery-path mutant: replay applies effects whose
    //    commit marker never made it to the log.
    let bug = RecoveryBugId::ReplayUncommitted;
    println!(
        "injected recovery bug: {} — {}\n",
        bug.name(),
        bug.description()
    );

    // 2. Campaign: each test generates a schema + DML script, executes it
    //    durably, crashes the log at a seeded operation (lost / torn /
    //    corrupt tail), recovers, and compares against a never-crashed
    //    engine that executed exactly the committed prefix.
    let cfg = CampaignConfig {
        bugs: BugRegistry::only_recovery(bug),
        tests: 2_000,
        stop_on_first_bug: true,
        ..CampaignConfig::new(Dialect::Sqlite)
    };
    let mut oracle = coddtest::make_oracle("recover").expect("recover oracle");
    let mut result = run_campaign(oracle.as_mut(), &cfg);
    let finding = result.findings.first().expect("campaign finds the bug");
    println!(
        "found after {} tests at (state {}, test {}):",
        result.tests_run, finding.state_idx, finding.test_idx
    );
    println!("{}\n", finding.report.to_display());

    // 3. Attribute: re-run the finding's coordinates under each enabled
    //    mutant alone — it must reproduce under the recovery mutant.
    attribute_bugs(&mut result, &cfg, "recover");
    let finding = &result.findings[0];
    println!("attributed to: {:?}\n", finding.attributed_recovery);
    assert!(finding.attributed_recovery.contains(&bug));

    // 4. Reduce a hand-written crash scenario: shrink the script and
    //    simplify the fault plan while recovery still diverges.
    let case = RecoveryCase {
        script: coddb::parser::parse_statements(
            "CREATE TABLE t (a INT);
             INSERT INTO t VALUES (1);
             CREATE TABLE noise (z TEXT);
             INSERT INTO t VALUES (2)",
        )
        .unwrap(),
        plan: FaultPlan {
            crash_op: 7,
            mode: FaultMode::Corrupt { byte_sel: 0 },
        },
    };
    let bugs = BugRegistry::only_recovery(bug);
    assert!(recovery_still_failing(&case, Dialect::Sqlite, &bugs));
    let reduced = reduce_recovery(&case, Dialect::Sqlite, &bugs);
    println!(
        "reduced: {} -> {} statement(s), plan {} -> {}",
        case.script.len(),
        reduced.script.len(),
        case.plan.describe(),
        reduced.plan.describe()
    );
    for s in &reduced.script {
        println!("  {s};");
    }
    assert!(recovery_divergence(&reduced.script, &reduced.plan, Dialect::Sqlite, &bugs).is_some());
    println!("\nreduced scenario still recovers incorrectly — done.");
}
