//! Crash-recovery differential testing over checkpointed storage: find a
//! checkpoint-path recovery bug end to end.
//!
//! This walks the full durable-storage pipeline: a checkpoint taken
//! mid-script (snapshot serialized to its own disk, marker logged, log
//! truncated), a crash injected in the log suffix past the checkpoint,
//! recovery from snapshot + suffix — then an engine whose recovery path
//! carries an injected checkpoint mutant, a `recover`-oracle campaign
//! whose seeded crash points land inside snapshot writes and truncations
//! too, attribution back to the recovery mutant, and reduction of the
//! crash scenario along all four axes (script, checkpoint schedule,
//! fault plan, media plan).
//!
//! It then walks the media-fault axis end to end: at-rest bit rot in the
//! log image, a scrub that quarantines the damage, the salvage-vs-fail-
//! stop recovery policies, and a campaign that catches a media mutant
//! (salvage replaying *past* the damage) and attributes it into its own
//! mutant family.
//!
//! Run with: `cargo run --example crash_recovery`

use coddb::bugs::BugRegistry;
use coddb::recovery::{
    recover_detailed, recover_with_policy, recovery_divergence_checkpointed, scrub_images,
    RecoveryPolicy,
};
use coddb::wal::{FaultMode, FaultPlan, MediaPlan, StorageMode, FRAME_HEADER};
use coddb::{Database, Dialect, MediaBugId, RecoveryBugId};
use coddtest::reduce::{recovery_still_failing, reduce_recovery, RecoveryCase};
use coddtest::runner::{attribute_bugs, run_campaign, CampaignConfig};

fn main() {
    // 1. The happy path: execute durably, checkpoint mid-script, crash in
    //    the suffix, and recover from snapshot + log suffix — not genesis.
    let script = coddb::parser::parse_statements(
        "CREATE TABLE accounts (id INT, balance INT);
         INSERT INTO accounts VALUES (1, 100), (2, 250), (3, 40);
         UPDATE accounts SET balance = balance + 10 WHERE id = 3;
         INSERT INTO accounts VALUES (4, 75);
         DELETE FROM accounts WHERE balance < 60",
    )
    .unwrap();
    let checkpoints = [2usize]; // checkpoint after the UPDATE

    // Dry run to learn how many disk operations the checkpointed run
    // makes, then crash on the very last one (stmt 4's commit marker).
    let mut dry = Database::new(Dialect::Sqlite);
    dry.set_storage_mode(StorageMode::Durable);
    for (i, s) in script.iter().enumerate() {
        dry.execute(s).unwrap();
        if checkpoints.contains(&i) {
            dry.checkpoint().unwrap();
        }
    }
    let total_ops = dry.wal().unwrap().ops();

    let mut db = Database::new(Dialect::Sqlite);
    db.set_storage_mode(StorageMode::Durable);
    db.set_fault_plan(FaultPlan {
        crash_op: total_ops - 1,
        mode: FaultMode::Lost,
    });
    for (i, s) in script.iter().enumerate() {
        let _ = db.execute(s);
        if checkpoints.contains(&i) {
            let _ = db.checkpoint();
        }
    }
    let wal = db.wal().unwrap();
    println!(
        "crashed at op {}/{}: log {} bytes, snapshot {} bytes, durable snapshot at stmt {:?}",
        total_ops - 1,
        total_ops,
        wal.image().len(),
        wal.snapshot_image().len(),
        wal.durable_snapshot_stmts()
    );
    let (recovered, info) = recover_detailed(
        wal.image(),
        wal.snapshot_image(),
        Dialect::Sqlite,
        &BugRegistry::none(),
    )
    .unwrap();
    println!(
        "recovered from snapshot at stmt {:?} + {} suffix record(s) ({} snapshot(s) scanned):",
        info.snapshot_stmts, info.log_records, info.snapshots_scanned
    );
    let mut recovered = recovered;
    let rel = recovered
        .query_sql("SELECT id, balance FROM accounts")
        .unwrap();
    for row in &rel.rows {
        println!("  account {} balance {}", row[0], row[1]);
    }
    assert!(
        info.snapshot_stmts.is_some(),
        "must not fall back to genesis"
    );
    println!();

    // 2. Inject a checkpoint-path mutant: recovery prefers the *oldest*
    //    sealed snapshot, silently rolling the database back in time.
    let bug = RecoveryBugId::StaleSnapshotPreferred;
    println!(
        "injected recovery bug: {} — {}\n",
        bug.name(),
        bug.description()
    );

    // 3. Campaign: each test generates a schema + DML script, draws a
    //    seeded checkpoint schedule, executes it durably, crashes the
    //    storage at a seeded operation (which may land inside a snapshot
    //    write or the truncation step), recovers from the surviving
    //    snapshot + log images, and compares against a never-crashed
    //    engine holding exactly the committed prefix.
    let cfg = CampaignConfig {
        bugs: BugRegistry::only_recovery(bug),
        tests: 2_000,
        stop_on_first_bug: true,
        ..CampaignConfig::new(Dialect::Sqlite)
    };
    let mut oracle = coddtest::make_oracle("recover").expect("recover oracle");
    let mut result = run_campaign(oracle.as_mut(), &cfg);
    let finding = result.findings.first().expect("campaign finds the bug");
    println!(
        "found after {} tests at (state {}, test {}):",
        result.tests_run, finding.state_idx, finding.test_idx
    );
    println!("{}\n", finding.report.to_display());

    // 4. Attribute: re-run the finding's coordinates under each enabled
    //    mutant alone — it must reproduce under the recovery mutant.
    attribute_bugs(&mut result, &cfg, "recover");
    let finding = &result.findings[0];
    println!("attributed to: {:?}\n", finding.attributed_recovery);
    assert!(finding.attributed_recovery.contains(&bug));

    // 5. Reduce a hand-written crash scenario: shrink the script, drop
    //    checkpoints, and simplify the fault plan while recovery still
    //    diverges. The stale-snapshot mutant needs two checkpoints to
    //    misbehave, so reduction must keep exactly two.
    let case = RecoveryCase {
        script: coddb::parser::parse_statements(
            "CREATE TABLE t (a INT);
             INSERT INTO t VALUES (1);
             CREATE TABLE noise (z TEXT);
             INSERT INTO t VALUES (2);
             INSERT INTO noise VALUES ('x')",
        )
        .unwrap(),
        checkpoints: vec![0, 1, 3],
        plan: FaultPlan {
            crash_op: 40,
            mode: FaultMode::Corrupt { byte_sel: 0 },
        },
        media: MediaPlan::none(),
    };
    let bugs = BugRegistry::only_recovery(bug);
    assert!(recovery_still_failing(&case, Dialect::Sqlite, &bugs));
    let reduced = reduce_recovery(&case, Dialect::Sqlite, &bugs);
    println!(
        "reduced: {} -> {} statement(s), checkpoints {:?} -> {:?}, plan {} -> {}",
        case.script.len(),
        reduced.script.len(),
        case.checkpoints,
        reduced.checkpoints,
        case.plan.describe(),
        reduced.plan.describe()
    );
    for s in &reduced.script {
        println!("  {s};");
    }
    assert!(recovery_divergence_checkpointed(
        &reduced.script,
        &reduced.checkpoints,
        &reduced.plan,
        Dialect::Sqlite,
        &bugs
    )
    .is_some());
    println!("\nreduced scenario still recovers incorrectly.\n");

    // 6. The media-fault axis: rot a bit in the *at-rest* log image — the
    //    kind of corruption no write-path check could have seen — then
    //    scrub, and contrast the two recovery policies. The clean run
    //    from step 1's dry engine committed all five statements.
    let wal = dry.wal().unwrap();
    let mut log = wal.image().to_vec();
    let snap = wal.snapshot_image().to_vec();
    log[FRAME_HEADER] ^= 0x04; // first payload byte of the first suffix frame
    let report = scrub_images(&log, &snap, &BugRegistry::none());
    println!(
        "scrub after bit rot: {} log frame(s), {} snapshot frame(s), {} finding(s):",
        report.log_frames,
        report.snapshot_frames,
        report.findings.len()
    );
    for f in &report.findings {
        println!(
            "  [{}] {:?} at offset {}: {}",
            if f.tail { "tail" } else { "DAMAGE" },
            f.site,
            f.offset,
            f.reason
        );
    }
    assert!(!report.clean(), "scrub must quarantine the rot");

    // Fail-stop refuses the damaged image outright; salvage truncates at
    // the damage and recovers a committed *prefix* — here the snapshot
    // state, with the rotted log suffix dropped.
    let failstop = recover_with_policy(
        &log,
        &snap,
        Dialect::Sqlite,
        &BugRegistry::none(),
        RecoveryPolicy::FailStop,
    );
    match &failstop {
        Err(e) => println!("fail-stop: refused the image: {e}"),
        Ok(_) => panic!("fail-stop must refuse non-tail damage"),
    }
    let (mut salvaged, sinfo) = recover_with_policy(
        &log,
        &snap,
        Dialect::Sqlite,
        &BugRegistry::none(),
        RecoveryPolicy::Salvage,
    )
    .expect("salvage recovers a prefix");
    let rel = salvaged
        .query_sql("SELECT id, balance FROM accounts")
        .unwrap();
    println!(
        "salvage: recovered from snapshot at stmt {:?}, dropped the rotted suffix, {} row(s):",
        sinfo.snapshot_stmts,
        rel.rows.len()
    );
    for row in &rel.rows {
        println!("  account {} balance {}", row[0], row[1]);
    }
    println!();

    // 7. A media mutant — salvage that replays *past* a corrupt frame,
    //    resurrecting effects the damage should have quarantined — is
    //    hunted by the same `recover` campaign: its seeded media axis
    //    flips bits, injects read faults and fills the disk, and the
    //    detect-or-identical oracle flags any fault that is neither.
    let mbug = MediaBugId::SalvagePastCorruptCommit;
    println!(
        "injected media bug: {} — {}\n",
        mbug.name(),
        mbug.description()
    );
    let cfg = CampaignConfig {
        bugs: BugRegistry::only_media(mbug),
        tests: 2_000,
        stop_on_first_bug: true,
        ..CampaignConfig::new(Dialect::Sqlite)
    };
    let mut oracle = coddtest::make_oracle("recover").expect("recover oracle");
    let mut result = run_campaign(oracle.as_mut(), &cfg);
    let finding = result.findings.first().expect("campaign finds the bug");
    println!(
        "found after {} tests at (state {}, test {}):",
        result.tests_run, finding.state_idx, finding.test_idx
    );
    println!("{}\n", finding.report.to_display());
    attribute_bugs(&mut result, &cfg, "recover");
    let finding = &result.findings[0];
    println!(
        "attributed to media mutant(s): {:?}",
        finding.attributed_media
    );
    assert!(finding.attributed_media.contains(&mbug));
    assert!(finding.attributed_recovery.is_empty() && finding.attributed.is_empty());
    println!("\nmedia fault detected, attributed and reproducible — done.");
}
