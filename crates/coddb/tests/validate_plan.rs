//! Validator differential suite: for every engine and index mutant, the
//! static verifier ([`coddb::validate`], via [`Database::verify_select`])
//! must either stay silent (a runtime-only bug the plan tree cannot show)
//! or fire with a stable, reproducible diagnostic — and the statically-
//! detectable subset is pinned in a golden test.

use coddb::validate::Violation;
use coddb::{BugId, BugRegistry, Database, Dialect, IndexBugId};

/// DDL/DML that materializes every trigger shape the planner-adjacent
/// mutants need: a physical single-column index for range and ordered
/// seeks, plus a second table for outer-join pushdown.
const SETUP: &[&str] = &[
    "CREATE TABLE t (k INT, v INT)",
    "INSERT INTO t VALUES (1, 10), (2, 20), (2, 21), (3, 30), (NULL, 40)",
    "CREATE INDEX ik ON t (k)",
    "CREATE TABLE r (k INT, w INT)",
    "INSERT INTO r VALUES (2, 200), (3, 300)",
];

/// Probe queries covering the invariants the verifier re-derives: a range
/// seek (bound tightening), an eliminated DESC sort (direction), an
/// equality seek over duplicates, a residual prefix seek, a hash join
/// with a residual conjunct, and a LEFT JOIN with a right-side WHERE
/// conjunct (illegal pushdown bait).
const PROBES: &[&str] = &[
    "SELECT v FROM t WHERE k >= 2",
    "SELECT v FROM t WHERE k = 2",
    "SELECT v FROM t WHERE k > 0",
    "SELECT k FROM t ORDER BY k DESC",
    "SELECT t.v FROM t JOIN r ON t.k = r.k AND t.v < r.w",
    "SELECT t.v FROM t LEFT JOIN r ON t.k = r.k WHERE r.w > 0",
];

/// Run the verifier over every probe under one registry; returns all
/// violations (probe-tagged) in probe order.
fn sweep(bugs: BugRegistry) -> Vec<(usize, Violation)> {
    let mut db = Database::with_bugs(Dialect::Sqlite, bugs);
    for sql in SETUP {
        db.execute_sql(sql).unwrap();
    }
    let mut out = Vec::new();
    for (i, probe) in PROBES.iter().enumerate() {
        let q = coddb::parser::parse_select(probe).unwrap();
        for v in db.verify_select(&q).unwrap() {
            out.push((i, v));
        }
    }
    out
}

#[test]
fn clean_engine_produces_zero_violations() {
    let found = sweep(BugRegistry::none());
    assert!(found.is_empty(), "clean engine flagged: {found:?}");
}

/// Golden pin of the statically-detectable subset: exactly these mutants
/// corrupt the plan tree itself (everything else is runtime-only), and
/// each fires with the expected invariant code.
#[test]
fn statically_detectable_mutants_are_pinned() {
    let static_engine: Vec<BugId> = BugId::ALL
        .into_iter()
        .filter(|&b| !sweep(BugRegistry::only(b)).is_empty())
        .collect();
    assert_eq!(
        static_engine,
        [BugId::DuckdbPushdownLeftJoin],
        "statically-detectable engine mutant set drifted"
    );
    let static_index: Vec<IndexBugId> = IndexBugId::ALL
        .into_iter()
        .filter(|&b| !sweep(BugRegistry::only_index(b)).is_empty())
        .collect();
    assert_eq!(
        static_index,
        [
            IndexBugId::RangeBoundOffByOne,
            IndexBugId::SortElimWrongDirection
        ],
        "statically-detectable index mutant set drifted"
    );

    // And each fires with the expected invariant code.
    let codes = |found: Vec<(usize, Violation)>| -> Vec<&'static str> {
        found.into_iter().map(|(_, v)| v.code).collect::<Vec<_>>()
    };
    assert!(
        codes(sweep(BugRegistry::only(BugId::DuckdbPushdownLeftJoin))).contains(&"filter-position")
    );
    assert!(codes(sweep(BugRegistry::only_index(
        IndexBugId::RangeBoundOffByOne
    )))
    .contains(&"seek-prefix-mismatch"));
    assert!(codes(sweep(BugRegistry::only_index(
        IndexBugId::SortElimWrongDirection
    )))
    .contains(&"sort-elim-direction"));
}

/// Every mutant's verifier output is deterministic: two fresh sweeps
/// produce identical violation lists (codes, details and probe
/// attribution), so a campaign finding reproduces from its seeds.
#[test]
fn verifier_diagnostics_are_stable_under_every_mutant() {
    for bug in BugId::ALL {
        let a = sweep(BugRegistry::only(bug));
        let b = sweep(BugRegistry::only(bug));
        assert_eq!(a, b, "unstable diagnostics under {bug:?}");
    }
    for bug in IndexBugId::ALL {
        let a = sweep(BugRegistry::only_index(bug));
        let b = sweep(BugRegistry::only_index(bug));
        assert_eq!(a, b, "unstable diagnostics under {bug:?}");
    }
}
