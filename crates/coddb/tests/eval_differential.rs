//! Differential testing of the vectorized chunk evaluator: every
//! statement runs through both eval modes — [`EvalMode::Vectorized`]
//! (chunk-at-a-time kernels with per-chunk scalar fallback) and
//! [`EvalMode::RowAtATime`] (the interpreter baseline) — and must
//! produce byte-identical results, identical coverage bitsets and
//! **identical fuel consumption**, over NULL-heavy data, erroring
//! expressions, every dialect, and every injected mutant.

use coddb::bugs::BugRegistry;
use coddb::{BugId, Database, Dialect, EvalMode};

/// Statements stressing every vectorized kernel plus its fallbacks.
/// Strict dialects reject several of these — errors must agree too.
const SCRIPT: &[&str] = &[
    "CREATE TABLE t (a INT, b TEXT, c REAL, d BOOLEAN)",
    // NULL-heavy data, duplicates, negative values, empty strings.
    "INSERT INTO t VALUES (1, 'one', 1.5, TRUE), (NULL, NULL, NULL, NULL), \
     (2, 'two', NULL, FALSE), (2, NULL, 2.5, TRUE), (-3, 'THREE', -3.5, NULL), \
     (NULL, '', 0.0, FALSE), (7, 'one', 7.25, TRUE), (0, '12abc', 4.0, NULL)",
    // Plain filters: comparisons, AND/OR short circuits over NULLs.
    "SELECT * FROM t WHERE a > 1",
    "SELECT * FROM t WHERE a % 2 = 0 AND c > 1.0",
    "SELECT * FROM t WHERE a < 0 OR c >= 4.0",
    "SELECT * FROM t WHERE NOT (a = 2)",
    "SELECT * FROM t WHERE d",
    // Erroring expressions: division by zero (dialect-dependent), lazy
    // branches that skip the error for some rows, integer overflow.
    "SELECT * FROM t WHERE 10 / a > 2",
    "SELECT * FROM t WHERE a > 0 AND 10 / a > 2",
    "SELECT * FROM t WHERE a = 0 OR 10 % a = 1",
    "SELECT a + 9223372036854775807 FROM t",
    "SELECT * FROM t WHERE a + 9223372036854775807 > 0",
    "SELECT -a, ABS(a), SIGN(c) FROM t",
    // Mixed-class comparisons (MySQL coerces, strict dialects error,
    // SQLite ranks classes) — the TEXT-mix fallback paths.
    "SELECT * FROM t WHERE b > 1",
    "SELECT * FROM t WHERE a = '2'",
    "SELECT b || 'x', b || a FROM t",
    // BETWEEN / IN / IS NULL / LIKE / CASE / IIF / COALESCE kernels.
    "SELECT * FROM t WHERE a BETWEEN 0 AND 2",
    "SELECT * FROM t WHERE c NOT BETWEEN 0.0 AND 2.0",
    "SELECT * FROM t WHERE a IN (1, 2, NULL)",
    "SELECT * FROM t WHERE a NOT IN (7)",
    "SELECT * FROM t WHERE a IN ()",
    "SELECT * FROM t WHERE b IS NULL",
    "SELECT * FROM t WHERE b IS NOT NULL",
    "SELECT * FROM t WHERE b LIKE '%o%'",
    "SELECT * FROM t WHERE b NOT LIKE 't_o'",
    "SELECT CASE WHEN a > 1 THEN 'big' WHEN a IS NULL THEN 'null' ELSE 'small' END FROM t",
    "SELECT CASE a WHEN 2 THEN 'two' WHEN 10 / 0 THEN 'boom' END FROM t",
    "SELECT IIF(a > 0, c, a), COALESCE(a, c, 99), NULLIF(a, 2) FROM t",
    "SELECT LENGTH(b), UPPER(b), LOWER(b), INSTR(b, 'o'), SUBSTR(b, 2, 2), SUBSTR(b, -2) FROM t",
    "SELECT ROUND(c, 1), ROUND(c), TYPEOF(a) FROM t",
    "SELECT CAST(a AS TEXT), CAST(c AS INT), CAST(d AS INT) FROM t",
    "SELECT CAST(b AS INT) FROM t",
    // Grouped aggregation: single INT key, non-INT key, expression keys,
    // multi-key, HAVING, DISTINCT aggregates, empty input.
    "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY 1",
    "SELECT b, COUNT(*), SUM(a), AVG(c) FROM t GROUP BY b ORDER BY 1",
    "SELECT a % 3, MIN(c), MAX(c), TOTAL(a) FROM t GROUP BY a % 3 ORDER BY 1",
    "SELECT a, d, COUNT(*) FROM t GROUP BY a, d ORDER BY 1, 2",
    "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY 1",
    "SELECT COUNT(DISTINCT a), AVG(DISTINCT c) FROM t",
    "SELECT a, COUNT(*) FROM t WHERE a > 100 GROUP BY a",
    "SELECT c, COUNT(*) FROM t GROUP BY c ORDER BY 1",
    // Erroring aggregate arguments (group order != row order).
    "SELECT a, SUM(10 / a) FROM t GROUP BY a ORDER BY 1",
    // Aggregate *computation* erroring mid-group-loop after argument
    // evaluation succeeded: the first group's SUM overflows while a
    // later group holds a NULL argument — the row-at-a-time walk never
    // reaches that later group's members, so batched argument coverage
    // must not leak their bits.
    "CREATE TABLE big (g INT, c INT)",
    "INSERT INTO big VALUES (0, 9223372036854775806), (0, 5), (1, NULL), (1, 2)",
    "SELECT g, SUM(c + 0) FROM big GROUP BY g",
    "SELECT g, SUM(c + 0) FROM big GROUP BY g HAVING COUNT(*) > 0",
    // DISTINCT projection, set ops, sorting on expressions.
    "SELECT DISTINCT a FROM t ORDER BY a",
    "SELECT a FROM t WHERE a > 0 UNION SELECT a FROM t WHERE a < 0 ORDER BY 1",
    "SELECT a, c FROM t ORDER BY a % 2, c",
    // Subqueries (row-at-a-time fallback on both modes) mixed with
    // vectorizable outer clauses.
    "SELECT * FROM t WHERE a > (SELECT MIN(a) FROM t) AND c > 0.0",
    "SELECT a, (SELECT COUNT(*) FROM t AS u WHERE u.a = t.a) FROM t ORDER BY 1",
    // DML between SELECTs: predicates bind per statement, caches reset.
    "UPDATE t SET c = c + 1.0 WHERE a = 2",
    "SELECT * FROM t WHERE c > 2.0",
    "DELETE FROM t WHERE a IS NULL AND d IS NULL",
    "SELECT COUNT(*) FROM t",
    "INSERT INTO t SELECT a, b, c, d FROM t WHERE a % 2 = 1",
    "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY 1",
];

fn run_script(
    dialect: Dialect,
    bugs: BugRegistry,
    mode: EvalMode,
    script: &[&str],
) -> (Vec<String>, Vec<&'static str>, u64) {
    let mut db = Database::with_bugs(dialect, bugs);
    db.set_eval_mode(mode);
    let mut outcomes = Vec::new();
    for sql in script {
        match coddb::parser::parse_statements(sql) {
            Ok(stmts) => {
                for stmt in &stmts {
                    outcomes.push(match db.execute(stmt) {
                        Ok(out) => format!("{out:?}"),
                        Err(e) => format!("error: {e}"),
                    });
                }
            }
            // Dialect-independent parse behaviour; keep slots aligned.
            Err(e) => outcomes.push(format!("parse error: {e}")),
        }
    }
    (outcomes, db.coverage().hit_points(), db.fuel_used())
}

fn assert_modes_agree(dialect: Dialect, bugs: fn() -> BugRegistry, script: &[&str], tag: &str) {
    let (vec_out, vec_cov, vec_fuel) = run_script(dialect, bugs(), EvalMode::Vectorized, script);
    let (row_out, row_cov, row_fuel) = run_script(dialect, bugs(), EvalMode::RowAtATime, script);
    assert_eq!(vec_out.len(), row_out.len(), "[{tag}] statement counts");
    for (i, (v, r)) in vec_out.iter().zip(row_out.iter()).enumerate() {
        assert_eq!(
            v, r,
            "[{tag}] eval modes disagree on {dialect:?} statement {i}"
        );
    }
    assert_eq!(
        vec_cov, row_cov,
        "[{tag}] coverage bitsets diverge between eval modes on {dialect:?}"
    );
    assert_eq!(
        vec_fuel, row_fuel,
        "[{tag}] fuel accounting diverges between eval modes on {dialect:?}"
    );
}

#[test]
fn vectorized_matches_row_at_a_time_on_every_dialect() {
    for dialect in Dialect::ALL {
        assert_modes_agree(dialect, BugRegistry::none, SCRIPT, "clean");
    }
}

/// Trigger contexts for the context-sensitive mutants: index scans,
/// views, CTEs, joins, subqueries, set operations — so an active mutant
/// actually fires during the differential run (the classifier must then
/// route its hooked shapes through the authentic interpreter on both
/// modes identically).
const MUTANT_SCRIPT: &[&str] = &[
    "CREATE TABLE t0 (c0 INT, c1 TEXT, c2 REAL)",
    "INSERT INTO t0 VALUES (1, 'abc', 1.5), (NULL, 'x', 2.5), (2, '5', 0.0), \
     (5, NULL, 862827606027206657.0), (0, 'ABC', -1.0)",
    "CREATE TABLE t1 (c0 INT)",
    "INSERT INTO t1 VALUES (1), (2), (2), (NULL)",
    "CREATE INDEX i0 ON t0 (c0)",
    "CREATE VIEW v0 (x) AS SELECT c0 FROM t1",
    "SELECT * FROM t0 WHERE c0 > 0",
    "SELECT * FROM t0 WHERE c0 BETWEEN 1 AND 9",
    "SELECT * FROM t0 WHERE c1 BETWEEN 1 AND 9",
    "SELECT * FROM t0 WHERE c1 LIKE 'abc'",
    "SELECT * FROM t0 WHERE c1 NOT LIKE 'a%'",
    "SELECT * FROM t0 WHERE c0 IN (1, 5)",
    "SELECT * FROM t0 WHERE c0 IN (0, 862827606027206657)",
    "SELECT * FROM t0 WHERE c0 IS NULL",
    "SELECT * FROM t0 WHERE FALSE OR c0 > 0",
    "SELECT * FROM t0 WHERE NULL AND c0 > 0",
    "SELECT * FROM t0 WHERE c1 > 2",
    "SELECT c0 + 9223372036854775807 FROM t0 WHERE c0 = 1",
    "SELECT CASE WHEN NULL THEN 1 ELSE 0 END FROM t0",
    "SELECT CASE c0 WHEN 0 THEN 0 WHEN 1 THEN 1 WHEN 2 THEN 2 WHEN 3 THEN 3 \
     WHEN 4 THEN 4 WHEN 5 THEN 5 WHEN 6 THEN 6 WHEN 7 THEN 7 WHEN 8 THEN 8 \
     ELSE -1 END FROM t0",
    "WITH w AS (SELECT c0 FROM t1) \
     SELECT CASE WHEN NULL THEN 1 ELSE 0 END FROM t0, w",
    "SELECT ROUND(c2, 11), SUBSTR(c1, -2), UPPER(c1) FROM t0",
    "SELECT CAST(c1 AS INT) FROM t0 WHERE c0 = 2",
    "SELECT (SELECT MAX(c0) FROM t1) FROM t0",
    "SELECT COUNT(*) FROM t0 WHERE (SELECT COUNT(*) FROM t1 WHERE FALSE)",
    "SELECT * FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0",
    "SELECT * FROM t0 LEFT JOIN v0 ON v0.x = 99",
    "SELECT * FROM t0 CROSS JOIN t1 ON (EXISTS (SELECT c0 FROM t1 WHERE FALSE))",
    "SELECT 2 = ANY (SELECT c0 FROM t1)",
    "SELECT (SELECT AVG(c2) FROM t0) FROM t1",
    "SELECT c0 FROM t1 UNION SELECT 'a'",
    "SELECT DISTINCT c0 FROM t1 GROUP BY c0",
    "SELECT c2, COUNT(*) FROM t0 GROUP BY c2",
    "SELECT c0, COUNT(*) FROM t1 GROUP BY c0 HAVING COUNT(*) > (SELECT 0)",
    "SELECT c0 FROM t1 WHERE (SELECT TRUE) = TRUE",
    "UPDATE t0 SET c1 = 'upd' WHERE c0 IN (1)",
    "DELETE FROM t1 WHERE c0 > 5",
    "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE \
     (SELECT COUNT(*) FROM v0 WHERE v0.x BETWEEN 0 AND 0)",
    // Plan-time, join-strategy, set-op and internal-error triggers.
    "SELECT * FROM t0 WHERE (c0 % -3) = 1",
    "SELECT * FROM t0 INNER JOIN t1 ON TRUE WHERE t0.c0 NOT BETWEEN t0.c0 AND NULL",
    "SELECT t0.* FROM t0 FULL OUTER JOIN t1 ON t0.c0 = t1.c0",
    "SELECT c0 FROM t1 INTERSECT SELECT c0 FROM t1",
    "SELECT CAST(c1 AS INT) FROM t0 WHERE c0 = 1",
    "WITH w AS (SELECT c0 FROM t1) SELECT * FROM w AS x CROSS JOIN w AS y",
    "SELECT COUNT(*) FROM t0 FULL OUTER JOIN t1 ON t0.c0 = t1.c0 \
     GROUP BY t0.c0 HAVING COUNT(*) >= 1",
    "SELECT CASE WHEN TRUE THEN (SELECT 7) ELSE 0 END FROM t0",
    "SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 WHERE t1.c0 IS NULL",
    "SELECT * FROM t0 AS a INNER JOIN t0 AS b ON a.c0 < b.c0 AND a.c2 > b.c2",
    "SELECT * FROM t0 AS a INNER JOIN t0 AS b ON a.c0 < b.c2",
    "SELECT COUNT(*) FROM t1 AS a INNER JOIN t1 AS b ON a.c0 = b.c0 \
     INNER JOIN t1 AS c ON b.c0 = c.c0 INNER JOIN t1 AS d ON c.c0 = d.c0",
    "SELECT DISTINCT c0 FROM t1 UNION SELECT c0 FROM t1",
    "SELECT * FROM t0 WHERE c1 LIKE '%%%a'",
    "SELECT * FROM t0 WHERE c1 LIKE 'a\\'",
    "SELECT (SELECT AVG(DISTINCT c0) FROM t1 WHERE c0 > 100) IS NULL FROM t0",
    "SELECT c0 FROM t1 UNION SELECT 9 ORDER BY 1",
    "CREATE TABLE ot0 (c0 INT)",
    "INSERT INTO ot0 SELECT c0 FROM t1 WHERE VERSION() >= c0",
    "SELECT COUNT(*) FROM ot0",
    "CREATE INDEX ic ON t0 (c1 || c2)",
    "SELECT * FROM t0 INDEXED BY ic WHERE c1 LIKE 'upd%'",
];

#[test]
fn vectorized_matches_row_at_a_time_under_every_mutant() {
    for bug in BugId::ALL {
        let make = move || BugRegistry::only(bug);
        let (vec_out, vec_cov, vec_fuel) =
            run_script(bug.dialect(), make(), EvalMode::Vectorized, MUTANT_SCRIPT);
        let (row_out, row_cov, row_fuel) =
            run_script(bug.dialect(), make(), EvalMode::RowAtATime, MUTANT_SCRIPT);
        for (i, (v, r)) in vec_out.iter().zip(row_out.iter()).enumerate() {
            assert_eq!(
                v,
                r,
                "eval modes disagree under {bug:?} on statement {i} ({:?})",
                MUTANT_SCRIPT.get(i)
            );
        }
        assert_eq!(
            vec_cov, row_cov,
            "coverage bitsets diverge between eval modes under {bug:?}"
        );
        assert_eq!(
            vec_fuel, row_fuel,
            "fuel accounting diverges between eval modes under {bug:?}"
        );
    }
}

/// Every mutant must still fire on the (default) vectorized engine: its
/// hooked shapes are classification-rejected to the authentic
/// interpreter, so the buggy engine diverges from a clean one exactly as
/// it did row-at-a-time.
#[test]
fn every_mutant_still_fires_under_vectorized_evaluation() {
    for bug in BugId::ALL {
        let clean = run_script(
            bug.dialect(),
            BugRegistry::none(),
            EvalMode::Vectorized,
            MUTANT_SCRIPT,
        );
        let buggy = run_script(
            bug.dialect(),
            BugRegistry::only(bug),
            EvalMode::Vectorized,
            MUTANT_SCRIPT,
        );
        assert_ne!(
            clean.0, buggy.0,
            "{bug:?} no longer fires anywhere in the mutant workout script"
        );
    }
}

/// Error-path scenarios checked on a *fresh* database each, so a
/// coverage bit leaked by the vectorized path cannot hide behind a bit
/// an earlier statement already set (coverage is an idempotent bitset —
/// the long script above can mask single-bit divergences).
#[test]
fn error_scenarios_agree_on_fresh_databases() {
    let scenarios: &[&[&str]] = &[
        // Aggregate computation errors mid-group-loop after argument
        // evaluation succeeded; the later group's NULL member must not
        // leak eval::arith_null into coverage.
        &[
            "CREATE TABLE big (g INT, c INT)",
            "INSERT INTO big VALUES (0, 9223372036854775806), (0, 5), (1, NULL), (1, 2)",
            "SELECT g, SUM(c + 0) FROM big GROUP BY g",
        ],
        // Same shape, erroring in a *later* group: the earlier group's
        // argument bits must still fire.
        &[
            "CREATE TABLE big (g INT, c INT)",
            "INSERT INTO big VALUES (0, NULL), (1, 9223372036854775806), (1, 5)",
            "SELECT g, SUM(c + 0) FROM big GROUP BY g",
        ],
        // HAVING errors after aggregates; both groups' args evaluated.
        &[
            "CREATE TABLE big (g INT, c INT)",
            "INSERT INTO big VALUES (0, 1), (1, NULL)",
            "SELECT g, SUM(c + 0) FROM big GROUP BY g HAVING 1 / g > 0",
        ],
        // Filter errors mid-scan: rows after the erroring row must fire
        // nothing (chunk fallback re-runs row-at-a-time).
        &[
            "CREATE TABLE t (a INT, b TEXT)",
            "INSERT INTO t VALUES (2, 'x'), (0, 'y'), (NULL, 'z')",
            "SELECT * FROM t WHERE 10 / a > 1",
        ],
        // Projection errors mid-chunk.
        &[
            "CREATE TABLE t (a INT)",
            "INSERT INTO t VALUES (5), (0), (NULL)",
            "SELECT 10 % a FROM t",
        ],
        // Group-key evaluation errors mid-chunk.
        &[
            "CREATE TABLE t (a INT)",
            "INSERT INTO t VALUES (5), (0), (NULL)",
            "SELECT 10 / a, COUNT(*) FROM t GROUP BY 10 / a",
        ],
        // Erroring DML: fuel consumed before the error must be counted
        // (and equally) in both modes.
        &[
            "CREATE TABLE t (a INT)",
            "INSERT INTO t VALUES (5), (0), (2)",
            "UPDATE t SET a = a + 1 WHERE 10 / a > 1",
            "DELETE FROM t WHERE 10 % a = 0",
            "INSERT INTO t SELECT 10 / a FROM t",
            "SELECT COUNT(*) FROM t",
        ],
    ];
    for dialect in Dialect::ALL {
        for (i, scenario) in scenarios.iter().enumerate() {
            let (vec_out, vec_cov, vec_fuel) =
                run_script(dialect, BugRegistry::none(), EvalMode::Vectorized, scenario);
            let (row_out, row_cov, row_fuel) =
                run_script(dialect, BugRegistry::none(), EvalMode::RowAtATime, scenario);
            assert_eq!(
                vec_out, row_out,
                "outcomes diverge on {dialect:?} scenario {i}"
            );
            assert_eq!(
                vec_cov, row_cov,
                "coverage diverges on {dialect:?} scenario {i}"
            );
            assert_eq!(
                vec_fuel, row_fuel,
                "fuel diverges on {dialect:?} scenario {i}"
            );
        }
    }
}

/// Fuel exhaustion must hang at exactly the same statement with exactly
/// the same accounting: the chunked paths check the budget covers a
/// whole chunk before charging it, falling back to the per-row loop
/// (which charges row by row) when it does not.
#[test]
fn fuel_exhaustion_agrees_across_eval_modes() {
    for fuel in [7u64, 23, 61, 200] {
        let run = |mode: EvalMode| {
            let mut db = Database::new(Dialect::Sqlite);
            db.set_eval_mode(mode);
            db.set_fuel_limit(fuel);
            let mut outcomes = Vec::new();
            for sql in [
                "CREATE TABLE t (a INT)",
                "INSERT INTO t VALUES (1), (2), (3), (4), (5), (6), (7), (8), (9), (10)",
                "SELECT COUNT(*) FROM t WHERE a % 2 = 1",
                "SELECT a * 2 FROM t",
                "SELECT a, COUNT(*) FROM t GROUP BY a",
            ] {
                for stmt in &coddb::parser::parse_statements(sql).unwrap() {
                    outcomes.push(match db.execute(stmt) {
                        Ok(out) => format!("{out:?}"),
                        Err(e) => format!("error: {e}"),
                    });
                }
            }
            (outcomes, db.coverage().hit_points(), db.fuel_used())
        };
        let vec = run(EvalMode::Vectorized);
        let row = run(EvalMode::RowAtATime);
        assert_eq!(vec.0, row.0, "outcomes diverge at fuel limit {fuel}");
        assert_eq!(vec.1, row.1, "coverage diverges at fuel limit {fuel}");
        assert_eq!(vec.2, row.2, "fuel accounting diverges at limit {fuel}");
    }
}
