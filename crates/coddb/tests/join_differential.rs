//! Differential testing of the two join strategies: every join-shaped
//! query runs through both the hash-join path ([`JoinMode::Auto`]) and
//! the nested loop ([`JoinMode::NestedLoop`]) and must produce identical
//! results — not just as multisets but row for row, since the hash join
//! is specified to emit in nested-loop order (left-major, right index
//! ascending). Covers NULL keys, duplicate-key fan-out, residual
//! conjuncts, all join kinds, and the runtime mixed-class fallbacks.

use coddb::{Database, Dialect, JoinMode};

fn db_with(dialect: Dialect, mode: JoinMode, setup: &str) -> Database {
    let mut db = Database::new(dialect);
    db.set_join_mode(mode);
    db.execute_sql(setup).unwrap();
    db
}

/// Run `sql` under both join modes; results (or errors) must agree, and
/// result rows must arrive in the same order.
fn assert_join_differential(dialect: Dialect, setup: &str, sql: &str) {
    let mut hash_db = db_with(dialect, JoinMode::Auto, setup);
    let mut nested_db = db_with(dialect, JoinMode::NestedLoop, setup);
    let h = hash_db.query_sql(sql);
    let n = nested_db.query_sql(sql);
    match (h, n) {
        (Ok(h), Ok(n)) => {
            assert_eq!(
                h.rows, n.rows,
                "hash and nested-loop joins disagree on {sql}\nhash: {h:?}\nnested: {n:?}"
            );
        }
        (Err(_), Err(_)) => {} // both reject (e.g. strict cross-class compare)
        (h, n) => panic!("divergent outcome on {sql}\nhash: {h:?}\nnested: {n:?}"),
    }
}

const SETUP: &str = "
    CREATE TABLE l (a INT, b TEXT, c REAL);
    CREATE TABLE r (a INT, b TEXT, c REAL);
    INSERT INTO l VALUES
        (1, 'x', 1.0), (2, 'y', 2.5), (2, 'y', 2.5), (3, 'z', 3.0),
        (NULL, 'n', 4.0), (5, NULL, NULL), (7, 'w', 7.5);
    INSERT INTO r VALUES
        (2, 'y', 2.5), (2, 'q', 2.0), (3, 'z', 9.0), (4, 'w', 4.0),
        (NULL, 'n', 1.0), (5, NULL, 5.0), (5, 'v', 5.5);
";

const JOIN_QUERIES: &[&str] = &[
    // Plain single-key equi joins, every kind.
    "SELECT * FROM l INNER JOIN r ON l.a = r.a",
    "SELECT * FROM l LEFT JOIN r ON l.a = r.a",
    "SELECT * FROM l RIGHT JOIN r ON l.a = r.a",
    "SELECT * FROM l FULL JOIN r ON l.a = r.a",
    // Swapped key sides must be recognized too.
    "SELECT * FROM l INNER JOIN r ON r.a = l.a",
    // Text keys, including a NULL on both sides.
    "SELECT * FROM l LEFT JOIN r ON l.b = r.b",
    // Multi-key.
    "SELECT * FROM l INNER JOIN r ON l.a = r.a AND l.b = r.b",
    // Equi key plus non-equi residual.
    "SELECT * FROM l INNER JOIN r ON l.a = r.a AND l.c < r.c",
    "SELECT * FROM l FULL JOIN r ON l.a = r.a AND l.c < r.c",
    // Computed key expressions.
    "SELECT * FROM l INNER JOIN r ON l.a + 1 = r.a",
    "SELECT * FROM l LEFT JOIN r ON l.a * 2 = r.a + r.a",
    // Constant conjunct riding along.
    "SELECT * FROM l INNER JOIN r ON l.a = r.a AND 1 = 1",
    // Mixed-class key (INT vs TEXT): runtime fallback territory.
    "SELECT * FROM l INNER JOIN r ON l.a = r.b",
    // INT key against a REAL key: numeric cross-class equality.
    "SELECT * FROM l INNER JOIN r ON l.a = r.c",
    // Non-equi ON: planner never hashes, but run it anyway.
    "SELECT * FROM l INNER JOIN r ON l.a < r.a",
    // Join feeding aggregation and dedup.
    "SELECT COUNT(*) FROM l INNER JOIN r ON l.a = r.a",
    "SELECT DISTINCT l.a FROM l INNER JOIN r ON l.a = r.a ORDER BY l.a",
];

#[test]
fn hash_join_matches_nested_loop_on_every_shape() {
    for dialect in [
        Dialect::Sqlite,
        Dialect::Mysql,
        Dialect::Duckdb,
        Dialect::Cockroach,
    ] {
        for sql in JOIN_QUERIES {
            assert_join_differential(dialect, SETUP, sql);
        }
    }
}

#[test]
fn hash_path_is_actually_taken() {
    let mut db = db_with(Dialect::Sqlite, JoinMode::Auto, SETUP);
    db.query_sql("SELECT * FROM l INNER JOIN r ON l.a = r.a")
        .unwrap();
    let hits = db.coverage().hit_points();
    assert!(hits.contains(&"exec::hash_join_build"), "{hits:?}");
    assert!(hits.contains(&"exec::hash_join_null_key"), "{hits:?}");
    assert!(hits.contains(&"plan::hash_join_keys"), "{hits:?}");
}

#[test]
fn nested_mode_never_builds_a_hash_table() {
    let mut db = db_with(Dialect::Sqlite, JoinMode::NestedLoop, SETUP);
    db.query_sql("SELECT * FROM l INNER JOIN r ON l.a = r.a")
        .unwrap();
    assert!(!db
        .coverage()
        .hit_points()
        .contains(&"exec::hash_join_build"));
}

#[test]
fn null_keys_never_match_and_duplicates_fan_out() {
    let mut db = db_with(Dialect::Sqlite, JoinMode::Auto, SETUP);
    // l has a=2 twice, r has a=2 twice: 2x2 fan-out. NULLs on both sides
    // must not pair with each other.
    let rel = db
        .query_sql("SELECT l.a FROM l INNER JOIN r ON l.a = r.a")
        .unwrap();
    let twos = rel
        .rows
        .iter()
        .filter(|row| row[0].as_i64() == Some(2))
        .count();
    assert_eq!(twos, 4, "duplicate keys must chain: {rel:?}");
    assert!(
        rel.rows.iter().all(|row| !row[0].is_null()),
        "NULL keys must never match: {rel:?}"
    );
    // ... but NULL-keyed rows surface as padding under outer joins.
    let padded = db
        .query_sql("SELECT l.a, r.a FROM l LEFT JOIN r ON l.a = r.a ORDER BY 1")
        .unwrap();
    assert!(
        padded
            .rows
            .iter()
            .any(|row| row[0].is_null() && row[1].is_null()),
        "NULL-keyed left row must be padded: {padded:?}"
    );
}

#[test]
fn mixed_class_keys_fall_back_at_runtime() {
    // INT keys on one side vs TEXT keys on the other: equality is
    // pairwise-coercive (MySQL) or an error (strict dialects), so the
    // executor must delegate to the nested loop.
    let mut db = db_with(Dialect::Mysql, JoinMode::Auto, SETUP);
    let rel = db
        .query_sql("SELECT COUNT(*) FROM l INNER JOIN r ON l.a = r.b")
        .unwrap();
    assert!(db
        .coverage()
        .hit_points()
        .contains(&"exec::hash_join_fallback"));
    // MySQL coerces the text side numerically: no 'y'/'q'/... parses to a
    // matching number, so the join is empty — but via the nested loop.
    assert_eq!(rel.scalar().unwrap().as_i64(), Some(0));
}

#[test]
fn big_int_real_mix_falls_back() {
    let setup = "
        CREATE TABLE bl (k INT); CREATE TABLE br (k REAL);
        INSERT INTO bl VALUES (9007199254740993), (9007199254740992), (1);
        INSERT INTO br VALUES (9007199254740992.0), (1.0);
    ";
    // 2^53 + 1 compares equal to 2^53 as REAL under f64 semantics; hash
    // keys cannot express that, so the executor must fall back — and the
    // two modes must agree on the (f64-rounded) match set.
    assert_join_differential(
        Dialect::Sqlite,
        setup,
        "SELECT COUNT(*) FROM bl INNER JOIN br ON bl.k = br.k",
    );
    let mut db = db_with(Dialect::Sqlite, JoinMode::Auto, setup);
    let rel = db
        .query_sql("SELECT COUNT(*) FROM bl INNER JOIN br ON bl.k = br.k")
        .unwrap();
    assert!(db
        .coverage()
        .hit_points()
        .contains(&"exec::hash_join_fallback"));
    assert_eq!(rel.scalar().unwrap().as_i64(), Some(3));
}

#[test]
fn erroring_key_exprs_defer_to_nested_loop_semantics() {
    // A key expression that errors (division by zero under a strict
    // dialect) must behave exactly like the nested loop: with an empty
    // opposite side there are zero probed pairs, so the ON is never
    // evaluated and the query SUCCEEDS with no rows; with a non-empty
    // opposite side both modes error.
    let setup = "
        CREATE TABLE el (x INT, y INT); CREATE TABLE er (z INT);
        INSERT INTO el VALUES (1, 0);
    ";
    let sql = "SELECT * FROM el INNER JOIN er ON el.x / el.y = er.z";
    assert_join_differential(Dialect::Cockroach, setup, sql);
    let mut db = db_with(Dialect::Cockroach, JoinMode::Auto, setup);
    assert_eq!(db.query_sql(sql).unwrap().rows.len(), 0);

    let populated = format!("{setup} INSERT INTO er VALUES (3);");
    assert_join_differential(Dialect::Cockroach, &populated, sql);
    let mut db = db_with(Dialect::Cockroach, JoinMode::Auto, &populated);
    assert!(db.query_sql(sql).is_err(), "probed pair must still error");
}

#[test]
fn erroring_residuals_keep_nested_loop_semantics() {
    // A residual conjunct ahead of the key in the ON conjunction is
    // evaluated by the nested loop on every probed pair — including
    // key-mismatched ones — so it can error (integer overflow) where a
    // hash join that skips those pairs would not. Key recognition stops
    // at the first residual conjunct, so this shape must run identically
    // (here: error in both modes).
    let setup = "
        CREATE TABLE ol (a INT, big INT); CREATE TABLE orr (a INT);
        INSERT INTO ol VALUES (1, 0), (99, 9223372036854775807);
        INSERT INTO orr VALUES (1);
    ";
    let sql = "SELECT * FROM ol INNER JOIN orr ON ol.big + 1 > 0 AND ol.a = orr.a";
    assert_join_differential(Dialect::Sqlite, setup, sql);
    let mut db = db_with(Dialect::Sqlite, JoinMode::Auto, setup);
    assert!(db.query_sql(sql).is_err(), "overflow must surface");

    // Key first, residual second: nested-loop short-circuit provably
    // skips the residual on key-false pairs, so the hash join applies —
    // but only while no NULL key is present (NULL does not short-circuit
    // AND); with a NULL key the executor must fall back.
    let key_first = "SELECT * FROM ol INNER JOIN orr ON ol.a = orr.a AND ol.big + 1 > 0";
    assert_join_differential(Dialect::Sqlite, setup, key_first);
    let null_setup = format!("{setup} INSERT INTO ol VALUES (NULL, 9223372036854775807);");
    assert_join_differential(Dialect::Sqlite, &null_setup, key_first);
    let mut db = db_with(Dialect::Sqlite, JoinMode::Auto, &null_setup);
    assert!(
        db.query_sql(key_first).is_err(),
        "NULL-keyed pair still reaches the erroring residual"
    );
    assert!(db
        .coverage()
        .hit_points()
        .contains(&"exec::hash_join_fallback"));
}

#[test]
fn seeded_value_grid_differential() {
    // A deterministic pseudo-random grid of int/real/text/null keys on
    // both sides, joined under every kind — a broader net than the
    // hand-written cases.
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };
    let lit = |x: i64| match x % 5 {
        0 => "NULL".to_string(),
        1 | 2 => format!("{}", x % 7),
        3 => format!("{}.5", x % 4),
        _ => format!("'s{}'", x % 3),
    };
    let mut l_rows = Vec::new();
    let mut r_rows = Vec::new();
    for _ in 0..25 {
        l_rows.push(format!("({}, {})", lit(next()), lit(next())));
        r_rows.push(format!("({}, {})", lit(next()), lit(next())));
    }
    let setup = format!(
        "CREATE TABLE gl (k, v); CREATE TABLE gr (k, v);
         INSERT INTO gl VALUES {};
         INSERT INTO gr VALUES {};",
        l_rows.join(","),
        r_rows.join(",")
    );
    for kind in ["INNER", "LEFT", "RIGHT", "FULL"] {
        for on in [
            "gl.k = gr.k",
            "gl.k = gr.k AND gl.v = gr.v",
            "gl.k = gr.k AND gl.v <> gr.v",
        ] {
            let sql = format!("SELECT * FROM gl {kind} JOIN gr ON {on}");
            assert_join_differential(Dialect::Sqlite, &setup, &sql);
        }
    }
}
