//! A broad battery of SQL semantics checks for CoddDB — three-valued
//! logic truth tables, set-operation edge cases, nested views and CTE
//! chains, DML corner cases, cast matrices and dialect differences.
//! These pin down exactly the behaviours the oracles rely on.

use coddb::value::Value;
use coddb::{Database, Dialect, Error};

fn db() -> Database {
    Database::new(Dialect::Sqlite)
}

fn scalar(db: &mut Database, sql: &str) -> Value {
    let rel = db.query_sql(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    rel.scalar()
        .unwrap_or_else(|| panic!("not scalar: {sql}"))
        .clone()
}

// ---------------------------------------------------------------------------
// Three-valued logic.
// ---------------------------------------------------------------------------

#[test]
fn and_or_not_truth_tables() {
    let mut db = db();
    // (lhs, rhs, AND, OR) with 1 = TRUE, 0 = FALSE, NULL = unknown.
    let cases = [
        ("1", "1", Value::Int(1), Value::Int(1)),
        ("1", "0", Value::Int(0), Value::Int(1)),
        ("0", "0", Value::Int(0), Value::Int(0)),
        ("1", "NULL", Value::Null, Value::Int(1)),
        ("0", "NULL", Value::Int(0), Value::Null),
        ("NULL", "NULL", Value::Null, Value::Null),
    ];
    for (a, b, and, or) in cases {
        assert_eq!(
            scalar(&mut db, &format!("SELECT {a} AND {b}")),
            and,
            "{a} AND {b}"
        );
        assert_eq!(
            scalar(&mut db, &format!("SELECT {b} AND {a}")),
            and,
            "{b} AND {a}"
        );
        assert_eq!(
            scalar(&mut db, &format!("SELECT {a} OR {b}")),
            or,
            "{a} OR {b}"
        );
        assert_eq!(
            scalar(&mut db, &format!("SELECT {b} OR {a}")),
            or,
            "{b} OR {a}"
        );
    }
    assert_eq!(scalar(&mut db, "SELECT NOT NULL"), Value::Null);
    assert_eq!(scalar(&mut db, "SELECT NOT 0"), Value::Int(1));
}

#[test]
fn comparison_null_propagation() {
    let mut db = db();
    for op in ["=", "<>", "<", "<=", ">", ">="] {
        assert_eq!(scalar(&mut db, &format!("SELECT 1 {op} NULL")), Value::Null);
        assert_eq!(
            scalar(&mut db, &format!("SELECT NULL {op} NULL")),
            Value::Null
        );
    }
    // IS / IS NOT are null-safe.
    assert_eq!(scalar(&mut db, "SELECT NULL IS NULL"), Value::Int(1));
    assert_eq!(scalar(&mut db, "SELECT 1 IS NULL"), Value::Int(0));
    assert_eq!(scalar(&mut db, "SELECT NULL IS 1"), Value::Int(0));
    assert_eq!(scalar(&mut db, "SELECT 2 IS 2"), Value::Int(1));
    assert_eq!(scalar(&mut db, "SELECT 2 IS NOT 3"), Value::Int(1));
}

#[test]
fn between_is_sugar_for_two_comparisons() {
    let mut db = db();
    assert_eq!(scalar(&mut db, "SELECT 5 BETWEEN 1 AND 9"), Value::Int(1));
    assert_eq!(scalar(&mut db, "SELECT 0 BETWEEN 1 AND 9"), Value::Int(0));
    assert_eq!(
        scalar(&mut db, "SELECT 5 NOT BETWEEN 1 AND 9"),
        Value::Int(0)
    );
    // NULL bound makes the result unknown unless decided by the other arm.
    assert_eq!(scalar(&mut db, "SELECT 5 BETWEEN NULL AND 9"), Value::Null);
    assert_eq!(
        scalar(&mut db, "SELECT 10 BETWEEN NULL AND 9"),
        Value::Int(0)
    );
    assert_eq!(scalar(&mut db, "SELECT NULL BETWEEN 1 AND 9"), Value::Null);
}

#[test]
fn in_list_null_semantics() {
    let mut db = db();
    assert_eq!(scalar(&mut db, "SELECT 2 IN (1, 2, 3)"), Value::Int(1));
    assert_eq!(scalar(&mut db, "SELECT 9 IN (1, 2, 3)"), Value::Int(0));
    assert_eq!(scalar(&mut db, "SELECT 9 IN (1, NULL)"), Value::Null);
    assert_eq!(scalar(&mut db, "SELECT 1 IN (1, NULL)"), Value::Int(1));
    assert_eq!(scalar(&mut db, "SELECT NULL IN (1, 2)"), Value::Null);
    assert_eq!(scalar(&mut db, "SELECT 9 NOT IN (1, NULL)"), Value::Null);
    assert_eq!(scalar(&mut db, "SELECT 1 NOT IN (1, NULL)"), Value::Int(0));
}

// ---------------------------------------------------------------------------
// Relational features.
// ---------------------------------------------------------------------------

#[test]
fn view_on_view_expands_recursively() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2), (3), (4);
         CREATE VIEW big (x) AS SELECT v FROM t WHERE v >= 2;
         CREATE VIEW bigger (y) AS SELECT x FROM big WHERE x >= 3",
    )
    .unwrap();
    assert_eq!(
        scalar(&mut db, "SELECT COUNT(*) FROM bigger"),
        Value::Int(2)
    );
    assert_eq!(scalar(&mut db, "SELECT MIN(y) FROM bigger"), Value::Int(3));
}

#[test]
fn cte_chain_sees_previous_ctes() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2)")
        .unwrap();
    assert_eq!(
        scalar(
            &mut db,
            "WITH a AS (SELECT v + 1 AS x FROM t), \
                  b AS (SELECT x * 10 AS y FROM a) \
             SELECT SUM(y) FROM b"
        ),
        Value::Int(50)
    );
}

#[test]
fn cte_shadows_table_of_same_name() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (100)")
        .unwrap();
    assert_eq!(
        scalar(&mut db, "WITH t (v) AS (VALUES (1)) SELECT v FROM t"),
        Value::Int(1),
        "the CTE wins over the base table"
    );
}

#[test]
fn subquery_sees_outer_ctes() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2)")
        .unwrap();
    assert_eq!(
        scalar(
            &mut db,
            "WITH w (x) AS (VALUES (2)) \
             SELECT COUNT(*) FROM t WHERE t.v IN (SELECT x FROM w)"
        ),
        Value::Int(1)
    );
}

#[test]
fn set_ops_with_empty_sides() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1)")
        .unwrap();
    let q = db
        .query_sql("SELECT v FROM t WHERE v > 9 UNION SELECT v FROM t")
        .unwrap();
    assert_eq!(q.row_count(), 1);
    let q = db
        .query_sql("SELECT v FROM t EXCEPT SELECT v FROM t")
        .unwrap();
    assert!(q.is_empty());
    let q = db
        .query_sql("SELECT v FROM t INTERSECT SELECT v FROM t WHERE v > 9")
        .unwrap();
    assert!(q.is_empty());
}

#[test]
fn set_op_arity_mismatch_is_expected_error() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (1, 2)")
        .unwrap();
    let err = db
        .query_sql("SELECT a, b FROM t UNION SELECT a FROM t")
        .unwrap_err();
    assert_eq!(err.severity(), coddb::Severity::Expected);
}

#[test]
fn union_dedup_treats_null_rows_as_identical() {
    let mut db = db();
    let q = db.query_sql("SELECT NULL UNION SELECT NULL").unwrap();
    assert_eq!(
        q.row_count(),
        1,
        "set-semantics UNION collapses NULL duplicates"
    );
    let q = db.query_sql("SELECT NULL UNION ALL SELECT NULL").unwrap();
    assert_eq!(q.row_count(), 2);
}

#[test]
fn cross_join_with_on_acts_as_inner() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE a (v INT); CREATE TABLE b (v INT);
         INSERT INTO a VALUES (1), (2); INSERT INTO b VALUES (2), (3)",
    )
    .unwrap();
    let q = db
        .query_sql("SELECT * FROM a CROSS JOIN b ON a.v = b.v")
        .unwrap();
    assert_eq!(
        q.row_count(),
        1,
        "Listing-8 style CROSS JOIN ... ON filters pairs"
    );
}

#[test]
fn join_on_null_condition_drops_pair() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE a (v INT); CREATE TABLE b (v INT);
         INSERT INTO a VALUES (1); INSERT INTO b VALUES (NULL)",
    )
    .unwrap();
    let inner = db
        .query_sql("SELECT * FROM a INNER JOIN b ON a.v = b.v")
        .unwrap();
    assert!(inner.is_empty(), "unknown ON is not a match");
    let left = db
        .query_sql("SELECT * FROM a LEFT JOIN b ON a.v = b.v")
        .unwrap();
    assert_eq!(left.rows, vec![vec![Value::Int(1), Value::Null]]);
}

#[test]
fn table_wildcard_projects_one_side() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE a (x INT); CREATE TABLE b (y INT, z INT);
         INSERT INTO a VALUES (1); INSERT INTO b VALUES (2, 3)",
    )
    .unwrap();
    let q = db.query_sql("SELECT b.* FROM a CROSS JOIN b").unwrap();
    assert_eq!(q.columns, vec!["y", "z"]);
    assert_eq!(q.rows, vec![vec![Value::Int(2), Value::Int(3)]]);
    assert!(matches!(
        db.query_sql("SELECT missing.* FROM a CROSS JOIN b"),
        Err(Error::Catalog(_))
    ));
}

// ---------------------------------------------------------------------------
// DML corners.
// ---------------------------------------------------------------------------

#[test]
fn insert_with_column_subset_fills_nulls() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (a INT, b TEXT, c REAL)")
        .unwrap();
    db.execute_sql("INSERT INTO t (c, a) VALUES (1.5, 7)")
        .unwrap();
    let q = db.query_sql("SELECT a, b, c FROM t").unwrap();
    assert_eq!(
        q.rows,
        vec![vec![Value::Int(7), Value::Null, Value::Real(1.5)]]
    );
}

#[test]
fn insert_arity_mismatch_is_expected_error() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (a INT, b INT)").unwrap();
    let err = db.execute_sql("INSERT INTO t VALUES (1)").unwrap_err();
    assert_eq!(err.severity(), coddb::Severity::Expected);
    let err = db
        .execute_sql("INSERT INTO t (a) VALUES (1, 2)")
        .unwrap_err();
    assert_eq!(err.severity(), coddb::Severity::Expected);
}

#[test]
fn update_sets_evaluate_against_pre_state() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (1, 10), (2, 20)")
        .unwrap();
    // Swap-style update: b reads the pre-update a.
    db.execute_sql("UPDATE t SET a = b, b = a").unwrap();
    let q = db.query_sql("SELECT a, b FROM t ORDER BY a").unwrap();
    assert_eq!(
        q.rows,
        vec![
            vec![Value::Int(10), Value::Int(1)],
            vec![Value::Int(20), Value::Int(2)],
        ]
    );
}

#[test]
fn delete_without_where_empties_table() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2), (3)")
        .unwrap();
    let out = db.execute_sql("DELETE FROM t").unwrap();
    assert_eq!(out[0].affected(), Some(3));
    assert_eq!(scalar(&mut db, "SELECT COUNT(*) FROM t"), Value::Int(0));
}

#[test]
fn dml_on_views_is_rejected() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1);
         CREATE VIEW w (v) AS SELECT v FROM t",
    )
    .unwrap();
    assert!(db.execute_sql("INSERT INTO w VALUES (2)").is_err());
    assert!(db.execute_sql("DELETE FROM w").is_err());
    assert!(db.execute_sql("UPDATE w SET v = 3").is_err());
}

#[test]
fn drop_table_then_query_errors() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT)").unwrap();
    db.execute_sql("DROP TABLE t").unwrap();
    assert!(matches!(
        db.query_sql("SELECT * FROM t"),
        Err(Error::Catalog(_))
    ));
    assert!(db.execute_sql("DROP TABLE IF EXISTS t").is_ok());
}

// ---------------------------------------------------------------------------
// Casts and functions.
// ---------------------------------------------------------------------------

#[test]
fn cast_matrix_lenient() {
    let mut db = db();
    assert_eq!(
        scalar(&mut db, "SELECT CAST('12abc' AS INT)"),
        Value::Int(12)
    );
    assert_eq!(scalar(&mut db, "SELECT CAST(3.9 AS INT)"), Value::Int(3));
    assert_eq!(scalar(&mut db, "SELECT CAST(7 AS REAL)"), Value::Real(7.0));
    assert_eq!(
        scalar(&mut db, "SELECT CAST(42 AS TEXT)"),
        Value::Text("42".into())
    );
    assert_eq!(scalar(&mut db, "SELECT CAST(NULL AS INT)"), Value::Null);
    assert_eq!(
        scalar(&mut db, "SELECT CAST('true' AS BOOLEAN)"),
        Value::Bool(true)
    );
}

#[test]
fn cast_matrix_strict() {
    let mut db = Database::new(Dialect::Cockroach);
    assert_eq!(scalar(&mut db, "SELECT CAST('12' AS INT)"), Value::Int(12));
    assert!(db.query_sql("SELECT CAST('12abc' AS INT)").is_err());
    assert!(db.query_sql("SELECT CAST('x' AS REAL)").is_err());
    assert_eq!(
        scalar(&mut db, "SELECT CAST(0 AS BOOLEAN)"),
        Value::Bool(false)
    );
}

#[test]
fn function_arity_errors_are_expected() {
    let mut db = db();
    for sql in [
        "SELECT LENGTH()",
        "SELECT LENGTH('a', 'b')",
        "SELECT ABS()",
        "SELECT NULLIF(1)",
        "SELECT IIF(1, 2)",
        "SELECT COALESCE()",
        "SELECT VERSION(1)",
    ] {
        let err = db.query_sql(sql).unwrap_err();
        assert_eq!(err.severity(), coddb::Severity::Expected, "{sql}");
    }
}

#[test]
fn null_propagation_through_functions() {
    let mut db = db();
    for sql in [
        "SELECT LENGTH(NULL)",
        "SELECT ABS(NULL)",
        "SELECT UPPER(NULL)",
        "SELECT ROUND(NULL)",
        "SELECT SIGN(NULL)",
        "SELECT INSTR(NULL, 'a')",
        "SELECT SUBSTR(NULL, 1)",
        "SELECT NULL || 'x'",
    ] {
        assert_eq!(scalar(&mut db, sql), Value::Null, "{sql}");
    }
}

#[test]
fn aggregate_misuse_is_an_expected_error() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1)")
        .unwrap();
    let err = db
        .query_sql("SELECT v FROM t WHERE COUNT(*) > 0")
        .unwrap_err();
    assert_eq!(err.severity(), coddb::Severity::Expected);
}

// ---------------------------------------------------------------------------
// Dialect differences the generators rely on.
// ---------------------------------------------------------------------------

#[test]
fn concat_requires_text_only_under_strict() {
    let mut lenient = Database::new(Dialect::Mysql);
    assert_eq!(
        scalar(&mut lenient, "SELECT 1 || 2"),
        Value::Text("12".into())
    );
    let mut strict = Database::new(Dialect::Duckdb);
    assert!(matches!(
        strict.query_sql("SELECT 1 || 2"),
        Err(Error::Type(_))
    ));
    assert_eq!(
        strict.query_sql("SELECT 'a' || 'b'").unwrap().scalar(),
        Some(&Value::Text("ab".into()))
    );
}

#[test]
fn boolean_literals_per_dialect() {
    // Comparisons yield INTEGER on flexible dialects, BOOLEAN on strict.
    let mut sqlite = Database::new(Dialect::Sqlite);
    assert_eq!(scalar(&mut sqlite, "SELECT 1 < 2"), Value::Int(1));
    let mut crdb = Database::new(Dialect::Cockroach);
    assert_eq!(scalar(&mut crdb, "SELECT 1 < 2"), Value::Bool(true));
}

#[test]
fn version_strings_differ_per_dialect() {
    let mut seen = std::collections::BTreeSet::new();
    for d in Dialect::ALL {
        let mut db = Database::new(d);
        let v = scalar(&mut db, "SELECT VERSION()");
        match v {
            Value::Text(s) => assert!(seen.insert(s)),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(seen.len(), 5);
}

#[test]
fn mod_and_division_corners() {
    let mut db = db();
    assert_eq!(scalar(&mut db, "SELECT 7 % 3"), Value::Int(1));
    assert_eq!(scalar(&mut db, "SELECT -7 % 3"), Value::Int(-1));
    assert_eq!(scalar(&mut db, "SELECT 7 % 0"), Value::Null, "SQLite: NULL");
    assert_eq!(
        scalar(&mut db, "SELECT -9223372036854775807 - 1"),
        Value::Int(i64::MIN)
    );
    let err = db
        .query_sql("SELECT (-9223372036854775807 - 1) / -1")
        .unwrap_err();
    assert_eq!(
        err.severity(),
        coddb::Severity::Expected,
        "i64::MIN / -1 overflows"
    );
}

#[test]
fn order_by_desc_with_nulls_first_total_order() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (2), (NULL), (1)")
        .unwrap();
    let asc = db.query_sql("SELECT v FROM t ORDER BY v").unwrap();
    assert_eq!(
        asc.rows,
        vec![vec![Value::Null], vec![Value::Int(1)], vec![Value::Int(2)]]
    );
    let desc = db.query_sql("SELECT v FROM t ORDER BY v DESC").unwrap();
    assert_eq!(
        desc.rows,
        vec![vec![Value::Int(2)], vec![Value::Int(1)], vec![Value::Null]]
    );
}

#[test]
fn limit_negative_and_zero() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2)")
        .unwrap();
    assert_eq!(
        db.query_sql("SELECT v FROM t LIMIT 0").unwrap().row_count(),
        0
    );
    assert_eq!(
        db.query_sql("SELECT v FROM t LIMIT -1")
            .unwrap()
            .row_count(),
        0
    );
    assert_eq!(
        db.query_sql("SELECT v FROM t LIMIT 99")
            .unwrap()
            .row_count(),
        2
    );
    assert!(db.query_sql("SELECT v FROM t LIMIT 'x'").is_err());
}

#[test]
fn queries_executed_counter_advances() {
    let mut db = db();
    let before = db.queries_executed();
    db.execute_sql("CREATE TABLE t (v INT)").unwrap();
    db.execute_sql("INSERT INTO t VALUES (1)").unwrap();
    db.query_sql("SELECT * FROM t").unwrap();
    assert!(db.queries_executed() >= before + 3);
}

#[test]
fn group_by_group_key_appears_once_per_group() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE t (k TEXT, v INT);
         INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 3), (NULL, 4), (NULL, 5)",
    )
    .unwrap();
    let q = db
        .query_sql("SELECT k, SUM(v) FROM t GROUP BY k ORDER BY 2")
        .unwrap();
    // NULL forms its own group.
    assert_eq!(q.row_count(), 3);
    assert!(q
        .rows
        .iter()
        .any(|r| r[0] == Value::Null && r[1] == Value::Int(9)));
}

#[test]
fn having_without_group_by_filters_single_group() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2)")
        .unwrap();
    let q = db
        .query_sql("SELECT COUNT(*) FROM t HAVING COUNT(*) > 5")
        .unwrap();
    assert!(q.is_empty());
    let q = db
        .query_sql("SELECT COUNT(*) FROM t HAVING COUNT(*) = 2")
        .unwrap();
    assert_eq!(q.rows, vec![vec![Value::Int(2)]]);
}
