//! Differential testing of the zero-copy scan pipeline: every statement
//! runs through both scan modes — [`ScanMode::Shared`] (rows are
//! refcount bumps of table storage, FROM results reused across subquery
//! re-instantiations) and [`ScanMode::Cloning`] (the pre-shared-row
//! pipeline: deep clone per scanned row, rematerialize per
//! instantiation) — and must produce byte-identical results *and*
//! identical coverage bitsets, across DML-interleaved statements,
//! duplicate rows and every dialect.

use coddb::{Database, Dialect, ScanMode};

/// A DML-interleaved script: SELECT shapes that stress row sharing
/// (scans, joins over duplicates, correlated and non-correlated
/// subqueries, CTE reuse, sorting on shared rows) alternate with
/// INSERT/UPDATE/DELETE that mutate the very rows earlier statements
/// shared — copy-on-write must keep each statement's view isolated.
const SCRIPT: &[&str] = &[
    "CREATE TABLE t (a INT, b TEXT, c REAL)",
    "CREATE TABLE u (a INT, b TEXT)",
    // Duplicate rows on purpose: shared scans must not collapse them.
    "INSERT INTO t VALUES (1, 'x', 1.5), (1, 'x', 1.5), (2, 'y', 2.5), \
     (2, 'y', 2.5), (3, 'z', 3.5), (NULL, 'n', 0.5)",
    "INSERT INTO u VALUES (1, 'x'), (2, 'q'), (2, 'q'), (4, 'w'), (NULL, 'n')",
    "SELECT * FROM t",
    "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY 1",
    "SELECT DISTINCT a, b FROM t ORDER BY a, b",
    "SELECT * FROM t INNER JOIN u ON t.a = u.a",
    "SELECT * FROM t LEFT JOIN u ON t.a = u.a ORDER BY t.c",
    // Correlated subquery: per-outer-key memo + shared FROM result.
    "SELECT a, (SELECT COUNT(*) FROM u WHERE u.a = t.a) FROM t ORDER BY a",
    // Non-correlated subquery: full result memo.
    "SELECT COUNT(*) FROM t WHERE a IN (SELECT a FROM u WHERE a > 1)",
    "SELECT a FROM t WHERE c < (SELECT 2.6) ORDER BY a",
    // CTE scanned twice (reuse counter must advance identically).
    "WITH w (k) AS (SELECT a FROM u WHERE a > 1) \
     SELECT * FROM w INNER JOIN w AS w2 ON w.k = w2.k",
    "SELECT a FROM t UNION SELECT a FROM u ORDER BY 1",
    // DML between the SELECTs: COW writes against previously shared rows.
    "UPDATE t SET b = 'updated' WHERE a = 1",
    "SELECT * FROM t ORDER BY a, c",
    "DELETE FROM u WHERE a = 2",
    "SELECT COUNT(*) FROM u",
    "INSERT INTO t VALUES (5, 'v', 5.5)",
    "SELECT a, (SELECT COUNT(*) FROM u WHERE u.a = t.a) FROM t ORDER BY a",
    "UPDATE t SET c = c + 1.0 WHERE a IN (SELECT a FROM u)",
    "SELECT * FROM t ORDER BY a, c",
    "DELETE FROM t WHERE a IS NULL",
    "SELECT COUNT(*) FROM t",
];

fn run_script(dialect: Dialect, mode: ScanMode) -> (Vec<String>, Vec<&'static str>) {
    let mut db = Database::new(dialect);
    db.set_scan_mode(mode);
    let mut outcomes = Vec::new();
    for sql in SCRIPT {
        let stmts = coddb::parser::parse_statements(sql).unwrap();
        for stmt in &stmts {
            // Errors must agree too (strict dialects reject some shapes).
            outcomes.push(match db.execute(stmt) {
                Ok(out) => format!("{out:?}"),
                Err(e) => format!("error: {e}"),
            });
        }
    }
    (outcomes, db.coverage().hit_points())
}

#[test]
fn shared_scans_match_cloning_scans_on_every_dialect() {
    for dialect in Dialect::ALL {
        let (shared, shared_cov) = run_script(dialect, ScanMode::Shared);
        let (cloning, cloning_cov) = run_script(dialect, ScanMode::Cloning);
        assert_eq!(shared.len(), cloning.len());
        for (i, (s, c)) in shared.iter().zip(cloning.iter()).enumerate() {
            assert_eq!(
                s,
                c,
                "scan modes disagree on {dialect:?} statement {i} ({:?})",
                SCRIPT.get(i)
            );
        }
        assert_eq!(
            shared_cov, cloning_cov,
            "coverage bitsets diverge between scan modes on {dialect:?}"
        );
    }
}

/// A snapshot taken before DML must keep its own row values: restore
/// brings back the exact pre-DML data even though the snapshot shares
/// row storage with the live catalog (copy-on-write isolation).
#[test]
fn snapshot_restore_is_isolated_from_cow_writes() {
    let mut db = Database::new(Dialect::Sqlite);
    db.execute_sql(
        "CREATE TABLE t (a INT, b TEXT);
         INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')",
    )
    .unwrap();
    let before = db.query_sql("SELECT * FROM t ORDER BY a").unwrap();
    let snap = db.snapshot();
    db.execute_sql("UPDATE t SET b = 'mutated' WHERE a >= 2")
        .unwrap();
    db.execute_sql("DELETE FROM t WHERE a = 1").unwrap();
    let mutated = db.query_sql("SELECT * FROM t ORDER BY a").unwrap();
    assert_ne!(before.rows, mutated.rows);
    db.restore(snap);
    let restored = db.query_sql("SELECT * FROM t ORDER BY a").unwrap();
    assert_eq!(before.rows, restored.rows, "snapshot must be COW-isolated");
}

/// An in-flight query result must not observe a later UPDATE through
/// shared storage: the result rows were handed out as refcount bumps of
/// table rows, and the UPDATE must copy, not mutate in place.
#[test]
fn query_results_are_isolated_from_later_dml() {
    let mut db = Database::new(Dialect::Sqlite);
    db.execute_sql("CREATE TABLE t (a INT, b TEXT); INSERT INTO t VALUES (1, 'orig')")
        .unwrap();
    let held = db.query_sql("SELECT * FROM t").unwrap();
    db.execute_sql("UPDATE t SET b = 'changed'").unwrap();
    assert_eq!(held.rows[0][1], coddb::Value::Text("orig".into()));
    let fresh = db.query_sql("SELECT * FROM t").unwrap();
    assert_eq!(fresh.rows[0][1], coddb::Value::Text("changed".into()));
}
