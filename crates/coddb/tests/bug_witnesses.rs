//! One witness per injected bug mutant.
//!
//! Each test sets up a database state and a query that *triggers* the
//! mutant, and asserts that the buggy engine diverges from the clean
//! engine exactly the way the modelled bug did in the paper (wrong rows
//! for logic bugs, `Error::Internal` / `Error::Crash` / `Error::Hang` for
//! the rest). These witnesses double as executable documentation of every
//! trigger condition, and the oracle crate's tests build on them.

use coddb::bugs::BugRegistry;
use coddb::value::Value;
use coddb::{BugId, Database, Dialect, Error};

/// Build a pair (clean, buggy) of databases with identical state.
fn pair(bug: BugId, setup: &str) -> (Database, Database) {
    let dialect = bug.dialect();
    let mut clean = Database::new(dialect);
    let mut buggy = Database::with_bugs(dialect, BugRegistry::only(bug));
    clean
        .execute_sql(setup)
        .unwrap_or_else(|e| panic!("setup failed on clean: {e}"));
    buggy
        .execute_sql(setup)
        .unwrap_or_else(|e| panic!("setup failed on buggy: {e}"));
    (clean, buggy)
}

/// Assert that a logic bug makes `sql` return different results.
fn assert_diverges(bug: BugId, setup: &str, sql: &str) {
    let (mut clean, mut buggy) = pair(bug, setup);
    let c = clean
        .query_sql(sql)
        .unwrap_or_else(|e| panic!("clean failed on {sql}: {e}"));
    let b = buggy
        .query_sql(sql)
        .unwrap_or_else(|e| panic!("buggy failed on {sql}: {e}"));
    assert!(
        !c.multiset_eq(&b),
        "{bug:?} did not diverge on {sql}\nclean: {c:?}\nbuggy: {b:?}"
    );
}

/// Assert that `sql` raises the given error category on the buggy engine
/// while succeeding on the clean one.
fn assert_error(bug: BugId, setup: &str, sql: &str, want: fn(&Error) -> bool) {
    let (mut clean, mut buggy) = pair(bug, setup);
    clean
        .execute_sql(sql)
        .unwrap_or_else(|e| panic!("clean failed on {sql}: {e}"));
    let err = buggy
        .execute_sql(sql)
        .expect_err("buggy engine should error");
    assert!(want(&err), "{bug:?}: unexpected error {err}");
    assert_eq!(err.severity(), coddb::Severity::BugSignal);
}

// ===========================================================================
// SQLite logic bugs
// ===========================================================================

#[test]
fn sqlite_agg_subquery_indexed_where() {
    // Listing 1 of the paper, verbatim.
    let setup = "CREATE TABLE t0 (c0);
        INSERT INTO t0 (c0) VALUES (1);
        CREATE INDEX i0 ON t0 (c0 > 0);
        CREATE VIEW v0 (c0) AS SELECT AVG(t0.c0) FROM t0 GROUP BY 1 > t0.c0";
    let o = "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE \
             (SELECT COUNT(*) FROM v0 WHERE v0.c0 BETWEEN 0 AND 0)";
    let (mut clean, mut buggy) = pair(BugId::SqliteAggSubqueryIndexedWhere, setup);
    assert_eq!(clean.query_sql(o).unwrap().scalar(), Some(&Value::Int(0)));
    // The buggy engine reproduces the paper's wrong answer: 1.
    assert_eq!(buggy.query_sql(o).unwrap().scalar(), Some(&Value::Int(1)));
    // The folded query is immune (no subquery left to mistrigger).
    let f = "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE 0";
    assert_eq!(buggy.query_sql(f).unwrap().scalar(), Some(&Value::Int(0)));
}

#[test]
fn sqlite_exists_join_on_empty() {
    assert_diverges(
        BugId::SqliteExistsJoinOnEmpty,
        "CREATE TABLE t0 (c0 INT); CREATE TABLE t1 (c0 INT);
         INSERT INTO t0 VALUES (1); INSERT INTO t1 VALUES (2)",
        "SELECT * FROM t0 CROSS JOIN t1 ON (EXISTS (SELECT c0 FROM t1 WHERE FALSE))",
    );
}

#[test]
fn sqlite_join_on_view_left_true() {
    assert_diverges(
        BugId::SqliteJoinOnViewLeftTrue,
        "CREATE TABLE t0 (c0 INT); INSERT INTO t0 VALUES (1), (2);
         CREATE TABLE b (x INT); INSERT INTO b VALUES (10);
         CREATE VIEW v0 (x) AS SELECT x FROM b",
        "SELECT * FROM t0 LEFT JOIN v0 ON v0.x = 99",
    );
}

#[test]
fn sqlite_indexed_cmp_null_true() {
    assert_diverges(
        BugId::SqliteIndexedCmpNullTrue,
        "CREATE TABLE t (c INT); INSERT INTO t VALUES (1), (NULL);
         CREATE INDEX ic ON t (c)",
        "SELECT * FROM t WHERE c > 0",
    );
}

#[test]
fn sqlite_between_text_affinity() {
    assert_diverges(
        BugId::SqliteBetweenTextAffinity,
        "CREATE TABLE t (c); INSERT INTO t VALUES ('5')",
        "SELECT * FROM t WHERE c BETWEEN 1 AND 9",
    );
}

#[test]
fn sqlite_like_case_fold() {
    assert_diverges(
        BugId::SqliteLikeCaseFold,
        "CREATE TABLE t (s TEXT); INSERT INTO t VALUES ('ABC')",
        "SELECT * FROM t WHERE s LIKE 'abc'",
    );
}

// ===========================================================================
// MySQL
// ===========================================================================

#[test]
fn mysql_text_int_compare_where() {
    // Numeric coercion says '2' > 5 is FALSE; the byte/class comparison of
    // the bug says TEXT > INT, i.e. TRUE.
    assert_diverges(
        BugId::MysqlTextIntCompareWhere,
        "CREATE TABLE t (v TEXT); INSERT INTO t VALUES ('2')",
        "SELECT * FROM t WHERE v > 5",
    );
}

#[test]
fn mysql_update_delete_cross_type_comparison_is_semantic_error() {
    // Not a mutant: a MySQL-dialect rule modelling the paper's §4.2
    // observation that DQE hits a semantic error where SELECT works.
    let mut db = Database::new(Dialect::Mysql);
    db.execute_sql("CREATE TABLE t (v TEXT); INSERT INTO t VALUES ('2')")
        .unwrap();
    assert!(db.query_sql("SELECT * FROM t WHERE v > 5").is_ok());
    let err = db
        .execute_sql("UPDATE t SET v = '3' WHERE v > 5")
        .unwrap_err();
    assert!(matches!(err, Error::Type(_)), "{err}");
    let err = db.execute_sql("DELETE FROM t WHERE v > 5").unwrap_err();
    assert!(matches!(err, Error::Type(_)), "{err}");
}

#[test]
fn mysql_internal_union_type_unify() {
    assert_error(
        BugId::MysqlInternalUnionTypeUnify,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1)",
        "SELECT v FROM t UNION SELECT 'a'",
        |e| matches!(e, Error::Internal(_)),
    );
}

// ===========================================================================
// CockroachDB
// ===========================================================================

#[test]
fn cockroach_case_null_from_cte() {
    // Listing 7's mechanism: CASE WHEN NULL takes THEN only for rows read
    // through a CTE.
    assert_diverges(
        BugId::CockroachCaseNullFromCte,
        "CREATE TABLE t1 (v INT); INSERT INTO t1 VALUES (1)",
        "WITH t2 AS (SELECT 5 AS b) \
         SELECT CASE WHEN NULL THEN 1 ELSE 0 END FROM t1, t2",
    );
}

#[test]
fn cockroach_any_non_values_subquery() {
    assert_diverges(
        BugId::CockroachAnyNonValuesSubquery,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2), (3)",
        "SELECT 2 = ANY (SELECT v FROM t)",
    );
    // ... but ANY over a VALUES list stays correct, which is exactly what
    // the CODDTest folded query produces.
    let (mut clean, mut buggy) = pair(
        BugId::CockroachAnyNonValuesSubquery,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2), (3)",
    );
    let folded = "SELECT 2 = ANY (VALUES (1), (2), (3))";
    assert_eq!(
        clean.query_sql(folded).unwrap().rows,
        buggy.query_sql(folded).unwrap().rows
    );
}

#[test]
fn cockroach_avg_nested_reverse() {
    assert_diverges(
        BugId::CockroachAvgNestedReverse,
        "CREATE TABLE t (v REAL); INSERT INTO t VALUES (100000000.0), (7.0)",
        "SELECT (SELECT AVG(v) FROM t)",
    );
    // At top level (the auxiliary query position) AVG is computed
    // correctly, so CODDTest observes the divergence.
    let (mut clean, mut buggy) = pair(
        BugId::CockroachAvgNestedReverse,
        "CREATE TABLE t (v REAL); INSERT INTO t VALUES (100000000.0), (7.0)",
    );
    let aux = "SELECT AVG(v) FROM t";
    assert_eq!(
        clean.query_sql(aux).unwrap().rows,
        buggy.query_sql(aux).unwrap().rows
    );
}

#[test]
fn cockroach_in_bigint_value_list() {
    // Listing 9 of the paper.
    assert_diverges(
        BugId::CockroachInBigIntValueList,
        "CREATE TABLE t (c INT); INSERT INTO t VALUES (0)",
        "SELECT c FROM t WHERE c IN (0, 862827606027206657)",
    );
}

#[test]
fn cockroach_const_fold_not_between_null() {
    assert_diverges(
        BugId::CockroachConstFoldNotBetweenNull,
        "CREATE TABLE a (v INT); CREATE TABLE b (w INT);
         INSERT INTO a VALUES (1); INSERT INTO b VALUES (2)",
        "SELECT * FROM a INNER JOIN b ON TRUE WHERE a.v NOT BETWEEN a.v AND NULL",
    );
}

#[test]
fn cockroach_and_null_top_conjunct() {
    assert_diverges(
        BugId::CockroachAndNullTopConjunct,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1)",
        "SELECT * FROM t WHERE NULL AND v > 0",
    );
}

#[test]
fn cockroach_or_short_circuit_false() {
    assert_diverges(
        BugId::CockroachOrShortCircuitFalse,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1)",
        "SELECT * FROM t WHERE FALSE OR v > 0",
    );
}

#[test]
fn cockroach_internal_neg_mod() {
    assert_error(
        BugId::CockroachInternalNegMod,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (7)",
        "SELECT * FROM t WHERE (v % -3) = 1",
        |e| matches!(e, Error::Internal(_)),
    );
}

#[test]
fn cockroach_internal_full_join_wildcard() {
    assert_error(
        BugId::CockroachInternalFullJoinWildcard,
        "CREATE TABLE a (v INT); CREATE TABLE b (w INT);
         INSERT INTO a VALUES (1); INSERT INTO b VALUES (2)",
        "SELECT a.* FROM a FULL OUTER JOIN b ON a.v = b.w",
        |e| matches!(e, Error::Internal(_)),
    );
}

#[test]
fn cockroach_internal_intersect_null() {
    assert_error(
        BugId::CockroachInternalIntersectNull,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (NULL)",
        "SELECT v FROM t INTERSECT SELECT v FROM t",
        |e| matches!(e, Error::Internal(_)),
    );
}

#[test]
fn cockroach_internal_cast_text_int() {
    let mut clean = Database::new(Dialect::Cockroach);
    let mut buggy = Database::with_bugs(
        Dialect::Cockroach,
        BugRegistry::only(BugId::CockroachInternalCastTextInt),
    );
    // Clean strict engine: an expected conversion error.
    let e = clean.query_sql("SELECT CAST('12abc' AS INT)").unwrap_err();
    assert_eq!(e.severity(), coddb::Severity::Expected);
    // Buggy engine: internal error.
    let e = buggy.query_sql("SELECT CAST('12abc' AS INT)").unwrap_err();
    assert!(matches!(e, Error::Internal(_)), "{e}");
}

#[test]
fn cockroach_hang_cte_reuse() {
    assert_error(
        BugId::CockroachHangCteReuse,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1)",
        "WITH w AS (SELECT v FROM t) SELECT * FROM w AS a CROSS JOIN w AS b",
        |e| matches!(e, Error::Hang),
    );
}

#[test]
fn cockroach_hang_full_join_having() {
    assert_error(
        BugId::CockroachHangFullJoinHaving,
        "CREATE TABLE a (v INT); CREATE TABLE b (w INT);
         INSERT INTO a VALUES (1); INSERT INTO b VALUES (1)",
        "SELECT COUNT(*) FROM a FULL OUTER JOIN b ON a.v = b.w \
         GROUP BY a.v HAVING COUNT(*) >= 1",
        |e| matches!(e, Error::Hang),
    );
}

// ===========================================================================
// DuckDB
// ===========================================================================

#[test]
fn duckdb_subquery_bool_coerce() {
    assert_diverges(
        BugId::DuckdbSubqueryBoolCoerce,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1)",
        "SELECT * FROM t WHERE (SELECT TRUE) = TRUE",
    );
}

#[test]
fn duckdb_case_subquery_else() {
    assert_diverges(
        BugId::DuckdbCaseSubqueryElse,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1)",
        "SELECT CASE WHEN TRUE THEN (SELECT 7) ELSE 0 END FROM t",
    );
}

#[test]
fn duckdb_distinct_group_by_drop() {
    assert_diverges(
        BugId::DuckdbDistinctGroupByDrop,
        "CREATE TABLE t (k INT); INSERT INTO t VALUES (1), (2), (2), (3)",
        "SELECT DISTINCT k FROM t GROUP BY k",
    );
}

#[test]
fn duckdb_pushdown_left_join() {
    assert_diverges(
        BugId::DuckdbPushdownLeftJoin,
        "CREATE TABLE l (v INT); CREATE TABLE r (v INT);
         INSERT INTO l VALUES (1), (2); INSERT INTO r VALUES (2), (3)",
        "SELECT * FROM l LEFT JOIN r ON l.v = r.v WHERE r.v IS NULL",
    );
}

#[test]
fn duckdb_not_like_top_level() {
    assert_diverges(
        BugId::DuckdbNotLikeTopLevel,
        "CREATE TABLE t (s TEXT); INSERT INTO t VALUES ('abc'), ('xyz')",
        "SELECT * FROM t WHERE s NOT LIKE 'a%'",
    );
}

#[test]
fn duckdb_internal_overflow_add_proj() {
    // Listing 11 of the paper: an overflow in the projection surfaces as
    // an internal error instead of a clean one.
    let mut clean = Database::new(Dialect::Duckdb);
    let mut buggy = Database::with_bugs(
        Dialect::Duckdb,
        BugRegistry::only(BugId::DuckdbInternalOverflowAddProj),
    );
    let sql = "SELECT 9223372036854775807 + 1";
    let e = clean.query_sql(sql).unwrap_err();
    assert_eq!(e.severity(), coddb::Severity::Expected);
    let e = buggy.query_sql(sql).unwrap_err();
    assert!(matches!(e, Error::Internal(_)), "{e}");
    // In a WHERE clause the overflow is still the expected error — NoREC's
    // projection rewrite is what exposes the internal error (§4.2).
    buggy
        .execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1)")
        .unwrap();
    let e = buggy
        .query_sql("SELECT * FROM t WHERE (9223372036854775807 + 1) = v")
        .unwrap_err();
    assert_eq!(e.severity(), coddb::Severity::Expected);
}

#[test]
fn duckdb_internal_group_by_real_many() {
    assert_error(
        BugId::DuckdbInternalGroupByRealMany,
        "CREATE TABLE t (r REAL); INSERT INTO t VALUES (1.5), (2.5), (3.5)",
        "SELECT r, COUNT(*) FROM t GROUP BY r",
        |e| matches!(e, Error::Internal(_)),
    );
}

#[test]
fn duckdb_crash_iejoin_range() {
    assert_error(
        BugId::DuckdbCrashIEJoinRange,
        "CREATE TABLE a (v INT, w INT); CREATE TABLE b (v INT, w INT);
         INSERT INTO a VALUES (1, 10); INSERT INTO b VALUES (2, 0)",
        "SELECT * FROM a INNER JOIN b ON a.v < b.v AND a.w > b.w",
        |e| matches!(e, Error::Crash(_)),
    );
}

#[test]
fn duckdb_crash_iejoin_types() {
    assert_error(
        BugId::DuckdbCrashIEJoinTypes,
        "CREATE TABLE a (v INT); CREATE TABLE b (r REAL);
         INSERT INTO a VALUES (1); INSERT INTO b VALUES (2.5)",
        "SELECT * FROM a INNER JOIN b ON a.v < b.r",
        |e| matches!(e, Error::Crash(_)),
    );
}

#[test]
fn duckdb_hang_triple_join() {
    assert_error(
        BugId::DuckdbHangTripleJoin,
        "CREATE TABLE a (v INT); CREATE TABLE b (v INT);
         CREATE TABLE c (v INT); CREATE TABLE d (v INT);
         INSERT INTO a VALUES (1); INSERT INTO b VALUES (1);
         INSERT INTO c VALUES (1); INSERT INTO d VALUES (1)",
        "SELECT * FROM a INNER JOIN b ON a.v = b.v INNER JOIN c ON b.v = c.v \
         INNER JOIN d ON c.v = d.v",
        |e| matches!(e, Error::Hang),
    );
}

#[test]
fn duckdb_hang_distinct_union() {
    assert_error(
        BugId::DuckdbHangDistinctUnion,
        "CREATE TABLE a (v INT); CREATE TABLE b (v INT);
         INSERT INTO a VALUES (1); INSERT INTO b VALUES (2)",
        "SELECT DISTINCT v FROM a UNION SELECT v FROM b",
        |e| matches!(e, Error::Hang),
    );
}

#[test]
fn duckdb_hang_like_percents() {
    assert_error(
        BugId::DuckdbHangLikePercents,
        "CREATE TABLE t (s TEXT); INSERT INTO t VALUES ('abc')",
        "SELECT * FROM t WHERE s LIKE '%%%a'",
        |e| matches!(e, Error::Hang),
    );
}

// ===========================================================================
// TiDB
// ===========================================================================

#[test]
fn tidb_insert_select_version() {
    // Listing 6 of the paper.
    let setup = "CREATE TABLE t0 (c0 INT NOT NULL);
        INSERT INTO t0 (c0) VALUES (1);
        CREATE TABLE ot0 (c0 INT)";
    let (mut clean, mut buggy) = pair(BugId::TidbInsertSelectVersion, setup);
    let insert = "INSERT INTO ot0 SELECT t0.c0 AS c0 FROM t0 WHERE VERSION() >= t0.c0";
    clean.execute_sql(insert).unwrap();
    buggy.execute_sql(insert).unwrap();
    // VERSION() is a TEXT starting with a digit; numeric coercion makes it
    // >= 1, so the clean engine inserts the row. The buggy one drops it.
    assert_eq!(
        clean
            .query_sql("SELECT COUNT(*) FROM ot0")
            .unwrap()
            .scalar(),
        Some(&Value::Int(1))
    );
    assert_eq!(
        buggy
            .query_sql("SELECT COUNT(*) FROM ot0")
            .unwrap()
            .scalar(),
        Some(&Value::Int(0))
    );
    // The auxiliary query (query A in Listing 6) is unaffected.
    assert_eq!(
        buggy
            .query_sql("SELECT t0.c0 AS c0 FROM t0 WHERE VERSION() >= t0.c0")
            .unwrap()
            .row_count(),
        1
    );
}

#[test]
fn tidb_correlated_name_collision() {
    assert_diverges(
        BugId::TidbCorrelatedNameCollision,
        "CREATE TABLE t0 (c0 INT); CREATE TABLE t1 (c0 INT);
         INSERT INTO t0 VALUES (5); INSERT INTO t1 VALUES (1), (2)",
        "SELECT (SELECT MAX(c0) FROM t1) FROM t0",
    );
}

#[test]
fn tidb_avg_distinct_nested_zero() {
    assert_diverges(
        BugId::TidbAvgDistinctNestedZero,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1)",
        "SELECT (SELECT AVG(DISTINCT v) FROM t WHERE v > 100) IS NULL FROM t",
    );
}

#[test]
fn tidb_in_value_list_where() {
    // Listing 10's shape: wrong in WHERE ...
    assert_diverges(
        BugId::TidbInValueListWhere,
        "CREATE TABLE t0 (c0 INT); INSERT INTO t0 VALUES (1)",
        "SELECT t0.c0 FROM t0 WHERE t0.c0 IN (1)",
    );
    // ... but correct in the projection (which is why NoREC catches it and
    // DQE does not).
    let (mut clean, mut buggy) = pair(
        BugId::TidbInValueListWhere,
        "CREATE TABLE t0 (c0 INT); INSERT INTO t0 VALUES (1)",
    );
    let proj = "SELECT t0.c0 IN (1) FROM t0";
    assert_eq!(
        clean.query_sql(proj).unwrap().rows,
        buggy.query_sql(proj).unwrap().rows
    );
}

#[test]
fn tidb_is_null_top_level_inverted() {
    assert_diverges(
        BugId::TidbIsNullTopLevelInverted,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (NULL)",
        "SELECT * FROM t WHERE v IS NULL",
    );
}

#[test]
fn tidb_internal_like_escape() {
    assert_error(
        BugId::TidbInternalLikeEscape,
        "CREATE TABLE t (s TEXT); INSERT INTO t VALUES ('a')",
        "SELECT * FROM t WHERE s LIKE 'a\\'",
        |e| matches!(e, Error::Internal(_)),
    );
}

#[test]
fn tidb_internal_substr_negative() {
    assert_error(
        BugId::TidbInternalSubstrNegative,
        "CREATE TABLE t (s TEXT); INSERT INTO t VALUES ('hello')",
        "SELECT SUBSTR(s, -2) FROM t",
        |e| matches!(e, Error::Internal(_)),
    );
}

#[test]
fn tidb_internal_round_huge() {
    assert_error(
        BugId::TidbInternalRoundHuge,
        "CREATE TABLE t (v REAL); INSERT INTO t VALUES (1.23456)",
        "SELECT ROUND(v, 11) FROM t",
        |e| matches!(e, Error::Internal(_)),
    );
}

#[test]
fn tidb_internal_case_many_whens() {
    let whens: String = (0..9).map(|i| format!("WHEN {i} THEN {i} ")).collect();
    assert_error(
        BugId::TidbInternalCaseManyWhens,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (3)",
        &format!("SELECT CASE v {whens}ELSE -1 END FROM t"),
        |e| matches!(e, Error::Internal(_)),
    );
}

#[test]
fn tidb_internal_having_correlated() {
    assert_error(
        BugId::TidbInternalHavingCorrelated,
        "CREATE TABLE t (k INT, v INT); INSERT INTO t VALUES (1, 2), (1, 3)",
        "SELECT k FROM t GROUP BY k HAVING COUNT(*) > (SELECT 0)",
        |e| matches!(e, Error::Internal(_)),
    );
}

#[test]
fn tidb_internal_set_op_order_by() {
    assert_error(
        BugId::TidbInternalSetOpOrderBy,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1)",
        "SELECT v FROM t UNION SELECT 2 ORDER BY 1",
        |e| matches!(e, Error::Internal(_)),
    );
}

#[test]
fn sqlite_internal_concat_indexed_expr() {
    assert_error(
        BugId::SqliteInternalConcatIndexedExpr,
        "CREATE TABLE t (s TEXT, r REAL);
         INSERT INTO t VALUES ('a', 1.5);
         CREATE INDEX ix ON t (s || r)",
        "SELECT * FROM t INDEXED BY ix WHERE s LIKE 'a%'",
        |e| matches!(e, Error::Internal(_)),
    );
}

// ===========================================================================
// Cross-cutting invariants
// ===========================================================================

#[test]
fn every_logic_bug_dialect_profile_runs_clean_without_mutants() {
    // Enabling no bugs must keep all dialect engines consistent on a probe
    // workload, whatever the dialect quirks.
    for d in Dialect::ALL {
        let mut db = Database::new(d);
        db.execute_sql("CREATE TABLE probe (a INT, b TEXT)")
            .unwrap();
        db.execute_sql("INSERT INTO probe VALUES (1, 'x'), (2, 'y')")
            .unwrap();
        let n = db
            .query_sql("SELECT COUNT(*) FROM probe WHERE a > 0")
            .unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(2)), "dialect {d}");
    }
}

#[test]
fn logic_bugs_do_not_fire_outside_their_trigger() {
    // A buggy engine answers an unrelated probe exactly like a clean one.
    for bug in BugId::logic_bugs() {
        let setup = "CREATE TABLE zz (q INT); INSERT INTO zz VALUES (4)";
        let (mut clean, mut buggy) = pair(bug, setup);
        let probe = "SELECT q + 1 FROM zz";
        assert_eq!(
            clean.query_sql(probe).unwrap().rows,
            buggy.query_sql(probe).unwrap().rows,
            "{bug:?} fired on an unrelated query"
        );
    }
}
