//! Integration tests for the binding pass: name-resolution errors, outer
//! (correlated) references, bound/walk mode agreement, and regression
//! proofs that the context-sensitive bug hooks survive binding.

use coddb::bugs::{BugId, BugRegistry};
use coddb::{BindMode, Database, Dialect, Error};

fn db_with(setup: &str) -> Database {
    let mut db = Database::new(Dialect::Sqlite);
    db.execute_sql(setup).unwrap();
    db
}

#[test]
fn unknown_column_is_a_catalog_error_even_on_empty_tables() {
    // Binding is static: resolution failures surface once per query, with
    // or without rows to scan (real engines reject these at prepare time).
    let mut db = db_with("CREATE TABLE t0 (c0 INT)");
    for sql in ["SELECT nope FROM t0", "SELECT * FROM t0 WHERE nope = 1"] {
        match db.query_sql(sql) {
            Err(Error::Catalog(m)) => assert!(m.contains("no such column"), "{sql}: {m}"),
            other => panic!("{sql}: expected catalog error, got {other:?}"),
        }
    }
    // ORDER BY keys bind lazily (only when there are rows to sort).
    db.execute_sql("INSERT INTO t0 VALUES (1)").unwrap();
    assert!(matches!(
        db.query_sql("SELECT c0 FROM t0 ORDER BY t0.nope"),
        Err(Error::Catalog(_))
    ));
}

#[test]
fn ambiguous_bare_column_is_rejected_and_qualification_fixes_it() {
    let mut db = db_with(
        "CREATE TABLE t0 (c0 INT); CREATE TABLE t1 (c0 INT);
         INSERT INTO t0 VALUES (1); INSERT INTO t1 VALUES (2)",
    );
    match db.query_sql("SELECT c0 FROM t0, t1") {
        Err(Error::Catalog(m)) => assert!(m.contains("ambiguous"), "{m}"),
        other => panic!("expected ambiguity error, got {other:?}"),
    }
    let rel = db.query_sql("SELECT t1.c0 FROM t0, t1").unwrap();
    assert_eq!(rel.rows, vec![vec![coddb::Value::Int(2)]]);
}

#[test]
fn correlated_outer_references_bind_across_scopes() {
    let mut db = db_with(
        "CREATE TABLE t0 (c0 INT); CREATE TABLE t1 (c0 INT);
         INSERT INTO t0 VALUES (1), (2), (3); INSERT INTO t1 VALUES (2), (3), (4)",
    );
    // The subquery's t1.c0 is local, the outer t0.c0 crosses a scope.
    let rel = db
        .query_sql(
            "SELECT c0 FROM t0 WHERE EXISTS (SELECT 1 FROM t1 WHERE t1.c0 = t0.c0) ORDER BY 1",
        )
        .unwrap();
    assert_eq!(
        rel.rows,
        vec![vec![coddb::Value::Int(2)], vec![coddb::Value::Int(3)]]
    );
}

#[test]
fn bound_and_per_row_modes_agree_across_query_shapes() {
    let setup = "CREATE TABLE t0 (c0 INT, c1 TEXT, c2 REAL);
         CREATE TABLE t1 (c0 INT, c1 TEXT);
         CREATE INDEX i0 ON t0 (c0);
         INSERT INTO t0 VALUES (1, 'a', 1.5), (2, 'b', 22.5), (17, 'c', 7.25), (NULL, 'd', NULL);
         INSERT INTO t1 VALUES (2, 'x'), (17, 'y'), (99, 'z')";
    let shapes = [
        "SELECT COUNT(*) FROM t0 WHERE c0 % 3 = 1 AND c2 > 10.0",
        "SELECT COUNT(*) FROM t0 WHERE c0 > 1",
        "SELECT t0.c1, t1.c1 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 ORDER BY 1",
        "SELECT c0 % 7, COUNT(*), AVG(c2) FROM t0 GROUP BY c0 % 7 HAVING COUNT(*) >= 1",
        "SELECT COUNT(*) FROM t1 WHERE t1.c0 < (SELECT AVG(t0.c0) FROM t0 WHERE t0.c0 = t1.c0) + 10",
        "SELECT c0 FROM t0 WHERE c0 IN (SELECT c0 FROM t1) ORDER BY c0 DESC",
        "SELECT c0 FROM t0 WHERE c0 < 30 UNION SELECT c0 FROM t1 ORDER BY 1",
        "SELECT DISTINCT CASE WHEN c0 > 2 THEN 'hi' ELSE c1 END FROM t0 ORDER BY 1 LIMIT 3",
    ];
    let mut bound = db_with(setup);
    let mut walk = db_with(setup);
    walk.set_bind_mode(BindMode::PerRow);
    assert_eq!(walk.bind_mode(), BindMode::PerRow);
    for sql in shapes {
        let a = bound.query_sql(sql).unwrap();
        let b = walk.query_sql(sql).unwrap();
        assert_eq!(a, b, "bind modes disagree on {sql}");
    }
}

#[test]
fn correlated_name_collision_hook_survives_binding() {
    // Regression for the TidbCorrelatedNameCollision mutant through the
    // bound pipeline: the binder records the alternative outer binding, so
    // enabling the mutant still flips the subquery's bare column to the
    // outer row — the divergence the `codd` oracle detects.
    let setup = "CREATE TABLE t0 (c0 INT); CREATE TABLE t1 (c0 INT);
         INSERT INTO t0 VALUES (5); INSERT INTO t1 VALUES (1), (2)";
    let sql = "SELECT (SELECT MAX(c0) FROM t1) FROM t0";

    let mut clean = db_with(setup);
    let clean_rel = clean.query_sql(sql).unwrap();
    assert_eq!(clean_rel.rows, vec![vec![coddb::Value::Int(2)]]);

    let mut buggy = Database::with_bugs(
        Dialect::Tidb,
        BugRegistry::only(BugId::TidbCorrelatedNameCollision),
    );
    buggy.execute_sql(setup).unwrap();
    let buggy_rel = buggy.query_sql(sql).unwrap();
    assert_eq!(
        buggy_rel.rows,
        vec![vec![coddb::Value::Int(5)]],
        "mutant must bind the bare c0 to the outer t0 row"
    );
}

#[test]
fn between_text_affinity_hook_survives_binding() {
    // SqliteBetweenTextAffinity stays a runtime branch on the row value's
    // type: '5' BETWEEN 1 AND 9 only matches under the mutant.
    let setup = "CREATE TABLE t (c); INSERT INTO t VALUES ('5')";
    let sql = "SELECT * FROM t WHERE c BETWEEN 1 AND 9";

    let mut clean = db_with(setup);
    assert!(clean.query_sql(sql).unwrap().rows.is_empty());

    let mut buggy = Database::with_bugs(
        Dialect::Sqlite,
        BugRegistry::only(BugId::SqliteBetweenTextAffinity),
    );
    buggy.execute_sql(setup).unwrap();
    assert_eq!(buggy.query_sql(sql).unwrap().rows.len(), 1);
}

#[test]
fn dml_binds_once_and_still_fires_statement_hooks() {
    let mut db = db_with("CREATE TABLE t (v INT, w INT); INSERT INTO t VALUES (1, 10), (2, 20)");
    db.execute_sql("UPDATE t SET w = v * 100 WHERE v = 2")
        .unwrap();
    let rel = db.query_sql("SELECT w FROM t ORDER BY v").unwrap();
    assert_eq!(
        rel.rows,
        vec![vec![coddb::Value::Int(10)], vec![coddb::Value::Int(200)]]
    );
    // Unknown column in a DML WHERE is a bind-time catalog error.
    assert!(matches!(
        db.execute_sql("DELETE FROM t WHERE nope = 1"),
        Err(Error::Catalog(_))
    ));
}
