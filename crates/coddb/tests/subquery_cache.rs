//! The per-statement subquery plan/bind/result cache: correlated
//! subqueries must re-evaluate per outer row (plan reused, result not),
//! non-correlated results are memoized within a statement but never
//! survive a statement boundary or DML, and the caches must not swallow
//! the context-sensitive mutants (notably the name-collision binding
//! redirect, which turns a seemingly non-correlated subquery correlated).

use coddb::bugs::BugRegistry;
use coddb::{BindMode, BugId, Database, Dialect};

fn setup() -> Database {
    let mut db = Database::new(Dialect::Sqlite);
    db.execute_sql(
        "CREATE TABLE outer_t (a INT);
         CREATE TABLE inner_t (b INT);
         INSERT INTO outer_t VALUES (1), (2), (3), (4);
         INSERT INTO inner_t VALUES (10), (20), (30)",
    )
    .unwrap();
    db
}

#[test]
fn noncorrelated_subquery_memoizes_within_a_statement() {
    let mut db = setup();
    let rel = db
        .query_sql("SELECT a FROM outer_t WHERE a * 10 <= (SELECT MAX(b) FROM inner_t)")
        .unwrap();
    assert_eq!(rel.rows.len(), 3, "{rel:?}");
    let hits = db.coverage().hit_points();
    assert!(
        hits.contains(&"exec::subq_result_memo_hit"),
        "4 outer rows must share one subquery evaluation: {hits:?}"
    );
    assert!(hits.contains(&"exec::subq_plan_cache_hit"), "{hits:?}");
}

#[test]
fn correlated_subquery_reevaluates_per_outer_row() {
    let mut db = setup();
    // The subquery's value depends on the outer row; memoizing it would
    // collapse every row to the first row's answer.
    let rel = db
        .query_sql(
            "SELECT a, (SELECT COUNT(*) FROM inner_t WHERE b > a * 10) FROM outer_t ORDER BY a",
        )
        .unwrap();
    let counts: Vec<i64> = rel.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
    assert_eq!(counts, vec![2, 1, 0, 0], "{rel:?}");
    assert!(
        !db.coverage()
            .hit_points()
            .contains(&"exec::subq_result_memo_hit"),
        "a correlated subquery must never hit the result memo"
    );
    // The *plan* is still reused across outer rows.
    assert!(db
        .coverage()
        .hit_points()
        .contains(&"exec::subq_plan_cache_hit"));
}

#[test]
fn memoized_results_do_not_survive_dml() {
    let mut db = setup();
    let q = "SELECT COUNT(*) FROM outer_t WHERE a * 10 <= (SELECT MAX(b) FROM inner_t)";
    assert_eq!(db.query_sql(q).unwrap().scalar().unwrap().as_i64(), Some(3));
    // DML between statements changes the subquery's source table; the
    // next statement must see fresh data (caches are per-statement).
    db.execute_sql("DELETE FROM inner_t WHERE b > 15").unwrap();
    assert_eq!(db.query_sql(q).unwrap().scalar().unwrap().as_i64(), Some(1));
    db.execute_sql("INSERT INTO inner_t VALUES (40)").unwrap();
    assert_eq!(db.query_sql(q).unwrap().scalar().unwrap().as_i64(), Some(4));
}

#[test]
fn conditionally_correlated_subquery_is_not_memoized() {
    // The outer reference hides behind a short-circuiting AND: the first
    // inner rows never touch it, but full evaluation does — the runtime
    // detector must still see the read and keep per-row evaluation.
    let mut db = setup();
    let rel = db
        .query_sql(
            "SELECT a, (SELECT COUNT(*) FROM inner_t WHERE b >= 10 AND b > a * 10)
             FROM outer_t ORDER BY a",
        )
        .unwrap();
    let counts: Vec<i64> = rel.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
    assert_eq!(counts, vec![2, 1, 0, 0], "{rel:?}");
}

#[test]
fn name_collision_mutant_still_fires_through_the_cache() {
    // Under TidbCorrelatedNameCollision a bare column that shadows an
    // outer name is bound to the outer row — turning a non-correlated
    // subquery correlated at runtime. The tracker follows the redirected
    // read, so the mutant's per-row effect must not be memoized away.
    let setup = "CREATE TABLE t0 (c0 INT); CREATE TABLE t1 (c0 INT);
         INSERT INTO t0 VALUES (100), (200);
         INSERT INTO t1 VALUES (7)";
    let sql = "SELECT (SELECT MAX(c0) FROM t1) FROM t0 ORDER BY 1";
    let bug = BugId::TidbCorrelatedNameCollision;

    let mut clean = Database::new(bug.dialect());
    clean.execute_sql(setup).unwrap();
    let c = clean.query_sql(sql).unwrap();
    assert_eq!(
        c.rows.iter().map(|r| r[0].as_i64()).collect::<Vec<_>>(),
        vec![Some(7), Some(7)]
    );

    let mut buggy = Database::with_bugs(bug.dialect(), BugRegistry::only(bug));
    buggy.execute_sql(setup).unwrap();
    let b = buggy.query_sql(sql).unwrap();
    assert_eq!(
        b.rows.iter().map(|r| r[0].as_i64()).collect::<Vec<_>>(),
        vec![Some(100), Some(200)],
        "the mutant must read each outer row, not a memoized first answer"
    );
}

#[test]
fn correlated_subquery_memoizes_per_outer_key() {
    // 8 outer rows but only 3 distinct keys: the subquery must execute
    // once per key (keyed memo), not once per row — and the per-key
    // answers must still be exact.
    let mut db = Database::new(Dialect::Sqlite);
    db.execute_sql(
        "CREATE TABLE outer_t (grp INT);
         CREATE TABLE inner_t (b INT);
         INSERT INTO outer_t VALUES (1), (2), (3), (1), (2), (1), (3), (2);
         INSERT INTO inner_t VALUES (10), (20), (25), (30)",
    )
    .unwrap();
    let rel = db
        .query_sql("SELECT grp, (SELECT COUNT(*) FROM inner_t WHERE b > grp * 10) FROM outer_t")
        .unwrap();
    let counts: Vec<(i64, i64)> = rel
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    assert_eq!(
        counts,
        vec![
            (1, 3),
            (2, 2),
            (3, 0),
            (1, 3),
            (2, 2),
            (1, 3),
            (3, 0),
            (2, 2)
        ],
        "{rel:?}"
    );
    let hits = db.coverage().hit_points();
    assert!(
        hits.contains(&"exec::subq_keyed_memo_hit"),
        "repeated outer keys must reuse the keyed memo: {hits:?}"
    );
    // 3 distinct keys -> 3 executions (misses), 5 keyed hits.
    assert_eq!(db.subquery_memo_stats(), (5, 3));
}

#[test]
fn keyed_memo_does_not_survive_statements_or_dml() {
    let mut db = Database::new(Dialect::Sqlite);
    db.execute_sql(
        "CREATE TABLE outer_t (grp INT);
         CREATE TABLE inner_t (b INT);
         INSERT INTO outer_t VALUES (1), (1), (2);
         INSERT INTO inner_t VALUES (10), (20)",
    )
    .unwrap();
    let q = "SELECT grp, (SELECT COUNT(*) FROM inner_t WHERE b > grp * 10) FROM outer_t";
    let first = db.query_sql(q).unwrap();
    assert_eq!(
        first.rows.iter().map(|r| r[1].as_i64()).collect::<Vec<_>>(),
        vec![Some(1), Some(1), Some(0)]
    );
    // DML invalidates by construction: caches die with the statement.
    db.execute_sql("INSERT INTO inner_t VALUES (30), (40)")
        .unwrap();
    let second = db.query_sql(q).unwrap();
    assert_eq!(
        second
            .rows
            .iter()
            .map(|r| r[1].as_i64())
            .collect::<Vec<_>>(),
        vec![Some(3), Some(3), Some(2)],
        "a later statement must see fresh table state, not stale keyed memos"
    );
}

#[test]
fn name_collision_mutant_widens_the_memo_key() {
    // Repeated outer values under TidbCorrelatedNameCollision: the
    // redirected read joins the memo key, so equal outer values may share
    // one execution — and must still produce the redirected per-row
    // answer, while distinct values must not collapse.
    let setup = "CREATE TABLE t0 (c0 INT); CREATE TABLE t1 (c0 INT);
         INSERT INTO t0 VALUES (100), (100), (200);
         INSERT INTO t1 VALUES (7)";
    let sql = "SELECT (SELECT MAX(c0) FROM t1) FROM t0 ORDER BY 1";
    let bug = BugId::TidbCorrelatedNameCollision;

    let mut buggy = Database::with_bugs(bug.dialect(), BugRegistry::only(bug));
    buggy.execute_sql(setup).unwrap();
    let b = buggy.query_sql(sql).unwrap();
    assert_eq!(
        b.rows.iter().map(|r| r[0].as_i64()).collect::<Vec<_>>(),
        vec![Some(100), Some(100), Some(200)],
        "the widened key must keep the mutant's per-row redirection exact"
    );
}

#[test]
fn memo_counters_accumulate_across_statements() {
    let mut db = setup();
    assert_eq!(db.subquery_memo_stats(), (0, 0));
    // Non-correlated: 1 execution, 3 result-memo hits (4 outer rows).
    db.query_sql("SELECT a FROM outer_t WHERE a * 10 <= (SELECT MAX(b) FROM inner_t)")
        .unwrap();
    assert_eq!(db.subquery_memo_stats(), (3, 1));
    // Correlated over 4 distinct keys: 4 more executions, no hits.
    db.query_sql("SELECT a, (SELECT COUNT(*) FROM inner_t WHERE b > a * 10) FROM outer_t")
        .unwrap();
    assert_eq!(db.subquery_memo_stats(), (3, 5));
    // The PerRow baseline bypasses the caches and counts nothing.
    db.set_bind_mode(BindMode::PerRow);
    db.query_sql("SELECT a FROM outer_t WHERE a * 10 <= (SELECT MAX(b) FROM inner_t)")
        .unwrap();
    assert_eq!(db.subquery_memo_stats(), (3, 5));
}

#[test]
fn explain_prints_the_memo_strategy() {
    let mut db = setup();
    let keyed = db
        .explain_sql(
            "SELECT a FROM outer_t WHERE a < (SELECT MAX(b) FROM inner_t WHERE b > outer_t.a)",
        )
        .unwrap();
    assert!(
        keyed.contains("SUBQUERY MEMO(keyed: 1 slots)"),
        "one outer slot expected:\n{keyed}"
    );
    // A *bare* outer reference classifies too: `a` is no column of
    // inner_t, so it must count as an outer slot.
    let bare = db
        .explain_sql("SELECT a FROM outer_t WHERE a < (SELECT MAX(b) FROM inner_t WHERE b > a)")
        .unwrap();
    assert!(
        bare.contains("SUBQUERY MEMO(keyed: 1 slots)"),
        "bare outer reference must be a keyed slot:\n{bare}"
    );
    let full = db
        .explain_sql("SELECT a FROM outer_t WHERE a < (SELECT MAX(b) FROM inner_t)")
        .unwrap();
    assert!(full.contains("SUBQUERY MEMO(full)"), "{full}");
    db.set_bind_mode(BindMode::PerRow);
    let none = db
        .explain_sql("SELECT a FROM outer_t WHERE a < (SELECT MAX(b) FROM inner_t)")
        .unwrap();
    assert!(none.contains("SUBQUERY NONE"), "{none}");
}

#[test]
fn per_row_baseline_bypasses_every_cache() {
    let mut db = setup();
    db.set_bind_mode(BindMode::PerRow);
    let rel = db
        .query_sql("SELECT COUNT(*) FROM outer_t WHERE a * 10 <= (SELECT MAX(b) FROM inner_t)")
        .unwrap();
    assert_eq!(rel.scalar().unwrap().as_i64(), Some(3));
    let hits = db.coverage().hit_points();
    assert!(
        !hits.contains(&"exec::subq_result_memo_hit"),
        "the per-row rebinding baseline must not use the caches: {hits:?}"
    );
    assert!(!hits.contains(&"exec::subq_plan_cache_hit"), "{hits:?}");
}

#[test]
fn memoized_and_unmemoized_results_agree() {
    // Differential: the same statement with caches (PerQuery) and without
    // (PerRow baseline) must agree on a cache-heavy workload.
    let queries = [
        "SELECT a FROM outer_t WHERE a IN (SELECT b / 10 FROM inner_t) ORDER BY a",
        "SELECT a, (SELECT COUNT(*) FROM inner_t) FROM outer_t ORDER BY a",
        "SELECT a FROM outer_t WHERE EXISTS (SELECT 1 FROM inner_t WHERE b = a * 10) ORDER BY a",
        "SELECT a FROM outer_t WHERE a < (SELECT AVG(b) FROM inner_t WHERE b >= a) ORDER BY a",
    ];
    for sql in queries {
        let mut cached = setup();
        let mut baseline = setup();
        baseline.set_bind_mode(BindMode::PerRow);
        let c = cached.query_sql(sql).unwrap();
        let b = baseline.query_sql(sql).unwrap();
        assert_eq!(c.rows, b.rows, "cache changed semantics of {sql}");
    }
}
