//! EXPLAIN output tests plus *negative* trigger tests: every
//! context-sensitive logic mutant must stay silent outside its trigger
//! context — the property the whole Table 2 detectability matrix rests on.

use coddb::bugs::BugRegistry;
use coddb::{BugId, Database, Dialect};

// ---------------------------------------------------------------------------
// EXPLAIN
// ---------------------------------------------------------------------------

#[test]
fn explain_shows_access_paths() {
    let mut db = Database::new(Dialect::Sqlite);
    db.execute_sql(
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1);
         CREATE INDEX iv ON t (v)",
    )
    .unwrap();
    let plain = db.explain_sql("SELECT * FROM t").unwrap();
    assert!(plain.contains("SCAN t AS t"), "{plain}");
    // A bare-column index turns a sargable probe into a range seek.
    let probe = db.explain_sql("SELECT * FROM t WHERE v > 0").unwrap();
    assert!(
        probe.contains("INDEX SEEK t AS t USING iv (1 key(s), range)"),
        "{probe}"
    );
    // A matching ORDER BY runs the seek in key order and skips the sort.
    let sorted = db
        .explain_sql("SELECT * FROM t WHERE v > 0 ORDER BY v")
        .unwrap();
    assert!(
        sorted.contains("INDEX SEEK t AS t USING iv (1 key(s), range, ordered)"),
        "{sorted}"
    );
    let desc = db.explain_sql("SELECT * FROM t ORDER BY v DESC").unwrap();
    assert!(
        desc.contains("INDEX SEEK t AS t USING iv (0 key(s), full, ordered, reverse)"),
        "{desc}"
    );
    // Expression indexes keep the legacy ordered scan.
    db.execute_sql("CREATE INDEX ie ON t (v > 0)").unwrap();
    let legacy = db.explain_sql("SELECT * FROM t WHERE v IS NULL").unwrap();
    assert!(legacy.contains("SCAN t AS t"), "{legacy}");
}

#[test]
fn explain_shows_joins_subplans_and_ctes() {
    let mut db = Database::new(Dialect::Sqlite);
    db.execute_sql(
        "CREATE TABLE a (x INT); CREATE TABLE b (y INT);
         INSERT INTO a VALUES (1); INSERT INTO b VALUES (1);
         CREATE VIEW w (z) AS SELECT x FROM a",
    )
    .unwrap();
    let joined = db
        .explain_sql("SELECT COUNT(*) FROM a LEFT JOIN b ON a.x = b.y GROUP BY a.x")
        .unwrap();
    assert!(joined.contains("HASH (1 key(s)) LEFT JOIN"), "{joined}");
    assert!(
        joined.contains("AGGREGATE (group by 1 expr(s))"),
        "{joined}"
    );
    // Non-equi ON predicates keep the nested loop.
    let nested = db
        .explain_sql("SELECT COUNT(*) FROM a INNER JOIN b ON a.x < b.y")
        .unwrap();
    assert!(nested.contains("NESTED LOOP INNER JOIN"), "{nested}");
    let view = db.explain_sql("SELECT * FROM w").unwrap();
    assert!(view.contains("VIEW w"), "{view}");
    let cte = db
        .explain_sql("WITH c (k) AS (VALUES (1)) SELECT k FROM c ORDER BY k LIMIT 1")
        .unwrap();
    assert!(cte.contains("MATERIALIZE CTE c"), "{cte}");
    assert!(cte.contains("CTE SCAN c AS c"), "{cte}");
    assert!(cte.contains("SORT (1 key(s))"), "{cte}");
    assert!(cte.contains("LIMIT/OFFSET"), "{cte}");
}

#[test]
fn explain_shows_pushed_filters() {
    let mut db = Database::new(Dialect::Sqlite);
    db.execute_sql(
        "CREATE TABLE a (x INT); CREATE TABLE b (y INT);
         INSERT INTO a VALUES (1); INSERT INTO b VALUES (1)",
    )
    .unwrap();
    let plan = db
        .explain_sql("SELECT * FROM a INNER JOIN b ON a.x = b.y WHERE a.x > 0 AND b.y > 0")
        .unwrap();
    assert!(plan.contains("PUSHED FILTER"), "{plan}");
}

#[test]
fn explain_annotates_clause_vectorization() {
    let mut db = Database::new(Dialect::Sqlite);
    db.execute_sql("CREATE TABLE t (v INT, s TEXT); INSERT INTO t VALUES (1, 'x')")
        .unwrap();
    // A vectorizable filter and projection.
    let plan = db
        .explain_sql("SELECT v + 1 FROM t WHERE v % 2 = 1 AND s LIKE 'x%'")
        .unwrap();
    assert!(
        plan.contains("FILTER (((v % 2) = 1) AND (s LIKE 'x%')) [VEC]"),
        "{plan}"
    );
    assert!(plan.contains("PROJECT (1 item(s)) [VEC]"), "{plan}");
    // Subqueries fall back row-at-a-time.
    let sub = db
        .explain_sql("SELECT v FROM t WHERE v IN (SELECT v FROM t)")
        .unwrap();
    assert!(sub.contains("[ROW(subquery)]"), "{sub}");
    // Aggregate group keys annotate on the AGGREGATE line.
    let agg = db
        .explain_sql("SELECT v % 3, COUNT(*) FROM t GROUP BY v % 3")
        .unwrap();
    assert!(
        agg.contains("AGGREGATE (group by 1 expr(s)) [VEC]"),
        "{agg}"
    );
    // An active mutant hooking a shape forces its fallback.
    let mut hooked = Database::with_bugs(
        Dialect::Tidb,
        BugRegistry::only(BugId::TidbInValueListWhere),
    );
    hooked.execute_sql("CREATE TABLE t (v INT)").unwrap();
    let plan = hooked
        .explain_sql("SELECT v FROM t WHERE v IN (1, 2)")
        .unwrap();
    assert!(plan.contains("[ROW(mutant-hooked IN list)]"), "{plan}");
    // Disabled eval mode annotates every clause.
    db.set_eval_mode(coddb::EvalMode::RowAtATime);
    let plan = db.explain_sql("SELECT v FROM t WHERE v > 0").unwrap();
    assert!(plan.contains("[ROW(row-at-a-time eval mode)]"), "{plan}");
}

// ---------------------------------------------------------------------------
// Negative trigger tests: mutants are silent outside their context.
// ---------------------------------------------------------------------------

/// Run one query on a clean and a single-mutant engine over the same
/// state; results must be identical (the mutant must not fire).
fn assert_silent(bug: BugId, setup: &str, sql: &str) {
    let mut clean = Database::new(bug.dialect());
    let mut buggy = Database::with_bugs(bug.dialect(), BugRegistry::only(bug));
    clean.execute_sql(setup).unwrap();
    buggy.execute_sql(setup).unwrap();
    let c = clean
        .query_sql(sql)
        .unwrap_or_else(|e| panic!("clean {sql}: {e}"));
    let b = buggy
        .query_sql(sql)
        .unwrap_or_else(|e| panic!("buggy {sql}: {e}"));
    assert!(
        c.multiset_eq(&b),
        "{bug:?} fired outside its trigger context on {sql}\nclean: {c:?}\nbuggy: {b:?}"
    );
}

#[test]
fn like_case_fold_is_silent_in_projection_and_nested() {
    let setup = "CREATE TABLE t (s TEXT); INSERT INTO t VALUES ('ABC')";
    // Projection placement: not the WHERE top level.
    assert_silent(
        BugId::SqliteLikeCaseFold,
        setup,
        "SELECT s LIKE 'abc' FROM t",
    );
    // Nested under NOT: not top level.
    assert_silent(
        BugId::SqliteLikeCaseFold,
        setup,
        "SELECT * FROM t WHERE NOT (s LIKE 'abc')",
    );
}

#[test]
fn in_value_list_bug_is_silent_when_nested() {
    let setup = "CREATE TABLE t0 (c0 INT); INSERT INTO t0 VALUES (1)";
    assert_silent(
        BugId::TidbInValueListWhere,
        setup,
        "SELECT * FROM t0 WHERE NOT (c0 NOT IN (1))",
    );
    assert_silent(
        BugId::TidbInValueListWhere,
        setup,
        "SELECT c0 IN (1) FROM t0",
    );
}

#[test]
fn indexed_cmp_bug_needs_the_index_path() {
    // Without an index the comparison is evaluated correctly.
    assert_silent(
        BugId::SqliteIndexedCmpNullTrue,
        "CREATE TABLE t (c INT); INSERT INTO t VALUES (1), (NULL)",
        "SELECT * FROM t WHERE c > 0",
    );
}

#[test]
fn agg_subquery_bug_needs_index_and_aggregate() {
    let setup = "CREATE TABLE t0 (c0); INSERT INTO t0 VALUES (1);
         CREATE INDEX i0 ON t0 (c0 > 0)";
    // Non-aggregate subquery under the index: silent.
    assert_silent(
        BugId::SqliteAggSubqueryIndexedWhere,
        setup,
        "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE (SELECT c0 FROM t0 LIMIT 1)",
    );
    // Aggregate subquery without the index: silent.
    assert_silent(
        BugId::SqliteAggSubqueryIndexedWhere,
        setup,
        "SELECT COUNT(*) FROM t0 WHERE (SELECT COUNT(*) FROM t0 WHERE FALSE)",
    );
}

#[test]
fn case_cte_bug_needs_a_cte_source() {
    assert_silent(
        BugId::CockroachCaseNullFromCte,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1)",
        "SELECT CASE WHEN NULL THEN 1 ELSE 0 END FROM t",
    );
}

#[test]
fn any_bug_is_silent_over_values_lists() {
    assert_silent(
        BugId::CockroachAnyNonValuesSubquery,
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2), (3)",
        "SELECT 2 = ANY (VALUES (1), (2), (3))",
    );
}

#[test]
fn avg_bug_is_silent_at_top_level() {
    assert_silent(
        BugId::CockroachAvgNestedReverse,
        "CREATE TABLE t (v REAL); INSERT INTO t VALUES (100000000.0), (7.0)",
        "SELECT AVG(v) FROM t",
    );
}

#[test]
fn insert_version_bug_is_silent_for_plain_selects_and_values() {
    let bug = BugId::TidbInsertSelectVersion;
    let setup = "CREATE TABLE t0 (c0 INT); INSERT INTO t0 VALUES (1);
         CREATE TABLE ot0 (c0 INT)";
    let mut buggy = Database::with_bugs(bug.dialect(), BugRegistry::only(bug));
    buggy.execute_sql(setup).unwrap();
    // INSERT ... SELECT without VERSION(): inserts normally.
    buggy
        .execute_sql("INSERT INTO ot0 SELECT c0 FROM t0")
        .unwrap();
    assert_eq!(
        buggy
            .query_sql("SELECT COUNT(*) FROM ot0")
            .unwrap()
            .scalar()
            .unwrap()
            .as_i64(),
        Some(1)
    );
    // Plain VALUES insert with VERSION() in an expression elsewhere: fine.
    buggy.execute_sql("INSERT INTO ot0 VALUES (2)").unwrap();
    assert_eq!(
        buggy
            .query_sql("SELECT COUNT(*) FROM ot0")
            .unwrap()
            .scalar()
            .unwrap()
            .as_i64(),
        Some(2)
    );
}

#[test]
fn pushdown_bug_is_silent_without_a_left_join() {
    assert_silent(
        BugId::DuckdbPushdownLeftJoin,
        "CREATE TABLE l (v INT); CREATE TABLE r (v INT);
         INSERT INTO l VALUES (1), (2); INSERT INTO r VALUES (2), (3)",
        "SELECT * FROM l INNER JOIN r ON l.v = r.v WHERE r.v IS NULL",
    );
}

#[test]
fn distinct_group_bug_needs_both_distinct_and_group_by() {
    let setup = "CREATE TABLE t (k INT); INSERT INTO t VALUES (1), (2), (2), (3)";
    assert_silent(
        BugId::DuckdbDistinctGroupByDrop,
        setup,
        "SELECT DISTINCT k FROM t",
    );
    assert_silent(
        BugId::DuckdbDistinctGroupByDrop,
        setup,
        "SELECT k FROM t GROUP BY k",
    );
}

#[test]
fn name_collision_bug_is_silent_for_qualified_refs() {
    assert_silent(
        BugId::TidbCorrelatedNameCollision,
        "CREATE TABLE t0 (c0 INT); CREATE TABLE t1 (c0 INT);
         INSERT INTO t0 VALUES (5); INSERT INTO t1 VALUES (1), (2)",
        "SELECT (SELECT MAX(t1.c0) FROM t1) FROM t0",
    );
}

#[test]
fn every_logic_mutant_is_silent_on_a_neutral_probe() {
    // A probe that touches none of the trigger contexts: plain arithmetic
    // projection over a single-row table.
    for bug in BugId::logic_bugs() {
        assert_silent(
            bug,
            "CREATE TABLE neutral (n INT); INSERT INTO neutral VALUES (3)",
            "SELECT n + 1, n * 2 FROM neutral",
        );
    }
}
