//! Differential testing of the ordered-index seek path: every statement
//! runs through both access modes — [`AccessMode::Indexed`] (planner-
//! selected range/prefix seeks with sort elimination) and
//! [`AccessMode::ScanOnly`] (every seek forced back to a sequential scan
//! plus the baseline filter) — and must produce byte-identical results,
//! identical coverage bitsets and **identical fuel consumption**, over
//! NULL-heavy / duplicate / mixed-class data, DML-interleaved scripts,
//! every dialect, and every injected engine mutant. A separate battery
//! checks that each [`IndexBugId`] seek-path mutant *does* diverge on the
//! indexed engine while staying silent under ScanOnly.

use coddb::bugs::BugRegistry;
use coddb::{AccessMode, BugId, Database, Dialect, IndexBugId};

/// Seek-path workout: single- and two-column indexes over NULL-heavy,
/// duplicate-heavy data; point / range / prefix probes; residual
/// conjuncts (erroring ones included); matching and non-matching ORDER
/// BY; DML interleaved so maintenance and re-planning are exercised.
const SCRIPT: &[&str] = &[
    "CREATE TABLE t (k INT, v INT, s TEXT)",
    "INSERT INTO t VALUES (1, 10, 'a'), (NULL, 20, 'b'), (2, NULL, NULL), \
     (2, 30, 'c'), (5, 40, 'd'), (NULL, NULL, 'e'), (3, 50, 'a'), (0, 60, 'f'), \
     (2, 70, 'g'), (5, 80, NULL)",
    "CREATE INDEX ik ON t (k)",
    "CREATE INDEX ikv ON t (k, v)",
    // Point and range seeks, NULL keys dropped by the re-check.
    "SELECT * FROM t WHERE k = 2",
    "SELECT * FROM t WHERE k > 1",
    "SELECT * FROM t WHERE k >= 2",
    "SELECT * FROM t WHERE k < 2",
    "SELECT * FROM t WHERE k <= 0",
    "SELECT * FROM t WHERE k = 99",
    "SELECT * FROM t WHERE k IS NULL",
    // Literal on the left (flipped ops) and alias-qualified columns.
    "SELECT * FROM t WHERE 2 = k",
    "SELECT * FROM t WHERE 1 < k",
    "SELECT * FROM t AS x WHERE x.k >= 3",
    // Two-column prefixes: eq+eq, eq+range.
    "SELECT * FROM t WHERE k = 2 AND v = 30",
    "SELECT * FROM t WHERE k = 2 AND v > 20",
    "SELECT * FROM t WHERE k = 5 AND v <= 80",
    // Residual conjuncts beyond the consumed prefix.
    "SELECT * FROM t WHERE k = 2 AND s = 'c'",
    "SELECT * FROM t WHERE k > 0 AND v % 20 = 0",
    "SELECT * FROM t WHERE k = 2 AND v > 20 AND s IS NOT NULL",
    // Erroring residuals: the error and everything observed before it
    // must land identically in both modes.
    "SELECT * FROM t WHERE k >= 0 AND 100 / v > 1",
    "SELECT * FROM t WHERE k = 2 AND 10 / (v - 30) = 1",
    // Sort elimination: full consumption + matching ORDER BY, both
    // directions, DISTINCT, LIMIT, and a bare ordered full seek.
    "SELECT * FROM t WHERE k > 1 ORDER BY k",
    "SELECT * FROM t WHERE k >= 0 ORDER BY k DESC",
    "SELECT * FROM t ORDER BY k",
    "SELECT * FROM t ORDER BY k DESC LIMIT 3",
    "SELECT DISTINCT k FROM t ORDER BY k",
    "SELECT k, v FROM t ORDER BY k, v",
    "SELECT k, v FROM t WHERE k = 2 ORDER BY k, v DESC",
    // ORDER BY the seek cannot satisfy: the sort must still run.
    "SELECT * FROM t WHERE k > 1 ORDER BY v",
    "SELECT * FROM t WHERE k = 2 ORDER BY s",
    // Aggregates / joins over seeks (seek under a plain FROM only).
    "SELECT COUNT(*), SUM(v) FROM t WHERE k = 2",
    "SELECT k, COUNT(*) FROM t WHERE k > 0 GROUP BY k ORDER BY 1",
    // DML maintenance: inserts, re-keying updates, deletes — then the
    // same probes again over the mutated table.
    "INSERT INTO t VALUES (2, 25, 'h'), (NULL, 90, 'i'), (7, 5, 'j')",
    "SELECT * FROM t WHERE k = 2 ORDER BY k, v",
    "UPDATE t SET k = 4 WHERE v = 30",
    "SELECT * FROM t WHERE k = 4",
    "SELECT * FROM t WHERE k = 2 AND v > 20",
    "UPDATE t SET v = v + 1 WHERE k = 5",
    "SELECT * FROM t WHERE k = 5 AND v > 80",
    "DELETE FROM t WHERE k = 2 AND v > 60",
    "SELECT * FROM t WHERE k = 2 ORDER BY k DESC",
    "DELETE FROM t WHERE k IS NULL",
    "SELECT COUNT(*) FROM t",
    "SELECT * FROM t WHERE k >= 0 ORDER BY k",
    // DROP INDEX: probes fall back to scans and still agree.
    "DROP INDEX ikv",
    "SELECT * FROM t WHERE k = 4 AND v = 30",
    "SELECT k, v FROM t ORDER BY k, v",
];

/// Mixed-class key columns: TEXT values among INTs must trip the runtime
/// exactness gate (seek falls back to the scan on both modes), and
/// TEXT-uniform columns must still seek — with dialect-specific
/// comparison/coercion semantics intact either way.
const MIXED_SCRIPT: &[&str] = &[
    "CREATE TABLE m (k, s TEXT)",
    "INSERT INTO m VALUES (1, 'a'), ('5', 'b'), (2, 'c'), (NULL, 'd'), \
     (2.5, 'e'), ('abc', 'f'), (3, 'a')",
    "CREATE INDEX imk ON m (k)",
    "CREATE INDEX ims ON m (s)",
    // Mixed-class key probes: the gate must refuse the seek.
    "SELECT * FROM m WHERE k > 1",
    "SELECT * FROM m WHERE k = 2",
    "SELECT * FROM m WHERE k = '5'",
    "SELECT * FROM m WHERE k <= 2.5",
    "SELECT * FROM m ORDER BY k",
    // TEXT-uniform key, TEXT probe: seeks. Non-TEXT probe: refused.
    "SELECT * FROM m WHERE s = 'a'",
    "SELECT * FROM m WHERE s > 'b' ORDER BY s",
    "SELECT * FROM m WHERE s < 'd' ORDER BY s DESC",
    "SELECT * FROM m WHERE s = 1",
    // Numeric Int/Real unification under one key slot.
    "CREATE TABLE n (k INT)",
    "INSERT INTO n VALUES (1), (2), (2), (3), (NULL)",
    "CREATE INDEX ink ON n (k)",
    "SELECT * FROM n WHERE k = 2.0",
    "SELECT * FROM n WHERE k > 1.5 ORDER BY k",
    "SELECT * FROM n WHERE k >= 2 ORDER BY k DESC",
];

fn run_script(
    dialect: Dialect,
    bugs: BugRegistry,
    mode: AccessMode,
    script: &[&str],
) -> (Vec<String>, Vec<&'static str>, u64) {
    let mut db = Database::with_bugs(dialect, bugs);
    db.set_access_mode(mode);
    let mut outcomes = Vec::new();
    for sql in script {
        match coddb::parser::parse_statements(sql) {
            Ok(stmts) => {
                for stmt in &stmts {
                    outcomes.push(match db.execute(stmt) {
                        Ok(out) => format!("{out:?}"),
                        Err(e) => format!("error: {e}"),
                    });
                }
            }
            // Dialect-independent parse behaviour; keep slots aligned.
            Err(e) => outcomes.push(format!("parse error: {e}")),
        }
    }
    (outcomes, db.coverage().hit_points(), db.fuel_used())
}

fn assert_modes_agree(dialect: Dialect, bugs: fn() -> BugRegistry, script: &[&str], tag: &str) {
    let (idx_out, idx_cov, idx_fuel) = run_script(dialect, bugs(), AccessMode::Indexed, script);
    let (scan_out, scan_cov, scan_fuel) = run_script(dialect, bugs(), AccessMode::ScanOnly, script);
    assert_eq!(idx_out.len(), scan_out.len(), "[{tag}] statement counts");
    for (i, (a, b)) in idx_out.iter().zip(scan_out.iter()).enumerate() {
        assert_eq!(
            a,
            b,
            "[{tag}] access modes disagree on {dialect:?} statement {i} ({:?})",
            script.get(i)
        );
    }
    assert_eq!(
        idx_cov, scan_cov,
        "[{tag}] coverage bitsets diverge between access modes on {dialect:?}"
    );
    assert_eq!(
        idx_fuel, scan_fuel,
        "[{tag}] fuel accounting diverges between access modes on {dialect:?}"
    );
}

#[test]
fn indexed_matches_scan_only_on_every_dialect() {
    for dialect in Dialect::ALL {
        assert_modes_agree(dialect, BugRegistry::none, SCRIPT, "clean");
        assert_modes_agree(dialect, BugRegistry::none, MIXED_SCRIPT, "mixed");
    }
}

/// Under every engine mutant the two access modes must still agree: a
/// mutant may change results, but it must change them identically on the
/// seek path and the scan baseline (seek selection is gated off for the
/// mutants that hook index-scan or WHERE-shape contexts).
#[test]
fn indexed_matches_scan_only_under_every_engine_mutant() {
    for bug in BugId::ALL {
        let make = move || BugRegistry::only(bug);
        let (idx_out, idx_cov, idx_fuel) =
            run_script(bug.dialect(), make(), AccessMode::Indexed, SCRIPT);
        let (scan_out, scan_cov, scan_fuel) =
            run_script(bug.dialect(), make(), AccessMode::ScanOnly, SCRIPT);
        for (i, (a, b)) in idx_out.iter().zip(scan_out.iter()).enumerate() {
            assert_eq!(
                a,
                b,
                "access modes disagree under {bug:?} on statement {i} ({:?})",
                SCRIPT.get(i)
            );
        }
        assert_eq!(
            idx_cov, scan_cov,
            "coverage bitsets diverge between access modes under {bug:?}"
        );
        assert_eq!(
            idx_fuel, scan_fuel,
            "fuel accounting diverges between access modes under {bug:?}"
        );
    }
}

/// Every index mutant must fire somewhere in the workout script on the
/// indexed engine — and stay silent under ScanOnly, where no seek (and
/// no seek-path hook) ever runs.
#[test]
fn every_index_mutant_fires_indexed_and_is_silent_scan_only() {
    for bug in IndexBugId::ALL {
        let clean = run_script(
            Dialect::Sqlite,
            BugRegistry::none(),
            AccessMode::Indexed,
            SCRIPT,
        );
        let buggy = run_script(
            Dialect::Sqlite,
            BugRegistry::only_index(bug),
            AccessMode::Indexed,
            SCRIPT,
        );
        assert_ne!(
            clean.0, buggy.0,
            "{bug:?} never fires in the seek workout script"
        );

        let clean_scan = run_script(
            Dialect::Sqlite,
            BugRegistry::none(),
            AccessMode::ScanOnly,
            SCRIPT,
        );
        let buggy_scan = run_script(
            Dialect::Sqlite,
            BugRegistry::only_index(bug),
            AccessMode::ScanOnly,
            SCRIPT,
        );
        assert_eq!(
            clean_scan.0, buggy_scan.0,
            "{bug:?} fired under ScanOnly — seek-path mutants must live on the seek path"
        );
    }
}

/// Pinpoint divergence checks: one minimal scenario per index mutant, on
/// a fresh database, asserting the *shape* of the wrong answer.
#[test]
fn index_mutant_divergence_scenarios() {
    let query = |bugs: BugRegistry, script: &[&str], probe: &str| -> Vec<String> {
        let mut db = Database::with_bugs(Dialect::Sqlite, bugs);
        for sql in script {
            db.execute_sql(sql).unwrap();
        }
        let rel = db.query_sql(probe).unwrap();
        rel.rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| format!("{v:?}"))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect()
    };
    let setup: &[&str] = &[
        "CREATE TABLE t (k INT, v INT)",
        "INSERT INTO t VALUES (1, 10), (2, 20), (2, 21), (3, 30), (NULL, 40)",
        "CREATE INDEX ik ON t (k)",
    ];

    // RangeBoundOffByOne: `>=` drops the boundary key.
    let clean = query(
        BugRegistry::none(),
        setup,
        "SELECT v FROM t WHERE k >= 2 ORDER BY v",
    );
    let buggy = query(
        BugRegistry::only_index(IndexBugId::RangeBoundOffByOne),
        setup,
        "SELECT v FROM t WHERE k >= 2 ORDER BY v",
    );
    assert_eq!(clean.len(), 3);
    assert_eq!(buggy.len(), 1, "boundary rows should be dropped: {buggy:?}");

    // EqSeekMissesDuplicates: only the first duplicate survives.
    let buggy = query(
        BugRegistry::only_index(IndexBugId::EqSeekMissesDuplicates),
        setup,
        "SELECT v FROM t WHERE k = 2 ORDER BY v",
    );
    assert_eq!(buggy.len(), 1, "duplicates should be dropped: {buggy:?}");

    // PrefixSeekIgnoresResidual: NULL-key rows leak through.
    let buggy = query(
        BugRegistry::only_index(IndexBugId::PrefixSeekIgnoresResidual),
        setup,
        "SELECT v FROM t WHERE k > 0",
    );
    assert_eq!(buggy.len(), 5, "NULL-key row should leak: {buggy:?}");

    // SortElimWrongDirection: DESC comes back ascending.
    let buggy = query(
        BugRegistry::only_index(IndexBugId::SortElimWrongDirection),
        setup,
        "SELECT k FROM t WHERE k >= 1 ORDER BY k DESC",
    );
    assert_eq!(buggy, vec!["Int(1)", "Int(2)", "Int(2)", "Int(3)"]);

    // StaleEntryAfterUpdate: the index keeps the pre-update key, so the
    // seek finds the old key and misses the new one.
    let dml: &[&str] = &[
        "CREATE TABLE t (k INT, v INT)",
        "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)",
        "CREATE INDEX ik ON t (k)",
        "UPDATE t SET k = 9 WHERE v = 20",
    ];
    let clean = query(BugRegistry::none(), dml, "SELECT v FROM t WHERE k = 9");
    assert_eq!(clean.len(), 1);
    let buggy = query(
        BugRegistry::only_index(IndexBugId::StaleEntryAfterUpdate),
        dml,
        "SELECT v FROM t WHERE k = 9",
    );
    assert!(
        buggy.is_empty(),
        "stale index should miss the row: {buggy:?}"
    );
}

/// Access modes must agree statement-for-statement even when the fuel
/// budget runs out mid-script: the seek path charges the full scan ledger
/// (FROM charge up front, skipped rows replayed at the filter), so
/// exhaustion lands on the same statement with the same totals.
#[test]
fn fuel_exhaustion_agrees_across_access_modes() {
    for fuel in [11u64, 37, 83, 300] {
        let run = |mode: AccessMode| {
            let mut db = Database::new(Dialect::Sqlite);
            db.set_access_mode(mode);
            db.set_fuel_limit(fuel);
            let mut outcomes = Vec::new();
            for sql in [
                "CREATE TABLE t (k INT)",
                "INSERT INTO t VALUES (1), (2), (3), (4), (5), (6), (7), (8), (9), (10)",
                "CREATE INDEX ik ON t (k)",
                "SELECT COUNT(*) FROM t WHERE k > 7",
                "SELECT * FROM t WHERE k = 3",
                "SELECT * FROM t WHERE k >= 2 ORDER BY k DESC",
            ] {
                for stmt in &coddb::parser::parse_statements(sql).unwrap() {
                    outcomes.push(match db.execute(stmt) {
                        Ok(out) => format!("{out:?}"),
                        Err(e) => format!("error: {e}"),
                    });
                }
            }
            (outcomes, db.fuel_used())
        };
        let idx = run(AccessMode::Indexed);
        let scan = run(AccessMode::ScanOnly);
        assert_eq!(idx.0, scan.0, "outcomes diverge at fuel limit {fuel}");
        assert_eq!(idx.1, scan.1, "fuel accounting diverges at limit {fuel}");
    }
}
