//! Proof that the hot row loops perform **zero heap allocation per
//! row**: a counting global allocator observes (1) a 10k-row filter loop
//! over a bound predicate — the expression path — and (2) the full
//! plan→bind→exec pipeline of a pure filter scan, whose allocation count
//! must not grow with the row count now that scans hand out shared rows
//! instead of cloning table storage.
//!
//! This file deliberately contains a single test — the allocation counter
//! is process-global, and a concurrently running test would inflate it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use coddb::ast::{BinaryOp, Expr};
use coddb::bind::Binder;
use coddb::bugs::BugRegistry;
use coddb::catalog::Catalog;
use coddb::coverage::Coverage;
use coddb::eval::{eval_bound, Clause, ExprCtx};
use coddb::exec::{ColMeta, CteEnv, EngineCtx, EvalEnv, Frame, Schema, StmtKind};
use coddb::value::{Row, Value};
use coddb::{Database, Dialect};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn expression_path_allocates_nothing_per_row() {
    // `c0 % 3 = 1 AND c2 > 10.0` — the engine_exec seq_filter predicate.
    let pred = Expr::and(
        Expr::eq(
            Expr::bin(BinaryOp::Mod, Expr::col("t0", "c0"), Expr::lit(3i64)),
            Expr::lit(1i64),
        ),
        Expr::bin(BinaryOp::Gt, Expr::col("t0", "c2"), Expr::lit(10.5)),
    );

    let schema = Schema {
        cols: vec![
            ColMeta::new(Some("t0"), "c0"),
            ColMeta::new(Some("t0"), "c1"),
            ColMeta::new(Some("t0"), "c2"),
        ],
    };
    let rows: Vec<Row> = (0..10_000)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Text(format!("r{i}")),
                Value::Real(i as f64 + 0.5),
            ])
        })
        .collect();

    let catalog = Catalog::new();
    let bugs = BugRegistry::none();
    let cov = Coverage::new();
    let ctx = EngineCtx::new(
        &catalog,
        Dialect::Sqlite,
        &bugs,
        &cov,
        true,
        StmtKind::Select,
        u64::MAX,
    );
    let ctes = CteEnv::root();

    // Bind once.
    let scopes = [&schema];
    let mut binder = Binder::new(&scopes, 0);
    let bound = binder.bind(&pred).unwrap();

    let run = |expected_hits: i64| {
        let mut hits = 0i64;
        for row in &rows {
            let frames = [Frame {
                schema: &schema,
                row,
            }];
            let env = EvalEnv {
                ctx: &ctx,
                scopes: &frames,
                aggs: None,
                ctes: &ctes,
                info: ExprCtx::new(Clause::Where),
            };
            let v = eval_bound(&bound, env).unwrap();
            if v == Value::Int(1) {
                hits += 1;
            }
        }
        assert_eq!(hits, expected_hits);
    };

    // Rows with c0 % 3 == 1 and c0 + 0.5 > 10.5: c0 in {13, 16, ..., 9999}.
    let expected = (11..10_000).filter(|i| i % 3 == 1).count() as i64;

    // Warm up (coverage bits, lazy anything), then measure.
    run(expected);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    run(expected);
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "bound evaluation of a 10k-row filter must not allocate"
    );
}

/// Whole-pipeline check: a pure filter scan (`SELECT COUNT(*) FROM t
/// WHERE ...`, no projection of row values) allocates a constant amount
/// regardless of how many rows it scans — the scan hands out shared rows
/// (refcount bumps), never per-row clones. Measured as the allocation
/// delta between a small and a 4x larger table; a per-row cost of even
/// one allocation would show up as ~15k extra.
fn scan_path_allocates_nothing_per_row() {
    let build = |n: i64| {
        let mut db = Database::new(Dialect::Sqlite);
        db.execute_sql("CREATE TABLE t (c0 INT, c1 TEXT, c2 REAL)")
            .unwrap();
        for chunk in (0..n).collect::<Vec<_>>().chunks(500) {
            let rows: Vec<String> = chunk
                .iter()
                .map(|v| format!("({v}, 'r{v}', {v}.5)"))
                .collect();
            db.execute_sql(&format!("INSERT INTO t VALUES {}", rows.join(",")))
                .unwrap();
        }
        db
    };
    let sql = "SELECT COUNT(*) FROM t WHERE c0 % 3 = 1 AND c2 > 10.5";
    let measure = |db: &mut Database, expected: i64| {
        // Warm up (parses, plans once, settles lazy init), then measure
        // one full query through the public API.
        let q = coddb::parser::parse_select(sql).unwrap();
        let warm = db.query(&q).unwrap();
        assert_eq!(warm.scalar().unwrap().as_i64(), Some(expected));
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let rel = db.query(&q).unwrap();
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(rel.scalar().unwrap().as_i64(), Some(expected));
        after - before
    };

    let expected = |n: i64| (11..n).filter(|i| i % 3 == 1).count() as i64;
    let mut small = build(5_000);
    let mut large = build(20_000);
    let small_allocs = measure(&mut small, expected(5_000));
    let large_allocs = measure(&mut large, expected(20_000));

    // Constant-factor slack only: Vec growth differences and the single
    // group's member/value buffers are size-dependent allocations but
    // O(1) in count.
    assert!(
        large_allocs <= small_allocs + 8,
        "scanning 4x the rows must not allocate per row: \
         {small_allocs} allocs at 5k rows vs {large_allocs} at 20k"
    );
}

/// The vectorized filter path must allocate O(chunks), not O(rows): its
/// kernel buffers come from a per-statement pool that is recycled across
/// chunks, so a 4x larger table (4x the chunks) must not cost
/// proportionally more allocations. The predicate here is
/// classified-vectorizable (AND/OR selection vectors, arithmetic and
/// comparison kernels) and runs through the public query API under the
/// default [`coddb::EvalMode::Vectorized`].
fn vectorized_filter_allocates_o_chunks_not_o_rows() {
    let build = |n: i64| {
        let mut db = Database::new(Dialect::Sqlite);
        db.execute_sql("CREATE TABLE t (c0 INT, c1 TEXT, c2 REAL)")
            .unwrap();
        for chunk in (0..n).collect::<Vec<_>>().chunks(500) {
            let rows: Vec<String> = chunk
                .iter()
                .map(|v| format!("({v}, 'r{v}', {v}.5)"))
                .collect();
            db.execute_sql(&format!("INSERT INTO t VALUES {}", rows.join(",")))
                .unwrap();
        }
        db
    };
    // Or + And + arithmetic + comparisons: several kernel nodes, so a
    // per-node-per-chunk buffer leak would multiply visibly.
    let sql = "SELECT COUNT(*) FROM t WHERE (c0 % 3 = 1 OR c0 % 5 = 2) AND c2 + 1.5 > 12.0";
    let expected = |n: i64| {
        (0..n)
            .filter(|v| (v % 3 == 1 || v % 5 == 2) && (*v as f64 + 0.5) + 1.5 > 12.0)
            .count() as i64
    };
    let measure = |db: &mut Database, expected: i64| {
        let q = coddb::parser::parse_select(sql).unwrap();
        let warm = db.query(&q).unwrap();
        assert_eq!(warm.scalar().unwrap().as_i64(), Some(expected));
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let rel = db.query(&q).unwrap();
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(rel.scalar().unwrap().as_i64(), Some(expected));
        after - before
    };
    let mut small = build(5_000); // 5 chunks of 1024
    let mut large = build(20_000); // 20 chunks
    let small_allocs = measure(&mut small, expected(5_000));
    let large_allocs = measure(&mut large, expected(20_000));
    // 15 extra chunks x several kernel nodes: an O(rows) — or even an
    // unpooled O(chunks x nodes) — implementation would add hundreds of
    // allocations; the pooled pipeline adds a constant few.
    assert!(
        large_allocs <= small_allocs + 16,
        "vectorized filter must allocate O(chunks) with pooled buffers: \
         {small_allocs} allocs at 5k rows vs {large_allocs} at 20k"
    );
}

#[test]
fn hot_row_loops_allocate_nothing_per_row() {
    expression_path_allocates_nothing_per_row();
    scan_path_allocates_nothing_per_row();
    vectorized_filter_allocates_o_chunks_not_o_rows();
}
