//! Proof that bound-expression evaluation performs **zero heap
//! allocation per row** for column resolution: a counting global
//! allocator observes a 10k-row filter loop over a bound predicate.
//!
//! This file deliberately contains a single test — the allocation counter
//! is process-global, and a concurrently running test would inflate it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use coddb::ast::{BinaryOp, Expr};
use coddb::bind::Binder;
use coddb::bugs::BugRegistry;
use coddb::catalog::Catalog;
use coddb::coverage::Coverage;
use coddb::eval::{eval_bound, Clause, ExprCtx};
use coddb::exec::{ColMeta, CteEnv, EngineCtx, EvalEnv, Frame, Schema, StmtKind};
use coddb::value::{Row, Value};
use coddb::Dialect;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn bound_filter_evaluation_allocates_nothing_per_row() {
    // `c0 % 3 = 1 AND c2 > 10.0` — the engine_exec seq_filter predicate.
    let pred = Expr::and(
        Expr::eq(
            Expr::bin(BinaryOp::Mod, Expr::col("t0", "c0"), Expr::lit(3i64)),
            Expr::lit(1i64),
        ),
        Expr::bin(BinaryOp::Gt, Expr::col("t0", "c2"), Expr::lit(10.5)),
    );

    let schema = Schema {
        cols: vec![
            ColMeta::new(Some("t0"), "c0"),
            ColMeta::new(Some("t0"), "c1"),
            ColMeta::new(Some("t0"), "c2"),
        ],
    };
    let rows: Vec<Row> = (0..10_000)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Text(format!("r{i}")),
                Value::Real(i as f64 + 0.5),
            ]
        })
        .collect();

    let catalog = Catalog::new();
    let bugs = BugRegistry::none();
    let cov = Coverage::new();
    let ctx = EngineCtx::new(
        &catalog,
        Dialect::Sqlite,
        &bugs,
        &cov,
        true,
        StmtKind::Select,
        u64::MAX,
    );
    let ctes = CteEnv::root();

    // Bind once.
    let scopes = [&schema];
    let mut binder = Binder::new(&scopes, 0);
    let bound = binder.bind(&pred).unwrap();

    let run = |expected_hits: i64| {
        let mut hits = 0i64;
        for row in &rows {
            let frames = [Frame {
                schema: &schema,
                row,
            }];
            let env = EvalEnv {
                ctx: &ctx,
                scopes: &frames,
                aggs: None,
                ctes: &ctes,
                info: ExprCtx::new(Clause::Where),
            };
            let v = eval_bound(&bound, env).unwrap();
            if v == Value::Int(1) {
                hits += 1;
            }
        }
        assert_eq!(hits, expected_hits);
    };

    // Rows with c0 % 3 == 1 and c0 + 0.5 > 10.5: c0 in {13, 16, ..., 9999}.
    let expected = (11..10_000).filter(|i| i % 3 == 1).count() as i64;

    // Warm up (coverage bits, lazy anything), then measure.
    run(expected);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    run(expected);
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "bound evaluation of a 10k-row filter must not allocate"
    );
}
