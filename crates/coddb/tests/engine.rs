//! End-to-end engine tests: SQL text in, relations out.
//!
//! Several tests replay the paper's listings against a *clean* engine and
//! assert the semantically correct answers; the bug-mutant behaviours are
//! covered separately in `bug_witnesses.rs`.

use coddb::value::Value;
use coddb::{Database, Dialect, Error, ExecOutcome};

fn db() -> Database {
    Database::new(Dialect::Sqlite)
}

fn rows(db: &mut Database, sql: &str) -> Vec<Vec<Value>> {
    db.query_sql(sql)
        .unwrap_or_else(|e| panic!("query {sql:?} failed: {e}"))
        .rows
        .iter()
        .map(|r| r.to_vec())
        .collect()
}

fn scalar(db: &mut Database, sql: &str) -> Value {
    let rel = db
        .query_sql(sql)
        .unwrap_or_else(|e| panic!("query {sql:?} failed: {e}"));
    rel.scalar()
        .unwrap_or_else(|| panic!("not scalar: {rel:?}"))
        .clone()
}

#[test]
fn create_insert_select_roundtrip() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t0 (c0 INT, c1 TEXT)").unwrap();
    db.execute_sql("INSERT INTO t0 VALUES (1, 'a'), (2, 'b'), (NULL, 'c')")
        .unwrap();
    assert_eq!(scalar(&mut db, "SELECT COUNT(*) FROM t0"), Value::Int(3));
    assert_eq!(scalar(&mut db, "SELECT COUNT(c0) FROM t0"), Value::Int(2));
    let r = rows(&mut db, "SELECT c1 FROM t0 WHERE c0 = 2");
    assert_eq!(r, vec![vec![Value::Text("b".into())]]);
}

#[test]
fn where_null_semantics_drop_rows() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (c INT); INSERT INTO t VALUES (1), (NULL), (3)")
        .unwrap();
    // NULL comparisons are unknown, so only c=1 matches.
    assert_eq!(
        scalar(&mut db, "SELECT COUNT(*) FROM t WHERE c < 2"),
        Value::Int(1)
    );
    // IS NULL finds the null row.
    assert_eq!(
        scalar(&mut db, "SELECT COUNT(*) FROM t WHERE c IS NULL"),
        Value::Int(1)
    );
    // NOT (c < 2) keeps only c=3 (NULL still unknown).
    assert_eq!(
        scalar(&mut db, "SELECT COUNT(*) FROM t WHERE NOT c < 2"),
        Value::Int(1)
    );
}

#[test]
fn listing2_correlated_subquery_average() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE t0 (ID INT, score INT, classID INT);
         INSERT INTO t0 VALUES (0, 90, 1), (1, 80, 1), (2, 83, 2)",
    )
    .unwrap();
    // Students above their class average: class 1 avg 85 -> student 0.
    let r = rows(
        &mut db,
        "SELECT x.ID FROM t0 AS x WHERE x.score > \
         (SELECT AVG(y.score) FROM t0 AS y WHERE x.classID = y.classID)",
    );
    assert_eq!(r, vec![vec![Value::Int(0)]]);
}

#[test]
fn listing4_left_join_null_padding() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE t0 (c0 INT); CREATE TABLE t1 (c0 INT);
         INSERT INTO t0 VALUES (0); INSERT INTO t1 VALUES (1)",
    )
    .unwrap();
    let r = rows(
        &mut db,
        "SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 WHERE t1.c0 IS NULL",
    );
    assert_eq!(r, vec![vec![Value::Int(0), Value::Null]]);
    // The paper's auxiliary query (Listing 4, query A).
    let r = rows(
        &mut db,
        "SELECT t1.c0, t1.c0 IS NULL FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0",
    );
    assert_eq!(r, vec![vec![Value::Null, Value::Int(1)]]);
    // The folded query (Listing 4, query F) produces the same result as O.
    let r = rows(
        &mut db,
        "SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 WHERE \
         CASE WHEN t1.c0 IS NULL THEN 1 END",
    );
    assert_eq!(r, vec![vec![Value::Int(0), Value::Null]]);
}

#[test]
fn listing1_clean_engine_is_consistent() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE t0 (c0);
         INSERT INTO t0 (c0) VALUES (1);
         CREATE INDEX i0 ON t0 (c0 > 0);
         CREATE VIEW v0 (c0) AS SELECT AVG(t0.c0) FROM t0 GROUP BY 1 > t0.c0",
    )
    .unwrap();
    let o = scalar(
        &mut db,
        "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE \
         (SELECT COUNT(*) FROM v0 WHERE v0.c0 BETWEEN 0 AND 0)",
    );
    let a = scalar(
        &mut db,
        "SELECT COUNT(*) FROM v0 WHERE v0.c0 BETWEEN 0 AND 0",
    );
    // v0 holds AVG = 1.0, not in [0,0]; the subquery counts 0 rows, so the
    // predicate is falsy and O must be 0 — on a clean engine O equals the
    // folded query.
    assert_eq!(a, Value::Int(0));
    assert_eq!(o, Value::Int(0));
    let f = scalar(&mut db, "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE 0");
    assert_eq!(o, f);
}

#[test]
fn group_by_having_and_aggregates() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE g (k INT, v INT);
         INSERT INTO g VALUES (1, 10), (1, 20), (2, 5), (2, NULL), (3, 7)",
    )
    .unwrap();
    let r = rows(
        &mut db,
        "SELECT k, COUNT(*), SUM(v) FROM g GROUP BY k ORDER BY k",
    );
    assert_eq!(
        r,
        vec![
            vec![Value::Int(1), Value::Int(2), Value::Int(30)],
            vec![Value::Int(2), Value::Int(2), Value::Int(5)],
            vec![Value::Int(3), Value::Int(1), Value::Int(7)],
        ]
    );
    let r = rows(
        &mut db,
        "SELECT k FROM g GROUP BY k HAVING COUNT(*) > 1 ORDER BY k",
    );
    assert_eq!(r, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    // Aggregate over empty input: one group with SUM NULL / COUNT 0.
    let r = rows(
        &mut db,
        "SELECT COUNT(*), SUM(v), AVG(v) FROM g WHERE k > 99",
    );
    assert_eq!(r, vec![vec![Value::Int(0), Value::Null, Value::Null]]);
    // ... but grouped aggregation over empty input yields no rows.
    let r = rows(&mut db, "SELECT k, COUNT(*) FROM g WHERE k > 99 GROUP BY k");
    assert!(r.is_empty());
}

#[test]
fn avg_returns_real_and_total_returns_zero() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2)")
        .unwrap();
    assert_eq!(scalar(&mut db, "SELECT AVG(v) FROM t"), Value::Real(1.5));
    assert_eq!(
        scalar(&mut db, "SELECT TOTAL(v) FROM t WHERE v > 10"),
        Value::Real(0.0)
    );
    assert_eq!(
        scalar(&mut db, "SELECT SUM(v) FROM t WHERE v > 10"),
        Value::Null
    );
}

#[test]
fn set_operations() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE a (v INT); CREATE TABLE b (v INT);
         INSERT INTO a VALUES (1), (2), (2); INSERT INTO b VALUES (2), (3)",
    )
    .unwrap();
    let union = rows(&mut db, "SELECT v FROM a UNION SELECT v FROM b ORDER BY 1");
    assert_eq!(
        union,
        vec![
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Int(3)]
        ]
    );
    let union_all = rows(&mut db, "SELECT v FROM a UNION ALL SELECT v FROM b");
    assert_eq!(union_all.len(), 5);
    let inter = rows(&mut db, "SELECT v FROM a INTERSECT SELECT v FROM b");
    assert_eq!(inter, vec![vec![Value::Int(2)]]);
    let except = rows(&mut db, "SELECT v FROM a EXCEPT SELECT v FROM b");
    assert_eq!(except, vec![vec![Value::Int(1)]]);
}

#[test]
fn ctes_and_derived_tables_and_values() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (5)")
        .unwrap();
    assert_eq!(
        scalar(
            &mut db,
            "WITH w AS (SELECT v + 1 AS u FROM t) SELECT u FROM w"
        ),
        Value::Int(6)
    );
    assert_eq!(
        scalar(&mut db, "SELECT d.x FROM (SELECT v * 2 AS x FROM t) AS d"),
        Value::Int(10)
    );
    let r = rows(
        &mut db,
        "SELECT * FROM (VALUES (1, 'a'), (2, 'b')) AS vt (n, s) ORDER BY n",
    );
    assert_eq!(r.len(), 2);
    assert_eq!(r[0], vec![Value::Int(1), Value::Text("a".into())]);
    // A CTE defined over VALUES.
    assert_eq!(
        scalar(&mut db, "WITH w (n) AS (VALUES (7)) SELECT n FROM w"),
        Value::Int(7)
    );
}

#[test]
fn views_expand_like_their_query() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2), (3);
         CREATE VIEW big (x) AS SELECT v FROM t WHERE v >= 2",
    )
    .unwrap();
    assert_eq!(scalar(&mut db, "SELECT COUNT(*) FROM big"), Value::Int(2));
    assert_eq!(scalar(&mut db, "SELECT MAX(x) FROM big"), Value::Int(3));
}

#[test]
fn indexed_by_does_not_change_results() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (3), (1), (2);
         CREATE INDEX iv ON t (v)",
    )
    .unwrap();
    let plain = db.query_sql("SELECT v FROM t WHERE v > 1").unwrap();
    let forced = db
        .query_sql("SELECT v FROM t INDEXED BY iv WHERE v > 1")
        .unwrap();
    assert!(plain.multiset_eq(&forced));
}

#[test]
fn optimized_and_unoptimized_agree_on_clean_engine() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE t (a INT, b TEXT);
         INSERT INTO t VALUES (1, 'x'), (2, NULL), (-3, 'y');
         CREATE INDEX ia ON t (a)",
    )
    .unwrap();
    for sql in [
        "SELECT * FROM t WHERE a > 0",
        "SELECT * FROM t WHERE (1 < 2) AND a <= 2",
        "SELECT * FROM t WHERE b IS NULL OR a = 1",
        "SELECT COUNT(*) FROM t WHERE a BETWEEN -5 AND 5",
    ] {
        let q = coddb::parser::parse_select(sql).unwrap();
        let opt = db.query(&q).unwrap();
        let unopt = db.query_unoptimized(&q).unwrap();
        assert!(opt.multiset_eq(&unopt), "optimizer changed {sql}");
    }
}

#[test]
fn update_and_delete() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (k INT, v INT); INSERT INTO t VALUES (1,1),(2,2),(3,3)")
        .unwrap();
    let out = db
        .execute_sql("UPDATE t SET v = v * 10 WHERE k >= 2")
        .unwrap();
    assert_eq!(out[0], ExecOutcome::Affected(2));
    assert_eq!(scalar(&mut db, "SELECT SUM(v) FROM t"), Value::Int(51));
    let out = db.execute_sql("DELETE FROM t WHERE v = 20").unwrap();
    assert_eq!(out[0], ExecOutcome::Affected(1));
    assert_eq!(scalar(&mut db, "SELECT COUNT(*) FROM t"), Value::Int(2));
}

#[test]
fn insert_select_moves_rows() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE src (v INT); CREATE TABLE dst (v INT);
         INSERT INTO src VALUES (1), (2), (3);
         INSERT INTO dst SELECT v FROM src WHERE v > 1",
    )
    .unwrap();
    assert_eq!(scalar(&mut db, "SELECT COUNT(*) FROM dst"), Value::Int(2));
}

#[test]
fn not_null_constraint_enforced() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT NOT NULL)").unwrap();
    let err = db.execute_sql("INSERT INTO t VALUES (NULL)").unwrap_err();
    assert!(matches!(err, Error::Eval(_)), "{err}");
}

#[test]
fn strict_dialect_rejects_type_mismatches() {
    let mut db = Database::new(Dialect::Duckdb);
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1)")
        .unwrap();
    // Non-boolean predicate.
    assert!(matches!(
        db.query_sql("SELECT * FROM t WHERE 1"),
        Err(Error::Type(_))
    ));
    // Boolean predicate is fine.
    assert_eq!(
        db.query_sql("SELECT * FROM t WHERE v > 0")
            .unwrap()
            .row_count(),
        1
    );
    // TEXT vs INT comparison is rejected.
    assert!(matches!(
        db.query_sql("SELECT * FROM t WHERE v > 'a'"),
        Err(Error::Type(_))
    ));
    // Untyped columns are rejected.
    assert!(matches!(
        db.execute_sql("CREATE TABLE u (c0)"),
        Err(Error::Type(_))
    ));
}

#[test]
fn sqlite_flexible_typing_compares_by_class() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v); INSERT INTO t VALUES (1), ('abc')")
        .unwrap();
    // In SQLite any TEXT sorts above any number.
    assert_eq!(
        scalar(&mut db, "SELECT COUNT(*) FROM t WHERE v > 999999"),
        Value::Int(1)
    );
}

#[test]
fn mysql_coerces_text_numerically() {
    let mut db = Database::new(Dialect::Mysql);
    db.execute_sql("CREATE TABLE t (v TEXT); INSERT INTO t VALUES ('10'), ('2')")
        .unwrap();
    assert_eq!(
        scalar(&mut db, "SELECT COUNT(*) FROM t WHERE v > 5"),
        Value::Int(1)
    );
}

#[test]
fn division_semantics_by_dialect() {
    let mut sqlite = Database::new(Dialect::Sqlite);
    assert_eq!(
        sqlite.query_sql("SELECT 7 / 2").unwrap().scalar(),
        Some(&Value::Int(3))
    );
    assert_eq!(
        sqlite.query_sql("SELECT 1 / 0").unwrap().scalar(),
        Some(&Value::Null)
    );

    let mut duck = Database::new(Dialect::Duckdb);
    assert_eq!(
        duck.query_sql("SELECT 7 / 2").unwrap().scalar(),
        Some(&Value::Real(3.5))
    );
    assert!(matches!(
        duck.query_sql("SELECT 1 / 0"),
        Err(Error::Eval(_))
    ));
}

#[test]
fn quantified_comparisons() {
    let mut db = Database::new(Dialect::Mysql);
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2), (3)")
        .unwrap();
    assert_eq!(
        scalar(&mut db, "SELECT 2 = ANY (SELECT v FROM t)"),
        Value::Int(1)
    );
    assert_eq!(
        scalar(&mut db, "SELECT 9 = ANY (SELECT v FROM t)"),
        Value::Int(0)
    );
    assert_eq!(
        scalar(&mut db, "SELECT 0 < ALL (SELECT v FROM t)"),
        Value::Int(1)
    );
    // SQLite profile rejects ANY/ALL (paper §3.3).
    let mut sq = Database::new(Dialect::Sqlite);
    sq.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1)")
        .unwrap();
    assert!(matches!(
        sq.query_sql("SELECT 1 = ANY (SELECT v FROM t)"),
        Err(Error::Unsupported(_))
    ));
}

#[test]
fn exists_and_in_subquery() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2)")
        .unwrap();
    assert_eq!(
        scalar(&mut db, "SELECT EXISTS (SELECT v FROM t WHERE v = 2)"),
        Value::Int(1)
    );
    assert_eq!(
        scalar(&mut db, "SELECT NOT EXISTS (SELECT v FROM t WHERE v = 9)"),
        Value::Int(1)
    );
    assert_eq!(
        scalar(&mut db, "SELECT 2 IN (SELECT v FROM t)"),
        Value::Int(1)
    );
    assert_eq!(
        scalar(&mut db, "SELECT 9 NOT IN (SELECT v FROM t)"),
        Value::Int(1)
    );
    // NULL semantics of IN.
    assert_eq!(
        scalar(&mut db, "SELECT NULL IN (SELECT v FROM t)"),
        Value::Null
    );
}

#[test]
fn scalar_subquery_cardinality_errors() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE t0 (c0 INT); CREATE TABLE t1 (c0 INT);
         INSERT INTO t0 VALUES (1); INSERT INTO t1 VALUES (2), (3)",
    )
    .unwrap();
    // Listing 5: more than one row.
    let err = db
        .query_sql("SELECT t0.c0, (SELECT t1.c0 FROM t1 WHERE t1.c0 > t0.c0) FROM t0")
        .unwrap_err();
    assert!(matches!(err, Error::SubqueryCardinality(_)), "{err}");
    // Listing 5: more than one column.
    let err = db
        .query_sql("SELECT t0.c0, (SELECT t1.c0, t1.c0 FROM t1 WHERE t1.c0 = 2) FROM t0")
        .unwrap_err();
    assert!(matches!(err, Error::SubqueryCardinality(_)), "{err}");
    // Empty scalar subquery is NULL, not an error.
    assert_eq!(
        scalar(
            &mut db,
            "SELECT (SELECT t1.c0 FROM t1 WHERE t1.c0 > 99) IS NULL"
        ),
        Value::Int(1)
    );
}

#[test]
fn order_by_limit_offset() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (3), (1), (2)")
        .unwrap();
    let r = rows(&mut db, "SELECT v FROM t ORDER BY v DESC LIMIT 2");
    assert_eq!(r, vec![vec![Value::Int(3)], vec![Value::Int(2)]]);
    let r = rows(&mut db, "SELECT v FROM t ORDER BY v LIMIT 2 OFFSET 1");
    assert_eq!(r, vec![vec![Value::Int(2)], vec![Value::Int(3)]]);
    // Positional and expression ORDER BY.
    let r = rows(&mut db, "SELECT v, -v FROM t ORDER BY 2");
    assert_eq!(r[0][0], Value::Int(3));
    let r = rows(&mut db, "SELECT v FROM t ORDER BY v % 2, v");
    assert_eq!(
        r,
        vec![
            vec![Value::Int(2)],
            vec![Value::Int(1)],
            vec![Value::Int(3)]
        ]
    );
}

#[test]
fn full_and_right_joins_pad_both_sides() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE l (v INT); CREATE TABLE r (v INT);
         INSERT INTO l VALUES (1), (2); INSERT INTO r VALUES (2), (3)",
    )
    .unwrap();
    let full = rows(&mut db, "SELECT * FROM l FULL OUTER JOIN r ON l.v = r.v");
    assert_eq!(full.len(), 3);
    let right = rows(&mut db, "SELECT * FROM l RIGHT JOIN r ON l.v = r.v");
    assert_eq!(right.len(), 2);
    assert!(right
        .iter()
        .any(|row| row[0] == Value::Null && row[1] == Value::Int(3)));
}

#[test]
fn ambiguous_and_unknown_columns_error() {
    let mut db = db();
    db.execute_sql(
        "CREATE TABLE a (v INT); CREATE TABLE b (v INT);
         INSERT INTO a VALUES (1); INSERT INTO b VALUES (1)",
    )
    .unwrap();
    assert!(matches!(
        db.query_sql("SELECT v FROM a CROSS JOIN b"),
        Err(Error::Catalog(_))
    ));
    assert!(matches!(
        db.query_sql("SELECT nope FROM a"),
        Err(Error::Catalog(_))
    ));
}

#[test]
fn distinct_dedups() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (1), (2), (NULL), (NULL)")
        .unwrap();
    assert_eq!(rows(&mut db, "SELECT DISTINCT v FROM t").len(), 3);
    assert_eq!(
        scalar(&mut db, "SELECT COUNT(DISTINCT v) FROM t"),
        Value::Int(2)
    );
}

#[test]
fn case_expressions() {
    let mut db = db();
    db.execute_sql("CREATE TABLE grade (score INT); INSERT INTO grade VALUES (100), (80), (60)")
        .unwrap();
    // Listing 3 of the paper.
    let r = rows(
        &mut db,
        "SELECT score, CASE WHEN score = 100 THEN 'A' \
         WHEN score >= 80 AND score < 100 THEN 'B' ELSE 'C' END FROM grade ORDER BY score DESC",
    );
    assert_eq!(
        r,
        vec![
            vec![Value::Int(100), Value::Text("A".into())],
            vec![Value::Int(80), Value::Text("B".into())],
            vec![Value::Int(60), Value::Text("C".into())],
        ]
    );
    // Operand form + missing ELSE yields NULL.
    assert_eq!(
        scalar(&mut db, "SELECT CASE 5 WHEN 4 THEN 1 END IS NULL"),
        Value::Int(1)
    );
}

#[test]
fn functions_behave() {
    let mut db = db();
    assert_eq!(
        db.query_sql("SELECT LENGTH('abc')").unwrap().scalar(),
        Some(&Value::Int(3))
    );
    assert_eq!(
        db.query_sql("SELECT ABS(-4)").unwrap().scalar(),
        Some(&Value::Int(4))
    );
    assert_eq!(
        db.query_sql("SELECT UPPER('ab') || LOWER('CD')")
            .unwrap()
            .scalar(),
        Some(&Value::Text("ABcd".into()))
    );
    assert_eq!(
        db.query_sql("SELECT COALESCE(NULL, NULL, 7)")
            .unwrap()
            .scalar(),
        Some(&Value::Int(7))
    );
    assert_eq!(
        db.query_sql("SELECT NULLIF(3, 3)").unwrap().scalar(),
        Some(&Value::Null)
    );
    assert_eq!(
        db.query_sql("SELECT IIF(1 < 2, 'y', 'n')")
            .unwrap()
            .scalar(),
        Some(&Value::Text("y".into()))
    );
    assert_eq!(
        db.query_sql("SELECT TYPEOF(1.5)").unwrap().scalar(),
        Some(&Value::Text("real".into()))
    );
    assert_eq!(
        db.query_sql("SELECT ROUND(2.567, 1)").unwrap().scalar(),
        Some(&Value::Real(2.6))
    );
    assert_eq!(
        db.query_sql("SELECT SIGN(-9)").unwrap().scalar(),
        Some(&Value::Int(-1))
    );
    assert_eq!(
        db.query_sql("SELECT INSTR('hello', 'll')")
            .unwrap()
            .scalar(),
        Some(&Value::Int(3))
    );
    assert_eq!(
        db.query_sql("SELECT SUBSTR('hello', 2, 3)")
            .unwrap()
            .scalar(),
        Some(&Value::Text("ell".into()))
    );
    assert_eq!(
        db.query_sql("SELECT SUBSTR('hello', -3)").unwrap().scalar(),
        Some(&Value::Text("llo".into()))
    );
    // VERSION is dialect-specific.
    let v = db.query_sql("SELECT VERSION()").unwrap();
    assert!(matches!(v.scalar(), Some(Value::Text(s)) if s.contains("codddb")));
}

#[test]
fn like_is_dialect_sensitive() {
    let mut sqlite = Database::new(Dialect::Sqlite);
    assert_eq!(
        sqlite
            .query_sql("SELECT 'ABC' LIKE 'abc'")
            .unwrap()
            .scalar(),
        Some(&Value::Int(1))
    );
    let mut duck = Database::new(Dialect::Duckdb);
    assert_eq!(
        duck.query_sql("SELECT 'ABC' LIKE 'abc'").unwrap().scalar(),
        Some(&Value::Bool(false))
    );
}

#[test]
fn integer_overflow_is_a_clean_error() {
    let mut db = db();
    let err = db.query_sql("SELECT 9223372036854775807 + 1").unwrap_err();
    assert!(matches!(err, Error::Eval(_)), "{err}");
    assert_eq!(err.severity(), coddb::Severity::Expected);
}

#[test]
fn group_by_positional_and_expression() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2), (3), (4)")
        .unwrap();
    // Listing-1 style: GROUP BY over a boolean expression.
    let r = rows(&mut db, "SELECT COUNT(*) FROM t GROUP BY v > 2 ORDER BY 1");
    assert_eq!(r, vec![vec![Value::Int(2)], vec![Value::Int(2)]]);
    // Positional.
    let r = rows(
        &mut db,
        "SELECT v % 2, COUNT(*) FROM t GROUP BY 1 ORDER BY 1",
    );
    assert_eq!(r.len(), 2);
}

#[test]
fn plan_fingerprints_differ_across_shapes() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1)")
        .unwrap();
    db.query_sql("SELECT * FROM t WHERE v = 1").unwrap();
    let fp1 = db.last_plan_fingerprint().unwrap();
    db.query_sql("SELECT * FROM t WHERE v = 2").unwrap();
    let fp2 = db.last_plan_fingerprint().unwrap();
    assert_eq!(fp1, fp2, "same shape, different constants");
    db.query_sql("SELECT * FROM t WHERE v IN (SELECT v FROM t)")
        .unwrap();
    let fp3 = db.last_plan_fingerprint().unwrap();
    assert_ne!(fp1, fp3, "subquery changes the plan shape");
}

#[test]
fn snapshot_restore_roundtrip() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1)")
        .unwrap();
    let snap = db.snapshot();
    db.execute_sql("DELETE FROM t").unwrap();
    assert_eq!(scalar(&mut db, "SELECT COUNT(*) FROM t"), Value::Int(0));
    db.restore(snap);
    assert_eq!(scalar(&mut db, "SELECT COUNT(*) FROM t"), Value::Int(1));
}

#[test]
fn fuel_exhaustion_reports_hang() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT)").unwrap();
    for chunk in 0..10 {
        let vals: Vec<String> = (0..100).map(|i| format!("({})", chunk * 100 + i)).collect();
        db.execute_sql(&format!("INSERT INTO t VALUES {}", vals.join(",")))
            .unwrap();
    }
    db.set_fuel_limit(1_000);
    let err = db
        .query_sql("SELECT COUNT(*) FROM t AS a CROSS JOIN t AS b")
        .unwrap_err();
    assert!(matches!(err, Error::Hang));
}

#[test]
fn coverage_accumulates_over_queries() {
    let mut db = db();
    db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1)")
        .unwrap();
    let before = db.coverage().hit_count();
    db.query_sql("SELECT v FROM t WHERE v > 0 GROUP BY v HAVING COUNT(*) >= 1")
        .unwrap();
    assert!(db.coverage().hit_count() > before);
    assert!(db.coverage().percent() > 0.0);
}
