//! Durable-storage integration: the exhaustive crash-point grid.
//!
//! For every operation index the `FaultPlan` can name over a
//! DML-interleaved script — and every fault mode at that index — the
//! recovered database must be byte-identical to a never-crashed engine
//! that executed only the committed prefix. The grid runs under all five
//! dialect profiles, and every recovery-path mutant must produce at least
//! one divergence somewhere in the same grid.

use coddb::bugs::BugRegistry;
use coddb::recovery::recovery_divergence;
use coddb::wal::{FaultMode, FaultPlan, StorageMode};
use coddb::{ast::Statement, Database, Dialect, RecoveryBugId};

/// Dialect-neutral script interleaving DDL with multi-row DML, including
/// a zero-row DELETE (commit marker with no effect record) and a DROP.
const SCRIPT: &str = "
    CREATE TABLE t0 (c0 INT, c1 TEXT);
    INSERT INTO t0 VALUES (1, 'a'), (2, 'b'), (3, 'c');
    CREATE TABLE t1 (c0 INT NOT NULL);
    INSERT INTO t1 SELECT c0 FROM t0 WHERE c0 > 1;
    CREATE INDEX i0 ON t0 (c0 > 1);
    UPDATE t0 SET c1 = 'z' WHERE c0 >= 2;
    DELETE FROM t0 WHERE c0 = 2;
    CREATE VIEW v0 (n) AS SELECT COUNT(*) FROM t0;
    INSERT INTO t0 VALUES (4, NULL);
    UPDATE t1 SET c0 = c0 * 10;
    DELETE FROM t1 WHERE c0 > 100;
    DROP TABLE t1;
";

const DIALECTS: [Dialect; 5] = [
    Dialect::Sqlite,
    Dialect::Mysql,
    Dialect::Cockroach,
    Dialect::Duckdb,
    Dialect::Tidb,
];

fn script() -> Vec<Statement> {
    coddb::parser::parse_statements(SCRIPT).expect("corpus script parses")
}

/// Count the WAL operations the script produces under a dialect, by
/// executing it durably with no faults.
fn total_ops(stmts: &[Statement], dialect: Dialect) -> u64 {
    let mut db = Database::new(dialect);
    db.set_storage_mode(StorageMode::Durable);
    for s in stmts {
        db.execute(s).expect("corpus script executes cleanly");
    }
    db.wal().expect("durable").ops()
}

/// Every fault mode at a given op, with deterministic but varied
/// selectors.
fn modes_at(op: u64) -> [FaultMode; 3] {
    [
        FaultMode::Lost,
        FaultMode::Torn {
            keep_sel: op * 7 + 3,
        },
        FaultMode::Corrupt { byte_sel: op + 1 },
    ]
}

#[test]
fn exhaustive_fault_grid_recovers_exactly_the_committed_prefix() {
    let stmts = script();
    for dialect in DIALECTS {
        let total = total_ops(&stmts, dialect);
        assert!(total > 20, "{dialect}: corpus too small ({total} ops)");
        // crash_op == total means the crash never fires: the clean-log
        // case rides the same grid.
        for op in 0..=total {
            for mode in modes_at(op) {
                let plan = FaultPlan { crash_op: op, mode };
                let diverged = recovery_divergence(&stmts, &plan, dialect, &BugRegistry::none());
                assert_eq!(
                    diverged,
                    None,
                    "{dialect}: recovery diverged under {}",
                    plan.describe()
                );
            }
        }
    }
}

#[test]
fn every_recovery_mutant_diverges_somewhere_in_the_grid() {
    let stmts = script();
    let dialect = Dialect::Sqlite;
    let total = total_ops(&stmts, dialect);
    for bug in RecoveryBugId::ALL {
        let bugs = BugRegistry::only_recovery(bug);
        let mut hit = false;
        'grid: for op in 0..=total {
            for mode in modes_at(op) {
                let plan = FaultPlan { crash_op: op, mode };
                if recovery_divergence(&stmts, &plan, dialect, &bugs).is_some() {
                    hit = true;
                    break 'grid;
                }
            }
        }
        assert!(hit, "{} never diverged across the grid", bug.name());
    }
}

#[test]
fn durable_mode_never_changes_query_semantics() {
    let stmts = script();
    for dialect in DIALECTS {
        let mut volatile = Database::new(dialect);
        let mut durable = Database::new(dialect);
        durable.set_storage_mode(StorageMode::Durable);
        for s in &stmts {
            let a = volatile.execute(s).expect("volatile");
            let b = durable.execute(s).expect("durable");
            assert_eq!(a, b, "{dialect}: outcomes diverge on {s}");
        }
        assert_eq!(volatile.dump_state(), durable.dump_state());
    }
}

#[test]
fn seeded_fault_plans_reproduce_their_scenario_exactly() {
    let stmts = script();
    let dialect = Dialect::Duckdb;
    let total = total_ops(&stmts, dialect);
    for seed in 0..32u64 {
        let a = FaultPlan::seeded(seed, total);
        let b = FaultPlan::seeded(seed, total);
        assert_eq!(a, b, "seed {seed} not deterministic");
        // The scenario itself reproduces end-to-end: same seed, same
        // surviving image, same recovered state.
        let run = |plan: FaultPlan| {
            let mut db = Database::new(dialect);
            db.set_storage_mode(StorageMode::Durable);
            db.set_fault_plan(plan);
            for s in &stmts {
                let _ = db.execute(s);
            }
            (
                db.wal().unwrap().image().to_vec(),
                db.wal().unwrap().committed_statements(),
            )
        };
        let (img_a, com_a) = run(a);
        let (img_b, com_b) = run(b);
        assert_eq!(img_a, img_b, "seed {seed}: images differ");
        assert_eq!(com_a, com_b, "seed {seed}: commit counts differ");
        let rec_a = coddb::recovery::recover(&img_a, dialect, &BugRegistry::none()).unwrap();
        let rec_b = coddb::recovery::recover(&img_b, dialect, &BugRegistry::none()).unwrap();
        assert_eq!(rec_a.dump_state(), rec_b.dump_state());
    }
}
