//! Durable-storage integration: the exhaustive crash-point grid.
//!
//! For every operation index the `FaultPlan` can name over a
//! DML-interleaved script — and every fault mode at that index, under
//! every checkpoint schedule — the recovered database must be
//! byte-identical to a never-crashed engine that executed only the
//! committed prefix, recovering from the newest durable snapshot (not
//! genesis) whenever one survives. The grid runs under all five dialect
//! profiles, and every recovery-path mutant must produce at least one
//! divergence somewhere in the same grid.

use coddb::bugs::{BugRegistry, MediaBugId};
use coddb::error::StorageSite;
use coddb::recovery::{
    recover_detailed, recovery_divergence, recovery_divergence_checkpointed,
    recovery_divergence_media,
};
use coddb::wal::{FaultMode, FaultPlan, MediaMode, MediaPlan, StorageMode, READ_RETRY_CAP};
use coddb::{ast::Statement, AccessMode, Database, Dialect, RecoveryBugId};

/// Checkpoint schedules the grid sweeps: one mid-script checkpoint, and
/// two checkpoints bracketing most of the DML. (The empty schedule is the
/// original genesis grid, kept as its own test.)
const SCHEDULES: [&[usize]; 2] = [&[3], &[0, 6]];

/// Dialect-neutral script interleaving DDL with multi-row DML, including
/// a zero-row DELETE (commit marker with no effect record) and a DROP.
const SCRIPT: &str = "
    CREATE TABLE t0 (c0 INT, c1 TEXT);
    INSERT INTO t0 VALUES (1, 'a'), (2, 'b'), (3, 'c');
    CREATE TABLE t1 (c0 INT NOT NULL);
    INSERT INTO t1 SELECT c0 FROM t0 WHERE c0 > 1;
    CREATE INDEX i0 ON t0 (c0 > 1);
    UPDATE t0 SET c1 = 'z' WHERE c0 >= 2;
    DELETE FROM t0 WHERE c0 = 2;
    CREATE VIEW v0 (n) AS SELECT COUNT(*) FROM t0;
    INSERT INTO t0 VALUES (4, NULL);
    UPDATE t1 SET c0 = c0 * 10;
    DELETE FROM t1 WHERE c0 > 100;
    DROP TABLE t1;
";

const DIALECTS: [Dialect; 5] = [
    Dialect::Sqlite,
    Dialect::Mysql,
    Dialect::Cockroach,
    Dialect::Duckdb,
    Dialect::Tidb,
];

fn script() -> Vec<Statement> {
    coddb::parser::parse_statements(SCRIPT).expect("corpus script parses")
}

/// Count the WAL operations the script produces under a dialect and
/// checkpoint schedule, by executing it durably with no faults.
fn total_ops_with(stmts: &[Statement], dialect: Dialect, checkpoints: &[usize]) -> u64 {
    let mut db = Database::new(dialect);
    db.set_storage_mode(StorageMode::Durable);
    for (i, s) in stmts.iter().enumerate() {
        db.execute(s).expect("corpus script executes cleanly");
        if checkpoints.contains(&i) {
            db.checkpoint().expect("corpus checkpoint succeeds");
        }
    }
    db.wal().expect("durable").ops()
}

fn total_ops(stmts: &[Statement], dialect: Dialect) -> u64 {
    total_ops_with(stmts, dialect, &[])
}

/// Execute the script durably under `plan`, checkpointing per schedule;
/// returns the crashed database (the surviving images and ground truth).
fn faulted_run(
    stmts: &[Statement],
    dialect: Dialect,
    checkpoints: &[usize],
    plan: FaultPlan,
) -> Database {
    let mut db = Database::new(dialect);
    db.set_storage_mode(StorageMode::Durable);
    db.set_fault_plan(plan);
    for (i, s) in stmts.iter().enumerate() {
        let _ = db.execute(s);
        if checkpoints.contains(&i) {
            let _ = db.checkpoint();
        }
    }
    db
}

/// Every fault mode at a given op, with deterministic but varied
/// selectors.
fn modes_at(op: u64) -> [FaultMode; 3] {
    [
        FaultMode::Lost,
        FaultMode::Torn {
            keep_sel: op * 7 + 3,
        },
        FaultMode::Corrupt { byte_sel: op + 1 },
    ]
}

#[test]
fn exhaustive_fault_grid_recovers_exactly_the_committed_prefix() {
    let stmts = script();
    for dialect in DIALECTS {
        let total = total_ops(&stmts, dialect);
        assert!(total > 20, "{dialect}: corpus too small ({total} ops)");
        // crash_op == total means the crash never fires: the clean-log
        // case rides the same grid.
        for op in 0..=total {
            for mode in modes_at(op) {
                let plan = FaultPlan { crash_op: op, mode };
                let diverged = recovery_divergence(&stmts, &plan, dialect, &BugRegistry::none());
                assert_eq!(
                    diverged,
                    None,
                    "{dialect}: recovery diverged under {}",
                    plan.describe()
                );
            }
        }
    }
}

#[test]
fn exhaustive_checkpointed_grid_recovers_exactly_the_committed_prefix() {
    // The checkpointed half of the grid: every crash point — including
    // ops inside snapshot writes and the truncation steps — × every fault
    // mode × every dialect × every schedule. The divergence helper also
    // enforces the snapshot contract per cell: recovery must base itself
    // on exactly the newest durable snapshot (never genesis when one
    // survives, never a torn or stale one).
    let stmts = script();
    for dialect in DIALECTS {
        for checkpoints in SCHEDULES {
            let total = total_ops_with(&stmts, dialect, checkpoints);
            assert!(
                total > total_ops(&stmts, dialect),
                "{dialect}: checkpoints added no ops"
            );
            for op in 0..=total {
                for mode in modes_at(op) {
                    let plan = FaultPlan { crash_op: op, mode };
                    let diverged = recovery_divergence_checkpointed(
                        &stmts,
                        checkpoints,
                        &plan,
                        dialect,
                        &BugRegistry::none(),
                    );
                    assert_eq!(
                        diverged,
                        None,
                        "{dialect}: checkpointed recovery diverged under {} \
                         (checkpoints {checkpoints:?})",
                        plan.describe()
                    );
                }
            }
        }
    }
}

#[test]
fn grid_recovers_from_snapshot_exactly_when_one_is_durable() {
    // Writer-side ground truth, checked end to end: for every crash cell,
    // recovery's chosen base equals the newest snapshot whose seal landed
    // before the crash — and both the snapshot path and the genesis
    // fallback actually occur somewhere in the grid.
    let stmts = script();
    let dialect = Dialect::Sqlite;
    let checkpoints: &[usize] = &[3];
    let total = total_ops_with(&stmts, dialect, checkpoints);
    let mut from_snapshot = 0u32;
    let mut from_genesis = 0u32;
    for op in 0..=total {
        for mode in modes_at(op) {
            let plan = if op == total {
                FaultPlan::none()
            } else {
                FaultPlan { crash_op: op, mode }
            };
            let db = faulted_run(&stmts, dialect, checkpoints, plan);
            let wal = db.wal().unwrap();
            let truth = wal.durable_snapshot_stmts();
            let (_, info) = recover_detailed(
                wal.image(),
                wal.snapshot_image(),
                dialect,
                &BugRegistry::none(),
            )
            .unwrap();
            assert_eq!(
                info.snapshot_stmts, truth,
                "op {op}: base {:?} != durable snapshot {:?}",
                info.snapshot_stmts, truth
            );
            match truth {
                Some(_) => from_snapshot += 1,
                None => from_genesis += 1,
            }
        }
    }
    assert!(from_snapshot > 0, "no cell recovered from a snapshot");
    assert!(from_genesis > 0, "no cell exercised the genesis fallback");
}

#[test]
fn every_recovery_mutant_diverges_somewhere_in_the_grid() {
    // All ten mutants — the five log-replay ones and the five
    // checkpoint-path ones — across the genesis schedule and both
    // checkpointed schedules. Each must diverge in at least one cell.
    let stmts = script();
    let dialect = Dialect::Sqlite;
    let schedules: [&[usize]; 3] = [&[], SCHEDULES[0], SCHEDULES[1]];
    for bug in RecoveryBugId::ALL {
        let bugs = BugRegistry::only_recovery(bug);
        let mut hit = false;
        'grid: for checkpoints in schedules {
            let total = total_ops_with(&stmts, dialect, checkpoints);
            for op in 0..=total {
                for mode in modes_at(op) {
                    let plan = if op == total {
                        FaultPlan::none()
                    } else {
                        FaultPlan { crash_op: op, mode }
                    };
                    if recovery_divergence_checkpointed(&stmts, checkpoints, &plan, dialect, &bugs)
                        .is_some()
                    {
                        hit = true;
                        break 'grid;
                    }
                }
            }
        }
        assert!(hit, "{} never diverged across the grid", bug.name());
    }
}

/// Every media fault site × mode the plan can express over a scenario:
/// bit rot at scattered positions in either image, transient read faults
/// on both sides of the retry cap, permanent read faults, and disk-full
/// at every append op.
fn media_cells(total: u64) -> Vec<MediaPlan> {
    let mut cells = Vec::new();
    for site in [StorageSite::Log, StorageSite::Snapshot] {
        // Bit selectors scattered by a prime so rot lands in length
        // fields, checksums, tags and values alike (the selector wraps
        // modulo the image's bit length).
        for k in 0..24u64 {
            cells.push(MediaPlan {
                site,
                mode: MediaMode::Rot {
                    bit_sel: k.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                },
            });
        }
        for failures in 1..=READ_RETRY_CAP + 2 {
            cells.push(MediaPlan {
                site,
                mode: MediaMode::TransientRead { failures },
            });
        }
        cells.push(MediaPlan {
            site,
            mode: MediaMode::PermanentRead,
        });
    }
    for at_op in 0..=total {
        cells.push(MediaPlan {
            site: StorageSite::Log,
            mode: MediaMode::NoSpace { at_op },
        });
    }
    cells
}

#[test]
fn exhaustive_media_grid_is_detected_or_identical() {
    // The media half of the grid: every media fault site × mode × dialect
    // on a checkpointed scenario must be either detected (scrub finding /
    // structured storage error) or harmless (recovery byte-identical to
    // the committed-prefix oracle, salvage landing on a sound prefix).
    let stmts = script();
    let checkpoints: &[usize] = &[3];
    for dialect in DIALECTS {
        let total = total_ops_with(&stmts, dialect, checkpoints);
        for media in media_cells(total) {
            let diverged = recovery_divergence_media(
                &stmts,
                checkpoints,
                &FaultPlan::none(),
                &media,
                dialect,
                &BugRegistry::none(),
            );
            assert_eq!(
                diverged,
                None,
                "{dialect}: media fault neither detected nor harmless under {}",
                media.describe()
            );
        }
    }
}

#[test]
fn crash_and_media_faults_compose_in_the_same_grid() {
    // Both fault axes at once, sampled: a write-path crash tears the tail
    // while the media plan rots the at-rest image / fails reads / fills
    // the disk. The detect-or-identical contract must hold per cell.
    let stmts = script();
    let dialect = Dialect::Sqlite;
    let checkpoints: &[usize] = &[3];
    let total = total_ops_with(&stmts, dialect, checkpoints);
    for op in (0..total).step_by(7) {
        for mode in modes_at(op) {
            let plan = FaultPlan { crash_op: op, mode };
            for media in [
                MediaPlan {
                    site: StorageSite::Log,
                    mode: MediaMode::Rot {
                        bit_sel: op.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    },
                },
                MediaPlan {
                    site: StorageSite::Snapshot,
                    mode: MediaMode::Rot {
                        bit_sel: op.wrapping_add(41),
                    },
                },
                MediaPlan {
                    site: StorageSite::Log,
                    mode: MediaMode::TransientRead {
                        failures: (op % (READ_RETRY_CAP as u64 + 2) + 1) as u32,
                    },
                },
                MediaPlan {
                    site: StorageSite::Snapshot,
                    mode: MediaMode::NoSpace { at_op: op / 2 },
                },
            ] {
                let diverged = recovery_divergence_media(
                    &stmts,
                    checkpoints,
                    &plan,
                    &media,
                    dialect,
                    &BugRegistry::none(),
                );
                assert_eq!(
                    diverged,
                    None,
                    "composed faults broke the contract: {} + {}",
                    plan.describe(),
                    media.describe()
                );
            }
        }
    }
}

#[test]
fn every_media_mutant_diverges_somewhere_in_the_media_grid() {
    // Each of the five media-fault mutants must produce at least one
    // divergence across the media grid — and the divergence must vanish
    // on the clean engine (the cell is a true mutant witness).
    let stmts = script();
    let dialect = Dialect::Sqlite;
    let checkpoints: &[usize] = &[3];
    let total = total_ops_with(&stmts, dialect, checkpoints);
    for bug in MediaBugId::ALL {
        let bugs = BugRegistry::only_media(bug);
        let mut witness = None;
        for media in media_cells(total) {
            if recovery_divergence_media(
                &stmts,
                checkpoints,
                &FaultPlan::none(),
                &media,
                dialect,
                &bugs,
            )
            .is_some()
            {
                witness = Some(media);
                break;
            }
        }
        let media = witness
            .unwrap_or_else(|| panic!("{} never diverged across the media grid", bug.name()));
        assert_eq!(
            recovery_divergence_media(
                &stmts,
                checkpoints,
                &FaultPlan::none(),
                &media,
                dialect,
                &BugRegistry::none(),
            ),
            None,
            "{}: witness cell {} also fails on a clean engine",
            bug.name(),
            media.describe()
        );
    }
}

#[test]
fn engine_mutants_cancel_out_of_the_checkpointed_differential() {
    // An injected engine mutant corrupts the faulted and reference runs
    // identically — snapshots serialize the post-mutant in-memory state
    // exactly like WAL records do — so the checkpointed differential
    // stays quiet on a sample of the grid.
    let stmts = script();
    let bugs = BugRegistry::only(coddb::BugId::SqliteLikeCaseFold);
    let dialect = Dialect::Sqlite;
    for checkpoints in SCHEDULES {
        let total = total_ops_with(&stmts, dialect, checkpoints);
        for op in (0..=total).step_by(5) {
            for mode in modes_at(op) {
                let plan = if op == total {
                    FaultPlan::none()
                } else {
                    FaultPlan { crash_op: op, mode }
                };
                assert_eq!(
                    recovery_divergence_checkpointed(&stmts, checkpoints, &plan, dialect, &bugs),
                    None,
                    "engine mutant leaked into the checkpointed differential at op {op}"
                );
            }
        }
    }
}

#[test]
fn durable_mode_never_changes_query_semantics() {
    let stmts = script();
    for dialect in DIALECTS {
        let mut volatile = Database::new(dialect);
        let mut durable = Database::new(dialect);
        durable.set_storage_mode(StorageMode::Durable);
        for s in &stmts {
            let a = volatile.execute(s).expect("volatile");
            let b = durable.execute(s).expect("durable");
            assert_eq!(a, b, "{dialect}: outcomes diverge on {s}");
        }
        assert_eq!(volatile.dump_state(), durable.dump_state());
    }
}

/// Indexed-table cell of the grid: a script whose table carries a
/// bare-column ordered index — real [`OrdIndex`] seek data, unlike the
/// expression index in [`SCRIPT`], which is metadata-only — with DML that
/// forces index maintenance (re-keying update, delete) into the log.
const INDEXED_SCRIPT: &str = "
    CREATE TABLE ti (k INT, s TEXT);
    CREATE INDEX ik ON ti (k);
    INSERT INTO ti VALUES (1, 'a'), (NULL, 'b'), (2, NULL), (2, 'c'), (5, 'd');
    UPDATE ti SET k = 4 WHERE s = 'c';
    INSERT INTO ti VALUES (0, 'e'), (2, 'f'), (NULL, 'g');
    DELETE FROM ti WHERE k = 5;
";

/// Seek-eligible probes run over the recovered state: point, range,
/// ordered (sort-eliminated), and residual-conjunct shapes.
const SEEK_PROBES: &[&str] = &[
    "SELECT * FROM ti WHERE k = 2",
    "SELECT * FROM ti WHERE k > 1",
    "SELECT * FROM ti WHERE k >= 0 ORDER BY k",
    "SELECT * FROM ti WHERE k < 4 ORDER BY k DESC",
    "SELECT COUNT(*) FROM ti WHERE k = 2 AND s IS NOT NULL",
    "SELECT * FROM ti ORDER BY k LIMIT 3",
];

#[test]
fn indexed_table_grid_recovers_and_seeks_match_scan_only() {
    // Two contracts per crash cell: (1) the committed-prefix oracle holds
    // with index maintenance interleaved in the log, and (2) the index
    // rebuilt after replay serves seeks byte-identically — results,
    // coverage bitsets, and fuel — to a ScanOnly run over the same
    // recovered images.
    let stmts = coddb::parser::parse_statements(INDEXED_SCRIPT).expect("indexed script parses");
    for dialect in DIALECTS {
        let total = total_ops(&stmts, dialect);
        for op in 0..=total {
            let plan = FaultPlan {
                crash_op: op,
                mode: FaultMode::Lost,
            };
            assert_eq!(
                recovery_divergence(&stmts, &plan, dialect, &BugRegistry::none()),
                None,
                "{dialect}: indexed-table recovery diverged under {}",
                plan.describe()
            );
            let db = faulted_run(&stmts, dialect, &[], plan);
            let wal = db.wal().unwrap();
            let probe = |mode: AccessMode| {
                let (mut rec, _) = recover_detailed(
                    wal.image(),
                    wal.snapshot_image(),
                    dialect,
                    &BugRegistry::none(),
                )
                .unwrap();
                // Whenever CREATE INDEX committed, replay must have
                // rebuilt the ordered data, not just the definition.
                if let Some(ix) = rec.catalog().index("ik") {
                    assert!(
                        ix.data.is_some(),
                        "{dialect} op {op}: recovered index has no seek data"
                    );
                }
                rec.set_access_mode(mode);
                let mut out = Vec::new();
                for sql in SEEK_PROBES {
                    out.push(match rec.execute_sql(sql) {
                        Ok(o) => format!("{o:?}"),
                        Err(e) => format!("error: {e}"),
                    });
                }
                (out, rec.coverage().hit_points(), rec.fuel_used())
            };
            let (idx_out, idx_cov, idx_fuel) = probe(AccessMode::Indexed);
            let (scan_out, scan_cov, scan_fuel) = probe(AccessMode::ScanOnly);
            assert_eq!(
                idx_out, scan_out,
                "{dialect} op {op}: post-recovery seeks disagree with ScanOnly"
            );
            assert_eq!(
                idx_cov, scan_cov,
                "{dialect} op {op}: post-recovery coverage diverges"
            );
            assert_eq!(
                idx_fuel, scan_fuel,
                "{dialect} op {op}: post-recovery fuel diverges"
            );
        }
    }
}

#[test]
fn seeded_fault_plans_reproduce_their_scenario_exactly() {
    let stmts = script();
    let dialect = Dialect::Duckdb;
    let total = total_ops(&stmts, dialect);
    for seed in 0..32u64 {
        let a = FaultPlan::seeded(seed, total);
        let b = FaultPlan::seeded(seed, total);
        assert_eq!(a, b, "seed {seed} not deterministic");
        // The scenario itself reproduces end-to-end: same seed, same
        // surviving image, same recovered state.
        let run = |plan: FaultPlan| {
            let mut db = Database::new(dialect);
            db.set_storage_mode(StorageMode::Durable);
            db.set_fault_plan(plan);
            for s in &stmts {
                let _ = db.execute(s);
            }
            (
                db.wal().unwrap().image().to_vec(),
                db.wal().unwrap().committed_statements(),
            )
        };
        let (img_a, com_a) = run(a);
        let (img_b, com_b) = run(b);
        assert_eq!(img_a, img_b, "seed {seed}: images differ");
        assert_eq!(com_a, com_b, "seed {seed}: commit counts differ");
        let rec_a = coddb::recovery::recover(&img_a, &[], dialect, &BugRegistry::none()).unwrap();
        let rec_b = coddb::recovery::recover(&img_b, &[], dialect, &BugRegistry::none()).unwrap();
        assert_eq!(rec_a.dump_state(), rec_b.dump_state());
    }
}
