//! Checkpoint-path integration: snapshot+suffix recovery, fallback to the
//! previous sealed snapshot, and the fuel-accounting contract of replay.
//!
//! The exhaustive grid lives in `wal_recovery.rs`; this suite pins the
//! *qualitative* behaviors the grid only checks in aggregate — which base
//! recovery chose, what the snapshot file looks like after a mid-run
//! crash, and that recovery neither charges execution fuel nor behaves
//! differently when the writer ran under a tight fuel limit.

use coddb::bugs::BugRegistry;
use coddb::recovery::{recover, recover_detailed, scan_snapshots};
use coddb::wal::{FaultMode, FaultPlan, StorageMode};
use coddb::{ast::Statement, AccessMode, Database, Dialect};

fn parse(sql: &str) -> Vec<Statement> {
    coddb::parser::parse_statements(sql).expect("script parses")
}

fn durable(dialect: Dialect) -> Database {
    let mut db = Database::new(dialect);
    db.set_storage_mode(StorageMode::Durable);
    db
}

/// Execute `script` durably under `plan`, checkpointing after the
/// statement indices in `checkpoints`.
fn run_with(
    script: &[Statement],
    checkpoints: &[usize],
    plan: FaultPlan,
    dialect: Dialect,
) -> Database {
    let mut db = durable(dialect);
    db.set_fault_plan(plan);
    for (i, s) in script.iter().enumerate() {
        let _ = db.execute(s);
        if checkpoints.contains(&i) {
            let _ = db.checkpoint();
        }
    }
    db
}

#[test]
fn pre_checkpoint_world_recovers_from_genesis() {
    let mut db = durable(Dialect::Sqlite);
    db.execute_sql("CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2)")
        .unwrap();
    let w = db.wal().unwrap();
    assert!(w.snapshot_image().is_empty());
    let (rec, info) = recover_detailed(
        w.image(),
        w.snapshot_image(),
        Dialect::Sqlite,
        &BugRegistry::none(),
    )
    .unwrap();
    assert_eq!(info.snapshot_stmts, None, "no checkpoint yet: genesis");
    assert_eq!(info.snapshots_scanned, 0);
    assert_eq!(rec.dump_state(), db.dump_state());
}

#[test]
fn crash_in_suffix_recovers_from_snapshot_plus_suffix() {
    let script = parse(
        "CREATE TABLE t (a INT);
         INSERT INTO t VALUES (1), (2);
         INSERT INTO t VALUES (3);
         INSERT INTO t VALUES (4)",
    );
    // Checkpoint after stmt 1; count ops, then crash in the log suffix
    // (the very last op: stmt 3's commit marker is lost).
    let clean = run_with(&script, &[1], FaultPlan::none(), Dialect::Sqlite);
    let total = clean.wal().unwrap().ops();
    let crashed = run_with(
        &script,
        &[1],
        FaultPlan {
            crash_op: total - 1,
            mode: FaultMode::Lost,
        },
        Dialect::Sqlite,
    );
    let w = crashed.wal().unwrap();
    assert_eq!(w.durable_snapshot_stmts(), Some(2));
    assert_eq!(w.committed_statements(), 3, "stmt 3's commit was the crash");
    let (rec, info) = recover_detailed(
        w.image(),
        w.snapshot_image(),
        Dialect::Sqlite,
        &BugRegistry::none(),
    )
    .unwrap();
    assert_eq!(info.snapshot_stmts, Some(2), "base is the snapshot");
    let rows = &rec.catalog().table("t").unwrap().rows;
    let vals: Vec<i64> = rows
        .iter()
        .map(|r| match r[0] {
            coddb::Value::Int(i) => i,
            ref v => panic!("unexpected {v:?}"),
        })
        .collect();
    assert_eq!(vals, vec![1, 2, 3], "committed prefix, uncommitted 4 gone");
}

#[test]
fn crash_between_marker_and_truncation_does_not_double_apply() {
    let script = parse(
        "CREATE TABLE t (a INT);
         INSERT INTO t VALUES (1), (2)",
    );
    // The truncation is the checkpoint's last op. Crash exactly there:
    // the marker and the whole pre-checkpoint log survive together, so
    // replay must skip every commit the snapshot already covers.
    let clean = run_with(&script, &[1], FaultPlan::none(), Dialect::Sqlite);
    let total = clean.wal().unwrap().ops();
    let crashed = run_with(
        &script,
        &[1],
        FaultPlan {
            crash_op: total - 1,
            mode: FaultMode::Lost,
        },
        Dialect::Sqlite,
    );
    let w = crashed.wal().unwrap();
    assert_eq!(
        w.crash_site(),
        Some(coddb::wal::CrashSite::Truncate),
        "the crash must land on the truncation step"
    );
    assert!(!w.image().is_empty(), "truncation lost: log survives whole");
    let (rec, info) = recover_detailed(
        w.image(),
        w.snapshot_image(),
        Dialect::Sqlite,
        &BugRegistry::none(),
    )
    .unwrap();
    assert_eq!(info.snapshot_stmts, Some(2));
    assert_eq!(
        rec.catalog().table("t").unwrap().rows.len(),
        2,
        "overlapped commits must not double-apply"
    );
    assert_eq!(rec.dump_state(), clean.dump_state());
}

#[test]
fn torn_second_snapshot_falls_back_to_the_first() {
    let script = parse(
        "CREATE TABLE t (a INT);
         INSERT INTO t VALUES (1);
         INSERT INTO t VALUES (2)",
    );
    // Find the second checkpoint's snapshot-write window by crashing at
    // every op and looking for: first seal durable, second not.
    let clean = run_with(&script, &[0, 2], FaultPlan::none(), Dialect::Sqlite);
    let total = clean.wal().unwrap().ops();
    let mut exercised = false;
    for op in 0..total {
        let crashed = run_with(
            &script,
            &[0, 2],
            FaultPlan {
                crash_op: op,
                mode: FaultMode::Torn { keep_sel: op + 1 },
            },
            Dialect::Sqlite,
        );
        let w = crashed.wal().unwrap();
        if w.durable_snapshot_stmts() != Some(1) {
            continue;
        }
        exercised = true;
        let snaps = scan_snapshots(w.snapshot_image(), &BugRegistry::none()).unwrap();
        let (_, info) = recover_detailed(
            w.image(),
            w.snapshot_image(),
            Dialect::Sqlite,
            &BugRegistry::none(),
        )
        .unwrap();
        assert_eq!(
            info.snapshot_stmts,
            Some(1),
            "op {op}: must fall back to the first sealed snapshot \
             ({} snapshots on file)",
            snaps.len()
        );
    }
    assert!(exercised, "no crash point left only the first seal durable");
}

#[test]
fn snapshot_plus_suffix_rebuilds_indexes_that_seek_like_scan_only() {
    // Ordered-index data is never serialized — not in WAL records, not in
    // snapshots — so a database rebuilt from snapshot+suffix must
    // reconstruct it deterministically from the recovered rows. The
    // recovered engine must actually *plan* seeks, and those seeks must
    // agree byte-identically with the ScanOnly baseline over the same
    // images, at every crash point in the suffix.
    let script = parse(
        "CREATE TABLE t (k INT, s TEXT);
         CREATE INDEX ik ON t (k);
         INSERT INTO t VALUES (1, 'a'), (NULL, 'b'), (2, NULL), (2, 'c'), (5, 'd');
         UPDATE t SET k = 4 WHERE s = 'c';
         INSERT INTO t VALUES (0, 'e'), (2, 'f'), (NULL, 'g');
         DELETE FROM t WHERE k = 5",
    );
    const PROBES: &[&str] = &[
        "SELECT * FROM t WHERE k = 2",
        "SELECT * FROM t WHERE k > 1 ORDER BY k",
        "SELECT * FROM t WHERE k < 4 ORDER BY k DESC",
        "SELECT COUNT(*) FROM t WHERE k = 2 AND s IS NOT NULL",
    ];
    // Checkpoint after the bulk insert: the snapshot holds index *rows*
    // but no index data; every later crash recovers snapshot + suffix.
    let checkpoints = &[2usize];
    let clean = run_with(&script, checkpoints, FaultPlan::none(), Dialect::Sqlite);
    let total = clean.wal().unwrap().ops();
    let mut from_snapshot = 0u32;
    for op in 0..=total {
        let plan = FaultPlan {
            crash_op: op,
            mode: FaultMode::Lost,
        };
        let crashed = run_with(&script, checkpoints, plan, Dialect::Sqlite);
        let w = crashed.wal().unwrap();
        let probe = |mode: AccessMode| {
            let (mut rec, info) = recover_detailed(
                w.image(),
                w.snapshot_image(),
                Dialect::Sqlite,
                &BugRegistry::none(),
            )
            .unwrap();
            if let Some(ix) = rec.catalog().index("ik") {
                assert!(
                    ix.data.is_some(),
                    "op {op}: recovered index definition has no seek data"
                );
            }
            rec.set_access_mode(mode);
            let mut out = Vec::new();
            for sql in PROBES {
                out.push(match rec.execute_sql(sql) {
                    Ok(o) => format!("{o:?}"),
                    Err(e) => format!("error: {e}"),
                });
            }
            (out, rec.coverage().hit_points(), rec.fuel_used(), info)
        };
        let (idx_out, idx_cov, idx_fuel, info) = probe(AccessMode::Indexed);
        let (scan_out, scan_cov, scan_fuel, _) = probe(AccessMode::ScanOnly);
        if info.snapshot_stmts.is_some() {
            from_snapshot += 1;
        }
        assert_eq!(
            idx_out, scan_out,
            "op {op}: post-recovery seeks disagree with ScanOnly"
        );
        assert_eq!(idx_cov, scan_cov, "op {op}: coverage diverges");
        assert_eq!(idx_fuel, scan_fuel, "op {op}: fuel diverges");
    }
    assert!(
        from_snapshot > 0,
        "no cell actually recovered from the snapshot"
    );
    // The clean recovery must plan a real seek over the rebuilt index.
    let w = clean.wal().unwrap();
    let (mut rec, _) = recover_detailed(
        w.image(),
        w.snapshot_image(),
        Dialect::Sqlite,
        &BugRegistry::none(),
    )
    .unwrap();
    let explain = rec.explain_sql("SELECT * FROM t WHERE k = 2").unwrap();
    assert!(
        explain.contains("INDEX SEEK"),
        "recovered engine does not seek:\n{explain}"
    );
}

#[test]
fn recovery_charges_no_fuel() {
    // Replay is physical for DML and re-executes only DDL (which consumes
    // no fuel): a recovered engine reports zero fuel even when the writer
    // burned plenty.
    let mut db = durable(Dialect::Sqlite);
    db.execute_sql(
        "CREATE TABLE t (a INT);
         INSERT INTO t VALUES (1), (2), (3), (4);
         UPDATE t SET a = a + 1 WHERE a > 0;
         DELETE FROM t WHERE a > 4",
    )
    .unwrap();
    assert!(db.fuel_used() > 0, "writer burned fuel");
    db.checkpoint().unwrap();
    db.execute_sql("INSERT INTO t VALUES (9)").unwrap();
    let w = db.wal().unwrap();
    let rec = recover(
        w.image(),
        w.snapshot_image(),
        Dialect::Sqlite,
        &BugRegistry::none(),
    )
    .unwrap();
    assert_eq!(rec.dump_state(), db.dump_state());
    assert_eq!(rec.fuel_used(), 0, "replay must not charge execution fuel");
}

#[test]
fn checkpoint_consumes_no_fuel_and_preserves_state() {
    let mut db = durable(Dialect::Sqlite);
    db.execute_sql("CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2)")
        .unwrap();
    let fuel_before = db.fuel_used();
    let state_before = db.dump_state();
    db.checkpoint().unwrap();
    assert_eq!(db.fuel_used(), fuel_before, "checkpoint is fuel-free");
    assert_eq!(db.dump_state(), state_before, "checkpoint is state-free");
}

#[test]
fn tight_fuel_limits_recover_identically() {
    // A writer under a tight fuel limit errors some statements (logging
    // nothing for them); recovery must reconstruct exactly the surviving
    // committed prefix — the same state an in-memory engine under the
    // same limit holds — and must not trip any limit itself.
    let script = parse(
        "CREATE TABLE t (a INT);
         INSERT INTO t VALUES (1), (2), (3), (4), (5), (6);
         UPDATE t SET a = a * 2 WHERE a > 1;
         INSERT INTO t VALUES (7);
         DELETE FROM t WHERE a > 100",
    );
    for limit in [1u64, 3, 6, 20, 1000] {
        for checkpoints in [&[][..], &[1][..]] {
            let mut w = durable(Dialect::Sqlite);
            w.set_fuel_limit(limit);
            let mut failures = 0;
            for (i, s) in script.iter().enumerate() {
                if w.execute(s).is_err() {
                    failures += 1;
                }
                if checkpoints.contains(&i) {
                    w.checkpoint().unwrap();
                }
            }
            // Reference: the same limit, in-memory only.
            let mut r = Database::new(Dialect::Sqlite);
            r.set_fuel_limit(limit);
            let mut ref_failures = 0;
            for s in &script {
                if r.execute(s).is_err() {
                    ref_failures += 1;
                }
            }
            assert_eq!(failures, ref_failures, "limit {limit}: fuel trips differ");
            let wal = w.wal().unwrap();
            let rec = recover(
                wal.image(),
                wal.snapshot_image(),
                Dialect::Sqlite,
                &BugRegistry::none(),
            )
            .unwrap();
            assert_eq!(
                rec.dump_state(),
                r.dump_state(),
                "limit {limit}, checkpoints {checkpoints:?}: recovered state diverges"
            );
            assert_eq!(rec.fuel_used(), 0, "limit {limit}: replay charged fuel");
        }
    }
}

// ---------------------------------------------------------------------------
// Media-fault degradation: disk-full aborts, bounded-retry reads, scrub.
// ---------------------------------------------------------------------------

#[test]
fn nospace_aborts_the_statement_cleanly_and_the_session_keeps_serving() {
    use coddb::error::{Error, Severity, StorageFaultKind};
    use coddb::wal::{MediaMode, MediaPlan};

    let mut db = durable(Dialect::Sqlite);
    db.execute_sql("CREATE TABLE t (a INT); INSERT INTO t VALUES (1)")
        .unwrap();
    let full_at = db.wal().unwrap().ops();
    db.set_media_plan(MediaPlan {
        site: coddb::error::StorageSite::Log,
        mode: MediaMode::NoSpace { at_op: full_at },
    });

    // The next DML is refused by the medium: structured error, Expected
    // severity (graceful degradation, not a bug signal), no state change.
    let err = db.execute_sql("INSERT INTO t VALUES (2)").unwrap_err();
    match &err {
        Error::Storage(se) => {
            assert!(
                matches!(se.kind, StorageFaultKind::NoSpace { .. }),
                "{se:?}"
            );
        }
        other => panic!("expected a storage error, got {other:?}"),
    }
    assert_eq!(err.severity(), Severity::Expected);
    assert_eq!(err.category(), "storage");
    assert_eq!(
        db.catalog().table("t").unwrap().rows.len(),
        1,
        "aborted INSERT must not land"
    );

    // The session keeps serving reads, and later writes keep failing —
    // the disk stays full.
    db.execute_sql("SELECT * FROM t").unwrap();
    assert!(db.execute_sql("INSERT INTO t VALUES (3)").is_err());
    assert_eq!(db.wal().unwrap().committed_statements(), 2);

    // Recovery sees exactly the committed prefix.
    let wal = db.wal().unwrap();
    let rec = recover(
        wal.image(),
        wal.snapshot_image(),
        Dialect::Sqlite,
        &BugRegistry::none(),
    )
    .unwrap();
    assert_eq!(rec.dump_state(), db.dump_state());
}

#[test]
fn nospace_rolls_back_ddl_catalog_mutations() {
    use coddb::error::Error;
    use coddb::wal::{MediaMode, MediaPlan};

    let mut db = durable(Dialect::Sqlite);
    db.execute_sql("CREATE TABLE t (a INT)").unwrap();
    let full_at = db.wal().unwrap().ops();
    db.set_media_plan(MediaPlan {
        site: coddb::error::StorageSite::Log,
        mode: MediaMode::NoSpace { at_op: full_at },
    });

    // DDL mutates the catalog before logging; a refused append must roll
    // that mutation back — the un-logged table would otherwise vanish on
    // recovery while the live session still saw it.
    let err = db.execute_sql("CREATE TABLE u (x INT)").unwrap_err();
    assert!(matches!(err, Error::Storage(_)), "{err:?}");
    assert!(
        db.catalog().table("u").is_err(),
        "rolled-back DDL left the table in the catalog"
    );
    db.execute_sql("SELECT * FROM t").unwrap();
}

#[test]
fn scrub_quarantines_bit_rot_and_salvage_recovers_a_prefix() {
    use coddb::error::StorageSite;
    use coddb::recovery::{recover_with_policy, RecoveryPolicy};
    use coddb::wal::{MediaMode, MediaPlan};

    let mut db = durable(Dialect::Sqlite);
    db.execute_sql(
        "CREATE TABLE t (a INT);
         INSERT INTO t VALUES (1);
         INSERT INTO t VALUES (2);
         INSERT INTO t VALUES (3)",
    )
    .unwrap();
    // Rot a bit in the middle of the at-rest log image.
    let log_bits = db.wal().unwrap().image().len() as u64 * 8;
    db.set_media_plan(MediaPlan {
        site: StorageSite::Log,
        mode: MediaMode::Rot {
            bit_sel: log_bits / 2,
        },
    });
    db.degrade_media();

    let report = db.scrub().unwrap();
    assert!(!report.clean(), "rot went unnoticed");
    assert!(
        report.damage().next().is_some(),
        "mid-image rot must be damage, not a tail artifact: {:?}",
        report.findings
    );
    assert!(report.findings.iter().all(|f| f.site == StorageSite::Log));

    // Salvage recovers a committed prefix (never past the damage).
    let wal = db.wal().unwrap();
    let (rec, _) = recover_with_policy(
        wal.image(),
        wal.snapshot_image(),
        Dialect::Sqlite,
        &BugRegistry::none(),
        RecoveryPolicy::Salvage,
    )
    .unwrap();
    let rows = rec.catalog().table("t").map(|t| t.rows.len()).unwrap_or(0);
    assert!(rows < 3, "salvage kept state past the damage ({rows} rows)");
}

#[test]
fn transient_reads_heal_within_the_cap_and_fail_stop_beyond() {
    use coddb::error::{Error, Severity, StorageFaultKind};
    use coddb::wal::{MediaMode, MediaPlan, READ_RETRY_CAP};

    let mut db = durable(Dialect::Sqlite);
    db.execute_sql("CREATE TABLE t (a INT); INSERT INTO t VALUES (1)")
        .unwrap();

    // Within the cap: the bounded retry schedule heals the fault and
    // scrub completes.
    db.set_media_plan(MediaPlan {
        site: coddb::error::StorageSite::Log,
        mode: MediaMode::TransientRead {
            failures: READ_RETRY_CAP,
        },
    });
    db.degrade_media();
    let report = db.scrub().unwrap();
    assert!(
        report.clean(),
        "healed read left findings: {:?}",
        report.findings
    );

    // Beyond the cap: a structured read fault surfaces instead of a hang
    // or a silent empty image.
    db.set_media_plan(MediaPlan {
        site: coddb::error::StorageSite::Log,
        mode: MediaMode::TransientRead {
            failures: READ_RETRY_CAP + 1,
        },
    });
    db.degrade_media();
    let err = db.scrub().unwrap_err();
    match &err {
        Error::Storage(se) => match se.kind {
            StorageFaultKind::ReadFault {
                attempts,
                permanent,
            } => {
                assert_eq!(attempts, READ_RETRY_CAP + 1);
                assert!(!permanent);
            }
            other => panic!("expected a read fault, got {other:?}"),
        },
        other => panic!("expected a storage error, got {other:?}"),
    }
    assert_eq!(err.severity(), Severity::Expected);
}

#[test]
fn scrub_requires_durable_storage() {
    let mut db = Database::new(Dialect::Sqlite);
    assert!(
        db.scrub().is_err(),
        "volatile engines have nothing to scrub"
    );
}
