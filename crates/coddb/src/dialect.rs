//! Dialect profiles.
//!
//! The paper evaluates five DBMSs whose *semantic* differences matter to the
//! oracles (§3.3 "Implementation details"): strict vs. flexible typing,
//! implicit boolean casts, `ANY`/`ALL` support, division-by-zero behaviour,
//! and integer division. CoddDB encodes each target as a profile of the same
//! engine so that generators and oracles can adapt exactly the way the
//! paper's SQLancer implementation does.

use std::fmt;

/// The five emulated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dialect {
    Sqlite,
    Mysql,
    Cockroach,
    Duckdb,
    Tidb,
}

impl Dialect {
    pub const ALL: [Dialect; 5] = [
        Dialect::Sqlite,
        Dialect::Mysql,
        Dialect::Cockroach,
        Dialect::Duckdb,
        Dialect::Tidb,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Dialect::Sqlite => "SQLite",
            Dialect::Mysql => "MySQL",
            Dialect::Cockroach => "CockroachDB",
            Dialect::Duckdb => "DuckDB",
            Dialect::Tidb => "TiDB",
        }
    }

    /// Strict typing: binary operators demand compatible operand types and
    /// predicates must be boolean-typed (paper: CockroachDB, DuckDB).
    pub fn strict_types(self) -> bool {
        matches!(self, Dialect::Cockroach | Dialect::Duckdb)
    }

    /// Whether a non-boolean value used as a predicate is implicitly
    /// interpreted as a truth value (SQLite/MySQL/TiDB numeric truthiness).
    pub fn implicit_boolean_cast(self) -> bool {
        !self.strict_types()
    }

    /// `ANY`/`ALL` quantified comparisons (paper: unsupported in SQLite and
    /// DuckDB; MySQL/TiDB accept only subquery operands).
    pub fn supports_quantified(self) -> bool {
        !matches!(self, Dialect::Sqlite | Dialect::Duckdb)
    }

    /// Whether integer division produces a real (MySQL `/`) or truncates.
    pub fn int_div_yields_real(self) -> bool {
        matches!(self, Dialect::Mysql | Dialect::Tidb | Dialect::Duckdb)
    }

    /// Division by zero: SQLite and MySQL yield NULL, the strict systems
    /// raise an (expected) error.
    pub fn div_by_zero_is_null(self) -> bool {
        matches!(self, Dialect::Sqlite | Dialect::Mysql | Dialect::Tidb)
    }

    /// ASCII-case-insensitive `LIKE` (SQLite, MySQL, TiDB).
    pub fn like_case_insensitive(self) -> bool {
        matches!(self, Dialect::Sqlite | Dialect::Mysql | Dialect::Tidb)
    }

    /// The `typeof()` spelling (`pg_typeof` on CockroachDB), kept for
    /// fidelity with the paper's implementation notes.
    pub fn typeof_function_name(self) -> &'static str {
        match self {
            Dialect::Cockroach => "PG_TYPEOF",
            _ => "TYPEOF",
        }
    }

    /// `VERSION()` string reported by the engine under this profile.
    pub fn version_string(self) -> &'static str {
        match self {
            Dialect::Sqlite => "3.46.0-codddb",
            Dialect::Mysql => "8.0.39-codddb",
            Dialect::Cockroach => "v24.1.0-codddb",
            Dialect::Duckdb => "v1.0.0-codddb",
            Dialect::Tidb => "8.0.11-TiDB-v8.1.0-codddb",
        }
    }

    /// Whether untyped (`ANY`) columns are allowed in `CREATE TABLE`
    /// (SQLite's `CREATE TABLE t0 (c0)`).
    pub fn allows_untyped_columns(self) -> bool {
        matches!(self, Dialect::Sqlite)
    }

    /// Whether `INDEXED BY` hints are accepted (SQLite only).
    pub fn supports_indexed_by(self) -> bool {
        matches!(self, Dialect::Sqlite)
    }
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strictness_matches_paper_implementation_notes() {
        // §3.3: "Some DBMSs follow strict data type rules ... DuckDB and
        // CockroachDB"; SQLite and MySQL convert automatically.
        assert!(Dialect::Cockroach.strict_types());
        assert!(Dialect::Duckdb.strict_types());
        assert!(!Dialect::Sqlite.strict_types());
        assert!(!Dialect::Mysql.strict_types());
        assert!(!Dialect::Tidb.strict_types());
    }

    #[test]
    fn quantified_support_matches_paper() {
        // §3.3: "ALL and ANY are not supported in SQLite and DuckDB".
        assert!(!Dialect::Sqlite.supports_quantified());
        assert!(!Dialect::Duckdb.supports_quantified());
        assert!(Dialect::Mysql.supports_quantified());
        assert!(Dialect::Tidb.supports_quantified());
        assert!(Dialect::Cockroach.supports_quantified());
    }

    #[test]
    fn all_profile_list_is_complete() {
        assert_eq!(Dialect::ALL.len(), 5);
        for d in Dialect::ALL {
            assert!(!d.name().is_empty());
            assert!(!d.version_string().is_empty());
        }
    }
}
