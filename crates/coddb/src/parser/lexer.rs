//! SQL lexer.

use crate::error::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original spelling preserved).
    Word(String),
    Int(i64),
    Real(f64),
    Str(String),
    /// Punctuation / operator symbol.
    Sym(Sym),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Semi,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Concat,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Token {
    /// Keyword test, case-insensitive.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == '-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::Sym(Sym::LParen));
                i += 1;
            }
            ')' => {
                tokens.push(Token::Sym(Sym::RParen));
                i += 1;
            }
            ',' => {
                tokens.push(Token::Sym(Sym::Comma));
                i += 1;
            }
            '.' if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit() => {
                tokens.push(Token::Sym(Sym::Dot));
                i += 1;
            }
            ';' => {
                tokens.push(Token::Sym(Sym::Semi));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Sym(Sym::Star));
                i += 1;
            }
            '+' => {
                tokens.push(Token::Sym(Sym::Plus));
                i += 1;
            }
            '-' => {
                tokens.push(Token::Sym(Sym::Minus));
                i += 1;
            }
            '/' => {
                tokens.push(Token::Sym(Sym::Slash));
                i += 1;
            }
            '%' => {
                tokens.push(Token::Sym(Sym::Percent));
                i += 1;
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '|' {
                    tokens.push(Token::Sym(Sym::Concat));
                    i += 2;
                } else {
                    return Err(Error::Parse("unexpected '|'".into()));
                }
            }
            '=' => {
                // Accept both `=` and `==`.
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    i += 2;
                } else {
                    i += 1;
                }
                tokens.push(Token::Sym(Sym::Eq));
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    tokens.push(Token::Sym(Sym::Ne));
                    i += 2;
                } else {
                    return Err(Error::Parse("unexpected '!'".into()));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    tokens.push(Token::Sym(Sym::Le));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == '>' {
                    tokens.push(Token::Sym(Sym::Ne));
                    i += 2;
                } else {
                    tokens.push(Token::Sym(Sym::Lt));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    tokens.push(Token::Sym(Sym::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Sym(Sym::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_quoted(&bytes, i, '\'')?;
                tokens.push(Token::Str(s));
                i = next;
            }
            '"' => {
                // CoddDB treats double quotes as string literals (the
                // paper's MySQL listings use "A", "B", "C").
                let (s, next) = lex_quoted(&bytes, i, '"')?;
                tokens.push(Token::Str(s));
                i = next;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < bytes.len() {
                    let d = bytes[i];
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        i += 1;
                    } else if (d == 'e' || d == 'E')
                        && !saw_exp
                        && i + 1 < bytes.len()
                        && (bytes[i + 1].is_ascii_digit()
                            || ((bytes[i + 1] == '+' || bytes[i + 1] == '-')
                                && i + 2 < bytes.len()
                                && bytes[i + 2].is_ascii_digit()))
                    {
                        saw_exp = true;
                        i += 1;
                        if bytes[i] == '+' || bytes[i] == '-' {
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if saw_dot || saw_exp {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| Error::Parse(format!("bad numeric literal {text}")))?;
                    tokens.push(Token::Real(v));
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => tokens.push(Token::Int(v)),
                        // Integer literals beyond i64 degrade to REAL,
                        // like SQLite.
                        Err(_) => tokens
                            .push(Token::Real(text.parse::<f64>().map_err(|_| {
                                Error::Parse(format!("bad numeric literal {text}"))
                            })?)),
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Word(bytes[start..i].iter().collect()));
            }
            other => return Err(Error::Parse(format!("unexpected character {other:?}"))),
        }
    }
    Ok(tokens)
}

fn lex_quoted(bytes: &[char], start: usize, quote: char) -> Result<(String, usize)> {
    let mut s = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == quote {
            if i + 1 < bytes.len() && bytes[i + 1] == quote {
                s.push(quote);
                i += 2;
            } else {
                return Ok((s, i + 1));
            }
        } else {
            s.push(bytes[i]);
            i += 1;
        }
    }
    Err(Error::Parse("unterminated string literal".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_basic_query() {
        let toks = lex("SELECT * FROM t0 WHERE c0 >= -1.5;").unwrap();
        assert!(toks.contains(&Token::Sym(Sym::Star)));
        assert!(toks.contains(&Token::Sym(Sym::Ge)));
        assert!(toks.contains(&Token::Real(1.5)));
        assert!(toks.iter().any(|t| t.is_kw("where")));
    }

    #[test]
    fn string_escapes_and_double_quotes() {
        let toks = lex("'a''b' \"C\"").unwrap();
        assert_eq!(toks[0], Token::Str("a'b".into()));
        assert_eq!(toks[1], Token::Str("C".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(
            toks.iter().filter(|t| matches!(t, Token::Int(_))).count(),
            2
        );
    }

    #[test]
    fn neq_spellings() {
        assert_eq!(lex("<>").unwrap(), vec![Token::Sym(Sym::Ne)]);
        assert_eq!(lex("!=").unwrap(), vec![Token::Sym(Sym::Ne)]);
    }

    #[test]
    fn huge_integer_degrades_to_real() {
        let toks = lex("8628276060272066570000000").unwrap();
        assert!(matches!(toks[0], Token::Real(_)));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'abc").is_err());
    }
}
