//! Recursive-descent SQL parser.
//!
//! Parses the dialect CoddDB speaks (the SQL surface the paper's test
//! cases exercise: SELECT with joins / grouping / set ops / CTEs /
//! subqueries, DML, and the DDL statements the database generator emits).
//! The parser round-trips [`crate::ast::display`]: `parse(render(ast))`
//! reproduces an equivalent AST (verified by property tests).

mod lexer;

pub use lexer::{lex, Sym, Token};

use crate::ast::{
    AggFunc, BinaryOp, ColumnDef, ColumnRef, CompareOp, Cte, Expr, FuncName, InsertSource,
    JoinKind, OrderItem, Quantifier, Select, SelectBody, SelectCore, SelectItem, SetOp, SortOrder,
    Statement, TableExpr, UnaryOp,
};
use crate::error::{Error, Result};
use crate::value::{DataType, Value};

/// Parse a script of `;`-separated statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_sym(Sym::Semi) {}
        if p.at_end() {
            break;
        }
        out.push(p.parse_statement()?);
    }
    Ok(out)
}

/// Parse a single expression (useful in tests and the REPL example).
pub fn parse_expr(sql: &str) -> Result<Expr> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.parse_expr()?;
    p.expect_end()?;
    Ok(e)
}

/// Parse a single SELECT statement.
pub fn parse_select(sql: &str) -> Result<Select> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let s = p.parse_select()?;
    while p.eat_sym(Sym::Semi) {}
    p.expect_end()?;
    Ok(s)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Token> {
        self.tokens.get(self.pos + off)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_end(&self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "trailing tokens at {:?}",
                self.peek()
            )))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Sym(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_sym(&self, s: Sym) -> bool {
        matches!(self.peek(), Some(Token::Sym(x)) if *x == s)
    }

    fn expect_sym(&mut self, s: Sym) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {s:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn parse_identifier(&mut self) -> Result<String> {
        match self.next()? {
            Token::Word(w) if !is_reserved(&w) => Ok(w),
            other => Err(Error::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // -- statements -------------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.peek_kw("SELECT") || self.peek_kw("WITH") || self.peek_kw("VALUES") {
            return Ok(Statement::Select(self.parse_select()?));
        }
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.parse_create_table();
            }
            if self.eat_kw("VIEW") {
                return self.parse_create_view();
            }
            let unique = self.eat_kw("UNIQUE");
            if self.eat_kw("INDEX") {
                return self.parse_create_index(unique);
            }
            return Err(Error::Parse(
                "expected TABLE, VIEW or INDEX after CREATE".into(),
            ));
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let if_exists = if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.parse_identifier()?;
            return Ok(Statement::DropTable { name, if_exists });
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            return self.parse_insert();
        }
        if self.eat_kw("UPDATE") {
            return self.parse_update();
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.parse_identifier()?;
            let where_clause = if self.eat_kw("WHERE") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete {
                table,
                where_clause,
            });
        }
        Err(Error::Parse(format!(
            "unexpected statement start: {:?}",
            self.peek()
        )))
    }

    fn parse_create_table(&mut self) -> Result<Statement> {
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.parse_identifier()?;
        self.expect_sym(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.parse_identifier()?;
            // Optional type name (SQLite allows untyped columns).
            let ty = match self.peek() {
                Some(Token::Word(w)) if DataType::parse(w).is_some() => {
                    let t = DataType::parse(w).unwrap();
                    self.pos += 1;
                    t
                }
                _ => DataType::Any,
            };
            let not_null = if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                true
            } else {
                false
            };
            columns.push(ColumnDef {
                name: col_name,
                ty,
                not_null,
            });
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        Ok(Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn parse_create_view(&mut self) -> Result<Statement> {
        let name = self.parse_identifier()?;
        let mut columns = Vec::new();
        if self.eat_sym(Sym::LParen) {
            loop {
                columns.push(self.parse_identifier()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
        }
        self.expect_kw("AS")?;
        let query = self.parse_select()?;
        Ok(Statement::CreateView {
            name,
            columns,
            query,
        })
    }

    fn parse_create_index(&mut self, unique: bool) -> Result<Statement> {
        let name = self.parse_identifier()?;
        self.expect_kw("ON")?;
        let table = self.parse_identifier()?;
        self.expect_sym(Sym::LParen)?;
        let mut exprs = vec![self.parse_expr()?];
        while self.eat_sym(Sym::Comma) {
            exprs.push(self.parse_expr()?);
        }
        self.expect_sym(Sym::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            exprs,
            unique,
        })
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        let table = self.parse_identifier()?;
        let mut columns = Vec::new();
        if self.peek_sym(Sym::LParen) {
            // Lookahead: `(` here could also start a subquery source; a
            // column list is `(ident, ...)` followed by VALUES/SELECT.
            let save = self.pos;
            self.pos += 1;
            let mut ok = true;
            let mut cols = Vec::new();
            loop {
                match self.peek() {
                    Some(Token::Word(w)) if !is_reserved(w) => {
                        cols.push(w.clone());
                        self.pos += 1;
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
                if self.eat_sym(Sym::Comma) {
                    continue;
                }
                break;
            }
            if ok && self.eat_sym(Sym::RParen) {
                columns = cols;
            } else {
                self.pos = save;
            }
        }
        if self.eat_kw("VALUES") {
            let rows = self.parse_value_rows()?;
            return Ok(Statement::Insert {
                table,
                columns,
                source: InsertSource::Values(rows),
            });
        }
        let q = self.parse_select()?;
        Ok(Statement::Insert {
            table,
            columns,
            source: InsertSource::Query(q),
        })
    }

    fn parse_value_rows(&mut self) -> Result<Vec<Vec<Expr>>> {
        let mut rows = Vec::new();
        loop {
            self.expect_sym(Sym::LParen)?;
            let mut row = Vec::new();
            if !self.peek_sym(Sym::RParen) {
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_sym(Sym::Comma) {
                        break;
                    }
                }
            }
            self.expect_sym(Sym::RParen)?;
            rows.push(row);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        Ok(rows)
    }

    fn parse_update(&mut self) -> Result<Statement> {
        let table = self.parse_identifier()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.parse_identifier()?;
            self.expect_sym(Sym::Eq)?;
            let e = self.parse_expr()?;
            sets.push((col, e));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            where_clause,
        })
    }

    // -- SELECT -----------------------------------------------------------

    fn parse_select(&mut self) -> Result<Select> {
        let mut with = Vec::new();
        if self.eat_kw("WITH") {
            loop {
                let name = self.parse_identifier()?;
                let mut columns = Vec::new();
                if self.eat_sym(Sym::LParen) {
                    loop {
                        columns.push(self.parse_identifier()?);
                        if !self.eat_sym(Sym::Comma) {
                            break;
                        }
                    }
                    self.expect_sym(Sym::RParen)?;
                }
                self.expect_kw("AS")?;
                self.expect_sym(Sym::LParen)?;
                let query = self.parse_select()?;
                self.expect_sym(Sym::RParen)?;
                with.push(Cte {
                    name,
                    columns,
                    query,
                });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }

        let body = self.parse_body()?;

        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let order = if self.eat_kw("DESC") {
                    SortOrder::Desc
                } else {
                    self.eat_kw("ASC");
                    SortOrder::Asc
                };
                order_by.push(OrderItem { expr, order });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.parse_expr()?);
            if self.eat_kw("OFFSET") {
                offset = Some(self.parse_expr()?);
            }
        }
        Ok(Select {
            with,
            body,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_body(&mut self) -> Result<SelectBody> {
        let mut left = self.parse_body_atom()?;
        loop {
            let (op, all) = if self.eat_kw("UNION") {
                (SetOp::Union, self.eat_kw("ALL"))
            } else if self.eat_kw("INTERSECT") {
                (SetOp::Intersect, false)
            } else if self.eat_kw("EXCEPT") {
                (SetOp::Except, false)
            } else {
                break;
            };
            let right = self.parse_body_atom()?;
            left = SelectBody::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_body_atom(&mut self) -> Result<SelectBody> {
        if self.eat_kw("VALUES") {
            return Ok(SelectBody::Values(self.parse_value_rows()?));
        }
        self.expect_kw("SELECT")?;
        let distinct = if self.eat_kw("DISTINCT") {
            true
        } else {
            self.eat_kw("ALL");
            false
        };
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let from = if self.eat_kw("FROM") {
            Some(self.parse_table_expr()?)
        } else {
            None
        };
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(SelectBody::Core(SelectCore {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
        }))
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat_sym(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let (Some(Token::Word(w)), Some(Token::Sym(Sym::Dot)), Some(Token::Sym(Sym::Star))) =
            (self.peek(), self.peek_at(1), self.peek_at(2))
        {
            if !is_reserved(w) {
                let t = w.clone();
                self.pos += 3;
                return Ok(SelectItem::TableWildcard(t));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.parse_identifier()?)
        } else {
            match self.peek() {
                Some(Token::Word(w)) if !is_reserved(w) => {
                    let a = w.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // -- FROM -------------------------------------------------------------

    fn parse_table_expr(&mut self) -> Result<TableExpr> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.eat_sym(Sym::Comma) {
                Some(JoinKind::Cross)
            } else if self.eat_kw("CROSS") {
                self.expect_kw("JOIN")?;
                Some(JoinKind::Cross)
            } else if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                Some(JoinKind::Inner)
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                Some(JoinKind::Left)
            } else if self.eat_kw("RIGHT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                Some(JoinKind::Right)
            } else if self.eat_kw("FULL") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                Some(JoinKind::Full)
            } else if self.eat_kw("JOIN") {
                Some(JoinKind::Inner)
            } else {
                None
            };
            let Some(kind) = kind else { break };
            let right = self.parse_table_primary()?;
            let on = if self.eat_kw("ON") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            if on.is_none() && !matches!(kind, JoinKind::Cross) {
                return Err(Error::Parse(format!(
                    "{} requires an ON clause",
                    kind.sql_name()
                )));
            }
            left = TableExpr::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> Result<TableExpr> {
        if self.eat_sym(Sym::LParen) {
            if self.peek_kw("SELECT") || self.peek_kw("WITH") {
                let q = self.parse_select()?;
                self.expect_sym(Sym::RParen)?;
                self.eat_kw("AS");
                let alias = self.parse_identifier()?;
                return Ok(TableExpr::Derived {
                    query: Box::new(q),
                    alias,
                });
            }
            if self.eat_kw("VALUES") {
                let rows = self.parse_value_rows()?;
                self.expect_sym(Sym::RParen)?;
                self.eat_kw("AS");
                let alias = self.parse_identifier()?;
                let mut columns = Vec::new();
                if self.eat_sym(Sym::LParen) {
                    loop {
                        columns.push(self.parse_identifier()?);
                        if !self.eat_sym(Sym::Comma) {
                            break;
                        }
                    }
                    self.expect_sym(Sym::RParen)?;
                }
                return Ok(TableExpr::Values {
                    rows,
                    alias,
                    columns,
                });
            }
            // Parenthesized join tree.
            let inner = self.parse_table_expr()?;
            self.expect_sym(Sym::RParen)?;
            return Ok(inner);
        }
        let name = self.parse_identifier()?;
        let alias = if self.eat_kw("AS") {
            Some(self.parse_identifier()?)
        } else {
            match self.peek() {
                Some(Token::Word(w)) if !is_reserved(w) => {
                    let a = w.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            }
        };
        let indexed_by = if self.eat_kw("INDEXED") {
            self.expect_kw("BY")?;
            Some(self.parse_identifier()?)
        } else {
            None
        };
        Ok(TableExpr::Named {
            name,
            alias,
            indexed_by,
        })
    }

    // -- expressions --------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::bin(BinaryOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::bin(BinaryOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        // `NOT EXISTS` binds at the primary level; plain `NOT` here.
        if self.peek_kw("NOT") && !self.peek_at(1).is_some_and(|t| t.is_kw("EXISTS")) {
            self.pos += 1;
            let e = self.parse_not()?;
            return Ok(Expr::not(e));
        }
        self.parse_predicate()
    }

    fn parse_predicate(&mut self) -> Result<Expr> {
        let mut left = self.parse_additive()?;
        loop {
            // IS [NOT] ...
            if self.eat_kw("IS") {
                let negated = self.eat_kw("NOT");
                if self.eat_kw("NULL") {
                    left = Expr::IsNull {
                        expr: Box::new(left),
                        negated,
                    };
                } else {
                    let right = self.parse_additive()?;
                    let op = if negated {
                        BinaryOp::IsNot
                    } else {
                        BinaryOp::Is
                    };
                    left = Expr::bin(op, left, right);
                }
                continue;
            }
            let negated = if self.peek_kw("NOT")
                && self
                    .peek_at(1)
                    .is_some_and(|t| t.is_kw("BETWEEN") || t.is_kw("IN") || t.is_kw("LIKE"))
            {
                self.pos += 1;
                true
            } else {
                false
            };
            if self.eat_kw("BETWEEN") {
                let low = self.parse_additive()?;
                self.expect_kw("AND")?;
                let high = self.parse_additive()?;
                left = Expr::Between {
                    expr: Box::new(left),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated,
                };
                continue;
            }
            if self.eat_kw("IN") {
                self.expect_sym(Sym::LParen)?;
                if self.peek_kw("SELECT") || self.peek_kw("WITH") || self.peek_kw("VALUES") {
                    let q = self.parse_select()?;
                    self.expect_sym(Sym::RParen)?;
                    left = Expr::InSubquery {
                        expr: Box::new(left),
                        query: Box::new(q),
                        negated,
                    };
                } else {
                    let mut list = Vec::new();
                    if !self.peek_sym(Sym::RParen) {
                        loop {
                            list.push(self.parse_expr()?);
                            if !self.eat_sym(Sym::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_sym(Sym::RParen)?;
                    left = Expr::InList {
                        expr: Box::new(left),
                        list,
                        negated,
                    };
                }
                continue;
            }
            if self.eat_kw("LIKE") {
                let pattern = self.parse_additive()?;
                left = Expr::Like {
                    expr: Box::new(left),
                    pattern: Box::new(pattern),
                    negated,
                };
                continue;
            }
            if negated {
                return Err(Error::Parse(
                    "expected BETWEEN, IN or LIKE after NOT".into(),
                ));
            }
            // Comparison, possibly quantified.
            let op = match self.peek() {
                Some(Token::Sym(Sym::Eq)) => Some(CompareOp::Eq),
                Some(Token::Sym(Sym::Ne)) => Some(CompareOp::Ne),
                Some(Token::Sym(Sym::Lt)) => Some(CompareOp::Lt),
                Some(Token::Sym(Sym::Le)) => Some(CompareOp::Le),
                Some(Token::Sym(Sym::Gt)) => Some(CompareOp::Gt),
                Some(Token::Sym(Sym::Ge)) => Some(CompareOp::Ge),
                _ => None,
            };
            let Some(op) = op else { break };
            self.pos += 1;
            let quantifier = if self.eat_kw("ANY") {
                Some(Quantifier::Any)
            } else if self.eat_kw("ALL") {
                Some(Quantifier::All)
            } else {
                None
            };
            if let Some(q) = quantifier {
                self.expect_sym(Sym::LParen)?;
                let sub = self.parse_select()?;
                self.expect_sym(Sym::RParen)?;
                left = Expr::Quantified {
                    op,
                    quantifier: q,
                    expr: Box::new(left),
                    query: Box::new(sub),
                };
            } else {
                let right = self.parse_additive()?;
                left = Expr::bin(op.as_binary(), left, right);
            }
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym(Sym::Plus)) => BinaryOp::Add,
                Some(Token::Sym(Sym::Minus)) => BinaryOp::Sub,
                Some(Token::Sym(Sym::Concat)) => BinaryOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym(Sym::Star)) => BinaryOp::Mul,
                Some(Token::Sym(Sym::Slash)) => BinaryOp::Div,
                Some(Token::Sym(Sym::Percent)) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_sym(Sym::Minus) {
            // Fold a leading minus into numeric literals so that `-3`
            // round-trips as a literal (matching the renderer).
            match self.peek() {
                Some(Token::Int(v)) => {
                    let v = *v;
                    self.pos += 1;
                    return Ok(Expr::lit(-v));
                }
                Some(Token::Real(v)) => {
                    let v = *v;
                    self.pos += 1;
                    return Ok(Expr::lit(-v));
                }
                _ => {
                    let e = self.parse_unary()?;
                    return Ok(Expr::Unary {
                        op: UnaryOp::Neg,
                        expr: Box::new(e),
                    });
                }
            }
        }
        if self.eat_sym(Sym::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(Expr::lit(v))
            }
            Some(Token::Real(v)) => {
                self.pos += 1;
                Ok(Expr::lit(v))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(Token::Sym(Sym::LParen)) => {
                self.pos += 1;
                if self.peek_kw("SELECT") || self.peek_kw("WITH") || self.peek_kw("VALUES") {
                    let q = self.parse_select()?;
                    self.expect_sym(Sym::RParen)?;
                    return Ok(Expr::Scalar(Box::new(q)));
                }
                let e = self.parse_expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Word(w)) => self.parse_word_primary(w),
            other => Err(Error::Parse(format!("unexpected token {other:?}"))),
        }
    }

    fn parse_word_primary(&mut self, w: String) -> Result<Expr> {
        // Literals and keyword-led expressions.
        if w.eq_ignore_ascii_case("NULL") {
            self.pos += 1;
            return Ok(Expr::null());
        }
        if w.eq_ignore_ascii_case("TRUE") {
            self.pos += 1;
            return Ok(Expr::lit(true));
        }
        if w.eq_ignore_ascii_case("FALSE") {
            self.pos += 1;
            return Ok(Expr::lit(false));
        }
        if w.eq_ignore_ascii_case("NOT") {
            // Only NOT EXISTS reaches the primary level.
            self.pos += 1;
            self.expect_kw("EXISTS")?;
            self.expect_sym(Sym::LParen)?;
            let q = self.parse_select()?;
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::Exists {
                query: Box::new(q),
                negated: true,
            });
        }
        if w.eq_ignore_ascii_case("EXISTS") {
            self.pos += 1;
            self.expect_sym(Sym::LParen)?;
            let q = self.parse_select()?;
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::Exists {
                query: Box::new(q),
                negated: false,
            });
        }
        if w.eq_ignore_ascii_case("CAST") {
            self.pos += 1;
            self.expect_sym(Sym::LParen)?;
            let e = self.parse_expr()?;
            self.expect_kw("AS")?;
            let ty_word = match self.next()? {
                Token::Word(t) => t,
                other => return Err(Error::Parse(format!("expected type name, got {other:?}"))),
            };
            let ty = DataType::parse(&ty_word)
                .ok_or_else(|| Error::Parse(format!("unknown type {ty_word}")))?;
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::Cast {
                expr: Box::new(e),
                ty,
            });
        }
        if w.eq_ignore_ascii_case("CASE") {
            self.pos += 1;
            let operand = if self.peek_kw("WHEN") {
                None
            } else {
                Some(Box::new(self.parse_expr()?))
            };
            let mut whens = Vec::new();
            while self.eat_kw("WHEN") {
                let cond = self.parse_expr()?;
                self.expect_kw("THEN")?;
                let then = self.parse_expr()?;
                whens.push((cond, then));
            }
            if whens.is_empty() {
                return Err(Error::Parse("CASE requires at least one WHEN arm".into()));
            }
            let else_expr = if self.eat_kw("ELSE") {
                Some(Box::new(self.parse_expr()?))
            } else {
                None
            };
            self.expect_kw("END")?;
            return Ok(Expr::Case {
                operand,
                whens,
                else_expr,
            });
        }

        // Function call or aggregate?
        if self.peek_at(1) == Some(&Token::Sym(Sym::LParen)) && !is_reserved(&w) {
            let upper = w.to_ascii_uppercase();
            self.pos += 2; // name + '('
            match upper.as_str() {
                "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "TOTAL" => {
                    if upper == "COUNT" && self.eat_sym(Sym::Star) {
                        self.expect_sym(Sym::RParen)?;
                        return Ok(Expr::count_star());
                    }
                    let distinct = self.eat_kw("DISTINCT");
                    let arg = self.parse_expr()?;
                    self.expect_sym(Sym::RParen)?;
                    let func = match upper.as_str() {
                        "COUNT" => AggFunc::Count,
                        "SUM" => AggFunc::Sum,
                        "AVG" => AggFunc::Avg,
                        "MIN" => AggFunc::Min,
                        "MAX" => AggFunc::Max,
                        _ => AggFunc::Total,
                    };
                    return Ok(Expr::Agg {
                        func,
                        arg: Some(Box::new(arg)),
                        distinct,
                    });
                }
                _ => {
                    let func = FuncName::parse(&upper)
                        .ok_or_else(|| Error::Parse(format!("unknown function {w}")))?;
                    let mut args = Vec::new();
                    if !self.peek_sym(Sym::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_sym(Sym::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_sym(Sym::RParen)?;
                    return Ok(Expr::Func { func, args });
                }
            }
        }

        // Column reference.
        if is_reserved(&w) {
            return Err(Error::Parse(format!("unexpected keyword {w}")));
        }
        self.pos += 1;
        if self.eat_sym(Sym::Dot) {
            let col = self.parse_identifier()?;
            return Ok(Expr::Column(ColumnRef {
                table: Some(w),
                column: col,
            }));
        }
        Ok(Expr::Column(ColumnRef {
            table: None,
            column: w,
        }))
    }
}

/// Reserved words that cannot be bare identifiers/aliases.
fn is_reserved(w: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "LIMIT",
        "OFFSET",
        "AS",
        "DISTINCT",
        "ALL",
        "ANY",
        "AND",
        "OR",
        "NOT",
        "NULL",
        "TRUE",
        "FALSE",
        "IS",
        "IN",
        "BETWEEN",
        "LIKE",
        "EXISTS",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "CAST",
        "CREATE",
        "TABLE",
        "VIEW",
        "INDEX",
        "UNIQUE",
        "DROP",
        "IF",
        "INSERT",
        "INTO",
        "VALUES",
        "UPDATE",
        "SET",
        "DELETE",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "FULL",
        "OUTER",
        "CROSS",
        "ON",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "WITH",
        "ASC",
        "DESC",
        "INDEXED",
    ];
    RESERVED.iter().any(|r| w.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_select(sql: &str) {
        let s1 = parse_select(sql).unwrap();
        let rendered = s1.to_string();
        let s2 = parse_select(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of {rendered:?} failed: {e}"));
        assert_eq!(
            s1.to_string(),
            s2.to_string(),
            "render→parse→render not stable for {sql}"
        );
    }

    #[test]
    fn parses_listing1_statements() {
        let script = r#"
            CREATE TABLE t0 ( c0 );
            INSERT INTO t0 ( c0 ) VALUES (1);
            CREATE INDEX i0 ON t0 ( c0 > 0);
            CREATE VIEW v0 ( c0 ) AS SELECT AVG ( t0 . c0 ) FROM t0 GROUP BY 1 > t0 . c0 ;
            SELECT COUNT (*) FROM t0 INDEXED BY i0 WHERE ( SELECT COUNT (*) FROM v0 WHERE
                v0 . c0 BETWEEN 0 AND 0 );
        "#;
        let stmts = parse_statements(script).unwrap();
        assert_eq!(stmts.len(), 5);
        assert!(matches!(stmts[0], Statement::CreateTable { .. }));
        assert!(matches!(stmts[2], Statement::CreateIndex { .. }));
        assert!(matches!(stmts[4], Statement::Select(_)));
    }

    #[test]
    fn parses_listing2_correlated_subquery() {
        let sql = "SELECT x.ID FROM t0 AS x WHERE x.score > \
                   (SELECT AVG(y.score) FROM t0 AS y WHERE x.classID = y.classID)";
        let s = parse_select(sql).unwrap();
        let core = s.core().unwrap();
        assert!(core.where_clause.as_ref().unwrap().contains_subquery());
        round_trip_select(sql);
    }

    #[test]
    fn parses_case_expression() {
        let sql = "SELECT score, CASE WHEN score = 100 THEN 'A' \
                   WHEN score >= 80 AND score < 100 THEN 'B' ELSE 'C' END FROM grade";
        round_trip_select(sql);
    }

    #[test]
    fn parses_joins_and_on() {
        let sql = "SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 WHERE t1.c0 IS NULL";
        round_trip_select(sql);
        let sql2 = "SELECT vt0.c2 AS c1 FROM t1 CROSS JOIN v0 ON \
                    (EXISTS (SELECT v0.c0 FROM v0 WHERE FALSE)) FULL OUTER JOIN vt0 ON 1";
        round_trip_select(sql2);
    }

    #[test]
    fn parses_cte_and_values() {
        let sql = "WITH t2 AS (SELECT NULL AS b) SELECT t1.v FROM t1, t2 WHERE t1.v \
                   NOT BETWEEN t1.v AND (CASE WHEN NULL THEN t2.b ELSE t1.v END)";
        round_trip_select(sql);
        let sql2 = "SELECT * FROM (VALUES (1, 'a'), (2, 'b')) AS ft0 (c0, c1)";
        round_trip_select(sql2);
    }

    #[test]
    fn parses_in_variants_and_quantified() {
        round_trip_select("SELECT c FROM t WHERE c IN (0, 862827606027206657)");
        round_trip_select("SELECT c FROM t WHERE c NOT IN (SELECT c FROM u)");
        round_trip_select("SELECT c FROM t WHERE c = ANY (SELECT c FROM u)");
        round_trip_select("SELECT c FROM t WHERE c >= ALL (SELECT 1 UNION SELECT 2)");
    }

    #[test]
    fn parses_aggregates_and_grouping() {
        round_trip_select(
            "SELECT classid, AVG(score), COUNT(*) FROM t0 GROUP BY classid \
             HAVING COUNT(*) > 1 ORDER BY 2 DESC LIMIT 3 OFFSET 1",
        );
        round_trip_select("SELECT COUNT(DISTINCT c0) FROM t0");
    }

    #[test]
    fn parses_dml() {
        let stmts = parse_statements(
            "UPDATE t0 SET c0 = 1, c1 = c1 + 1 WHERE c0 IS NOT NULL; \
             DELETE FROM t0 WHERE c0 IN (1,2); \
             INSERT INTO ot0 SELECT t0.c0 AS c0 FROM t0 WHERE VERSION() >= t0.c0;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0], Statement::Update { .. }));
        assert!(matches!(stmts[1], Statement::Delete { .. }));
        assert!(matches!(
            stmts[2],
            Statement::Insert {
                source: InsertSource::Query(_),
                ..
            }
        ));
    }

    #[test]
    fn double_negative_literals() {
        let e = parse_expr("((-1314689763) + (-1947665992)) <= (FALSE)").unwrap();
        match e {
            Expr::Binary {
                op: BinaryOp::Le, ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn not_precedence() {
        // NOT binds looser than comparison: NOT a = b is NOT(a = b).
        let e = parse_expr("NOT c0 = 1").unwrap();
        assert!(matches!(
            e,
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse_select("SELECT 1 nonsense extra ,").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_statements("FROB x").is_err());
    }

    #[test]
    fn set_ops_are_left_associative() {
        let s = parse_select("SELECT 1 UNION SELECT 2 UNION ALL SELECT 3").unwrap();
        match &s.body {
            SelectBody::SetOp {
                op: SetOp::Union,
                all: true,
                left,
                ..
            } => {
                assert!(matches!(
                    **left,
                    SelectBody::SetOp {
                        op: SetOp::Union,
                        all: false,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
