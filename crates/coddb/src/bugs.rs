//! Injectable bug mutants.
//!
//! The paper found 45 previously-unknown bugs in five DBMSs (Table 1):
//! 24 logic bugs, 14 internal errors, 2 crashes and 5 hangs. Since this
//! reproduction cannot re-find bugs in the real systems offline, CoddDB
//! carries 45 *injectable mutants*, one per bug class, each modelled on a
//! bug the paper describes (Listings 1 and 6–11 are all represented).
//!
//! Every mutant is **context-sensitive**: it corrupts behaviour only under
//! specific query shapes (clause, statement kind, optimizer decisions,
//! expression shape), exactly like real planner/executor bugs. This is what
//! makes the oracle comparison meaningful — folding an expression (CODDTest)
//! changes the context and un-triggers the mutant, while the baselines'
//! rewrites only escape a characteristic subset:
//!
//! * **NoREC** detects a mutant iff the corruption differs between the
//!   WHERE-filter path and the projection path (or between optimized and
//!   unoptimized plans).
//! * **TLP** detects a mutant iff the corruption is shape-sensitive enough
//!   that `NOT p` / `p IS NULL` wrappers change whether it fires, or it
//!   corrupts aggregation/DISTINCT.
//! * **DQE** detects a mutant iff the corruption differs across
//!   SELECT/UPDATE/DELETE.
//!
//! The resulting detectability matrix reproduces Table 2 of the paper:
//! NoREC 11, TLP 12, DQE 4, and 11 logic bugs only CODDTest can find.

use std::collections::BTreeSet;

use crate::dialect::Dialect;

/// Kind of injected bug, matching the paper's Table 1 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugKind {
    Logic,
    InternalError,
    Crash,
    Hang,
}

impl BugKind {
    pub fn label(self) -> &'static str {
        match self {
            BugKind::Logic => "logic",
            BugKind::InternalError => "internal error",
            BugKind::Crash => "crash",
            BugKind::Hang => "hang",
        }
    }
}

/// Baseline oracles used in the paper's Table 2 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineOracle {
    NoRec,
    Tlp,
    Dqe,
}

/// Every injectable bug. Names are prefixed by the dialect whose emulated
/// system exhibited the modelled bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(clippy::enum_variant_names)]
pub enum BugId {
    // ---------------- SQLite: 6 logic + 1 internal -----------------------
    /// Listing 1: WHERE contains an aggregate subquery with GROUP BY while
    /// the outer scan is indexed; the subquery's value is misevaluated.
    SqliteAggSubqueryIndexedWhere,
    /// Listing 8: an `EXISTS` over an empty result used as a JOIN `ON`
    /// predicate is treated as TRUE.
    SqliteExistsJoinOnEmpty,
    /// Second ON-clause bug: an `ON` predicate that references only
    /// view-sourced columns under an outer join is treated as TRUE.
    SqliteJoinOnViewLeftTrue,
    /// Under an index scan, a comparison that evaluates to NULL keeps the
    /// row (optimized SELECT only).
    SqliteIndexedCmpNullTrue,
    /// Top-level `BETWEEN` on a TEXT value with numeric bounds wrongly
    /// applies numeric affinity in the WHERE of a SELECT (the correct
    /// storage-class comparison places TEXT above all numbers).
    SqliteBetweenTextAffinity,
    /// Top-level `LIKE` in the WHERE of a SELECT matches case-sensitively
    /// (SQLite's LIKE is ASCII case-insensitive).
    SqliteLikeCaseFold,
    /// `||` applied to TEXT and REAL inside an indexed-expression
    /// evaluation raises an internal error.
    SqliteInternalConcatIndexedExpr,

    // ---------------- MySQL: 1 logic + 1 internal ------------------------
    /// The 14-year-latency bug class: a top-level TEXT-vs-INT comparison in
    /// a WHERE filter compares bytes instead of coercing numerically.
    /// (In UPDATE/DELETE the same comparison raises a semantic error, so
    /// DQE cannot observe the logic bug — §4.2.)
    MysqlTextIntCompareWhere,
    /// UNION between INT and TEXT columns fails type unification with an
    /// internal error.
    MysqlInternalUnionTypeUnify,

    // ------- CockroachDB: 7 logic + 4 internal + 2 hang ------------------
    /// Listing 7: a searched CASE whose WHEN condition is literal NULL
    /// takes the THEN branch — but only when the CASE reads a column
    /// sourced from a CTE.
    CockroachCaseNullFromCte,
    /// `expr op ANY (subquery)` evaluates with ALL semantics unless the
    /// subquery is a bare VALUES list.
    CockroachAnyNonValuesSubquery,
    /// AVG evaluated inside a nested subquery accumulates in reverse row
    /// order with float32 rounding (the paper's argument-order AVG bug).
    CockroachAvgNestedReverse,
    /// Listing 9: an IN value list containing an INT8-range literal makes
    /// the whole IN evaluate to FALSE, in SELECT statements only.
    CockroachInBigIntValueList,
    /// The optimizer constant-folds `x NOT BETWEEN a AND b` with a NULL
    /// bound to TRUE when the query has a join.
    CockroachConstFoldNotBetweenNull,
    /// A top-level AND whose arm evaluates NULL keeps the row in WHERE
    /// filters (all statements).
    CockroachAndNullTopConjunct,
    /// A top-level OR with a constant-FALSE left arm short-circuits the
    /// whole filter to FALSE in SELECT WHERE filters.
    CockroachOrShortCircuitFalse,
    /// `%` with a negative right operand under constant folding.
    CockroachInternalNegMod,
    /// `t.*` wildcard expansion under a FULL OUTER JOIN.
    CockroachInternalFullJoinWildcard,
    /// INTERSECT over rows containing NULL.
    CockroachInternalIntersectNull,
    /// Strict CAST of a non-numeric TEXT to INT raises internal error
    /// instead of a clean conversion error.
    CockroachInternalCastTextInt,
    /// A CTE referenced twice in the same FROM clause loops the executor.
    CockroachHangCteReuse,
    /// FULL OUTER JOIN combined with HAVING loops the executor.
    CockroachHangFullJoinHaving,

    // ------- DuckDB: 5 logic + 2 internal + 2 crash + 3 hang -------------
    /// A scalar subquery's result is coerced through the wrong type before
    /// a comparison: booleans invert, integers come back sign-flipped.
    DuckdbSubqueryBoolCoerce,
    /// A CASE with a subquery in a THEN arm incorrectly takes the ELSE arm.
    DuckdbCaseSubqueryElse,
    /// SELECT DISTINCT combined with GROUP BY drops the last group.
    DuckdbDistinctGroupByDrop,
    /// Filter pushdown below the right side of a LEFT JOIN removes
    /// NULL-padded rows.
    DuckdbPushdownLeftJoin,
    /// Top-level `NOT LIKE` in WHERE filters evaluates as plain LIKE.
    DuckdbNotLikeTopLevel,
    /// Listing 11: integer-addition overflow in a projection raises an
    /// internal error instead of a clean overflow error.
    DuckdbInternalOverflowAddProj,
    /// GROUP BY on a REAL key with more than two distinct groups.
    DuckdbInternalGroupByRealMany,
    /// IEJoin crash #1: a join ON with two inequality conditions
    /// (index out of bounds in the paper).
    DuckdbCrashIEJoinRange,
    /// IEJoin crash #2: an inequality join mixing INT and REAL operands
    /// (type mismatch in the paper).
    DuckdbCrashIEJoinTypes,
    /// Three or more chained joins loop the executor.
    DuckdbHangTripleJoin,
    /// UNION (distinct) under a DISTINCT select loops the executor.
    DuckdbHangDistinctUnion,
    /// A LIKE pattern with three consecutive `%` wildcards loops the
    /// matcher.
    DuckdbHangLikePercents,

    // ---------------- TiDB: 5 logic + 6 internal -------------------------
    /// Listing 6: INSERT ... SELECT whose WHERE calls VERSION() inserts
    /// nothing although the SELECT returns rows.
    TidbInsertSelectVersion,
    /// A non-correlated subquery whose column names collide with the outer
    /// query is misinterpreted as correlated.
    TidbCorrelatedNameCollision,
    /// AVG(DISTINCT x) inside a nested subquery returns 0 instead of NULL
    /// for empty input.
    TidbAvgDistinctNestedZero,
    /// Listing 10: a top-level IN value list in WHERE filters evaluates to
    /// FALSE (consistently across statements, so DQE misses it).
    TidbInValueListWhere,
    /// Top-level `IS NULL` over a non-literal operand is inverted in WHERE
    /// filters.
    TidbIsNullTopLevelInverted,
    /// LIKE pattern ending in an escape character.
    TidbInternalLikeEscape,
    /// SUBSTR with a negative start index.
    TidbInternalSubstrNegative,
    /// ROUND with a precision argument larger than 10.
    TidbInternalRoundHuge,
    /// CASE expressions with more than eight WHEN arms.
    TidbInternalCaseManyWhens,
    /// A correlated subquery under HAVING fails decorrelation.
    TidbInternalHavingCorrelated,
    /// A set operation combined with positional ORDER BY.
    TidbInternalSetOpOrderBy,
}

impl BugId {
    /// Every injectable bug, in a stable order.
    pub const ALL: [BugId; 45] = [
        BugId::SqliteAggSubqueryIndexedWhere,
        BugId::SqliteExistsJoinOnEmpty,
        BugId::SqliteJoinOnViewLeftTrue,
        BugId::SqliteIndexedCmpNullTrue,
        BugId::SqliteBetweenTextAffinity,
        BugId::SqliteLikeCaseFold,
        BugId::SqliteInternalConcatIndexedExpr,
        BugId::MysqlTextIntCompareWhere,
        BugId::MysqlInternalUnionTypeUnify,
        BugId::CockroachCaseNullFromCte,
        BugId::CockroachAnyNonValuesSubquery,
        BugId::CockroachAvgNestedReverse,
        BugId::CockroachInBigIntValueList,
        BugId::CockroachConstFoldNotBetweenNull,
        BugId::CockroachAndNullTopConjunct,
        BugId::CockroachOrShortCircuitFalse,
        BugId::CockroachInternalNegMod,
        BugId::CockroachInternalFullJoinWildcard,
        BugId::CockroachInternalIntersectNull,
        BugId::CockroachInternalCastTextInt,
        BugId::CockroachHangCteReuse,
        BugId::CockroachHangFullJoinHaving,
        BugId::DuckdbSubqueryBoolCoerce,
        BugId::DuckdbCaseSubqueryElse,
        BugId::DuckdbDistinctGroupByDrop,
        BugId::DuckdbPushdownLeftJoin,
        BugId::DuckdbNotLikeTopLevel,
        BugId::DuckdbInternalOverflowAddProj,
        BugId::DuckdbInternalGroupByRealMany,
        BugId::DuckdbCrashIEJoinRange,
        BugId::DuckdbCrashIEJoinTypes,
        BugId::DuckdbHangTripleJoin,
        BugId::DuckdbHangDistinctUnion,
        BugId::DuckdbHangLikePercents,
        BugId::TidbInsertSelectVersion,
        BugId::TidbCorrelatedNameCollision,
        BugId::TidbAvgDistinctNestedZero,
        BugId::TidbInValueListWhere,
        BugId::TidbIsNullTopLevelInverted,
        BugId::TidbInternalLikeEscape,
        BugId::TidbInternalSubstrNegative,
        BugId::TidbInternalRoundHuge,
        BugId::TidbInternalCaseManyWhens,
        BugId::TidbInternalHavingCorrelated,
        BugId::TidbInternalSetOpOrderBy,
    ];

    /// Which emulated system exhibits this bug.
    pub fn dialect(self) -> Dialect {
        use BugId::*;
        match self {
            SqliteAggSubqueryIndexedWhere
            | SqliteExistsJoinOnEmpty
            | SqliteJoinOnViewLeftTrue
            | SqliteIndexedCmpNullTrue
            | SqliteBetweenTextAffinity
            | SqliteLikeCaseFold
            | SqliteInternalConcatIndexedExpr => Dialect::Sqlite,
            MysqlTextIntCompareWhere | MysqlInternalUnionTypeUnify => Dialect::Mysql,
            CockroachCaseNullFromCte
            | CockroachAnyNonValuesSubquery
            | CockroachAvgNestedReverse
            | CockroachInBigIntValueList
            | CockroachConstFoldNotBetweenNull
            | CockroachAndNullTopConjunct
            | CockroachOrShortCircuitFalse
            | CockroachInternalNegMod
            | CockroachInternalFullJoinWildcard
            | CockroachInternalIntersectNull
            | CockroachInternalCastTextInt
            | CockroachHangCteReuse
            | CockroachHangFullJoinHaving => Dialect::Cockroach,
            DuckdbSubqueryBoolCoerce
            | DuckdbCaseSubqueryElse
            | DuckdbDistinctGroupByDrop
            | DuckdbPushdownLeftJoin
            | DuckdbNotLikeTopLevel
            | DuckdbInternalOverflowAddProj
            | DuckdbInternalGroupByRealMany
            | DuckdbCrashIEJoinRange
            | DuckdbCrashIEJoinTypes
            | DuckdbHangTripleJoin
            | DuckdbHangDistinctUnion
            | DuckdbHangLikePercents => Dialect::Duckdb,
            TidbInsertSelectVersion
            | TidbCorrelatedNameCollision
            | TidbAvgDistinctNestedZero
            | TidbInValueListWhere
            | TidbIsNullTopLevelInverted
            | TidbInternalLikeEscape
            | TidbInternalSubstrNegative
            | TidbInternalRoundHuge
            | TidbInternalCaseManyWhens
            | TidbInternalHavingCorrelated
            | TidbInternalSetOpOrderBy => Dialect::Tidb,
        }
    }

    /// The Table 1 category of this bug.
    pub fn kind(self) -> BugKind {
        use BugId::*;
        match self {
            SqliteInternalConcatIndexedExpr
            | MysqlInternalUnionTypeUnify
            | CockroachInternalNegMod
            | CockroachInternalFullJoinWildcard
            | CockroachInternalIntersectNull
            | CockroachInternalCastTextInt
            | DuckdbInternalOverflowAddProj
            | DuckdbInternalGroupByRealMany
            | TidbInternalLikeEscape
            | TidbInternalSubstrNegative
            | TidbInternalRoundHuge
            | TidbInternalCaseManyWhens
            | TidbInternalHavingCorrelated
            | TidbInternalSetOpOrderBy => BugKind::InternalError,
            DuckdbCrashIEJoinRange | DuckdbCrashIEJoinTypes => BugKind::Crash,
            CockroachHangCteReuse
            | CockroachHangFullJoinHaving
            | DuckdbHangTripleJoin
            | DuckdbHangDistinctUnion
            | DuckdbHangLikePercents => BugKind::Hang,
            _ => BugKind::Logic,
        }
    }

    /// Which state-of-the-art baseline oracles can detect this logic bug,
    /// per the manual-analysis methodology of §4.2 (empirically validated
    /// by the `table2_oracle_matrix` harness). Empty for the 11 bugs only
    /// CODDTest finds, and for non-logic bugs (which any oracle surfaces
    /// as an error when its queries reach the trigger).
    pub fn baseline_detectable(self) -> &'static [BaselineOracle] {
        use BaselineOracle::*;
        use BugId::*;
        match self {
            SqliteIndexedCmpNullTrue => &[NoRec, Tlp],
            SqliteBetweenTextAffinity => &[NoRec, Tlp, Dqe],
            SqliteLikeCaseFold => &[NoRec, Tlp, Dqe],
            MysqlTextIntCompareWhere => &[NoRec, Tlp],
            CockroachInBigIntValueList => &[Tlp, Dqe],
            CockroachConstFoldNotBetweenNull => &[NoRec],
            CockroachAndNullTopConjunct => &[NoRec, Tlp],
            CockroachOrShortCircuitFalse => &[NoRec, Tlp, Dqe],
            DuckdbDistinctGroupByDrop => &[Tlp],
            DuckdbPushdownLeftJoin => &[NoRec, Tlp],
            DuckdbNotLikeTopLevel => &[NoRec, Tlp],
            TidbInValueListWhere => &[NoRec, Tlp],
            TidbIsNullTopLevelInverted => &[NoRec, Tlp],
            _ => &[],
        }
    }

    /// Human-readable description (one line).
    pub fn description(self) -> &'static str {
        use BugId::*;
        match self {
            SqliteAggSubqueryIndexedWhere => {
                "aggregate subquery with GROUP BY misevaluated under indexed outer scan (Listing 1)"
            }
            SqliteExistsJoinOnEmpty => {
                "EXISTS over empty result treated as TRUE in JOIN ON (Listing 8)"
            }
            SqliteJoinOnViewLeftTrue => {
                "ON predicate over view columns treated as TRUE under outer join"
            }
            SqliteIndexedCmpNullTrue => "NULL comparison keeps row under index scan",
            SqliteBetweenTextAffinity => "BETWEEN on TEXT value wrongly applies numeric affinity",
            SqliteLikeCaseFold => "LIKE matches case-sensitively in SELECT WHERE",
            SqliteInternalConcatIndexedExpr => {
                "TEXT||REAL inside indexed expression: internal error"
            }
            MysqlTextIntCompareWhere => "TEXT vs INT comparison uses byte order in WHERE filters",
            MysqlInternalUnionTypeUnify => "UNION of INT and TEXT: internal type-unification error",
            CockroachCaseNullFromCte => {
                "CASE WHEN NULL takes THEN branch for CTE-sourced rows (Listing 7)"
            }
            CockroachAnyNonValuesSubquery => {
                "ANY uses ALL semantics unless operand is a VALUES list"
            }
            CockroachAvgNestedReverse => {
                "AVG in nested subquery accumulates reversed with f32 rounding"
            }
            CockroachInBigIntValueList => {
                "IN list with INT8-range literal returns FALSE in SELECT (Listing 9)"
            }
            CockroachConstFoldNotBetweenNull => {
                "optimizer folds NOT BETWEEN with NULL bound to TRUE"
            }
            CockroachAndNullTopConjunct => "top-level AND with NULL arm keeps row in WHERE",
            CockroachOrShortCircuitFalse => "top-level OR with constant FALSE arm drops right arm",
            CockroachInternalNegMod => {
                "% by negative operand under constant folding: internal error"
            }
            CockroachInternalFullJoinWildcard => "t.* under FULL OUTER JOIN: internal error",
            CockroachInternalIntersectNull => "INTERSECT over NULL rows: internal error",
            CockroachInternalCastTextInt => {
                "strict CAST of non-numeric TEXT to INT: internal error"
            }
            CockroachHangCteReuse => "CTE referenced twice in one FROM: executor loops",
            CockroachHangFullJoinHaving => "FULL JOIN with HAVING: executor loops",
            DuckdbSubqueryBoolCoerce => "scalar subquery result mistyped before comparison",
            DuckdbCaseSubqueryElse => "CASE with subquery THEN arm takes ELSE",
            DuckdbDistinctGroupByDrop => "SELECT DISTINCT with GROUP BY drops last group",
            DuckdbPushdownLeftJoin => "filter pushdown below LEFT JOIN removes padded rows",
            DuckdbNotLikeTopLevel => "top-level NOT LIKE evaluates as LIKE",
            DuckdbInternalOverflowAddProj => {
                "integer overflow in projection: internal error (Listing 11)"
            }
            DuckdbInternalGroupByRealMany => "GROUP BY REAL with >2 groups: internal error",
            DuckdbCrashIEJoinRange => "IEJoin with two inequality conditions: crash (index OOB)",
            DuckdbCrashIEJoinTypes => {
                "IEJoin inequality over mixed INT/REAL: crash (type mismatch)"
            }
            DuckdbHangTripleJoin => ">=3 chained joins: executor loops",
            DuckdbHangDistinctUnion => "UNION under DISTINCT: executor loops",
            DuckdbHangLikePercents => "LIKE with three consecutive %: matcher loops",
            TidbInsertSelectVersion => {
                "INSERT..SELECT with VERSION() in WHERE inserts nothing (Listing 6)"
            }
            TidbCorrelatedNameCollision => {
                "non-correlated subquery with colliding names treated as correlated"
            }
            TidbAvgDistinctNestedZero => {
                "AVG(DISTINCT) in nested subquery returns 0 for empty input"
            }
            TidbInValueListWhere => "top-level IN value list returns FALSE in WHERE (Listing 10)",
            TidbIsNullTopLevelInverted => "top-level IS NULL inverted in WHERE filters",
            TidbInternalLikeEscape => "LIKE pattern ending in escape: internal error",
            TidbInternalSubstrNegative => "SUBSTR with negative start: internal error",
            TidbInternalRoundHuge => "ROUND with precision > 10: internal error",
            TidbInternalCaseManyWhens => "CASE with >8 WHEN arms: internal error",
            TidbInternalHavingCorrelated => "correlated subquery under HAVING: internal error",
            TidbInternalSetOpOrderBy => "set operation with positional ORDER BY: internal error",
        }
    }

    /// All bugs belonging to one dialect profile.
    pub fn for_dialect(dialect: Dialect) -> Vec<BugId> {
        BugId::ALL
            .iter()
            .copied()
            .filter(|b| b.dialect() == dialect)
            .collect()
    }

    /// All logic bugs (the 24 the paper's oracle comparison targets).
    pub fn logic_bugs() -> Vec<BugId> {
        BugId::ALL
            .iter()
            .copied()
            .filter(|b| b.kind() == BugKind::Logic)
            .collect()
    }

    /// Short stable identifier, e.g. for report keys.
    pub fn name(self) -> &'static str {
        use BugId::*;
        match self {
            SqliteAggSubqueryIndexedWhere => "sqlite-agg-subquery-indexed-where",
            SqliteExistsJoinOnEmpty => "sqlite-exists-join-on-empty",
            SqliteJoinOnViewLeftTrue => "sqlite-join-on-view-left-true",
            SqliteIndexedCmpNullTrue => "sqlite-indexed-cmp-null-true",
            SqliteBetweenTextAffinity => "sqlite-between-text-affinity",
            SqliteLikeCaseFold => "sqlite-like-case-fold",
            SqliteInternalConcatIndexedExpr => "sqlite-internal-concat-indexed-expr",
            MysqlTextIntCompareWhere => "mysql-text-int-compare-where",
            MysqlInternalUnionTypeUnify => "mysql-internal-union-type-unify",
            CockroachCaseNullFromCte => "cockroach-case-null-from-cte",
            CockroachAnyNonValuesSubquery => "cockroach-any-non-values-subquery",
            CockroachAvgNestedReverse => "cockroach-avg-nested-reverse",
            CockroachInBigIntValueList => "cockroach-in-bigint-value-list",
            CockroachConstFoldNotBetweenNull => "cockroach-const-fold-not-between-null",
            CockroachAndNullTopConjunct => "cockroach-and-null-top-conjunct",
            CockroachOrShortCircuitFalse => "cockroach-or-short-circuit-false",
            CockroachInternalNegMod => "cockroach-internal-neg-mod",
            CockroachInternalFullJoinWildcard => "cockroach-internal-full-join-wildcard",
            CockroachInternalIntersectNull => "cockroach-internal-intersect-null",
            CockroachInternalCastTextInt => "cockroach-internal-cast-text-int",
            CockroachHangCteReuse => "cockroach-hang-cte-reuse",
            CockroachHangFullJoinHaving => "cockroach-hang-full-join-having",
            DuckdbSubqueryBoolCoerce => "duckdb-subquery-bool-coerce",
            DuckdbCaseSubqueryElse => "duckdb-case-subquery-else",
            DuckdbDistinctGroupByDrop => "duckdb-distinct-group-by-drop",
            DuckdbPushdownLeftJoin => "duckdb-pushdown-left-join",
            DuckdbNotLikeTopLevel => "duckdb-not-like-top-level",
            DuckdbInternalOverflowAddProj => "duckdb-internal-overflow-add-proj",
            DuckdbInternalGroupByRealMany => "duckdb-internal-group-by-real-many",
            DuckdbCrashIEJoinRange => "duckdb-crash-iejoin-range",
            DuckdbCrashIEJoinTypes => "duckdb-crash-iejoin-types",
            DuckdbHangTripleJoin => "duckdb-hang-triple-join",
            DuckdbHangDistinctUnion => "duckdb-hang-distinct-union",
            DuckdbHangLikePercents => "duckdb-hang-like-percents",
            TidbInsertSelectVersion => "tidb-insert-select-version",
            TidbCorrelatedNameCollision => "tidb-correlated-name-collision",
            TidbAvgDistinctNestedZero => "tidb-avg-distinct-nested-zero",
            TidbInValueListWhere => "tidb-in-value-list-where",
            TidbIsNullTopLevelInverted => "tidb-is-null-top-level-inverted",
            TidbInternalLikeEscape => "tidb-internal-like-escape",
            TidbInternalSubstrNegative => "tidb-internal-substr-negative",
            TidbInternalRoundHuge => "tidb-internal-round-huge",
            TidbInternalCaseManyWhens => "tidb-internal-case-many-whens",
            TidbInternalHavingCorrelated => "tidb-internal-having-correlated",
            TidbInternalSetOpOrderBy => "tidb-internal-set-op-order-by",
        }
    }
}

/// Injectable recovery-path mutants, seeded into `crate::recovery` the way
/// [`BugId`] mutants are seeded into the planner/executor. They live in a
/// separate enum because [`BugId::ALL`] reproduces the paper's Table 1/2
/// counts exactly (45 bugs); the recovery mutants model the crash-safety
/// bug class the paper's logic oracles cannot see, hunted by the `recover`
/// differential oracle instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecoveryBugId {
    /// Log scan accepts records whose checksum does not match, replaying
    /// corrupted payloads instead of truncating at the damage.
    SkipChecksumVerify,
    /// Log scan treats a torn tail (a partial frame at end of log) as a
    /// complete record instead of truncating it.
    TornTailAsComplete,
    /// Replay applies effect records that were never followed by a commit
    /// marker (replays past the committed prefix).
    ReplayUncommitted,
    /// Replay applies each commit's buffered effects in reverse order
    /// (visible as reordered rows for multi-row statements).
    ReorderCommitEffects,
    /// Replay ignores the final commit marker in the log, losing the last
    /// committed statement.
    DropLastCommit,
    /// Checkpoint truncates the log *before* writing the snapshot and the
    /// marker: a crash inside the snapshot write loses both the snapshot
    /// and the log suffix it was meant to replace.
    TruncateBeforeMarker,
    /// Replay ignores the snapshot's statement coverage and re-applies
    /// every log commit from offset zero, double-applying statements the
    /// snapshot already contains.
    ReplayFromWrongOffset,
    /// Snapshot scan uses a trailing unsealed snapshot (the writer died
    /// mid-snapshot) as the recovery base instead of falling back to the
    /// previous sealed one.
    AcceptTornSnapshot,
    /// Snapshot scan prefers the *oldest* sealed snapshot over the newest,
    /// losing every statement checkpointed after the first one once the
    /// log has been truncated.
    StaleSnapshotPreferred,
    /// Snapshot scan accepts snapshot frames whose checksum does not
    /// match, rebuilding the base state from corrupted payloads.
    SkipSnapshotChecksum,
}

impl RecoveryBugId {
    /// Every recovery mutant, in a stable order.
    pub const ALL: [RecoveryBugId; 10] = [
        RecoveryBugId::SkipChecksumVerify,
        RecoveryBugId::TornTailAsComplete,
        RecoveryBugId::ReplayUncommitted,
        RecoveryBugId::ReorderCommitEffects,
        RecoveryBugId::DropLastCommit,
        RecoveryBugId::TruncateBeforeMarker,
        RecoveryBugId::ReplayFromWrongOffset,
        RecoveryBugId::AcceptTornSnapshot,
        RecoveryBugId::StaleSnapshotPreferred,
        RecoveryBugId::SkipSnapshotChecksum,
    ];

    /// The dominant symptom category: a wrong-data recovery is a logic
    /// bug, a replay that chokes on damage it should have truncated is an
    /// internal error. (Some mutants can surface either way depending on
    /// where the fault plan strikes; the `recover` oracle reports whatever
    /// it observes.)
    pub fn kind(self) -> BugKind {
        match self {
            RecoveryBugId::TornTailAsComplete => BugKind::InternalError,
            _ => BugKind::Logic,
        }
    }

    /// Short stable identifier, e.g. for report keys.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryBugId::SkipChecksumVerify => "recovery-skip-checksum-verify",
            RecoveryBugId::TornTailAsComplete => "recovery-torn-tail-as-complete",
            RecoveryBugId::ReplayUncommitted => "recovery-replay-uncommitted",
            RecoveryBugId::ReorderCommitEffects => "recovery-reorder-commit-effects",
            RecoveryBugId::DropLastCommit => "recovery-drop-last-commit",
            RecoveryBugId::TruncateBeforeMarker => "recovery-truncate-before-marker",
            RecoveryBugId::ReplayFromWrongOffset => "recovery-replay-from-wrong-offset",
            RecoveryBugId::AcceptTornSnapshot => "recovery-accept-torn-snapshot",
            RecoveryBugId::StaleSnapshotPreferred => "recovery-stale-snapshot-preferred",
            RecoveryBugId::SkipSnapshotChecksum => "recovery-skip-snapshot-checksum",
        }
    }

    /// Human-readable description (one line).
    pub fn description(self) -> &'static str {
        match self {
            RecoveryBugId::SkipChecksumVerify => {
                "log scan skips checksum verification, replaying corrupt records"
            }
            RecoveryBugId::TornTailAsComplete => "log scan treats a torn tail as a complete record",
            RecoveryBugId::ReplayUncommitted => "replay applies uncommitted effect records",
            RecoveryBugId::ReorderCommitEffects => {
                "replay applies a commit's effects in reverse order"
            }
            RecoveryBugId::DropLastCommit => "replay ignores the final commit marker",
            RecoveryBugId::TruncateBeforeMarker => {
                "checkpoint truncates the log before the snapshot and marker are durable"
            }
            RecoveryBugId::ReplayFromWrongOffset => {
                "replay re-applies log commits the snapshot already covers"
            }
            RecoveryBugId::AcceptTornSnapshot => {
                "snapshot scan uses an unsealed trailing snapshot as the recovery base"
            }
            RecoveryBugId::StaleSnapshotPreferred => {
                "snapshot scan prefers the oldest sealed snapshot over the newest"
            }
            RecoveryBugId::SkipSnapshotChecksum => {
                "snapshot scan skips checksum verification on snapshot frames"
            }
        }
    }
}

/// Injectable index-path mutants, seeded into the physical ordered-index
/// maintenance and seek paths ([`crate::index`], the executor's
/// `IndexSeek` arm) the way [`RecoveryBugId`] mutants are seeded into
/// recovery. They live in their own enum for the same reason: [`BugId`]
/// reproduces the paper's Table 1/2 counts exactly, while these model the
/// access-path bug class the indexed-vs-ScanOnly differential hunts.
///
/// All five *shrink, corrupt or suppress* the seek's row set — mutants
/// that merely enlarge it would be invisible, because the full original
/// WHERE clause is re-applied over whatever the seek returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IndexBugId {
    /// UPDATE skips index maintenance: the ordered structure keeps the
    /// pre-update key, so later seeks probe stale entries.
    StaleEntryAfterUpdate,
    /// Range seeks treat inclusive bounds as exclusive (`>=` as `>`,
    /// `<=` as `<`), dropping the boundary rows.
    RangeBoundOffByOne,
    /// The seek path skips the residual WHERE re-check entirely, leaking
    /// NULL-key rows and residual-failing rows into the result.
    PrefixSeekIgnoresResidual,
    /// DESC sort elimination emits key groups in ascending order anyway
    /// (visible through `ORDER BY ... DESC`, most sharply with LIMIT).
    SortElimWrongDirection,
    /// Equality seeks return only the first posting of each matching
    /// key, dropping duplicate-key rows.
    EqSeekMissesDuplicates,
}

impl IndexBugId {
    /// Every index mutant, in a stable order.
    pub const ALL: [IndexBugId; 5] = [
        IndexBugId::StaleEntryAfterUpdate,
        IndexBugId::RangeBoundOffByOne,
        IndexBugId::PrefixSeekIgnoresResidual,
        IndexBugId::SortElimWrongDirection,
        IndexBugId::EqSeekMissesDuplicates,
    ];

    /// All index mutants surface as wrong results, never as errors.
    pub fn kind(self) -> BugKind {
        BugKind::Logic
    }

    /// Short stable identifier, e.g. for report keys.
    pub fn name(self) -> &'static str {
        match self {
            IndexBugId::StaleEntryAfterUpdate => "index-stale-entry-after-update",
            IndexBugId::RangeBoundOffByOne => "index-range-bound-off-by-one",
            IndexBugId::PrefixSeekIgnoresResidual => "index-seek-drops-residual",
            IndexBugId::SortElimWrongDirection => "index-sort-elim-wrong-direction",
            IndexBugId::EqSeekMissesDuplicates => "index-eq-seek-misses-duplicates",
        }
    }

    /// Human-readable description (one line).
    pub fn description(self) -> &'static str {
        match self {
            IndexBugId::StaleEntryAfterUpdate => {
                "UPDATE skips index maintenance, leaving stale ordered-index entries"
            }
            IndexBugId::RangeBoundOffByOne => {
                "range seeks treat inclusive bounds as exclusive, dropping boundary rows"
            }
            IndexBugId::PrefixSeekIgnoresResidual => {
                "seeks skip the residual WHERE re-check, leaking NULL-key and residual rows"
            }
            IndexBugId::SortElimWrongDirection => {
                "DESC sort elimination emits index key groups in ascending order"
            }
            IndexBugId::EqSeekMissesDuplicates => {
                "equality seeks return only the first posting per key, dropping duplicates"
            }
        }
    }
}

/// Injectable media-fault-handling mutants, seeded into the storage
/// layer's degradation machinery (`crate::wal`'s bounded-retry reads, the
/// `NoSpace` abort path, `crate::recovery`'s scrub and salvage passes) the
/// way [`RecoveryBugId`] mutants are seeded into replay. They model the
/// class of bugs where a system *mishandles its own fault handling*: the
/// media fault itself is injected environment, the bug is reacting to it
/// with silent wrong behavior instead of detection or graceful
/// degradation. Hunted by the `recovery_divergence_media`
/// detect-or-identical oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MediaBugId {
    /// Scrub skips frame-checksum verification, reporting a damaged image
    /// as clean — recovery then silently replays rotted payloads that a
    /// clean scrub would have quarantined.
    SkipScrubChecksum,
    /// Salvage skips a checksum-failing frame and keeps scanning, replaying
    /// effects *past* the damage instead of dropping the unreplayable
    /// suffix (salvage must never resurrect state beyond a corrupt frame).
    SalvagePastCorruptCommit,
    /// The engine treats a `NoSpace` append failure as a successful
    /// commit: the in-memory state mutates although the WAL refused the
    /// record, so the live session diverges from the committed prefix.
    NoSpaceTreatedAsCommitted,
    /// The read path gives up after the first failed attempt, reporting a
    /// transient fault the bounded retry schedule must heal as permanent
    /// data loss.
    TransientFaultAsPermanentLoss,
    /// The read path retries transient faults forever instead of failing
    /// stop at the cap: a fault beyond the retry budget heals silently
    /// where the contract demands a structured error.
    RetryCapIgnored,
}

impl MediaBugId {
    /// Every media mutant, in a stable order.
    pub const ALL: [MediaBugId; 5] = [
        MediaBugId::SkipScrubChecksum,
        MediaBugId::SalvagePastCorruptCommit,
        MediaBugId::NoSpaceTreatedAsCommitted,
        MediaBugId::TransientFaultAsPermanentLoss,
        MediaBugId::RetryCapIgnored,
    ];

    /// The dominant symptom category: most media mutants surface as wrong
    /// state (logic); giving up on a healable read surfaces as a recovery
    /// failure (internal error).
    pub fn kind(self) -> BugKind {
        match self {
            MediaBugId::TransientFaultAsPermanentLoss => BugKind::InternalError,
            _ => BugKind::Logic,
        }
    }

    /// Short stable identifier, e.g. for report keys.
    pub fn name(self) -> &'static str {
        match self {
            MediaBugId::SkipScrubChecksum => "media-skip-scrub-checksum",
            MediaBugId::SalvagePastCorruptCommit => "media-salvage-past-corrupt-commit",
            MediaBugId::NoSpaceTreatedAsCommitted => "media-nospace-treated-as-committed",
            MediaBugId::TransientFaultAsPermanentLoss => "media-transient-fault-as-permanent-loss",
            MediaBugId::RetryCapIgnored => "media-retry-cap-ignored",
        }
    }

    /// Human-readable description (one line).
    pub fn description(self) -> &'static str {
        match self {
            MediaBugId::SkipScrubChecksum => {
                "scrub skips frame checksums, reporting damaged images as clean"
            }
            MediaBugId::SalvagePastCorruptCommit => {
                "salvage replays effects past a checksum-failing frame"
            }
            MediaBugId::NoSpaceTreatedAsCommitted => {
                "a NoSpace append failure is treated as a successful commit"
            }
            MediaBugId::TransientFaultAsPermanentLoss => {
                "the read path reports a healable transient fault as permanent loss"
            }
            MediaBugId::RetryCapIgnored => {
                "the read path retries transient faults past the bounded cap"
            }
        }
    }
}

/// The set of currently enabled mutants — engine mutants ([`BugId`]),
/// recovery mutants ([`RecoveryBugId`]), index mutants ([`IndexBugId`])
/// and media mutants ([`MediaBugId`]) side by side, so one registry
/// describes a whole campaign's buggy build.
#[derive(Debug, Clone, Default)]
pub struct BugRegistry {
    active: BTreeSet<BugId>,
    recovery: BTreeSet<RecoveryBugId>,
    index: BTreeSet<IndexBugId>,
    media: BTreeSet<MediaBugId>,
}

impl BugRegistry {
    /// A clean engine: no injected bugs.
    pub fn none() -> Self {
        Self::default()
    }

    /// No mutant of any registry is enabled. The debug-mode plan verifier
    /// ([`crate::validate`]) only asserts on clean engines: mutant-corrupted
    /// plans are invalid *by design*, and flagging them is the campaign
    /// oracle's job, not an assertion failure.
    pub fn is_clean(&self) -> bool {
        self.active.is_empty()
            && self.recovery.is_empty()
            && self.index.is_empty()
            && self.media.is_empty()
    }

    /// Enable every mutant belonging to `dialect` (the Table 1 campaign
    /// configuration).
    pub fn all_for_dialect(dialect: Dialect) -> Self {
        let mut reg = Self::default();
        for b in BugId::for_dialect(dialect) {
            reg.enable(b);
        }
        reg
    }

    /// Enable exactly one mutant (the Table 2 per-bug configuration).
    pub fn only(bug: BugId) -> Self {
        let mut reg = Self::default();
        reg.enable(bug);
        reg
    }

    pub fn enable(&mut self, bug: BugId) {
        self.active.insert(bug);
    }

    pub fn disable(&mut self, bug: BugId) {
        self.active.remove(&bug);
    }

    #[inline]
    pub fn active(&self, bug: BugId) -> bool {
        self.active.contains(&bug)
    }

    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
            && self.recovery.is_empty()
            && self.index.is_empty()
            && self.media.is_empty()
    }

    pub fn enabled(&self) -> impl Iterator<Item = BugId> + '_ {
        self.active.iter().copied()
    }

    // --- recovery mutants -----------------------------------------------

    /// Enable exactly one recovery mutant (the per-bug probe
    /// configuration, mirroring [`BugRegistry::only`]).
    pub fn only_recovery(bug: RecoveryBugId) -> Self {
        let mut reg = Self::default();
        reg.enable_recovery(bug);
        reg
    }

    /// Enable every recovery mutant.
    pub fn all_recovery() -> Self {
        let mut reg = Self::default();
        for b in RecoveryBugId::ALL {
            reg.enable_recovery(b);
        }
        reg
    }

    pub fn enable_recovery(&mut self, bug: RecoveryBugId) {
        self.recovery.insert(bug);
    }

    pub fn disable_recovery(&mut self, bug: RecoveryBugId) {
        self.recovery.remove(&bug);
    }

    #[inline]
    pub fn recovery_active(&self, bug: RecoveryBugId) -> bool {
        self.recovery.contains(&bug)
    }

    pub fn enabled_recovery(&self) -> impl Iterator<Item = RecoveryBugId> + '_ {
        self.recovery.iter().copied()
    }

    // --- index mutants ---------------------------------------------------

    /// Enable exactly one index mutant (the per-bug probe configuration,
    /// mirroring [`BugRegistry::only`]).
    pub fn only_index(bug: IndexBugId) -> Self {
        let mut reg = Self::default();
        reg.enable_index(bug);
        reg
    }

    /// Enable every index mutant.
    pub fn all_index() -> Self {
        let mut reg = Self::default();
        for b in IndexBugId::ALL {
            reg.enable_index(b);
        }
        reg
    }

    pub fn enable_index(&mut self, bug: IndexBugId) {
        self.index.insert(bug);
    }

    pub fn disable_index(&mut self, bug: IndexBugId) {
        self.index.remove(&bug);
    }

    #[inline]
    pub fn index_active(&self, bug: IndexBugId) -> bool {
        self.index.contains(&bug)
    }

    pub fn enabled_index(&self) -> impl Iterator<Item = IndexBugId> + '_ {
        self.index.iter().copied()
    }

    // --- media mutants ----------------------------------------------------

    /// Enable exactly one media mutant (the per-bug probe configuration,
    /// mirroring [`BugRegistry::only`]).
    pub fn only_media(bug: MediaBugId) -> Self {
        let mut reg = Self::default();
        reg.enable_media(bug);
        reg
    }

    /// Enable every media mutant.
    pub fn all_media() -> Self {
        let mut reg = Self::default();
        for b in MediaBugId::ALL {
            reg.enable_media(b);
        }
        reg
    }

    pub fn enable_media(&mut self, bug: MediaBugId) {
        self.media.insert(bug);
    }

    pub fn disable_media(&mut self, bug: MediaBugId) {
        self.media.remove(&bug);
    }

    #[inline]
    pub fn media_active(&self, bug: MediaBugId) -> bool {
        self.media.contains(&bug)
    }

    pub fn enabled_media(&self) -> impl Iterator<Item = MediaBugId> + '_ {
        self.media.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_match_paper() {
        // Table 1 of the paper: per-DBMS bug counts by category.
        let count = |d: Dialect, k: BugKind| {
            BugId::ALL
                .iter()
                .filter(|b| b.dialect() == d && b.kind() == k)
                .count()
        };
        assert_eq!(count(Dialect::Sqlite, BugKind::Logic), 6);
        assert_eq!(count(Dialect::Sqlite, BugKind::InternalError), 1);
        assert_eq!(count(Dialect::Mysql, BugKind::Logic), 1);
        assert_eq!(count(Dialect::Mysql, BugKind::InternalError), 1);
        assert_eq!(count(Dialect::Cockroach, BugKind::Logic), 7);
        assert_eq!(count(Dialect::Cockroach, BugKind::InternalError), 4);
        assert_eq!(count(Dialect::Cockroach, BugKind::Hang), 2);
        assert_eq!(count(Dialect::Duckdb, BugKind::Logic), 5);
        assert_eq!(count(Dialect::Duckdb, BugKind::InternalError), 2);
        assert_eq!(count(Dialect::Duckdb, BugKind::Crash), 2);
        assert_eq!(count(Dialect::Duckdb, BugKind::Hang), 3);
        assert_eq!(count(Dialect::Tidb, BugKind::Logic), 5);
        assert_eq!(count(Dialect::Tidb, BugKind::InternalError), 6);
        assert_eq!(BugId::ALL.len(), 45);
        assert_eq!(BugId::logic_bugs().len(), 24);
    }

    #[test]
    fn table2_detectability_matches_paper() {
        // Table 2: NoREC 11, TLP 12, DQE 4, only-CODDTest 11.
        let logic = BugId::logic_bugs();
        let by = |o: BaselineOracle| {
            logic
                .iter()
                .filter(|b| b.baseline_detectable().contains(&o))
                .count()
        };
        assert_eq!(by(BaselineOracle::NoRec), 11, "NoREC-detectable");
        assert_eq!(by(BaselineOracle::Tlp), 12, "TLP-detectable");
        assert_eq!(by(BaselineOracle::Dqe), 4, "DQE-detectable");
        let only_codd = logic
            .iter()
            .filter(|b| b.baseline_detectable().is_empty())
            .count();
        assert_eq!(only_codd, 11, "only-CODDTest");
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut names = BTreeSet::new();
        for b in BugId::ALL {
            assert!(!b.name().is_empty());
            assert!(!b.description().is_empty());
            assert!(names.insert(b.name()), "duplicate name {}", b.name());
        }
    }

    #[test]
    fn registry_enable_disable() {
        let mut reg = BugRegistry::none();
        assert!(reg.is_empty());
        reg.enable(BugId::SqliteLikeCaseFold);
        assert!(reg.active(BugId::SqliteLikeCaseFold));
        assert!(!reg.active(BugId::MysqlTextIntCompareWhere));
        reg.disable(BugId::SqliteLikeCaseFold);
        assert!(reg.is_empty());
    }

    #[test]
    fn all_for_dialect_covers_exactly_that_dialect() {
        let reg = BugRegistry::all_for_dialect(Dialect::Duckdb);
        assert_eq!(reg.enabled().count(), 12);
        assert!(reg.enabled().all(|b| b.dialect() == Dialect::Duckdb));
    }

    #[test]
    fn recovery_mutants_are_separate_from_the_table1_scheme() {
        // Table 1/2 invariants stay untouched by the recovery mutants.
        assert_eq!(BugId::ALL.len(), 45);
        assert_eq!(RecoveryBugId::ALL.len(), 10);
        let mut names = BTreeSet::new();
        for b in RecoveryBugId::ALL {
            assert!(!b.name().is_empty());
            assert!(!b.description().is_empty());
            assert!(names.insert(b.name()), "duplicate name {}", b.name());
        }
        // No overlap with engine-mutant names.
        for b in BugId::ALL {
            assert!(!names.contains(b.name()));
        }
    }

    #[test]
    fn index_mutants_are_separate_from_the_other_schemes() {
        assert_eq!(BugId::ALL.len(), 45);
        assert_eq!(RecoveryBugId::ALL.len(), 10);
        assert_eq!(IndexBugId::ALL.len(), 5);
        let mut names = BTreeSet::new();
        for b in IndexBugId::ALL {
            assert!(!b.name().is_empty());
            assert!(!b.description().is_empty());
            assert_eq!(b.kind(), BugKind::Logic);
            assert!(names.insert(b.name()), "duplicate name {}", b.name());
        }
        for b in BugId::ALL {
            assert!(!names.contains(b.name()));
        }
        for b in RecoveryBugId::ALL {
            assert!(!names.contains(b.name()));
        }
    }

    #[test]
    fn registry_tracks_index_mutants_independently() {
        let mut reg = BugRegistry::none();
        assert!(reg.is_empty());
        reg.enable_index(IndexBugId::RangeBoundOffByOne);
        assert!(!reg.is_empty(), "index mutants count as active bugs");
        assert!(reg.index_active(IndexBugId::RangeBoundOffByOne));
        assert!(!reg.index_active(IndexBugId::StaleEntryAfterUpdate));
        assert!(!reg.active(BugId::SqliteLikeCaseFold));
        assert!(!reg.recovery_active(RecoveryBugId::DropLastCommit));
        reg.disable_index(IndexBugId::RangeBoundOffByOne);
        assert!(reg.is_empty());

        let only = BugRegistry::only_index(IndexBugId::EqSeekMissesDuplicates);
        assert_eq!(only.enabled().count(), 0);
        assert_eq!(only.enabled_recovery().count(), 0);
        assert_eq!(
            only.enabled_index().collect::<Vec<_>>(),
            vec![IndexBugId::EqSeekMissesDuplicates]
        );
        assert_eq!(BugRegistry::all_index().enabled_index().count(), 5);
    }

    #[test]
    fn media_mutants_are_separate_from_the_other_schemes() {
        assert_eq!(BugId::ALL.len(), 45);
        assert_eq!(RecoveryBugId::ALL.len(), 10);
        assert_eq!(IndexBugId::ALL.len(), 5);
        assert_eq!(MediaBugId::ALL.len(), 5);
        let mut names = BTreeSet::new();
        for b in MediaBugId::ALL {
            assert!(!b.name().is_empty());
            assert!(!b.description().is_empty());
            assert!(names.insert(b.name()), "duplicate name {}", b.name());
        }
        for b in BugId::ALL {
            assert!(!names.contains(b.name()));
        }
        for b in RecoveryBugId::ALL {
            assert!(!names.contains(b.name()));
        }
        for b in IndexBugId::ALL {
            assert!(!names.contains(b.name()));
        }
    }

    #[test]
    fn registry_tracks_media_mutants_independently() {
        let mut reg = BugRegistry::none();
        assert!(reg.is_empty());
        reg.enable_media(MediaBugId::SkipScrubChecksum);
        assert!(!reg.is_empty(), "media mutants count as active bugs");
        assert!(reg.media_active(MediaBugId::SkipScrubChecksum));
        assert!(!reg.media_active(MediaBugId::RetryCapIgnored));
        assert!(!reg.active(BugId::SqliteLikeCaseFold));
        assert!(!reg.recovery_active(RecoveryBugId::DropLastCommit));
        assert!(!reg.index_active(IndexBugId::RangeBoundOffByOne));
        reg.disable_media(MediaBugId::SkipScrubChecksum);
        assert!(reg.is_empty());

        let only = BugRegistry::only_media(MediaBugId::SalvagePastCorruptCommit);
        assert_eq!(only.enabled().count(), 0);
        assert_eq!(only.enabled_recovery().count(), 0);
        assert_eq!(only.enabled_index().count(), 0);
        assert_eq!(
            only.enabled_media().collect::<Vec<_>>(),
            vec![MediaBugId::SalvagePastCorruptCommit]
        );
        assert_eq!(BugRegistry::all_media().enabled_media().count(), 5);
    }

    #[test]
    fn registry_tracks_recovery_mutants_independently() {
        let mut reg = BugRegistry::none();
        assert!(reg.is_empty());
        reg.enable_recovery(RecoveryBugId::DropLastCommit);
        assert!(!reg.is_empty(), "recovery mutants count as active bugs");
        assert!(reg.recovery_active(RecoveryBugId::DropLastCommit));
        assert!(!reg.recovery_active(RecoveryBugId::SkipChecksumVerify));
        assert!(!reg.active(BugId::SqliteLikeCaseFold));
        reg.disable_recovery(RecoveryBugId::DropLastCommit);
        assert!(reg.is_empty());

        let only = BugRegistry::only_recovery(RecoveryBugId::ReplayUncommitted);
        assert_eq!(only.enabled().count(), 0);
        assert_eq!(
            only.enabled_recovery().collect::<Vec<_>>(),
            vec![RecoveryBugId::ReplayUncommitted]
        );
        assert_eq!(BugRegistry::all_recovery().enabled_recovery().count(), 10);
    }

    #[test]
    fn non_logic_bugs_have_no_baseline_entry() {
        for b in BugId::ALL {
            if b.kind() != BugKind::Logic {
                assert!(b.baseline_detectable().is_empty());
            }
        }
    }
}
