//! Scalar expression evaluation.
//!
//! Implements SQL three-valued logic, dialect-dependent coercion rules
//! (§3.3 of the paper: SQLite/MySQL convert freely, CockroachDB/DuckDB are
//! strict), subquery evaluation (delegated back to [`crate::exec`]), and
//! most of the injected logic-bug trigger points.
//!
//! The evaluator operates on the *bound* expression form
//! ([`crate::bind::BoundExpr`]): column references are `(scope hop,
//! ordinal)` pairs resolved once per query by the binder, so
//! [`eval_bound`] performs no name resolution — and no heap allocation
//! for it — per row. [`eval_expr`] is the bind-and-evaluate convenience
//! wrapper for expressions evaluated once per statement (and the per-row
//! baseline behind [`crate::exec::BindMode::PerRow`]).
//!
//! Evaluation threads an [`ExprCtx`] carrying the *context* of the
//! expression — clause, statement kind, whether rows arrived via an index
//! scan, whether the FROM reads a CTE, and the subquery nesting depth.
//! Real DBMS logic bugs are context-sensitive in exactly these dimensions,
//! which is what the mutants key on.

use std::cmp::Ordering;

use crate::ast::{AggFunc, BinaryOp, Expr, FuncName, Quantifier, SelectBody, UnaryOp};
use crate::bind::{Binder, BoundExpr};
use crate::bugs::BugId;
use crate::coverage::pt;
use crate::error::{Error, Result};
use crate::exec::{EngineCtx, EvalEnv, StmtKind};
use crate::plan::PlanCtx;
use crate::value::{DataType, Value};

/// Which clause an expression is being evaluated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clause {
    Where,
    SelectList,
    JoinOn,
    Having,
    GroupBy,
    OrderBy,
    IndexExpr,
    Limit,
    /// Planner-side constant folding (no clause-specific bugs fire here).
    ConstFold,
}

/// Context of the expression being evaluated.
#[derive(Debug, Clone, Copy)]
pub struct ExprCtx {
    pub clause: Clause,
    /// True only for the root node of the clause's expression.
    pub top_level: bool,
    /// Rows reaching this expression came through an index scan.
    pub via_index: bool,
    /// The enclosing FROM clause reads at least one CTE.
    pub from_has_cte: bool,
    /// Subquery nesting depth of the enclosing SELECT (0 = top statement).
    pub depth: u32,
}

impl ExprCtx {
    pub fn new(clause: Clause) -> Self {
        ExprCtx {
            clause,
            top_level: true,
            via_index: false,
            from_has_cte: false,
            depth: 0,
        }
    }

    /// Context for child sub-expressions: everything is inherited except
    /// `top_level`.
    pub fn child(self) -> Self {
        ExprCtx {
            top_level: false,
            ..self
        }
    }
}

/// SQL truth values.
pub type Bool3 = Option<bool>;

/// Convert a value to a SQL truth value under the active dialect.
pub fn truthiness(v: &Value, ctx: &EngineCtx) -> Result<Bool3> {
    match v {
        Value::Null => {
            ctx.cov.hit(pt::EVAL_TRUTHY_NULL);
            Ok(None)
        }
        Value::Bool(b) => {
            ctx.cov.hit(pt::EVAL_TRUTHY_BOOL);
            Ok(Some(*b))
        }
        other => {
            if ctx.dialect.strict_types() {
                return Err(Error::Type(format!(
                    "expected a boolean predicate, got {}",
                    other.data_type()
                )));
            }
            ctx.cov.hit(pt::EVAL_TRUTHY_NUMERIC);
            Ok(Some(other.coerce_f64() != 0.0))
        }
    }
}

/// Render a truth value as a SQL value (INTEGER 0/1 on flexible-typing
/// dialects, BOOLEAN on strict ones — matching what the emulated systems
/// return for comparisons).
pub fn bool3_to_value(b: Bool3, ctx: &EngineCtx) -> Value {
    match b {
        None => Value::Null,
        Some(t) => {
            if ctx.dialect.strict_types() {
                Value::Bool(t)
            } else {
                Value::Int(t as i64)
            }
        }
    }
}

pub(crate) fn not3(b: Bool3) -> Bool3 {
    b.map(|t| !t)
}

/// Evaluate a constant expression during planning. The expression is
/// bound against an empty scope stack (constants reference no columns).
pub fn eval_const(expr: &Expr, pctx: &PlanCtx) -> Result<Value> {
    let ctx = EngineCtx::new(
        pctx.catalog,
        pctx.dialect,
        pctx.bugs,
        pctx.cov,
        false,
        StmtKind::Select,
        u64::MAX,
    );
    let ctes = crate::exec::CteEnv::root();
    let env = EvalEnv {
        ctx: &ctx,
        scopes: &[],
        aggs: None,
        ctes: &ctes,
        info: ExprCtx::new(Clause::ConstFold),
    };
    eval_expr(expr, env)
}

/// Bind and evaluate an AST expression in one step.
///
/// This is the *tree-walking* path: it re-resolves every column name on
/// every call. The executor uses it only for expressions evaluated once
/// per statement and as the per-row baseline behind
/// [`crate::Database::set_bind_mode`]; hot loops bind once with
/// [`Binder`] and then call [`eval_bound`] per row.
pub fn eval_expr(expr: &Expr, env: EvalEnv) -> Result<Value> {
    let schemas: Vec<&crate::exec::Schema> = env.scopes.iter().map(|f| f.schema).collect();
    let mut binder = Binder::new(&schemas, env.info.depth);
    let bound = binder.bind(expr)?;
    eval_bound(&bound, env)
}

/// Evaluate a bound expression under the given environment.
pub fn eval_bound(expr: &BoundExpr, env: EvalEnv) -> Result<Value> {
    let ctx = env.ctx;
    match expr {
        BoundExpr::Literal(v) => {
            ctx.cov.hit(pt::EVAL_LITERAL);
            Ok(v.clone())
        }
        BoundExpr::Column(c) => {
            // The binder resolved the name once; the per-row work is an
            // optional bug-hook branch plus two indexed loads.
            let (mut up, mut index) = (c.up as usize, c.index as usize);
            if let Some((alt_up, alt_index)) = c.collision_alt {
                if ctx.bugs.active(BugId::TidbCorrelatedNameCollision) {
                    up = alt_up as usize;
                    index = alt_index as usize;
                }
            }
            ctx.cov.hit(if up == 0 {
                pt::EVAL_COLUMN_LOCAL
            } else {
                pt::EVAL_COLUMN_OUTER
            });
            let fi = env.scopes.len() - 1 - up;
            // Correlation detector for subquery result memoization: a read
            // below the enclosing subquery's scope floor is an outer read
            // and joins the memo key's slot set — including reads the
            // name-collision mutant redirects.
            ctx.note_column_read(fi, index);
            let frame = &env.scopes[fi];
            Ok(frame.row[index].clone())
        }
        BoundExpr::Unary { op, expr } => {
            let v = eval_bound(expr, env.child())?;
            match op {
                UnaryOp::Neg => {
                    ctx.cov.hit(pt::EVAL_NEG);
                    match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => i
                            .checked_neg()
                            .map(Value::Int)
                            .ok_or_else(|| Error::Eval("integer overflow in negation".into())),
                        Value::Real(r) => Ok(Value::Real(-r)),
                        other => {
                            if ctx.dialect.strict_types() {
                                Err(Error::Type(format!("cannot negate {}", other.data_type())))
                            } else {
                                Ok(Value::Real(-other.coerce_f64()))
                            }
                        }
                    }
                }
                UnaryOp::Not => {
                    ctx.cov.hit(pt::EVAL_NOT);
                    let b = truthiness(&v, ctx)?;
                    Ok(bool3_to_value(not3(b), ctx))
                }
            }
        }
        BoundExpr::Binary { op, left, right } => eval_binary(*op, left, right, env),
        BoundExpr::Between {
            expr: e,
            low,
            high,
            negated,
        } => {
            ctx.cov.hit(if *negated {
                pt::EVAL_BETWEEN_NEG
            } else {
                pt::EVAL_BETWEEN
            });
            let v = eval_bound(e, env.child())?;
            let lo = eval_bound(low, env.child())?;
            let hi = eval_bound(high, env.child())?;
            // Bug hook: SqliteBetweenTextAffinity — a top-level BETWEEN on
            // a TEXT value with numeric bounds wrongly applies numeric
            // affinity (SQLite's correct storage-class comparison places
            // any TEXT above any number, so the range never matches).
            if ctx.bugs.active(BugId::SqliteBetweenTextAffinity)
                && env.info.top_level
                && env.info.clause == Clause::Where
                && ctx.stmt == StmtKind::Select
                && !*negated
                && matches!(v, Value::Text(_))
            {
                if let (Some(lo), Some(hi)) = (lo.as_f64(), hi.as_f64()) {
                    let x = v.coerce_f64();
                    return Ok(bool3_to_value(Some(x >= lo && x <= hi), ctx));
                }
            }
            let ge_low = compare(&v, &lo, ctx, env.info)?.map(|o| o != Ordering::Less);
            let le_high = compare(&v, &hi, ctx, env.info)?.map(|o| o != Ordering::Greater);
            let b = and3(ge_low, le_high);
            Ok(bool3_to_value(if *negated { not3(b) } else { b }, ctx))
        }
        BoundExpr::InList {
            expr: e,
            list,
            negated,
        } => eval_in_list(e, list, *negated, env),
        BoundExpr::InSubquery {
            expr: e,
            query,
            negated,
        } => {
            let v = eval_bound(e, env.child())?;
            let rel = crate::exec::exec_subquery(query, env)?;
            if !rel.rows.is_empty() && rel.columns.len() != 1 {
                return Err(Error::SubqueryCardinality(
                    "IN subquery must return one column".into(),
                ));
            }
            // SQL: `x IN (empty set)` is FALSE even for NULL x.
            if rel.rows.is_empty() {
                ctx.cov.hit(pt::EVAL_IN_SUBQ_MISS);
                return Ok(bool3_to_value(Some(*negated), ctx));
            }
            let mut any_null = false;
            let mut hit = false;
            for row in &rel.rows {
                match compare(&v, &row[0], ctx, env.info)? {
                    Some(Ordering::Equal) => {
                        hit = true;
                        break;
                    }
                    None => any_null = true,
                    _ => {}
                }
            }
            let b = if hit {
                ctx.cov.hit(pt::EVAL_IN_SUBQ_HIT);
                Some(true)
            } else if v.is_null() || any_null {
                ctx.cov.hit(pt::EVAL_IN_SUBQ_NULL);
                None
            } else {
                ctx.cov.hit(pt::EVAL_IN_SUBQ_MISS);
                Some(false)
            };
            Ok(bool3_to_value(if *negated { not3(b) } else { b }, ctx))
        }
        BoundExpr::Exists { query, negated } => {
            let rel = crate::exec::exec_subquery(query, env)?;
            let mut exists = !rel.rows.is_empty();
            // Bug hook: SqliteExistsJoinOnEmpty — an empty EXISTS inside a
            // JOIN ON clause is treated as TRUE (Listing 8).
            if ctx.bugs.active(BugId::SqliteExistsJoinOnEmpty)
                && env.info.clause == Clause::JoinOn
                && !exists
            {
                exists = true;
            }
            ctx.cov.hit(if exists {
                pt::EVAL_EXISTS_TRUE
            } else {
                pt::EVAL_EXISTS_FALSE
            });
            let b = Some(exists != *negated);
            Ok(bool3_to_value(b, ctx))
        }
        BoundExpr::Scalar {
            query,
            has_aggregate,
        } => {
            // Bug hook: SqliteAggSubqueryIndexedWhere (Listing 1) — an
            // aggregate subquery with GROUP BY in the WHERE of an
            // index-scanned query is misevaluated. The trigger shape is
            // precomputed by the binder.
            if ctx.bugs.active(BugId::SqliteAggSubqueryIndexedWhere)
                && env.info.clause == Clause::Where
                && env.info.via_index
                && *has_aggregate
            {
                return Ok(Value::Int(1));
            }
            let rel = crate::exec::exec_subquery(query, env)?;
            if rel.rows.is_empty() {
                ctx.cov.hit(pt::EVAL_SCALAR_SUBQ_EMPTY);
                return Ok(Value::Null);
            }
            if rel.rows.len() > 1 {
                return Err(Error::SubqueryCardinality(
                    "subquery returns more than 1 row".into(),
                ));
            }
            if rel.columns.len() != 1 {
                return Err(Error::SubqueryCardinality(
                    "operand should contain 1 column".into(),
                ));
            }
            ctx.cov.hit(pt::EVAL_SCALAR_SUBQ);
            Ok(rel.rows[0][0].clone())
        }
        BoundExpr::Quantified {
            op,
            quantifier,
            expr: e,
            query,
        } => {
            if !ctx.dialect.supports_quantified() {
                return Err(Error::Unsupported(format!(
                    "{} does not support ANY/ALL",
                    ctx.dialect
                )));
            }
            let v = eval_bound(e, env.child())?;
            let rel = crate::exec::exec_subquery(query, env)?;
            if !rel.rows.is_empty() && rel.columns.len() != 1 {
                return Err(Error::SubqueryCardinality(
                    "quantified subquery must return one column".into(),
                ));
            }
            let mut quant = *quantifier;
            // Bug hook: CockroachAnyNonValuesSubquery — ANY evaluates with
            // ALL semantics unless the subquery is a bare VALUES list.
            if ctx.bugs.active(BugId::CockroachAnyNonValuesSubquery)
                && quant == Quantifier::Any
                && !matches!(query.body, SelectBody::Values(_))
            {
                quant = Quantifier::All;
            }
            ctx.cov.hit(match quant {
                Quantifier::Any => pt::EVAL_QUANT_ANY,
                Quantifier::All => pt::EVAL_QUANT_ALL,
            });
            let mut any_null = false;
            let mut any_true = false;
            let mut any_false = false;
            for row in &rel.rows {
                match compare(&v, &row[0], ctx, env.info)? {
                    None => any_null = true,
                    Some(ord) => {
                        if cmp_matches(op.as_binary(), ord) {
                            any_true = true;
                        } else {
                            any_false = true;
                        }
                    }
                }
            }
            let b = match quant {
                Quantifier::Any => {
                    if any_true {
                        Some(true)
                    } else if any_null {
                        None
                    } else {
                        Some(false)
                    }
                }
                Quantifier::All => {
                    if any_false {
                        Some(false)
                    } else if any_null {
                        None
                    } else {
                        Some(true)
                    }
                }
            };
            Ok(bool3_to_value(b, ctx))
        }
        BoundExpr::Case {
            operand,
            whens,
            else_expr,
            then_subquery,
        } => {
            // Bug hook: TidbInternalCaseManyWhens.
            if ctx.bugs.active(BugId::TidbInternalCaseManyWhens) && whens.len() > 8 {
                return Err(Error::Internal(
                    "CASE arm limit exceeded in plan cache".into(),
                ));
            }
            // Bug hook: DuckdbCaseSubqueryElse — a THEN arm containing a
            // subquery makes the CASE take the ELSE arm (shape precomputed
            // by the binder).
            if ctx.bugs.active(BugId::DuckdbCaseSubqueryElse)
                && else_expr.is_some()
                && *then_subquery
            {
                ctx.cov.hit(pt::EVAL_CASE_ELSE);
                return eval_bound(else_expr.as_ref().unwrap(), env.child());
            }
            match operand {
                Some(op) => {
                    ctx.cov.hit(pt::EVAL_CASE_OPERAND);
                    let base = eval_bound(op, env.child())?;
                    for (w, t) in whens {
                        let wv = eval_bound(w, env.child())?;
                        if compare(&base, &wv, ctx, env.info)? == Some(Ordering::Equal) {
                            return eval_bound(t, env.child());
                        }
                    }
                }
                None => {
                    ctx.cov.hit(pt::EVAL_CASE_SEARCHED);
                    for (w, t) in whens {
                        // Bug hook: CockroachCaseNullFromCte (Listing 7) —
                        // `WHEN NULL` takes the THEN branch when the query
                        // reads from a CTE.
                        if ctx.bugs.active(BugId::CockroachCaseNullFromCte)
                            && env.info.from_has_cte
                            && matches!(w, BoundExpr::Literal(Value::Null))
                        {
                            return eval_bound(t, env.child());
                        }
                        let wv = eval_bound(w, env.child())?;
                        if truthiness(&wv, ctx)? == Some(true) {
                            return eval_bound(t, env.child());
                        }
                    }
                }
            }
            match else_expr {
                Some(e) => {
                    ctx.cov.hit(pt::EVAL_CASE_ELSE);
                    eval_bound(e, env.child())
                }
                None => {
                    ctx.cov.hit(pt::EVAL_CASE_NO_MATCH);
                    Ok(Value::Null)
                }
            }
        }
        BoundExpr::Func { func, args } => eval_func(*func, args, env),
        BoundExpr::Agg { slot, .. } => match env.aggs {
            Some(aggs) => aggs
                .get(*slot as usize)
                .cloned()
                .ok_or_else(|| Error::Internal("aggregate value not precomputed".into())),
            None => Err(Error::Eval("misuse of aggregate function".into())),
        },
        BoundExpr::Cast { expr: e, ty } => {
            let v = eval_bound(e, env.child())?;
            eval_cast(v, *ty, ctx)
        }
        BoundExpr::IsNull { expr: e, negated } => {
            let v = eval_bound(e, env.child())?;
            let mut b = v.is_null();
            // Bug hook: TidbIsNullTopLevelInverted.
            if ctx.bugs.active(BugId::TidbIsNullTopLevelInverted)
                && env.info.top_level
                && env.info.clause == Clause::Where
                && !matches!(e.as_ref(), BoundExpr::Literal(_))
            {
                b = !b;
            }
            Ok(bool3_to_value(Some(b != *negated), ctx))
        }
        BoundExpr::Like {
            expr: e,
            pattern,
            negated,
        } => {
            let v = eval_bound(e, env.child())?;
            let p = eval_bound(pattern, env.child())?;
            if v.is_null() || p.is_null() {
                ctx.cov.hit(pt::EVAL_LIKE_NULL);
                return Ok(Value::Null);
            }
            let text = value_to_text(&v, ctx, "LIKE")?;
            let pat = value_to_text(&p, ctx, "LIKE")?;
            // Bug hook: TidbInternalLikeEscape.
            if ctx.bugs.active(BugId::TidbInternalLikeEscape) && pat.ends_with('\\') {
                return Err(Error::Internal("dangling escape in LIKE pattern".into()));
            }
            // Bug hook: DuckdbHangLikePercents.
            if ctx.bugs.active(BugId::DuckdbHangLikePercents) && pat.contains("%%%") {
                return Err(Error::Hang);
            }
            let mut case_insensitive = ctx.dialect.like_case_insensitive();
            // Bug hook: SqliteLikeCaseFold — top-level LIKE in a SELECT's
            // WHERE matches case-sensitively.
            if ctx.bugs.active(BugId::SqliteLikeCaseFold)
                && env.info.top_level
                && env.info.clause == Clause::Where
                && ctx.stmt == StmtKind::Select
            {
                case_insensitive = false;
            }
            let mut matched = like_match(&text, &pat, case_insensitive);
            ctx.cov.hit(if matched {
                pt::EVAL_LIKE_MATCH
            } else {
                pt::EVAL_LIKE_NOMATCH
            });
            let mut neg = *negated;
            // Bug hook: DuckdbNotLikeTopLevel — top-level NOT LIKE in WHERE
            // evaluates as plain LIKE.
            if ctx.bugs.active(BugId::DuckdbNotLikeTopLevel)
                && env.info.top_level
                && env.info.clause == Clause::Where
                && *negated
            {
                neg = false;
            }
            if neg {
                matched = !matched;
            }
            Ok(bool3_to_value(Some(matched), ctx))
        }
    }
}

pub(crate) fn and3(a: Bool3, b: Bool3) -> Bool3 {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

pub(crate) fn or3(a: Bool3, b: Bool3) -> Bool3 {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn eval_binary(op: BinaryOp, left: &BoundExpr, right: &BoundExpr, env: EvalEnv) -> Result<Value> {
    let ctx = env.ctx;
    match op {
        BinaryOp::And => {
            let lv = eval_bound(left, env.child())?;
            let lb = truthiness(&lv, ctx)?;
            if lb == Some(false) {
                ctx.cov.hit(pt::EVAL_AND_SHORT);
                return Ok(bool3_to_value(Some(false), ctx));
            }
            let rv = eval_bound(right, env.child())?;
            let rb = truthiness(&rv, ctx)?;
            let b = and3(lb, rb);
            if b.is_none() {
                ctx.cov.hit(pt::EVAL_AND_NULL);
            }
            Ok(bool3_to_value(b, ctx))
        }
        BinaryOp::Or => {
            // Bug hook: CockroachOrShortCircuitFalse — a top-level OR in a
            // SELECT's WHERE whose left arm is a constant FALSE literal
            // short-circuits the whole filter to FALSE.
            if ctx.bugs.active(BugId::CockroachOrShortCircuitFalse)
                && env.info.top_level
                && env.info.clause == Clause::Where
                && ctx.stmt == StmtKind::Select
            {
                if let BoundExpr::Literal(v) = left {
                    if matches!(v, Value::Bool(false) | Value::Int(0)) {
                        return Ok(bool3_to_value(Some(false), ctx));
                    }
                }
            }
            let lv = eval_bound(left, env.child())?;
            let lb = truthiness(&lv, ctx)?;
            if lb == Some(true) {
                ctx.cov.hit(pt::EVAL_OR_SHORT);
                return Ok(bool3_to_value(Some(true), ctx));
            }
            let rv = eval_bound(right, env.child())?;
            let rb = truthiness(&rv, ctx)?;
            let b = or3(lb, rb);
            if b.is_none() {
                ctx.cov.hit(pt::EVAL_OR_NULL);
            }
            Ok(bool3_to_value(b, ctx))
        }
        BinaryOp::Is | BinaryOp::IsNot => {
            ctx.cov.hit(pt::EVAL_IS_OP);
            let lv = eval_bound(left, env.child())?;
            let rv = eval_bound(right, env.child())?;
            let same = lv.is_identical(&rv);
            Ok(bool3_to_value(Some(same == (op == BinaryOp::Is)), ctx))
        }
        _ if op.is_comparison() => {
            let lv = eval_bound(left, env.child())?;
            let rv = eval_bound(right, env.child())?;
            // Bug hook: DuckdbSubqueryBoolCoerce — a boolean result of a
            // scalar subquery is "coerced" before the comparison,
            // inverting it.
            let lv = coerce_subquery_bool(lv, left, ctx);
            let rv = coerce_subquery_bool(rv, right, ctx);
            let ord = compare_with_bugs(&lv, &rv, ctx, env)?;
            let b = ord.map(|o| cmp_matches(op, o));
            ctx.cov.hit(match b {
                Some(true) => pt::EVAL_CMP_TRUE,
                Some(false) => pt::EVAL_CMP_FALSE,
                None => pt::EVAL_CMP_NULL,
            });
            Ok(bool3_to_value(b, ctx))
        }
        BinaryOp::Concat => {
            ctx.cov.hit(pt::EVAL_CONCAT);
            let lv = eval_bound(left, env.child())?;
            let rv = eval_bound(right, env.child())?;
            if lv.is_null() || rv.is_null() {
                return Ok(Value::Null);
            }
            // Bug hook: SqliteInternalConcatIndexedExpr.
            if ctx.bugs.active(BugId::SqliteInternalConcatIndexedExpr)
                && env.info.clause == Clause::IndexExpr
                && matches!(
                    (&lv, &rv),
                    (Value::Text(_), Value::Real(_)) | (Value::Real(_), Value::Text(_))
                )
            {
                return Err(Error::Internal(
                    "affinity confusion in indexed expression".into(),
                ));
            }
            let l = value_to_text(&lv, ctx, "||")?;
            let r = value_to_text(&rv, ctx, "||")?;
            Ok(Value::Text(format!("{l}{r}")))
        }
        _ => {
            debug_assert!(op.is_arithmetic());
            let lv = eval_bound(left, env.child())?;
            let rv = eval_bound(right, env.child())?;
            eval_arith(op, lv, rv, env)
        }
    }
}

fn coerce_subquery_bool(v: Value, e: &BoundExpr, ctx: &EngineCtx) -> Value {
    if ctx.bugs.active(BugId::DuckdbSubqueryBoolCoerce) && matches!(e, BoundExpr::Scalar { .. }) {
        // The modelled bug mishandles the subquery's return type before a
        // comparison: booleans invert, integers come back sign-flipped.
        match v {
            Value::Bool(b) => return Value::Bool(!b),
            Value::Int(i) => return Value::Int(-i),
            other => return other,
        }
    }
    v
}

pub(crate) fn cmp_matches(op: BinaryOp, ord: Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::Ne => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::Le => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::Ge => ord != Ordering::Less,
        _ => unreachable!("not a comparison"),
    }
}

/// Dialect-aware SQL comparison.
///
/// * Strict dialects demand compatible operand classes.
/// * MySQL/TiDB coerce TEXT numerically when compared with a number.
/// * SQLite compares across storage classes by class rank.
pub fn compare(a: &Value, b: &Value, ctx: &EngineCtx, _info: ExprCtx) -> Result<Option<Ordering>> {
    if a.is_null() || b.is_null() {
        return Ok(None);
    }
    let (at, bt) = (a.data_type(), b.data_type());
    let numeric = |t: DataType| matches!(t, DataType::Int | DataType::Real | DataType::Bool);
    if ctx.dialect.strict_types() {
        let compatible = at == bt || (numeric(at) && numeric(bt));
        if !compatible {
            return Err(Error::Type(format!("cannot compare {at} with {bt}")));
        }
    }
    // MySQL-family numeric coercion of text.
    if matches!(
        ctx.dialect,
        crate::dialect::Dialect::Mysql | crate::dialect::Dialect::Tidb
    ) {
        let is_text = |v: &Value| matches!(v, Value::Text(_));
        if (is_text(a) && numeric(bt)) || (numeric(at) && is_text(b)) {
            return Ok(Some(a.coerce_f64().total_cmp(&b.coerce_f64())));
        }
    }
    Ok(a.sql_cmp(b))
}

fn compare_with_bugs(
    a: &Value,
    b: &Value,
    ctx: &EngineCtx,
    env: EvalEnv,
) -> Result<Option<Ordering>> {
    // MySQL dialect rule (not a bug): cross-type TEXT/number comparisons
    // are rejected in UPDATE/DELETE (§4.2: the DQE semantic-error case).
    let is_text = |v: &Value| matches!(v, Value::Text(_));
    let is_num = |v: &Value| matches!(v, Value::Int(_) | Value::Real(_));
    if ctx.dialect == crate::dialect::Dialect::Mysql
        && matches!(ctx.stmt, StmtKind::Update | StmtKind::Delete)
        && env.info.clause == Clause::Where
        && ((is_text(a) && is_num(b)) || (is_num(a) && is_text(b)))
    {
        return Err(Error::Type(
            "cross-type comparison is not permitted in UPDATE/DELETE".into(),
        ));
    }
    // Bug hook: MysqlTextIntCompareWhere — a top-level TEXT-vs-INT
    // comparison in a WHERE filter compares by storage class instead of
    // coercing numerically.
    if ctx.bugs.active(BugId::MysqlTextIntCompareWhere)
        && env.info.top_level
        && env.info.clause == Clause::Where
        && ((is_text(a) && is_num(b)) || (is_num(a) && is_text(b)))
    {
        return Ok(a.sql_cmp(b)); // class-rank comparison: text > number
    }
    compare(a, b, ctx, env.info)
}

fn eval_in_list(e: &BoundExpr, list: &[BoundExpr], negated: bool, env: EvalEnv) -> Result<Value> {
    let ctx = env.ctx;
    let v = eval_bound(e, env.child())?;

    // Bug hook: TidbInValueListWhere (Listing 10) — a top-level IN value
    // list in a WHERE filter evaluates to FALSE (in every statement kind,
    // which is why DQE cannot see it).
    if ctx.bugs.active(BugId::TidbInValueListWhere)
        && env.info.top_level
        && env.info.clause == Clause::Where
        && !negated
    {
        return Ok(bool3_to_value(Some(false), ctx));
    }

    // SQL: `x IN ()` over an empty list is FALSE even for NULL x.
    if list.is_empty() {
        ctx.cov.hit(pt::EVAL_IN_LIST_MISS);
        return Ok(bool3_to_value(Some(negated), ctx));
    }
    // Evaluate all items up front (lists are short); the Listing-9 bug
    // hook below is keyed on the item *values*.
    let mut items = Vec::with_capacity(list.len());
    for item in list {
        items.push(eval_bound(item, env.child())?);
    }

    // Bug hook: CockroachInBigIntValueList (Listing 9) — an IN list with an
    // INT8-range value mis-lowers as a top-level SELECT predicate or
    // projection, but not in UPDATE/DELETE — which is how DQE catches it
    // while NoREC cannot (NoREC's two queries mis-lower identically; the
    // planner also refuses to constant-fold such lists, see plan.rs).
    if ctx.bugs.active(BugId::CockroachInBigIntValueList)
        && ctx.stmt == StmtKind::Select
        && env.info.top_level
        && matches!(env.info.clause, Clause::Where | Clause::SelectList)
        && items
            .iter()
            .any(|i| matches!(i, Value::Int(k) if k.unsigned_abs() > u32::MAX as u64))
    {
        return Ok(bool3_to_value(Some(negated), ctx));
    }

    let mut any_null = v.is_null();
    let mut hit = false;
    if !v.is_null() {
        for iv in &items {
            match compare(&v, iv, ctx, env.info)? {
                Some(Ordering::Equal) => {
                    hit = true;
                    break;
                }
                None => any_null = true,
                _ => {}
            }
        }
    }
    let b = if hit {
        ctx.cov.hit(pt::EVAL_IN_LIST_HIT);
        Some(true)
    } else if any_null {
        ctx.cov.hit(pt::EVAL_IN_LIST_NULL);
        None
    } else {
        ctx.cov.hit(pt::EVAL_IN_LIST_MISS);
        Some(false)
    };
    Ok(bool3_to_value(if negated { not3(b) } else { b }, ctx))
}

fn eval_arith(op: BinaryOp, lv: Value, rv: Value, env: EvalEnv) -> Result<Value> {
    let ctx = env.ctx;
    if lv.is_null() || rv.is_null() {
        ctx.cov.hit(pt::EVAL_ARITH_NULL);
        return Ok(Value::Null);
    }
    if ctx.dialect.strict_types() {
        let numeric = |v: &Value| matches!(v, Value::Int(_) | Value::Real(_));
        if !numeric(&lv) || !numeric(&rv) {
            return Err(Error::Type(format!(
                "cannot apply {op} to {} and {}",
                lv.data_type(),
                rv.data_type()
            )));
        }
    }
    let both_int = matches!(lv, Value::Int(_) | Value::Bool(_))
        && matches!(rv, Value::Int(_) | Value::Bool(_));
    match op {
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul => {
            if both_int {
                ctx.cov.hit(pt::EVAL_ARITH_INT);
                let a = lv.as_i64().unwrap();
                let b = rv.as_i64().unwrap();
                let r = match op {
                    BinaryOp::Add => a.checked_add(b),
                    BinaryOp::Sub => a.checked_sub(b),
                    _ => a.checked_mul(b),
                };
                match r {
                    Some(v) => Ok(Value::Int(v)),
                    None => {
                        ctx.cov.hit(pt::EVAL_ARITH_OVERFLOW);
                        // Bug hook: DuckdbInternalOverflowAddProj
                        // (Listing 11) — overflow in a projection raises an
                        // internal error instead of a clean one.
                        if ctx.bugs.active(BugId::DuckdbInternalOverflowAddProj)
                            && op == BinaryOp::Add
                            && env.info.clause == Clause::SelectList
                        {
                            return Err(Error::Internal(format!(
                                "Overflow in addition of INT64 ({a} + {b})!"
                            )));
                        }
                        Err(Error::Eval(format!("integer overflow: {a} {op} {b}")))
                    }
                }
            } else {
                ctx.cov.hit(pt::EVAL_ARITH_REAL);
                let a = lv.coerce_f64();
                let b = rv.coerce_f64();
                let r = match op {
                    BinaryOp::Add => a + b,
                    BinaryOp::Sub => a - b,
                    _ => a * b,
                };
                Ok(finite_or_null(r))
            }
        }
        BinaryOp::Div => {
            let b_num = rv.coerce_f64();
            if b_num == 0.0 {
                return div_by_zero(ctx);
            }
            if both_int && !ctx.dialect.int_div_yields_real() {
                ctx.cov.hit(pt::EVAL_ARITH_INT);
                let a = lv.as_i64().unwrap();
                let b = rv.as_i64().unwrap();
                a.checked_div(b)
                    .map(Value::Int)
                    .ok_or_else(|| Error::Eval("integer overflow in division".into()))
            } else {
                ctx.cov.hit(pt::EVAL_ARITH_REAL);
                Ok(finite_or_null(lv.coerce_f64() / b_num))
            }
        }
        BinaryOp::Mod => {
            let a = lv
                .as_i64()
                .or_else(|| Some(lv.coerce_f64() as i64))
                .unwrap();
            let b = rv
                .as_i64()
                .or_else(|| Some(rv.coerce_f64() as i64))
                .unwrap();
            if b == 0 {
                return div_by_zero(ctx);
            }
            ctx.cov.hit(pt::EVAL_ARITH_INT);
            a.checked_rem(b)
                .map(Value::Int)
                .ok_or_else(|| Error::Eval("integer overflow in modulo".into()))
        }
        _ => unreachable!("not arithmetic"),
    }
}

fn div_by_zero(ctx: &EngineCtx) -> Result<Value> {
    if ctx.dialect.div_by_zero_is_null() {
        ctx.cov.hit(pt::EVAL_DIV_ZERO_NULL);
        Ok(Value::Null)
    } else {
        ctx.cov.hit(pt::EVAL_DIV_ZERO_ERROR);
        Err(Error::Eval("division by zero".into()))
    }
}

fn finite_or_null(r: f64) -> Value {
    if r.is_finite() {
        Value::Real(r)
    } else {
        // CoddDB maps non-finite reals to NULL (documented simplification;
        // the paper's generator likewise eschews extreme floats to avoid
        // false alarms).
        Value::Null
    }
}

fn value_to_text(v: &Value, ctx: &EngineCtx, op: &str) -> Result<String> {
    match v {
        Value::Text(s) => Ok(s.clone()),
        other if !ctx.dialect.strict_types() => Ok(other.to_string()),
        other => Err(Error::Type(format!(
            "{op} expects TEXT, got {}",
            other.data_type()
        ))),
    }
}

fn eval_cast(v: Value, ty: DataType, ctx: &EngineCtx) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    match ty {
        DataType::Int => {
            ctx.cov.hit(pt::EVAL_CAST_INT);
            match &v {
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Bool(b) => Ok(Value::Int(*b as i64)),
                Value::Real(r) => Ok(Value::Int(*r as i64)),
                Value::Text(s) => {
                    if ctx.dialect.strict_types() {
                        match s.trim().parse::<i64>() {
                            Ok(i) => Ok(Value::Int(i)),
                            Err(_) => {
                                // Bug hook: CockroachInternalCastTextInt.
                                if ctx.bugs.active(BugId::CockroachInternalCastTextInt) {
                                    Err(Error::Internal(format!(
                                        "could not lower cast of {s:?} to INT"
                                    )))
                                } else {
                                    Err(Error::Eval(format!("could not parse {s:?} as INT")))
                                }
                            }
                        }
                    } else {
                        Ok(Value::Int(v.coerce_f64() as i64))
                    }
                }
                Value::Null => unreachable!(),
            }
        }
        DataType::Real => {
            ctx.cov.hit(pt::EVAL_CAST_REAL);
            match &v {
                Value::Real(r) => Ok(Value::Real(*r)),
                Value::Int(i) => Ok(Value::Real(*i as f64)),
                Value::Bool(b) => Ok(Value::Real(*b as i64 as f64)),
                Value::Text(s) => {
                    if ctx.dialect.strict_types() {
                        s.trim()
                            .parse::<f64>()
                            .map(Value::Real)
                            .map_err(|_| Error::Eval(format!("could not parse {s:?} as REAL")))
                    } else {
                        Ok(Value::Real(v.coerce_f64()))
                    }
                }
                Value::Null => unreachable!(),
            }
        }
        DataType::Text => {
            ctx.cov.hit(pt::EVAL_CAST_TEXT);
            Ok(Value::Text(v.to_string()))
        }
        DataType::Bool => {
            ctx.cov.hit(pt::EVAL_CAST_BOOL);
            match &v {
                Value::Bool(b) => Ok(Value::Bool(*b)),
                Value::Int(i) => Ok(Value::Bool(*i != 0)),
                Value::Real(r) => Ok(Value::Bool(*r != 0.0)),
                Value::Text(s) => {
                    let t = s.trim().to_ascii_lowercase();
                    match t.as_str() {
                        "true" | "t" | "1" => Ok(Value::Bool(true)),
                        "false" | "f" | "0" => Ok(Value::Bool(false)),
                        _ if !ctx.dialect.strict_types() => Ok(Value::Bool(v.coerce_f64() != 0.0)),
                        _ => Err(Error::Eval(format!("could not parse {s:?} as BOOLEAN"))),
                    }
                }
                Value::Null => unreachable!(),
            }
        }
        DataType::Any => Ok(v),
    }
}

fn eval_func(func: FuncName, args: &[BoundExpr], env: EvalEnv) -> Result<Value> {
    let ctx = env.ctx;
    let arity_err = |want: &str| {
        Err(Error::Eval(format!(
            "wrong number of arguments to function {}() (expected {want}, got {})",
            func.sql_name(),
            args.len()
        )))
    };
    match func {
        FuncName::Length => {
            if args.len() != 1 {
                return arity_err("1");
            }
            ctx.cov.hit(pt::EVAL_FUNC_LENGTH);
            let v = eval_bound(&args[0], env.child())?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let s = value_to_text(&v, ctx, "LENGTH")?;
            Ok(Value::Int(s.chars().count() as i64))
        }
        FuncName::Abs => {
            if args.len() != 1 {
                return arity_err("1");
            }
            ctx.cov.hit(pt::EVAL_FUNC_ABS);
            match eval_bound(&args[0], env.child())? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => i
                    .checked_abs()
                    .map(Value::Int)
                    .ok_or_else(|| Error::Eval("integer overflow in ABS".into())),
                Value::Real(r) => Ok(Value::Real(r.abs())),
                other if !ctx.dialect.strict_types() => Ok(Value::Real(other.coerce_f64().abs())),
                other => Err(Error::Type(format!(
                    "ABS expects a number, got {}",
                    other.data_type()
                ))),
            }
        }
        FuncName::Upper | FuncName::Lower => {
            if args.len() != 1 {
                return arity_err("1");
            }
            ctx.cov.hit(if func == FuncName::Upper {
                pt::EVAL_FUNC_UPPER
            } else {
                pt::EVAL_FUNC_LOWER
            });
            let v = eval_bound(&args[0], env.child())?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let s = value_to_text(&v, ctx, func.sql_name())?;
            Ok(Value::Text(if func == FuncName::Upper {
                s.to_uppercase()
            } else {
                s.to_lowercase()
            }))
        }
        FuncName::Coalesce => {
            if args.is_empty() {
                return arity_err(">=1");
            }
            ctx.cov.hit(pt::EVAL_FUNC_COALESCE);
            for a in args {
                let v = eval_bound(a, env.child())?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        FuncName::Nullif => {
            if args.len() != 2 {
                return arity_err("2");
            }
            ctx.cov.hit(pt::EVAL_FUNC_NULLIF);
            let a = eval_bound(&args[0], env.child())?;
            let b = eval_bound(&args[1], env.child())?;
            if compare(&a, &b, ctx, env.info)? == Some(Ordering::Equal) {
                Ok(Value::Null)
            } else {
                Ok(a)
            }
        }
        FuncName::Iif => {
            if args.len() != 3 {
                return arity_err("3");
            }
            ctx.cov.hit(pt::EVAL_FUNC_IIF);
            let c = eval_bound(&args[0], env.child())?;
            if truthiness(&c, ctx)? == Some(true) {
                eval_bound(&args[1], env.child())
            } else {
                eval_bound(&args[2], env.child())
            }
        }
        FuncName::Typeof => {
            if args.len() != 1 {
                return arity_err("1");
            }
            ctx.cov.hit(pt::EVAL_FUNC_TYPEOF);
            let v = eval_bound(&args[0], env.child())?;
            let name = match v {
                Value::Null => "null",
                Value::Int(_) => "integer",
                Value::Real(_) => "real",
                Value::Text(_) => "text",
                Value::Bool(_) => "boolean",
            };
            Ok(Value::Text(name.into()))
        }
        FuncName::Version => {
            if !args.is_empty() {
                return arity_err("0");
            }
            ctx.cov.hit(pt::EVAL_FUNC_VERSION);
            Ok(Value::Text(ctx.dialect.version_string().into()))
        }
        FuncName::Round => {
            if args.is_empty() || args.len() > 2 {
                return arity_err("1 or 2");
            }
            ctx.cov.hit(pt::EVAL_FUNC_ROUND);
            let v = eval_bound(&args[0], env.child())?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let p = if args.len() == 2 {
                match eval_bound(&args[1], env.child())? {
                    Value::Null => return Ok(Value::Null),
                    pv => pv.as_i64().unwrap_or(0),
                }
            } else {
                0
            };
            // Bug hook: TidbInternalRoundHuge.
            if ctx.bugs.active(BugId::TidbInternalRoundHuge) && p > 10 {
                return Err(Error::Internal(
                    "ROUND precision exceeds decimal window".into(),
                ));
            }
            let x = match v.as_f64() {
                Some(x) => x,
                None if !ctx.dialect.strict_types() => v.coerce_f64(),
                None => {
                    return Err(Error::Type(format!(
                        "ROUND expects a number, got {}",
                        v.data_type()
                    )))
                }
            };
            let p = p.clamp(-15, 15);
            let factor = 10f64.powi(p as i32);
            Ok(finite_or_null((x * factor).round() / factor))
        }
        FuncName::Sign => {
            if args.len() != 1 {
                return arity_err("1");
            }
            ctx.cov.hit(pt::EVAL_FUNC_SIGN);
            let v = eval_bound(&args[0], env.child())?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let x = match v.as_f64() {
                Some(x) => x,
                None if !ctx.dialect.strict_types() => v.coerce_f64(),
                None => {
                    return Err(Error::Type(format!(
                        "SIGN expects a number, got {}",
                        v.data_type()
                    )))
                }
            };
            Ok(Value::Int(if x > 0.0 {
                1
            } else if x < 0.0 {
                -1
            } else {
                0
            }))
        }
        FuncName::Instr => {
            if args.len() != 2 {
                return arity_err("2");
            }
            ctx.cov.hit(pt::EVAL_FUNC_INSTR);
            let a = eval_bound(&args[0], env.child())?;
            let b = eval_bound(&args[1], env.child())?;
            if a.is_null() || b.is_null() {
                return Ok(Value::Null);
            }
            let hay = value_to_text(&a, ctx, "INSTR")?;
            let needle = value_to_text(&b, ctx, "INSTR")?;
            let pos = hay
                .find(&needle)
                .map(|byte| hay[..byte].chars().count() as i64 + 1)
                .unwrap_or(0);
            Ok(Value::Int(pos))
        }
        FuncName::Substr => {
            if args.len() < 2 || args.len() > 3 {
                return arity_err("2 or 3");
            }
            ctx.cov.hit(pt::EVAL_FUNC_SUBSTR);
            let s = eval_bound(&args[0], env.child())?;
            let start = eval_bound(&args[1], env.child())?;
            if s.is_null() || start.is_null() {
                return Ok(Value::Null);
            }
            let text = value_to_text(&s, ctx, "SUBSTR")?;
            let start = start.as_i64().unwrap_or(1);
            // Bug hook: TidbInternalSubstrNegative.
            if ctx.bugs.active(BugId::TidbInternalSubstrNegative) && start < 0 {
                return Err(Error::Internal(
                    "negative SUBSTR offset underflows cursor".into(),
                ));
            }
            let chars: Vec<char> = text.chars().collect();
            let len = chars.len() as i64;
            // SQLite semantics: 1-based; negative counts from the end.
            let begin = if start > 0 {
                start - 1
            } else if start < 0 {
                (len + start).max(0)
            } else {
                0
            };
            let take = if args.len() == 3 {
                match eval_bound(&args[2], env.child())? {
                    Value::Null => return Ok(Value::Null),
                    v => v.as_i64().unwrap_or(0).max(0),
                }
            } else {
                len
            };
            let begin = begin.clamp(0, len) as usize;
            let end = (begin + take as usize).min(chars.len());
            Ok(Value::Text(chars[begin..end].iter().collect()))
        }
    }
}

/// SQL LIKE pattern matching (`%` and `_`), iterative with backtracking.
pub fn like_match(text: &str, pattern: &str, case_insensitive: bool) -> bool {
    let norm = |s: &str| {
        if case_insensitive {
            s.to_lowercase().chars().collect::<Vec<char>>()
        } else {
            s.chars().collect()
        }
    };
    let t = norm(text);
    let p = norm(pattern);
    let (mut ti, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, text idx)
    while ti < t.len() {
        // `%` must be treated as a wildcard before any literal match —
        // otherwise a literal '%' in the *text* would consume it.
        if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

// ---------------------------------------------------------------------------
// Aggregate computation (used by the executor's grouping stage).
// ---------------------------------------------------------------------------

/// Precomputed aggregate values for one group, indexed by the slot the
/// binder assigned to each distinct aggregate expression
/// ([`crate::bind::AggSpec`]).
pub type AggValues = Vec<Value>;

/// Compute one aggregate over the values of its argument for a group.
/// `values` holds the evaluated argument per row (empty for COUNT(*), which
/// passes one dummy entry per row).
pub fn compute_aggregate(
    func: AggFunc,
    distinct: bool,
    mut values: Vec<Value>,
    env: EvalEnv,
) -> Result<Value> {
    let ctx = env.ctx;
    if distinct {
        ctx.cov.hit(pt::AGG_DISTINCT);
        values.sort_by(|a, b| a.total_cmp(b));
        values.dedup_by(|a, b| a.is_identical(b));
    }
    match func {
        AggFunc::CountStar => {
            ctx.cov.hit(pt::AGG_COUNT_STAR);
            Ok(Value::Int(values.len() as i64))
        }
        AggFunc::Count => {
            ctx.cov.hit(pt::AGG_COUNT);
            Ok(Value::Int(
                values.iter().filter(|v| !v.is_null()).count() as i64
            ))
        }
        AggFunc::Min | AggFunc::Max => {
            ctx.cov.hit(if func == AggFunc::Min {
                pt::AGG_MIN
            } else {
                pt::AGG_MAX
            });
            let mut best: Option<Value> = None;
            for v in values {
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = if func == AggFunc::Min {
                            v.total_cmp(&b) == Ordering::Less
                        } else {
                            v.total_cmp(&b) == Ordering::Greater
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            if best.is_none() {
                ctx.cov.hit(pt::AGG_EMPTY);
            }
            Ok(best.unwrap_or(Value::Null))
        }
        AggFunc::Sum | AggFunc::Total | AggFunc::Avg => {
            // One counting pass instead of materializing the non-NULL
            // subset: the value order seen by every later loop (and so
            // every error and overflow site) is unchanged.
            let mut nonnull_count = 0usize;
            let mut all_int = true;
            for v in &values {
                if !v.is_null() {
                    nonnull_count += 1;
                    if !matches!(v, Value::Int(_) | Value::Bool(_)) {
                        all_int = false;
                    }
                }
            }
            if nonnull_count == 0 {
                ctx.cov.hit(pt::AGG_EMPTY);
                // Bug hook: TidbAvgDistinctNestedZero — AVG(DISTINCT) over
                // empty input inside a nested subquery returns 0.
                if func == AggFunc::Avg
                    && distinct
                    && env.info.depth > 0
                    && ctx.bugs.active(BugId::TidbAvgDistinctNestedZero)
                {
                    return Ok(Value::Int(0));
                }
                return Ok(match func {
                    AggFunc::Total => Value::Real(0.0),
                    _ => Value::Null,
                });
            }
            if func == AggFunc::Sum && all_int {
                ctx.cov.hit(pt::AGG_SUM_INT);
                let mut acc: i64 = 0;
                for v in values.iter().filter(|v| !v.is_null()) {
                    acc = acc
                        .checked_add(v.as_i64().unwrap())
                        .ok_or_else(|| Error::Eval("integer overflow in SUM".into()))?;
                }
                return Ok(Value::Int(acc));
            }
            // Real accumulation: fold over *sorted* values so that the
            // result is a deterministic function of the input multiset
            // regardless of scan order.
            let mut reals: Vec<f64> = Vec::with_capacity(nonnull_count);
            for v in values.iter().filter(|v| !v.is_null()) {
                match v.as_f64() {
                    Some(x) => reals.push(x),
                    None if !ctx.dialect.strict_types() => reals.push(v.coerce_f64()),
                    None => {
                        return Err(Error::Type(format!(
                            "{} expects numbers, got {}",
                            func.sql_name(),
                            v.data_type()
                        )))
                    }
                }
            }
            // Bug hook: CockroachAvgNestedReverse — inside a nested
            // subquery, AVG accumulates in reverse arrival order with f32
            // rounding at each step (the argument-order AVG bug).
            if func == AggFunc::Avg
                && env.info.depth > 0
                && ctx.bugs.active(BugId::CockroachAvgNestedReverse)
            {
                ctx.cov.hit(pt::AGG_AVG);
                let mut acc: f32 = 0.0;
                for x in reals.iter().rev() {
                    acc += *x as f32;
                }
                return Ok(Value::Real(acc as f64 / reals.len() as f64));
            }
            reals.sort_by(|a, b| a.total_cmp(b));
            let sum: f64 = reals.iter().sum();
            match func {
                AggFunc::Sum => {
                    ctx.cov.hit(pt::AGG_SUM_REAL);
                    Ok(finite_or_null(sum))
                }
                AggFunc::Total => {
                    ctx.cov.hit(pt::AGG_TOTAL);
                    Ok(finite_or_null(sum))
                }
                AggFunc::Avg => {
                    ctx.cov.hit(pt::AGG_AVG);
                    Ok(finite_or_null(sum / reals.len() as f64))
                }
                _ => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_matcher_basics() {
        assert!(like_match("hello", "h%o", false));
        assert!(like_match("hello", "_ello", false));
        assert!(!like_match("hello", "h_o", false));
        assert!(like_match("", "%", false));
        assert!(!like_match("abc", "", false));
        assert!(like_match("abc", "%%c", false));
        assert!(like_match("HeLLo", "hello", true));
        assert!(!like_match("HeLLo", "hello", false));
        assert!(like_match("a%b", "a%b", false));
    }

    #[test]
    fn like_matcher_pathological_patterns_terminate() {
        let text = "a".repeat(200);
        assert!(like_match(&text, "%a%a%a%a%a%", false));
        assert!(!like_match(&text, "%a%a%b", false));
    }

    #[test]
    fn three_valued_and_or() {
        assert_eq!(and3(Some(true), None), None);
        assert_eq!(and3(Some(false), None), Some(false));
        assert_eq!(or3(Some(true), None), Some(true));
        assert_eq!(or3(Some(false), None), None);
        assert_eq!(not3(None), None);
    }
}
