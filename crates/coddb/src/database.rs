//! The public engine facade.
//!
//! [`Database`] owns a catalog, a dialect profile, a bug registry and a
//! coverage accumulator, and executes statements (from ASTs or SQL text).
//! Oracles use [`Database::query`] / [`Database::query_unoptimized`] plus
//! [`Database::last_plan_fingerprint`] and the snapshot/restore pair.

use crate::ast::{InsertSource, Statement};
use crate::bugs::{BugId, BugRegistry, IndexBugId, MediaBugId};
use crate::catalog::Catalog;
use crate::coverage::{pt, Coverage};
use crate::dialect::Dialect;
use crate::error::{Error, Result, StorageError};
use crate::eval::{eval_expr, truthiness, Clause, ExprCtx};
use crate::exec::{
    self, BindMode, CteEnv, EngineCtx, EvalEnv, EvalMode, Frame, JoinMode, Prepared, ScanMode,
    Schema, StmtKind,
};
use crate::recovery::ScrubReport;
use crate::value::{Relation, Row, Value};
use crate::wal::{FaultPlan, MediaPlan, StorageMode, Wal, WalRecord};

/// Default execution fuel per statement (row-operations budget). Generated
/// workloads stay far below this; injected hang bugs exhaust it.
pub const DEFAULT_FUEL: u64 = 4_000_000;

/// How the executor reaches table rows when the planner picked an
/// ordered-index access path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessMode {
    /// Execute planner-selected [`crate::plan::FromPlan::IndexSeek`]
    /// nodes as ordered-index range/point seeks (default).
    #[default]
    Indexed,
    /// Execute every `IndexSeek` as a full sequential scan with the
    /// baseline filter — kept for differential testing of the seek path
    /// (`coddb/tests/index_differential.rs`: byte-identical results,
    /// coverage bitsets and fuel across modes) and as the scan baseline
    /// in `BENCH_engine.json`.
    ScanOnly,
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// A SELECT result.
    Rows(Relation),
    /// Rows affected by DML.
    Affected(usize),
    /// DDL completed.
    Ddl,
}

impl ExecOutcome {
    pub fn rows(&self) -> Option<&Relation> {
        match self {
            ExecOutcome::Rows(r) => Some(r),
            _ => None,
        }
    }
    pub fn affected(&self) -> Option<usize> {
        match self {
            ExecOutcome::Affected(n) => Some(*n),
            _ => None,
        }
    }
}

/// An in-memory CoddDB database instance.
pub struct Database {
    catalog: Catalog,
    dialect: Dialect,
    bugs: BugRegistry,
    coverage: Coverage,
    fuel_limit: u64,
    bind_mode: BindMode,
    join_mode: JoinMode,
    scan_mode: ScanMode,
    eval_mode: EvalMode,
    access_mode: AccessMode,
    last_plan_fp: Option<u64>,
    queries_executed: u64,
    subq_memo_hits: u64,
    subq_memo_misses: u64,
    fuel_used: u64,
    /// Attached write-ahead log; `Some` iff the storage mode is
    /// [`StorageMode::Durable`].
    wal: Option<Wal>,
    /// Every completed DDL statement, as rendered SQL, in execution order
    /// (drops included). [`Database::checkpoint`] replays this history
    /// into the snapshot so the recovered catalog's schema — views,
    /// indexes, tombstoned tables — is rebuilt by the same re-execution
    /// path WAL replay uses, with no dependency-ordering reconstruction.
    ddl_history: Vec<String>,
}

impl Database {
    /// A clean database (no injected bugs) under the given dialect.
    pub fn new(dialect: Dialect) -> Self {
        Self::with_bugs(dialect, BugRegistry::none())
    }

    /// A database with an explicit mutant configuration.
    pub fn with_bugs(dialect: Dialect, bugs: BugRegistry) -> Self {
        Database {
            catalog: Catalog::new(),
            dialect,
            bugs,
            coverage: Coverage::new(),
            fuel_limit: DEFAULT_FUEL,
            bind_mode: BindMode::default(),
            join_mode: JoinMode::default(),
            scan_mode: ScanMode::default(),
            eval_mode: EvalMode::default(),
            access_mode: AccessMode::default(),
            last_plan_fp: None,
            queries_executed: 0,
            subq_memo_hits: 0,
            subq_memo_misses: 0,
            fuel_used: 0,
            wal: None,
            ddl_history: Vec::new(),
        }
    }

    pub fn dialect(&self) -> Dialect {
        self.dialect
    }
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }
    pub fn bugs(&self) -> &BugRegistry {
        &self.bugs
    }
    pub fn bugs_mut(&mut self) -> &mut BugRegistry {
        &mut self.bugs
    }
    pub fn set_fuel_limit(&mut self, fuel: u64) {
        self.fuel_limit = fuel;
    }

    /// Select the bind-once pipeline (default) or the per-row rebinding
    /// baseline; see [`BindMode`]. The baseline exists for benchmarking
    /// the bind-once speedup on identical machinery.
    pub fn set_bind_mode(&mut self, mode: BindMode) {
        self.bind_mode = mode;
    }

    pub fn bind_mode(&self) -> BindMode {
        self.bind_mode
    }

    /// Select the physical join strategy: [`JoinMode::Auto`] (default)
    /// hash-joins recognized equality keys, [`JoinMode::NestedLoop`]
    /// forces the nested loop everywhere — kept for differential testing
    /// of the two paths and as a benchmarking baseline.
    pub fn set_join_mode(&mut self, mode: JoinMode) {
        self.join_mode = mode;
    }

    pub fn join_mode(&self) -> JoinMode {
        self.join_mode
    }

    /// Select how scans hand rows to the pipeline: [`ScanMode::Shared`]
    /// (default) is zero-copy, [`ScanMode::Cloning`] deep-clones every
    /// scanned row and rematerializes FROM subtrees per instantiation —
    /// the pre-shared-row pipeline, kept for differential testing
    /// (mirroring [`Database::set_join_mode`]) and as a baseline.
    pub fn set_scan_mode(&mut self, mode: ScanMode) {
        self.scan_mode = mode;
    }

    pub fn scan_mode(&self) -> ScanMode {
        self.scan_mode
    }

    /// Select how clause expressions evaluate over operator input rows:
    /// [`EvalMode::Vectorized`] (default) runs classified-vectorizable
    /// expressions chunk-at-a-time through [`crate::vec_eval`],
    /// [`EvalMode::RowAtATime`] forces the row-at-a-time interpreter
    /// everywhere — kept for differential testing of the vectorized path
    /// (mirroring [`Database::set_scan_mode`]) and as a baseline.
    pub fn set_eval_mode(&mut self, mode: EvalMode) {
        self.eval_mode = mode;
    }

    pub fn eval_mode(&self) -> EvalMode {
        self.eval_mode
    }

    /// Select how planner-chosen index access paths execute:
    /// [`AccessMode::Indexed`] (default) runs `IndexSeek` nodes as
    /// ordered range/point seeks with sort elimination,
    /// [`AccessMode::ScanOnly`] forces them back to full scans plus the
    /// baseline filter — kept for differential testing of the seek path
    /// (mirroring [`Database::set_eval_mode`]) and as a baseline.
    pub fn set_access_mode(&mut self, mode: AccessMode) {
        self.access_mode = mode;
    }

    pub fn access_mode(&self) -> AccessMode {
        self.access_mode
    }

    /// Total execution fuel consumed by statements so far (row-work
    /// units). The vectorized and row-at-a-time evaluation modes must
    /// account fuel identically — `eval_differential.rs` asserts it.
    pub fn fuel_used(&self) -> u64 {
        self.fuel_used
    }

    /// Subquery result-memo accounting accumulated across statements:
    /// `(hits, misses)`. A hit is a full-result or keyed-memo reuse; a
    /// miss is an actual subquery execution through the cached path (the
    /// [`BindMode::PerRow`] baseline counts nothing).
    pub fn subquery_memo_stats(&self) -> (u64, u64) {
        (self.subq_memo_hits, self.subq_memo_misses)
    }

    /// Current storage mode: [`StorageMode::Durable`] iff a WAL is
    /// attached.
    pub fn storage_mode(&self) -> StorageMode {
        if self.wal.is_some() {
            StorageMode::Durable
        } else {
            StorageMode::Volatile
        }
    }

    /// Switch storage modes. Entering `Durable` attaches a fresh WAL
    /// (under a no-fault plan) that logs every subsequent DML/DDL effect;
    /// the in-memory catalog remains the baseline store either way,
    /// mirroring how the bind/join/scan/eval mode switches keep one
    /// behavioural baseline per axis. Returning to `Volatile` drops the
    /// log.
    pub fn set_storage_mode(&mut self, mode: StorageMode) {
        match mode {
            StorageMode::Durable => {
                if self.wal.is_none() {
                    self.wal = Some(Wal::new(FaultPlan::none()));
                }
            }
            StorageMode::Volatile => self.wal = None,
        }
    }

    /// Install the crash plan on the attached WAL. A no-op in volatile
    /// mode; call [`Database::set_storage_mode`] first.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if let Some(w) = self.wal.as_mut() {
            w.set_plan(plan);
        }
    }

    /// Install the media-fault plan on the attached WAL. A no-op in
    /// volatile mode; call [`Database::set_storage_mode`] first.
    pub fn set_media_plan(&mut self, plan: MediaPlan) {
        if let Some(w) = self.wal.as_mut() {
            w.set_media_plan(plan);
        }
    }

    /// Apply the media plan's at-rest damage (bit rot, read-fault arming)
    /// to the stored images — models the time between shutdown and
    /// recovery. A no-op in volatile mode.
    pub fn degrade_media(&mut self) {
        if let Some(w) = self.wal.as_mut() {
            w.degrade_at_rest();
        }
    }

    /// Verify every log frame checksum and snapshot seal, reading both
    /// images through the bounded retry schedule, and return the
    /// quarantine report. Errors in volatile mode, or with a structured
    /// [`Error::Storage`] when the medium itself cannot be read.
    pub fn scrub(&mut self) -> Result<ScrubReport> {
        let bugs = self.bugs.clone();
        let Some(w) = self.wal.as_mut() else {
            return Err(Error::Internal(
                "scrub requires durable storage mode".into(),
            ));
        };
        let log = w.read_log_image(&bugs).map_err(Error::from)?.to_vec();
        let snap = w.read_snapshot_image(&bugs).map_err(Error::from)?.to_vec();
        Ok(crate::recovery::scrub_images(&log, &snap, &bugs))
    }

    /// The attached write-ahead log, when in durable mode.
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// Mutable catalog access for the recovery replayer (same-crate
    /// only): replay applies logged DML effects physically, bypassing the
    /// executor.
    pub(crate) fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Render the full logical state — catalog shape plus every stored
    /// row — as a deterministic, byte-comparable string. The
    /// crash-recovery oracle compares a recovered engine against a
    /// never-crashed reference with this; `Real` values print as raw
    /// IEEE-754 bits so the comparison is exact rather than
    /// lossy-decimal.
    pub fn dump_state(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for t in self.catalog.tables() {
            let cols: Vec<String> = t
                .columns
                .iter()
                .map(|c| {
                    format!(
                        "{} {}{}",
                        c.name,
                        c.ty,
                        if c.not_null { " NOT NULL" } else { "" }
                    )
                })
                .collect();
            let _ = writeln!(out, "table {} ({})", t.name, cols.join(", "));
            for row in &t.rows {
                let vals: Vec<String> = row.iter().map(dump_value).collect();
                let _ = writeln!(out, "  [{}]", vals.join(", "));
            }
        }
        for name in self.catalog.view_names() {
            let v = self.catalog.view(name).expect("listed view");
            let _ = writeln!(
                out,
                "view {} ({}) AS {}",
                v.name,
                v.columns.join(", "),
                v.query
            );
        }
        for name in self.catalog.index_names() {
            let i = self.catalog.index(name).expect("listed index");
            let keys = i
                .exprs
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "index {} ON {} ({}){}",
                i.name,
                i.table,
                keys,
                if i.unique { " UNIQUE" } else { "" }
            );
        }
        out
    }

    /// Log a completed DDL statement and its durability point. DDL records
    /// carry the statement's SQL text (the Display round-trip); replay
    /// re-parses and re-executes it against the recovered catalog. On a
    /// refused append (`NoSpace`) nothing is recorded — the caller must
    /// undo the catalog mutation so the statement aborts cleanly.
    fn wal_log_ddl(&mut self, stmt: &Statement) -> Result<()> {
        let sql = stmt.to_string();
        if let Some(w) = self.wal.as_mut() {
            let logged = w
                .append(&WalRecord::Ddl { sql: sql.clone() })
                .and_then(|()| w.commit_statement());
            if let Err(e) = logged {
                // Mutant: NoSpaceTreatedAsCommitted — the engine keeps the
                // statement's effects although the WAL refused the record.
                if !self
                    .bugs
                    .media_active(MediaBugId::NoSpaceTreatedAsCommitted)
                {
                    return Err(e.into());
                }
            }
        }
        self.ddl_history.push(sql);
        Ok(())
    }

    /// Classify a DML path's WAL-logging outcome. A refused append aborts
    /// the statement with a structured storage error — unless the
    /// NoSpaceTreatedAsCommitted mutant is active, in which case the
    /// failure is swallowed and the caller proceeds to mutate state the
    /// log never recorded (the bug the media oracle hunts).
    fn check_dml_logged(&self, logged: std::result::Result<(), StorageError>) -> Result<()> {
        match logged {
            Ok(()) => Ok(()),
            Err(_)
                if self
                    .bugs
                    .media_active(MediaBugId::NoSpaceTreatedAsCommitted) =>
            {
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Run a DDL statement's catalog mutation with WAL-abort rollback: in
    /// durable mode the pre-statement catalog is pinned, and a refused
    /// WAL append (disk full) restores it so the session keeps serving
    /// with the statement cleanly aborted.
    fn run_ddl<F>(&mut self, stmt: &Statement, apply: F) -> Result<ExecOutcome>
    where
        F: FnOnce(&mut Catalog) -> Result<()>,
    {
        let undo = if self.wal.is_some() {
            Some(self.catalog.clone())
        } else {
            None
        };
        apply(&mut self.catalog)?;
        if let Err(e) = self.wal_log_ddl(stmt) {
            if let Some(prev) = undo {
                self.catalog = prev;
            }
            return Err(e);
        }
        Ok(ExecOutcome::Ddl)
    }

    /// Checkpoint the durable state: serialize the full catalog (schema
    /// history + every base-table row) as a framed snapshot to the WAL's
    /// snapshot file, record the [`WalRecord::CheckpointComplete`]
    /// durability marker in the log, and truncate the log to the suffix
    /// after the marker. Recovery then loads the newest sealed snapshot
    /// and replays only that suffix.
    ///
    /// The snapshot body is deterministic: the DDL history in execution
    /// order, then each table's rows in catalog (name) order — so two
    /// engines in identical states write byte-identical snapshots.
    /// Checkpointing never touches the in-memory catalog and consumes no
    /// fuel; it is purely a storage-layer operation.
    ///
    /// Returns the statement coverage of the snapshot (the `stmt_idx` the
    /// checkpoint marker declares). Errors in volatile mode.
    pub fn checkpoint(&mut self) -> Result<u64> {
        if self.wal.is_none() {
            return Err(Error::Internal(
                "checkpoint requires durable storage mode".into(),
            ));
        }
        // Mutant: truncate the log *before* the snapshot exists. Correct
        // order writes snapshot → marker → truncate; truncating first
        // loses the suffix whenever the crash lands inside the snapshot.
        let truncate_early = self
            .bugs
            .recovery_active(crate::bugs::RecoveryBugId::TruncateBeforeMarker);
        let w = self.wal.as_mut().expect("checked above");
        if truncate_early {
            w.truncate_log();
        }
        let stmt_idx = w.statements_logged();
        // A refused append (disk full) aborts the checkpoint before the
        // truncation: the log keeps its full replay suffix and the
        // half-written snapshot group is unsealed, which recovery already
        // ignores — a failed checkpoint degrades to no checkpoint.
        w.append_snapshot(&WalRecord::SnapshotBegin { stmt_idx })?;
        let mut records: u64 = 0;
        for sql in &self.ddl_history {
            w.append_snapshot(&WalRecord::Ddl { sql: sql.clone() })?;
            records += 1;
        }
        for t in self.catalog.tables() {
            for row in &t.rows {
                w.append_snapshot(&WalRecord::InsertRow {
                    table: t.name.clone(),
                    row: row.to_vec(),
                })?;
                records += 1;
            }
        }
        w.append_snapshot(&WalRecord::SnapshotEnd { stmt_idx, records })?;
        w.append(&WalRecord::CheckpointComplete { stmt_idx })?;
        if !truncate_early {
            w.truncate_log();
        }
        Ok(stmt_idx)
    }

    /// Build the per-statement execution context.
    fn engine_ctx(&self, optimize: bool, stmt: StmtKind) -> EngineCtx<'_> {
        let mut ctx = EngineCtx::new(
            &self.catalog,
            self.dialect,
            &self.bugs,
            &self.coverage,
            optimize,
            stmt,
            self.fuel_limit,
        );
        ctx.rebind_per_row = self.bind_mode == BindMode::PerRow;
        ctx.force_nested_loop = self.join_mode == JoinMode::NestedLoop;
        ctx.clone_scans = self.scan_mode == ScanMode::Cloning;
        ctx.vectorize = self.eval_mode == EvalMode::Vectorized;
        ctx.scan_only = self.access_mode == AccessMode::ScanOnly;
        ctx
    }

    /// Fold a finished statement context's memo accounting into the
    /// database-lifetime counters.
    fn absorb_memo_stats(&mut self, hits: u64, misses: u64) {
        self.subq_memo_hits += hits;
        self.subq_memo_misses += misses;
    }

    /// Number of statements executed so far (Table 3 accounting).
    pub fn queries_executed(&self) -> u64 {
        self.queries_executed
    }

    /// Fingerprint of the most recently planned SELECT.
    pub fn last_plan_fingerprint(&self) -> Option<u64> {
        self.last_plan_fp
    }

    /// Snapshot the data (catalog) for later restore — used by oracles that
    /// mutate state (DQE) and by the relation-folding CODDTest mode.
    pub fn snapshot(&self) -> Catalog {
        self.catalog.clone()
    }

    pub fn restore(&mut self, snapshot: Catalog) {
        self.catalog = snapshot;
    }

    /// Parse and execute every statement in a SQL script.
    pub fn execute_sql(&mut self, sql: &str) -> Result<Vec<ExecOutcome>> {
        let stmts = crate::parser::parse_statements(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for s in &stmts {
            out.push(self.execute(s)?);
        }
        Ok(out)
    }

    /// Execute one statement with the optimizer on.
    pub fn execute(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        self.execute_with(stmt, true)
    }

    /// Execute one statement, controlling optimization (NoREC's reference
    /// execution passes `optimize = false`).
    pub fn execute_with(&mut self, stmt: &Statement, optimize: bool) -> Result<ExecOutcome> {
        self.queries_executed += 1;
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                if !self.dialect.allows_untyped_columns()
                    && columns.iter().any(|c| c.ty == crate::value::DataType::Any)
                {
                    return Err(Error::Type(format!(
                        "{} requires typed columns",
                        self.dialect
                    )));
                }
                self.run_ddl(stmt, |cat| {
                    cat.create_table(name, columns.clone(), *if_not_exists)
                })
            }
            Statement::DropTable { name, if_exists } => {
                self.run_ddl(stmt, |cat| cat.drop_table(name, *if_exists))
            }
            Statement::CreateView {
                name,
                columns,
                query,
            } => self.run_ddl(stmt, |cat| {
                cat.create_view(name, columns.clone(), query.clone())
            }),
            Statement::CreateIndex {
                name,
                table,
                exprs,
                unique,
            } => self.run_ddl(stmt, |cat| {
                cat.create_index(name, table, exprs.clone(), *unique)
            }),
            Statement::Select(q) => {
                let rel = self.run_select(q, optimize)?;
                Ok(ExecOutcome::Rows(rel))
            }
            Statement::Insert {
                table,
                columns,
                source,
            } => {
                let n = self.run_insert(table, columns, source, optimize)?;
                Ok(ExecOutcome::Affected(n))
            }
            Statement::Update {
                table,
                sets,
                where_clause,
            } => {
                let w = self.prepare_dml_filter(where_clause.as_ref(), optimize)?;
                let n = self.run_update(table, sets, w.as_ref())?;
                Ok(ExecOutcome::Affected(n))
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                let w = self.prepare_dml_filter(where_clause.as_ref(), optimize)?;
                let n = self.run_delete(table, w.as_ref())?;
                Ok(ExecOutcome::Affected(n))
            }
        }
    }

    /// Run a SELECT with the optimizer on.
    pub fn query(&mut self, q: &crate::ast::Select) -> Result<Relation> {
        self.queries_executed += 1;
        self.run_select(q, true)
    }

    /// Run a SELECT with the optimizer off (NoREC reference execution).
    pub fn query_unoptimized(&mut self, q: &crate::ast::Select) -> Result<Relation> {
        self.queries_executed += 1;
        self.run_select(q, false)
    }

    /// Plan a SELECT and render its physical plan (the engine's EXPLAIN).
    pub fn explain(&self, q: &crate::ast::Select) -> Result<String> {
        let pctx = crate::plan::PlanCtx {
            catalog: &self.catalog,
            dialect: self.dialect,
            bugs: &self.bugs,
            cov: &self.coverage,
            optimize: true,
        };
        let plan = crate::plan::plan_select(q, &pctx, &std::collections::BTreeSet::new())?;
        // Subqueries are annotated with their predicted memo strategy (the
        // PerRow baseline bypasses every cache, so it annotates NONE), and
        // each clause with its predicted evaluation mode: [VEC] or
        // [ROW(<reason>)].
        let vec = if self.bind_mode == BindMode::PerRow {
            crate::plan::VecNote::Disabled("per-row bind mode")
        } else if self.eval_mode == EvalMode::RowAtATime {
            crate::plan::VecNote::Disabled("row-at-a-time eval mode")
        } else {
            crate::plan::VecNote::Predict {
                bugs: &self.bugs,
                dialect: self.dialect,
            }
        };
        Ok(crate::plan::explain_full(
            &plan,
            self.bind_mode != BindMode::PerRow,
            Some(&self.catalog),
            vec,
        ))
    }

    /// Statically verify a SELECT's physical plan against the engine's
    /// plan invariants ([`crate::validate`]) without executing a row.
    /// Planning consults the active bug registry, so a planner mutant's
    /// corruption shows up in the returned violations; a clean engine
    /// must always return an empty list.
    pub fn verify_select(&self, q: &crate::ast::Select) -> Result<Vec<crate::validate::Violation>> {
        let pctx = crate::plan::PlanCtx {
            catalog: &self.catalog,
            dialect: self.dialect,
            bugs: &self.bugs,
            cov: &self.coverage,
            optimize: true,
        };
        let plan = crate::plan::plan_select(q, &pctx, &std::collections::BTreeSet::new())?;
        Ok(crate::validate::validate_plan(&plan, &self.catalog))
    }

    /// Parse and explain a single SELECT.
    pub fn explain_sql(&mut self, sql: &str) -> Result<String> {
        let q = crate::parser::parse_select(sql)?;
        self.explain(&q)
    }

    /// Parse a single SELECT from SQL text and run it.
    pub fn query_sql(&mut self, sql: &str) -> Result<Relation> {
        let stmts = crate::parser::parse_statements(sql)?;
        match stmts.as_slice() {
            [Statement::Select(q)] => self.query(q),
            _ => Err(Error::Parse("expected exactly one SELECT statement".into())),
        }
    }

    /// UPDATE/DELETE predicates run through the same constant-folding pass
    /// as SELECT filters (a real planner folds all three identically; the
    /// paper's §4.2 oracle analysis relies on that consistency).
    fn prepare_dml_filter(
        &self,
        where_clause: Option<&crate::ast::Expr>,
        optimize: bool,
    ) -> Result<Option<crate::ast::Expr>> {
        match where_clause {
            None => Ok(None),
            Some(w) if optimize => {
                let pctx = crate::plan::PlanCtx {
                    catalog: &self.catalog,
                    dialect: self.dialect,
                    bugs: &self.bugs,
                    cov: &self.coverage,
                    optimize: true,
                };
                Ok(Some(crate::plan::fold_dml_predicate(w.clone(), &pctx)?))
            }
            Some(w) => Ok(Some(w.clone())),
        }
    }

    // Statement accounting happens in the callers (`execute_with`,
    // `query`, `query_unoptimized`) so a SELECT through `execute()` is
    // counted exactly once.
    fn run_select(&mut self, q: &crate::ast::Select, optimize: bool) -> Result<Relation> {
        let ctx = self.engine_ctx(optimize, StmtKind::Select);
        let res = exec::run_query(q, &ctx);
        let (hits, misses) = (ctx.subq_memo_hits.get(), ctx.subq_memo_misses.get());
        let used = self.fuel_limit - ctx.fuel_left();
        drop(ctx);
        self.fuel_used += used;
        self.absorb_memo_stats(hits, misses);
        let (rel, fp) = res?;
        self.last_plan_fp = Some(fp);
        Ok(rel)
    }

    fn run_insert(
        &mut self,
        table: &str,
        columns: &[String],
        source: &InsertSource,
        optimize: bool,
    ) -> Result<usize> {
        // Resolve the target column mapping first.
        let (col_indices, col_count, col_defs) = {
            let t = self.catalog.table(table)?;
            let defs = t.columns.clone();
            let indices: Vec<usize> = if columns.is_empty() {
                (0..defs.len()).collect()
            } else {
                columns
                    .iter()
                    .map(|c| {
                        t.column_index(c).ok_or_else(|| {
                            Error::Catalog(format!("no such column {c} in table {table}"))
                        })
                    })
                    .collect::<Result<_>>()?
            };
            (indices, defs.len(), defs)
        };

        // Evaluate the source rows. Fuel and memo accounting must survive
        // an erroring source (like `run_select`): the fallible work runs
        // in an inner closure so the counters are read before `?`
        // propagates.
        let (res, memo_hits, memo_misses, fuel): (Result<Vec<Row>>, u64, u64, u64) = match source {
            InsertSource::Values(rows) => {
                self.coverage.hit(pt::EXEC_INSERT_VALUES);
                let ctx = self.engine_ctx(optimize, StmtKind::Insert);
                let ctes = CteEnv::root();
                let res = (|| {
                    let mut out = Vec::with_capacity(rows.len());
                    for row in rows {
                        let mut vals = Vec::with_capacity(row.len());
                        for e in row {
                            let env = EvalEnv {
                                ctx: &ctx,
                                scopes: &[],
                                aggs: None,
                                ctes: &ctes,
                                info: ExprCtx::new(Clause::SelectList),
                            };
                            vals.push(eval_expr(e, env)?);
                        }
                        out.push(Row::new(vals));
                    }
                    Ok(out)
                })();
                let used = self.fuel_limit - ctx.fuel_left();
                (
                    res,
                    ctx.subq_memo_hits.get(),
                    ctx.subq_memo_misses.get(),
                    used,
                )
            }
            InsertSource::Query(q) => {
                self.coverage.hit(pt::EXEC_INSERT_SELECT);
                // Bug hook: TidbInsertSelectVersion (Listing 6) — the
                // SELECT's rows never reach the table when its WHERE calls
                // VERSION().
                let mut has_version = false;
                crate::ast::visit::walk_select_exprs(q, &mut |e| {
                    if matches!(
                        e,
                        crate::ast::Expr::Func {
                            func: crate::ast::FuncName::Version,
                            ..
                        }
                    ) {
                        has_version = true;
                    }
                });
                let ctx = self.engine_ctx(optimize, StmtKind::Insert);
                let res = exec::run_query(q, &ctx).map(|(rel, _)| {
                    if has_version && self.bugs.active(BugId::TidbInsertSelectVersion) {
                        Vec::new()
                    } else {
                        rel.rows
                    }
                });
                let used = self.fuel_limit - ctx.fuel_left();
                (
                    res,
                    ctx.subq_memo_hits.get(),
                    ctx.subq_memo_misses.get(),
                    used,
                )
            }
        };
        self.absorb_memo_stats(memo_hits, memo_misses);
        self.fuel_used += fuel;
        let source_rows = res?;

        // Type-check and write.
        let mut staged = Vec::with_capacity(source_rows.len());
        for row in &source_rows {
            if row.len() != col_indices.len() {
                return Err(Error::Eval(format!(
                    "table {table} expects {} values, got {}",
                    col_indices.len(),
                    row.len()
                )));
            }
            let mut new_row: Vec<Value> = vec![Value::Null; col_count];
            for (v, &idx) in row.iter().zip(col_indices.iter()) {
                let def = &col_defs[idx];
                if self.dialect.strict_types() && !v.is_null() && !def.ty.accepts(v.data_type()) {
                    return Err(Error::Type(format!(
                        "cannot insert {} into column {} of type {}",
                        v.data_type(),
                        def.name,
                        def.ty
                    )));
                }
                new_row[idx] = v.clone();
            }
            for (i, def) in col_defs.iter().enumerate() {
                if def.not_null && new_row[i].is_null() {
                    return Err(Error::Eval(format!(
                        "NOT NULL constraint failed: {table}.{}",
                        def.name
                    )));
                }
            }
            staged.push(Row::new(new_row));
        }
        let n = staged.len();
        // Validation is complete: log each staged row, then the statement's
        // durability point. A zero-row INSERT still logs its commit marker
        // so the committed-statement count stays aligned with execution.
        // A refused append (disk full) aborts the statement *before* any
        // catalog mutation: nothing to roll back, the session keeps
        // serving, and recovery sees exactly the committed prefix.
        if let Some(w) = self.wal.as_mut() {
            let logged = (|| {
                for row in &staged {
                    w.append(&WalRecord::InsertRow {
                        table: table.to_string(),
                        row: row.to_vec(),
                    })?;
                }
                w.commit_statement()
            })();
            self.check_dml_logged(logged)?;
        }
        let t = self.catalog.table_mut(table)?;
        let start = t.rows.len();
        t.rows.extend(staged);
        self.catalog.index_insert_rows(table, start);
        Ok(n)
    }

    fn run_update(
        &mut self,
        table: &str,
        sets: &[(String, crate::ast::Expr)],
        where_clause: Option<&crate::ast::Expr>,
    ) -> Result<usize> {
        // Fuel and memo accounting must survive an erroring statement
        // (just like `run_select`): the fallible work runs in an inner
        // closure so the counters are read before `?` propagates.
        let (res, memo_hits, memo_misses, fuel) = {
            let t = self.catalog.table(table)?;
            let schema = table_schema(t);
            let ctx = self.engine_ctx(false, StmtKind::Update);
            let ctes = CteEnv::root();
            let res: Result<_> = (|| {
                let set_indices: Vec<usize> = sets
                    .iter()
                    .map(|(c, _)| {
                        t.column_index(c).ok_or_else(|| {
                            Error::Catalog(format!("no such column {c} in table {table}"))
                        })
                    })
                    .collect::<Result<_>>()?;

                // Bind the WHERE predicate and every SET expression once
                // per statement; the row loop evaluates the bound forms.
                let pred = prepare_dml_where(where_clause, &schema, &ctx)?;
                let set_exprs: Vec<Prepared> = sets
                    .iter()
                    .map(|(_, e)| Prepared::new(e, &[&schema], 0, &ctx))
                    .collect::<Result<_>>()?;

                let mut matches = Vec::new();
                let mut updates = Vec::new();
                for (i, row) in t.rows.iter().enumerate() {
                    ctx.consume_fuel(1)?;
                    if !row_matches(row, &schema, pred.as_ref(), &ctx, &ctes)? {
                        continue;
                    }
                    let frames = [Frame {
                        schema: &schema,
                        row,
                    }];
                    let mut new_vals = Vec::with_capacity(set_exprs.len());
                    for e in &set_exprs {
                        let env = EvalEnv {
                            ctx: &ctx,
                            scopes: &frames,
                            aggs: None,
                            ctes: &ctes,
                            info: ExprCtx::new(Clause::SelectList),
                        };
                        new_vals.push(e.eval(env)?);
                    }
                    matches.push(i);
                    updates.push((set_indices.clone(), new_vals));
                }
                Ok((matches, updates))
            })();
            let stats = (ctx.subq_memo_hits.get(), ctx.subq_memo_misses.get());
            let used = self.fuel_limit - ctx.fuel_left();
            (res, stats.0, stats.1, used)
        };
        self.absorb_memo_stats(memo_hits, memo_misses);
        self.fuel_used += fuel;
        let (matches, updates) = res?;

        self.coverage.hit(if matches.is_empty() {
            pt::EXEC_UPDATE_NOMATCH
        } else {
            pt::EXEC_UPDATE_MATCH
        });
        if let Some(w) = self.wal.as_mut() {
            let logged = (|| {
                for (&i, (indices, vals)) in matches.iter().zip(updates.iter()) {
                    w.append(&WalRecord::UpdateRow {
                        table: table.to_string(),
                        row_idx: i as u64,
                        cols: indices.iter().map(|&c| c as u32).collect(),
                        vals: vals.clone(),
                    })?;
                }
                w.commit_statement()
            })();
            self.check_dml_logged(logged)?;
        }
        // Bug hook: StaleEntryAfterUpdate — the ordered index keeps the
        // pre-update key entries (and misses the new ones).
        let stale = self.bugs.index_active(IndexBugId::StaleEntryAfterUpdate);
        for (&i, (indices, vals)) in matches.iter().zip(updates.iter()) {
            let t = self.catalog.table_mut(table)?;
            // Copy-on-write: the clone pins the pre-update image (for
            // index re-keying) and any snapshots or in-flight shared
            // relations holding this row keep their original values.
            let old = t.rows[i].clone();
            for (&ci, v) in indices.iter().zip(vals.iter()) {
                t.rows[i].set(ci, v.clone());
            }
            if !stale {
                self.catalog.index_update_row(table, i, &old);
            }
        }
        Ok(matches.len())
    }

    fn run_delete(
        &mut self,
        table: &str,
        where_clause: Option<&crate::ast::Expr>,
    ) -> Result<usize> {
        let (res, memo_hits, memo_misses, fuel) = {
            let t = self.catalog.table(table)?;
            let schema = table_schema(t);
            let ctx = self.engine_ctx(false, StmtKind::Delete);
            let ctes = CteEnv::root();
            let res: Result<_> = (|| {
                let pred = prepare_dml_where(where_clause, &schema, &ctx)?;
                let mut out = Vec::new();
                for (i, row) in t.rows.iter().enumerate() {
                    ctx.consume_fuel(1)?;
                    if row_matches(row, &schema, pred.as_ref(), &ctx, &ctes)? {
                        out.push(i);
                    }
                }
                Ok(out)
            })();
            let used = self.fuel_limit - ctx.fuel_left();
            (
                res,
                ctx.subq_memo_hits.get(),
                ctx.subq_memo_misses.get(),
                used,
            )
        };
        self.absorb_memo_stats(memo_hits, memo_misses);
        self.fuel_used += fuel;
        let matches = res?;
        self.coverage.hit(if matches.is_empty() {
            pt::EXEC_DELETE_NOMATCH
        } else {
            pt::EXEC_DELETE_MATCH
        });
        if let Some(w) = self.wal.as_mut() {
            let logged = (|| {
                if !matches.is_empty() {
                    w.append(&WalRecord::DeleteRows {
                        table: table.to_string(),
                        rows: matches.iter().map(|&i| i as u64).collect(),
                    })?;
                }
                w.commit_statement()
            })();
            self.check_dml_logged(logged)?;
        }
        let t = self.catalog.table_mut(table)?;
        // Pin the removed rows' images (cheap shared-row clones) for
        // index unkeying before physically removing them.
        let old_rows: Vec<Row> = matches.iter().map(|&i| t.rows[i].clone()).collect();
        for &i in matches.iter().rev() {
            t.rows.remove(i);
        }
        self.catalog.index_delete_rows(table, &matches, &old_rows);
        Ok(matches.len())
    }
}

/// Exact single-value rendering for [`Database::dump_state`]: `Real`
/// prints its raw bit pattern, so two states compare equal iff they are
/// bit-identical.
fn dump_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Int(n) => format!("i{n}"),
        Value::Real(r) => format!("r{:016x}", r.to_bits()),
        Value::Text(s) => format!("{s:?}"),
        Value::Bool(b) => b.to_string(),
    }
}

fn table_schema(t: &crate::catalog::TableDef) -> Schema {
    Schema {
        cols: t
            .columns
            .iter()
            .map(|c| crate::exec::ColMeta::new(Some(&t.name), &c.name))
            .collect(),
    }
}

/// Bind a DML WHERE clause once per statement.
fn prepare_dml_where<'p>(
    where_clause: Option<&'p crate::ast::Expr>,
    schema: &Schema,
    ctx: &EngineCtx,
) -> Result<Option<Prepared<'p>>> {
    where_clause
        .map(|w| Prepared::new(w, &[schema], 0, ctx))
        .transpose()
}

fn row_matches(
    row: &[Value],
    schema: &Schema,
    pred: Option<&Prepared>,
    ctx: &EngineCtx,
    ctes: &CteEnv,
) -> Result<bool> {
    let Some(pred) = pred else { return Ok(true) };
    let frames = [Frame { schema, row }];
    let env = EvalEnv {
        ctx,
        scopes: &frames,
        aggs: None,
        ctes,
        info: ExprCtx::new(Clause::Where),
    };
    let v = pred.eval(env)?;
    let t = truthiness(&v, ctx)?;
    // Bug hook: CockroachAndNullTopConjunct applies to every statement's
    // WHERE filter.
    if t.is_none()
        && matches!(
            pred.ast(),
            crate::ast::Expr::Binary {
                op: crate::ast::BinaryOp::And,
                ..
            }
        )
        && ctx.bugs.active(BugId::CockroachAndNullTopConjunct)
    {
        return Ok(true);
    }
    Ok(t == Some(true))
}
