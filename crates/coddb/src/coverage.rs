//! Deterministic branch-point coverage.
//!
//! Table 3 of the paper reports gcov branch coverage of SQLite under each
//! oracle. CoddDB substitutes a registry of named branch points inside the
//! planner, executor and evaluator; [`Coverage::percent`] reports the
//! fraction of registered points an oracle's campaign exercised. The metric
//! has the same semantics (which engine behaviours did the workload reach)
//! without an external coverage toolchain.

use std::cell::RefCell;
use std::collections::BTreeSet;

/// Every registered branch point. Call sites use [`Coverage::hit`] with one
/// of these names; a debug assertion keeps the registry and the call sites
/// in sync.
pub const ALL_POINTS: &[&str] = &[
    // --- planner -------------------------------------------------------
    "plan::seq_scan",
    "plan::index_scan",
    "plan::index_forced",
    "plan::view_expand",
    "plan::derived",
    "plan::values_scan",
    "plan::cte_scan",
    "plan::join_inner",
    "plan::join_left",
    "plan::join_right",
    "plan::join_full",
    "plan::join_cross",
    "plan::fold_const",
    "plan::fold_skipped",
    "plan::pushdown_applied",
    "plan::pushdown_blocked_outer",
    "plan::filter_true_elim",
    "plan::filter_false",
    "plan::no_from",
    // --- executor ------------------------------------------------------
    "exec::filter_pass",
    "exec::filter_drop",
    "exec::filter_null",
    "exec::project",
    "exec::wildcard",
    "exec::group_single",
    "exec::group_multi",
    "exec::group_empty_input",
    "exec::having_pass",
    "exec::having_drop",
    "exec::distinct_dedup",
    "exec::sort",
    "exec::sort_positional",
    "exec::limit",
    "exec::offset",
    "exec::union",
    "exec::union_all",
    "exec::intersect",
    "exec::except",
    "exec::insert_values",
    "exec::insert_select",
    "exec::update_match",
    "exec::update_nomatch",
    "exec::delete_match",
    "exec::delete_nomatch",
    "exec::join_probe_match",
    "exec::join_probe_miss",
    "exec::join_pad_left",
    "exec::join_pad_right",
    "exec::values_rows",
    "exec::cte_eval",
    "exec::cte_reuse",
    "exec::empty_relation",
    // --- scalar evaluator ---------------------------------------------
    "eval::literal",
    "eval::column_local",
    "eval::column_outer",
    "eval::neg",
    "eval::not",
    "eval::arith_int",
    "eval::arith_real",
    "eval::arith_null",
    "eval::arith_overflow",
    "eval::div_zero_null",
    "eval::div_zero_error",
    "eval::concat",
    "eval::cmp_true",
    "eval::cmp_false",
    "eval::cmp_null",
    "eval::and_short",
    "eval::and_null",
    "eval::or_short",
    "eval::or_null",
    "eval::is_op",
    "eval::between",
    "eval::between_neg",
    "eval::in_list_hit",
    "eval::in_list_miss",
    "eval::in_list_null",
    "eval::in_subq_hit",
    "eval::in_subq_miss",
    "eval::in_subq_null",
    "eval::exists_true",
    "eval::exists_false",
    "eval::scalar_subq",
    "eval::scalar_subq_empty",
    "eval::quant_any",
    "eval::quant_all",
    "eval::case_operand",
    "eval::case_searched",
    "eval::case_else",
    "eval::case_no_match",
    "eval::cast_int",
    "eval::cast_real",
    "eval::cast_text",
    "eval::cast_bool",
    "eval::func_length",
    "eval::func_abs",
    "eval::func_upper",
    "eval::func_lower",
    "eval::func_coalesce",
    "eval::func_nullif",
    "eval::func_iif",
    "eval::func_typeof",
    "eval::func_version",
    "eval::func_round",
    "eval::func_sign",
    "eval::func_instr",
    "eval::func_substr",
    "eval::like_match",
    "eval::like_nomatch",
    "eval::like_null",
    "eval::truthy_numeric",
    "eval::truthy_bool",
    "eval::truthy_null",
    // --- aggregates ----------------------------------------------------
    "agg::count_star",
    "agg::count",
    "agg::sum_int",
    "agg::sum_real",
    "agg::avg",
    "agg::min",
    "agg::max",
    "agg::total",
    "agg::distinct",
    "agg::empty",
];

/// Coverage accumulator. Single-threaded by design (each campaign thread
/// owns its own `Database`); merge accumulators with [`Coverage::merge`].
#[derive(Debug, Default)]
pub struct Coverage {
    hits: RefCell<BTreeSet<&'static str>>,
}

impl Coverage {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a branch point executed.
    #[inline]
    pub fn hit(&self, point: &'static str) {
        debug_assert!(
            ALL_POINTS.contains(&point),
            "coverage point '{point}' is not registered in ALL_POINTS"
        );
        self.hits.borrow_mut().insert(point);
    }

    /// Number of distinct points hit so far.
    pub fn hit_count(&self) -> usize {
        self.hits.borrow().len()
    }

    /// Total registered points.
    pub fn total_points(&self) -> usize {
        ALL_POINTS.len()
    }

    /// Fraction of branch points exercised, in percent.
    pub fn percent(&self) -> f64 {
        100.0 * self.hit_count() as f64 / ALL_POINTS.len() as f64
    }

    /// Snapshot of the hit set (sorted).
    pub fn hit_points(&self) -> Vec<&'static str> {
        self.hits.borrow().iter().copied().collect()
    }

    /// Points never exercised (useful when diagnosing oracle blind spots,
    /// e.g. DQE never reaching the join machinery).
    pub fn missed_points(&self) -> Vec<&'static str> {
        let hits = self.hits.borrow();
        ALL_POINTS.iter().copied().filter(|p| !hits.contains(p)).collect()
    }

    /// Fold another accumulator's hits into this one.
    pub fn merge(&self, other: &Coverage) {
        let mut mine = self.hits.borrow_mut();
        for p in other.hits.borrow().iter() {
            mine.insert(p);
        }
    }

    pub fn reset(&self) {
        self.hits.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_no_duplicates() {
        let set: BTreeSet<&str> = ALL_POINTS.iter().copied().collect();
        assert_eq!(set.len(), ALL_POINTS.len(), "duplicate coverage point registered");
    }

    #[test]
    fn hit_accumulates_and_percent_reports() {
        let cov = Coverage::new();
        assert_eq!(cov.hit_count(), 0);
        cov.hit("eval::literal");
        cov.hit("eval::literal");
        cov.hit("exec::project");
        assert_eq!(cov.hit_count(), 2);
        assert!(cov.percent() > 0.0 && cov.percent() < 100.0);
    }

    #[test]
    fn merge_unions_hits() {
        let a = Coverage::new();
        let b = Coverage::new();
        a.hit("eval::literal");
        b.hit("exec::project");
        a.merge(&b);
        assert_eq!(a.hit_count(), 2);
        assert_eq!(b.hit_count(), 1);
    }

    #[test]
    fn missed_points_complement_hits() {
        let cov = Coverage::new();
        cov.hit("agg::avg");
        let missed = cov.missed_points();
        assert_eq!(missed.len(), ALL_POINTS.len() - 1);
        assert!(!missed.contains(&"agg::avg"));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    #[cfg(debug_assertions)]
    fn unknown_point_panics_in_debug() {
        Coverage::new().hit("nope::nothing");
    }
}
