//! Deterministic branch-point coverage.
//!
//! Table 3 of the paper reports gcov branch coverage of SQLite under each
//! oracle. CoddDB substitutes a registry of named branch points inside the
//! planner, executor and evaluator; [`Coverage::percent`] reports the
//! fraction of registered points an oracle's campaign exercised. The metric
//! has the same semantics (which engine behaviours did the workload reach)
//! without an external coverage toolchain.
//!
//! Branch points are compile-time [`PointId`]s (the ordinal of the point in
//! [`ALL_POINTS`]), and the accumulator is a fixed-size bitset: recording a
//! hit is a single bit-or on a [`Cell`], with no hashing, ordering or
//! interior-mutability bookkeeping on the hot path. Call sites use the
//! typed constants in [`pt`], so an unregistered point is a compile error
//! rather than a debug assertion.

use std::cell::Cell;

/// A registered branch point: an index into [`ALL_POINTS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PointId(u16);

impl PointId {
    /// Ordinal of this point in [`ALL_POINTS`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The point's registered name (e.g. `"eval::literal"`).
    pub fn label(self) -> &'static str {
        ALL_POINTS[self.0 as usize]
    }
}

macro_rules! declare_point_consts {
    (($idx:expr)) => {};
    (($idx:expr) $name:ident = $label:literal; $($rest:tt)*) => {
        pub const $name: PointId = PointId($idx);
        declare_point_consts!(($idx + 1) $($rest)*);
    };
}

macro_rules! coverage_points {
    ($($name:ident = $label:literal;)*) => {
        /// Every registered branch point, in [`PointId`] ordinal order.
        pub const ALL_POINTS: &[&str] = &[$($label),*];

        /// Typed constants for every branch point; `pt::EVAL_LITERAL` is
        /// the [`PointId`] of `"eval::literal"`.
        pub mod pt {
            use super::PointId;
            declare_point_consts!((0u16) $($name = $label;)*);
        }
    };
}

coverage_points! {
    // --- planner -------------------------------------------------------
    PLAN_SEQ_SCAN = "plan::seq_scan";
    PLAN_INDEX_SCAN = "plan::index_scan";
    PLAN_INDEX_FORCED = "plan::index_forced";
    PLAN_VIEW_EXPAND = "plan::view_expand";
    PLAN_DERIVED = "plan::derived";
    PLAN_VALUES_SCAN = "plan::values_scan";
    PLAN_CTE_SCAN = "plan::cte_scan";
    PLAN_JOIN_INNER = "plan::join_inner";
    PLAN_JOIN_LEFT = "plan::join_left";
    PLAN_JOIN_RIGHT = "plan::join_right";
    PLAN_JOIN_FULL = "plan::join_full";
    PLAN_JOIN_CROSS = "plan::join_cross";
    PLAN_FOLD_CONST = "plan::fold_const";
    PLAN_FOLD_SKIPPED = "plan::fold_skipped";
    PLAN_PUSHDOWN_APPLIED = "plan::pushdown_applied";
    PLAN_PUSHDOWN_BLOCKED_OUTER = "plan::pushdown_blocked_outer";
    PLAN_FILTER_TRUE_ELIM = "plan::filter_true_elim";
    PLAN_FILTER_FALSE = "plan::filter_false";
    PLAN_NO_FROM = "plan::no_from";
    PLAN_HASH_JOIN = "plan::hash_join_keys";
    PLAN_INDEX_SEEK = "plan::index_seek";
    PLAN_SORT_ELIM = "plan::sort_elim";
    // --- executor ------------------------------------------------------
    EXEC_FILTER_PASS = "exec::filter_pass";
    EXEC_FILTER_DROP = "exec::filter_drop";
    EXEC_FILTER_NULL = "exec::filter_null";
    EXEC_PROJECT = "exec::project";
    EXEC_WILDCARD = "exec::wildcard";
    EXEC_GROUP_SINGLE = "exec::group_single";
    EXEC_GROUP_MULTI = "exec::group_multi";
    EXEC_GROUP_EMPTY_INPUT = "exec::group_empty_input";
    EXEC_HAVING_PASS = "exec::having_pass";
    EXEC_HAVING_DROP = "exec::having_drop";
    EXEC_DISTINCT_DEDUP = "exec::distinct_dedup";
    EXEC_SORT = "exec::sort";
    EXEC_SORT_POSITIONAL = "exec::sort_positional";
    EXEC_LIMIT = "exec::limit";
    EXEC_OFFSET = "exec::offset";
    EXEC_UNION = "exec::union";
    EXEC_UNION_ALL = "exec::union_all";
    EXEC_INTERSECT = "exec::intersect";
    EXEC_EXCEPT = "exec::except";
    EXEC_INSERT_VALUES = "exec::insert_values";
    EXEC_INSERT_SELECT = "exec::insert_select";
    EXEC_UPDATE_MATCH = "exec::update_match";
    EXEC_UPDATE_NOMATCH = "exec::update_nomatch";
    EXEC_DELETE_MATCH = "exec::delete_match";
    EXEC_DELETE_NOMATCH = "exec::delete_nomatch";
    EXEC_JOIN_PROBE_MATCH = "exec::join_probe_match";
    EXEC_JOIN_PROBE_MISS = "exec::join_probe_miss";
    EXEC_JOIN_PAD_LEFT = "exec::join_pad_left";
    EXEC_JOIN_PAD_RIGHT = "exec::join_pad_right";
    EXEC_HASH_JOIN_BUILD = "exec::hash_join_build";
    EXEC_HASH_JOIN_NULL_KEY = "exec::hash_join_null_key";
    EXEC_HASH_JOIN_FALLBACK = "exec::hash_join_fallback";
    EXEC_SUBQ_PLAN_HIT = "exec::subq_plan_cache_hit";
    EXEC_SUBQ_RESULT_HIT = "exec::subq_result_memo_hit";
    EXEC_SUBQ_KEYED_HIT = "exec::subq_keyed_memo_hit";
    EXEC_VALUES_ROWS = "exec::values_rows";
    EXEC_CTE_EVAL = "exec::cte_eval";
    EXEC_CTE_REUSE = "exec::cte_reuse";
    EXEC_EMPTY_RELATION = "exec::empty_relation";
    // --- scalar evaluator ---------------------------------------------
    EVAL_LITERAL = "eval::literal";
    EVAL_COLUMN_LOCAL = "eval::column_local";
    EVAL_COLUMN_OUTER = "eval::column_outer";
    EVAL_NEG = "eval::neg";
    EVAL_NOT = "eval::not";
    EVAL_ARITH_INT = "eval::arith_int";
    EVAL_ARITH_REAL = "eval::arith_real";
    EVAL_ARITH_NULL = "eval::arith_null";
    EVAL_ARITH_OVERFLOW = "eval::arith_overflow";
    EVAL_DIV_ZERO_NULL = "eval::div_zero_null";
    EVAL_DIV_ZERO_ERROR = "eval::div_zero_error";
    EVAL_CONCAT = "eval::concat";
    EVAL_CMP_TRUE = "eval::cmp_true";
    EVAL_CMP_FALSE = "eval::cmp_false";
    EVAL_CMP_NULL = "eval::cmp_null";
    EVAL_AND_SHORT = "eval::and_short";
    EVAL_AND_NULL = "eval::and_null";
    EVAL_OR_SHORT = "eval::or_short";
    EVAL_OR_NULL = "eval::or_null";
    EVAL_IS_OP = "eval::is_op";
    EVAL_BETWEEN = "eval::between";
    EVAL_BETWEEN_NEG = "eval::between_neg";
    EVAL_IN_LIST_HIT = "eval::in_list_hit";
    EVAL_IN_LIST_MISS = "eval::in_list_miss";
    EVAL_IN_LIST_NULL = "eval::in_list_null";
    EVAL_IN_SUBQ_HIT = "eval::in_subq_hit";
    EVAL_IN_SUBQ_MISS = "eval::in_subq_miss";
    EVAL_IN_SUBQ_NULL = "eval::in_subq_null";
    EVAL_EXISTS_TRUE = "eval::exists_true";
    EVAL_EXISTS_FALSE = "eval::exists_false";
    EVAL_SCALAR_SUBQ = "eval::scalar_subq";
    EVAL_SCALAR_SUBQ_EMPTY = "eval::scalar_subq_empty";
    EVAL_QUANT_ANY = "eval::quant_any";
    EVAL_QUANT_ALL = "eval::quant_all";
    EVAL_CASE_OPERAND = "eval::case_operand";
    EVAL_CASE_SEARCHED = "eval::case_searched";
    EVAL_CASE_ELSE = "eval::case_else";
    EVAL_CASE_NO_MATCH = "eval::case_no_match";
    EVAL_CAST_INT = "eval::cast_int";
    EVAL_CAST_REAL = "eval::cast_real";
    EVAL_CAST_TEXT = "eval::cast_text";
    EVAL_CAST_BOOL = "eval::cast_bool";
    EVAL_FUNC_LENGTH = "eval::func_length";
    EVAL_FUNC_ABS = "eval::func_abs";
    EVAL_FUNC_UPPER = "eval::func_upper";
    EVAL_FUNC_LOWER = "eval::func_lower";
    EVAL_FUNC_COALESCE = "eval::func_coalesce";
    EVAL_FUNC_NULLIF = "eval::func_nullif";
    EVAL_FUNC_IIF = "eval::func_iif";
    EVAL_FUNC_TYPEOF = "eval::func_typeof";
    EVAL_FUNC_VERSION = "eval::func_version";
    EVAL_FUNC_ROUND = "eval::func_round";
    EVAL_FUNC_SIGN = "eval::func_sign";
    EVAL_FUNC_INSTR = "eval::func_instr";
    EVAL_FUNC_SUBSTR = "eval::func_substr";
    EVAL_LIKE_MATCH = "eval::like_match";
    EVAL_LIKE_NOMATCH = "eval::like_nomatch";
    EVAL_LIKE_NULL = "eval::like_null";
    EVAL_TRUTHY_NUMERIC = "eval::truthy_numeric";
    EVAL_TRUTHY_BOOL = "eval::truthy_bool";
    EVAL_TRUTHY_NULL = "eval::truthy_null";
    // --- aggregates ----------------------------------------------------
    AGG_COUNT_STAR = "agg::count_star";
    AGG_COUNT = "agg::count";
    AGG_SUM_INT = "agg::sum_int";
    AGG_SUM_REAL = "agg::sum_real";
    AGG_AVG = "agg::avg";
    AGG_MIN = "agg::min";
    AGG_MAX = "agg::max";
    AGG_TOTAL = "agg::total";
    AGG_DISTINCT = "agg::distinct";
    AGG_EMPTY = "agg::empty";
}

const WORDS: usize = ALL_POINTS.len().div_ceil(64);

/// Coverage accumulator: a fixed-size bitset over [`ALL_POINTS`].
/// Single-threaded by design (each campaign thread owns its own
/// `Database`); merge accumulators with [`Coverage::merge`].
#[derive(Debug, Default)]
pub struct Coverage {
    bits: Cell<[u64; WORDS]>,
}

impl Coverage {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a branch point executed: a single bit-or.
    #[inline]
    pub fn hit(&self, point: PointId) {
        let mut bits = self.bits.get();
        bits[point.index() >> 6] |= 1u64 << (point.index() & 63);
        self.bits.set(bits);
    }

    /// Number of distinct points hit so far.
    pub fn hit_count(&self) -> usize {
        self.bits
            .get()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Total registered points.
    pub fn total_points(&self) -> usize {
        ALL_POINTS.len()
    }

    /// Fraction of branch points exercised, in percent.
    pub fn percent(&self) -> f64 {
        100.0 * self.hit_count() as f64 / ALL_POINTS.len() as f64
    }

    #[inline]
    fn contains(&self, index: usize) -> bool {
        self.bits.get()[index >> 6] & (1u64 << (index & 63)) != 0
    }

    /// Snapshot of the hit set, in registry (= ordinal) order.
    pub fn hit_points(&self) -> Vec<&'static str> {
        ALL_POINTS
            .iter()
            .enumerate()
            .filter(|(i, _)| self.contains(*i))
            .map(|(_, p)| *p)
            .collect()
    }

    /// Points never exercised (useful when diagnosing oracle blind spots,
    /// e.g. DQE never reaching the join machinery).
    pub fn missed_points(&self) -> Vec<&'static str> {
        ALL_POINTS
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.contains(*i))
            .map(|(_, p)| *p)
            .collect()
    }

    /// Fold another accumulator's hits into this one.
    pub fn merge(&self, other: &Coverage) {
        let theirs = other.bits.get();
        self.merge_words(&theirs);
    }

    /// Snapshot the raw bitset words. `Coverage` itself is `Cell`-based and
    /// not `Send`; a snapshot is plain data that can cross threads and be
    /// folded back in with [`Coverage::merge_words`] — the transport format
    /// the parallel campaign runner's per-state shards use.
    pub fn snapshot(&self) -> Vec<u64> {
        self.bits.get().to_vec()
    }

    /// Fold a [`Coverage::snapshot`] back into this accumulator. Exactly
    /// equivalent to [`Coverage::merge`] with the accumulator the snapshot
    /// was taken from (word count mismatches would mean the snapshot came
    /// from a different point registry — rejected loudly).
    pub fn merge_words(&self, words: &[u64]) {
        assert_eq!(words.len(), WORDS, "coverage snapshot has wrong word count");
        let mut mine = self.bits.get();
        for (m, w) in mine.iter_mut().zip(words.iter()) {
            *m |= *w;
        }
        self.bits.set(mine);
    }

    pub fn reset(&self) {
        self.bits.set([0; WORDS]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_has_no_duplicates() {
        let set: BTreeSet<&str> = ALL_POINTS.iter().copied().collect();
        assert_eq!(
            set.len(),
            ALL_POINTS.len(),
            "duplicate coverage point registered"
        );
    }

    #[test]
    fn point_ids_are_their_ordinals() {
        assert_eq!(pt::PLAN_SEQ_SCAN.index(), 0);
        assert_eq!(pt::EVAL_LITERAL.label(), "eval::literal");
        assert_eq!(pt::AGG_EMPTY.index(), ALL_POINTS.len() - 1);
        assert_eq!(ALL_POINTS[pt::EXEC_SORT.index()], "exec::sort");
    }

    #[test]
    fn hit_accumulates_and_percent_reports() {
        let cov = Coverage::new();
        assert_eq!(cov.hit_count(), 0);
        cov.hit(pt::EVAL_LITERAL);
        cov.hit(pt::EVAL_LITERAL);
        cov.hit(pt::EXEC_PROJECT);
        assert_eq!(cov.hit_count(), 2);
        assert!(cov.percent() > 0.0 && cov.percent() < 100.0);
        assert_eq!(cov.hit_points(), vec!["exec::project", "eval::literal"]);
    }

    #[test]
    fn merge_unions_hits() {
        let a = Coverage::new();
        let b = Coverage::new();
        a.hit(pt::EVAL_LITERAL);
        b.hit(pt::EXEC_PROJECT);
        a.merge(&b);
        assert_eq!(a.hit_count(), 2);
        assert_eq!(b.hit_count(), 1);
    }

    #[test]
    fn missed_points_complement_hits() {
        let cov = Coverage::new();
        cov.hit(pt::AGG_AVG);
        let missed = cov.missed_points();
        assert_eq!(missed.len(), ALL_POINTS.len() - 1);
        assert!(!missed.contains(&"agg::avg"));
    }

    #[test]
    fn snapshot_roundtrips_through_merge_words() {
        let a = Coverage::new();
        a.hit(pt::EVAL_LITERAL);
        a.hit(pt::AGG_EMPTY);
        let words = a.snapshot();
        assert_eq!(words.len(), WORDS);

        let b = Coverage::new();
        b.hit(pt::EXEC_PROJECT);
        b.merge_words(&words);
        assert_eq!(b.hit_count(), 3);
        assert!(b.hit_points().contains(&"agg::empty"));

        // merge_words == merge with the snapshot's source accumulator.
        let c = Coverage::new();
        c.hit(pt::EXEC_PROJECT);
        c.merge(&a);
        assert_eq!(b.snapshot(), c.snapshot());
    }

    #[test]
    #[should_panic(expected = "wrong word count")]
    fn merge_words_rejects_wrong_length() {
        Coverage::new().merge_words(&[0u64]);
    }

    #[test]
    fn reset_clears_all_bits() {
        let cov = Coverage::new();
        cov.hit(pt::AGG_AVG);
        cov.hit(pt::PLAN_SEQ_SCAN);
        cov.reset();
        assert_eq!(cov.hit_count(), 0);
        assert_eq!(cov.missed_points().len(), ALL_POINTS.len());
    }
}
