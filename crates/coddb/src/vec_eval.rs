//! Vectorized (chunk-at-a-time) batch expression evaluation.
//!
//! The bind-once pipeline compiles clause expressions to [`BoundExpr`]
//! once per statement; this module evaluates them **column-at-a-time over
//! fixed-size row chunks** ([`CHUNK`] rows) instead of row-at-a-time
//! through per-row [`crate::exec::Frame`] indirection. Each kernel walks
//! one expression node once per chunk and loops over the active lanes in
//! a tight loop, amortizing interpreter dispatch, environment
//! construction and coverage bookkeeping across the whole chunk.
//!
//! ## Exactness contract
//!
//! The vectorized path must be indistinguishable from the row-at-a-time
//! interpreter ([`crate::eval::eval_bound`]): byte-identical results,
//! identical coverage bitsets, exact fuel accounting, and every injected
//! mutant still firing. Three mechanisms enforce that:
//!
//! 1. **Classification** ([`classify`]): an expression takes the
//!    vectorized path only when no lane can diverge from the scalar
//!    walk. Subqueries and aggregate slots are never vectorized (their
//!    evaluation re-enters the executor), and any shape a currently
//!    *active* mutant hooks falls back row-at-a-time, so the mutant's
//!    context-sensitive branch runs on the authentic interpreter.
//!    [`classify_ast`] is the planner-side mirror used by `EXPLAIN`'s
//!    `VEC` / `ROW(<reason>)` clause annotations (static prediction;
//!    the runtime classifier is authoritative).
//! 2. **Selection vectors**: `AND`/`OR`, `CASE`, `COALESCE` and `IIF`
//!    evaluate lazy operands only over the lanes that reach them —
//!    exactly the rows the scalar short-circuit would evaluate — so an
//!    erroring branch that scalar evaluation skips is skipped here too,
//!    and coverage points fire for a node iff at least one lane reaches
//!    it (coverage bits are idempotent, so per-class chunk hits equal
//!    the union of per-row hits).
//! 3. **Error masking + whole-chunk fallback**: kernels record coverage
//!    into a *scratch* accumulator and abort the chunk on the first lane
//!    whose scalar evaluation would error. The caller then re-runs the
//!    entire chunk row-at-a-time: the first erroring row raises the
//!    exact scalar error, rows before it fire their authentic coverage
//!    bits, and rows after it fire nothing — matching the scalar loop's
//!    abort point bit for bit. The scratch accumulator is merged into
//!    the real one only when the whole chunk succeeds.
//!
//! Fuel is charged by the executor per chunk (after checking the budget
//! covers the chunk, so exhaustion falls back to the per-row loop and
//! hangs at exactly the row the scalar pipeline would).
//!
//! The lane helpers (`truth_lane`, `arith_lane`, `cast_lane`, ...)
//! mirror their [`crate::eval`] counterparts; keep them in sync —
//! `coddb/tests/eval_differential.rs` cross-checks the two paths over
//! NULL-heavy data, erroring expressions, all dialects and every mutant.

use std::cmp::Ordering;

use crate::ast::{BinaryOp, Expr, FuncName, UnaryOp};
use crate::bind::{BoundColumn, BoundExpr};
use crate::bugs::{BugId, BugRegistry};
use crate::coverage::{pt, Coverage};
use crate::dialect::Dialect;
use crate::eval::{and3, cmp_matches, compare, like_match, not3, or3, Bool3, ExprCtx};
use crate::exec::{EngineCtx, Frame, StmtKind};
use crate::value::{DataType, Row, Value};

/// Rows per chunk fed to the vectorized kernels.
pub(crate) const CHUNK: usize = 1024;

// ---------------------------------------------------------------------------
// Classification: which expressions may take the vectorized path.
// ---------------------------------------------------------------------------

/// One shared table of per-shape mutant gates, consumed by both the
/// bound-form classifier (authoritative, [`classify`]) and the AST
/// mirror behind `EXPLAIN` ([`classify_ast`]) — new hook gates belong
/// HERE so the two walkers cannot drift. A gate rejects its shape only
/// while the hooking mutant is *active*: an inactive hook is a dead
/// branch the kernels need not model.
mod gates {
    use super::*;

    pub(super) fn binary(
        op: BinaryOp,
        bugs: &BugRegistry,
        dialect: Dialect,
        stmt: StmtKind,
    ) -> Result<(), &'static str> {
        if op == BinaryOp::Or && bugs.active(BugId::CockroachOrShortCircuitFalse) {
            return Err("mutant-hooked OR");
        }
        if op.is_comparison() {
            if bugs.active(BugId::MysqlTextIntCompareWhere) {
                return Err("mutant-hooked comparison");
            }
            // MySQL rejects cross-type TEXT/number comparisons in UPDATE
            // and DELETE (the DQE semantic-error dialect rule) — a
            // per-pair runtime decision the kernels do not model.
            if dialect == Dialect::Mysql && matches!(stmt, StmtKind::Update | StmtKind::Delete) {
                return Err("dialect DML comparison");
            }
        }
        if op == BinaryOp::Concat && bugs.active(BugId::SqliteInternalConcatIndexedExpr) {
            return Err("mutant-hooked concat");
        }
        if op == BinaryOp::Add && bugs.active(BugId::DuckdbInternalOverflowAddProj) {
            return Err("mutant-hooked addition");
        }
        Ok(())
    }

    pub(super) fn between(bugs: &BugRegistry) -> Result<(), &'static str> {
        if bugs.active(BugId::SqliteBetweenTextAffinity) {
            return Err("mutant-hooked BETWEEN");
        }
        Ok(())
    }

    pub(super) fn in_list(bugs: &BugRegistry) -> Result<(), &'static str> {
        if bugs.active(BugId::TidbInValueListWhere)
            || bugs.active(BugId::CockroachInBigIntValueList)
        {
            return Err("mutant-hooked IN list");
        }
        Ok(())
    }

    pub(super) fn case(bugs: &BugRegistry) -> Result<(), &'static str> {
        if bugs.active(BugId::TidbInternalCaseManyWhens)
            || bugs.active(BugId::CockroachCaseNullFromCte)
            || bugs.active(BugId::DuckdbCaseSubqueryElse)
        {
            return Err("mutant-hooked CASE");
        }
        Ok(())
    }

    pub(super) fn func(func: FuncName, bugs: &BugRegistry) -> Result<(), &'static str> {
        match func {
            FuncName::Round if bugs.active(BugId::TidbInternalRoundHuge) => {
                Err("mutant-hooked ROUND")
            }
            FuncName::Substr if bugs.active(BugId::TidbInternalSubstrNegative) => {
                Err("mutant-hooked SUBSTR")
            }
            _ => Ok(()),
        }
    }

    pub(super) fn cast(bugs: &BugRegistry) -> Result<(), &'static str> {
        if bugs.active(BugId::CockroachInternalCastTextInt) {
            return Err("mutant-hooked CAST");
        }
        Ok(())
    }

    pub(super) fn is_null(bugs: &BugRegistry) -> Result<(), &'static str> {
        if bugs.active(BugId::TidbIsNullTopLevelInverted) {
            return Err("mutant-hooked IS NULL");
        }
        Ok(())
    }

    pub(super) fn like(bugs: &BugRegistry) -> Result<(), &'static str> {
        if bugs.active(BugId::TidbInternalLikeEscape)
            || bugs.active(BugId::DuckdbHangLikePercents)
            || bugs.active(BugId::SqliteLikeCaseFold)
            || bugs.active(BugId::DuckdbNotLikeTopLevel)
        {
            return Err("mutant-hooked LIKE");
        }
        Ok(())
    }
}

/// Is the bound expression vectorizable under the current engine state?
/// `Err` carries the fallback reason (see [`gates`] for the mutant
/// table; subqueries and aggregate slots are rejected unconditionally
/// because their evaluation re-enters the executor).
pub(crate) fn classify(e: &BoundExpr, ctx: &EngineCtx) -> Result<(), &'static str> {
    let bugs = ctx.bugs;
    match e {
        BoundExpr::Literal(_) => Ok(()),
        BoundExpr::Column(c) => {
            if c.collision_alt.is_some() && bugs.active(BugId::TidbCorrelatedNameCollision) {
                Err("name-collision mutant")
            } else {
                Ok(())
            }
        }
        BoundExpr::Unary { expr, .. } => classify(expr, ctx),
        BoundExpr::Binary { op, left, right } => {
            gates::binary(*op, bugs, ctx.dialect, ctx.stmt)?;
            classify(left, ctx)?;
            classify(right, ctx)
        }
        BoundExpr::Between {
            expr, low, high, ..
        } => {
            gates::between(bugs)?;
            classify(expr, ctx)?;
            classify(low, ctx)?;
            classify(high, ctx)
        }
        BoundExpr::InList { expr, list, .. } => {
            gates::in_list(bugs)?;
            classify(expr, ctx)?;
            list.iter().try_for_each(|i| classify(i, ctx))
        }
        BoundExpr::InSubquery { .. }
        | BoundExpr::Exists { .. }
        | BoundExpr::Scalar { .. }
        | BoundExpr::Quantified { .. } => Err("subquery"),
        BoundExpr::Agg { .. } => Err("aggregate"),
        BoundExpr::Case {
            operand,
            whens,
            else_expr,
            ..
        } => {
            gates::case(bugs)?;
            if let Some(o) = operand {
                classify(o, ctx)?;
            }
            for (w, t) in whens {
                classify(w, ctx)?;
                classify(t, ctx)?;
            }
            else_expr.as_deref().map_or(Ok(()), |e| classify(e, ctx))
        }
        BoundExpr::Func { func, args } => {
            gates::func(*func, bugs)?;
            args.iter().try_for_each(|a| classify(a, ctx))
        }
        BoundExpr::Cast { expr, .. } => {
            gates::cast(bugs)?;
            classify(expr, ctx)
        }
        BoundExpr::IsNull { expr, .. } => {
            gates::is_null(bugs)?;
            classify(expr, ctx)
        }
        BoundExpr::Like { expr, pattern, .. } => {
            gates::like(bugs)?;
            classify(expr, ctx)?;
            classify(pattern, ctx)
        }
    }
}

/// Planner-side mirror of [`classify`] over the unbound AST, used by
/// `EXPLAIN`'s `VEC` / `ROW(<reason>)` clause annotations. Both walkers
/// consume the same [`gates`] table; the runtime classifier (which sees
/// bind-time facts like collision-alt columns) stays authoritative —
/// this is the static prediction.
pub fn classify_ast(
    e: &Expr,
    bugs: &BugRegistry,
    dialect: Dialect,
    stmt: StmtKind,
    depth: u32,
) -> Result<(), &'static str> {
    let rec = |e: &Expr| classify_ast(e, bugs, dialect, stmt, depth);
    match e {
        Expr::Literal(_) => Ok(()),
        Expr::Column(_) => {
            // The binder records collision alternatives only inside
            // subqueries; a bare column there may be mutant-redirected.
            if depth > 0 && bugs.active(BugId::TidbCorrelatedNameCollision) {
                Err("name-collision mutant")
            } else {
                Ok(())
            }
        }
        Expr::Unary { expr, .. } => rec(expr),
        Expr::Binary { op, left, right } => {
            gates::binary(*op, bugs, dialect, stmt)?;
            rec(left)?;
            rec(right)
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            gates::between(bugs)?;
            rec(expr)?;
            rec(low)?;
            rec(high)
        }
        Expr::InList { expr, list, .. } => {
            gates::in_list(bugs)?;
            rec(expr)?;
            list.iter().try_for_each(rec)
        }
        Expr::InSubquery { .. }
        | Expr::Exists { .. }
        | Expr::Scalar(_)
        | Expr::Quantified { .. } => Err("subquery"),
        Expr::Agg { .. } => Err("aggregate"),
        Expr::Case {
            operand,
            whens,
            else_expr,
        } => {
            gates::case(bugs)?;
            if let Some(o) = operand {
                rec(o)?;
            }
            for (w, t) in whens {
                rec(w)?;
                rec(t)?;
            }
            else_expr.as_deref().map_or(Ok(()), rec)
        }
        Expr::Func { func, args } => {
            gates::func(*func, bugs)?;
            args.iter().try_for_each(rec)
        }
        Expr::Cast { expr, .. } => {
            gates::cast(bugs)?;
            rec(expr)
        }
        Expr::IsNull { expr, .. } => {
            gates::is_null(bugs)?;
            rec(expr)
        }
        Expr::Like { expr, pattern, .. } => {
            gates::like(bugs)?;
            rec(expr)?;
            rec(pattern)
        }
    }
}

// ---------------------------------------------------------------------------
// Chunk evaluation machinery.
// ---------------------------------------------------------------------------

/// A lane whose scalar evaluation would error: the chunk aborts and the
/// caller re-runs it row-at-a-time (which raises the exact error at the
/// exact row, with exact coverage and fuel).
struct Abort;

/// Columnar result of one expression node over a chunk's active lanes.
enum Col {
    /// Lane-invariant (literals, outer-scope columns).
    Const(Value),
    /// One value per lane; only active lanes are meaningful.
    Dense(Vec<Value>),
}

impl Col {
    #[inline]
    fn get(&self, lane: u32) -> &Value {
        match self {
            Col::Const(v) => v,
            Col::Dense(vs) => &vs[lane as usize],
        }
    }
}

/// A kernel operand: either a fused local-column read (values come
/// straight from the chunk's rows, no materialized copy) or a
/// materialized column. Fusing is exact — a local column load has no
/// error path, and its coverage hit / correlation-detector record fire
/// when the operand is built.
enum Operand {
    ColRef(usize),
    Mat(Col),
}

impl Operand {
    #[inline]
    fn get<'v>(&'v self, rows: &'v [Row], lane: u32) -> &'v Value {
        match self {
            Operand::ColRef(i) => &rows[lane as usize][*i],
            Operand::Mat(c) => c.get(lane),
        }
    }

    fn konst(&self) -> Option<&Value> {
        match self {
            Operand::Mat(Col::Const(v)) => Some(v),
            _ => None,
        }
    }
}

/// Reusable buffers: one pool per statement (held by the engine context),
/// so the vectorized pipeline allocates O(1) buffers per operator rather
/// than O(chunks) — `coddb/tests/no_per_row_alloc.rs` pins this down.
#[derive(Default)]
pub(crate) struct Pool {
    vals: Vec<Vec<Value>>,
    sels: Vec<Vec<u32>>,
    b3s: Vec<Vec<Bool3>>,
}

impl Pool {
    fn vals(&mut self, len: usize) -> Vec<Value> {
        let mut v = self.vals.pop().unwrap_or_default();
        v.clear();
        v.resize(len, Value::Null);
        v
    }
    fn sel(&mut self) -> Vec<u32> {
        let mut s = self.sels.pop().unwrap_or_default();
        s.clear();
        s
    }
    fn b3s(&mut self, len: usize) -> Vec<Bool3> {
        let mut b = self.b3s.pop().unwrap_or_default();
        b.clear();
        b.resize(len, None);
        b
    }
    fn give(&mut self, col: Col) {
        if let Col::Dense(v) = col {
            self.vals.push(v);
        }
    }
    fn give_vals(&mut self, v: Vec<Value>) {
        self.vals.push(v);
    }
    fn give_sel(&mut self, s: Vec<u32>) {
        self.sels.push(s);
    }
    fn give_b3(&mut self, b: Vec<Bool3>) {
        self.b3s.push(b);
    }
}

/// Truthiness coverage classes observed across a chunk; fired once per
/// class present (idempotent bits make that equal to per-row hits).
#[derive(Default)]
struct TruthFlags {
    null: bool,
    boolean: bool,
    numeric: bool,
}

impl TruthFlags {
    fn fire(&self, cov: &Coverage) {
        if self.null {
            cov.hit(pt::EVAL_TRUTHY_NULL);
        }
        if self.boolean {
            cov.hit(pt::EVAL_TRUTHY_BOOL);
        }
        if self.numeric {
            cov.hit(pt::EVAL_TRUTHY_NUMERIC);
        }
    }
}

/// Per-lane [`crate::eval::truthiness`]: same classes, strict-dialect
/// type errors become chunk aborts.
#[inline]
fn truth_lane(v: &Value, strict: bool, tf: &mut TruthFlags) -> Result<Bool3, Abort> {
    match v {
        Value::Null => {
            tf.null = true;
            Ok(None)
        }
        Value::Bool(b) => {
            tf.boolean = true;
            Ok(Some(*b))
        }
        other => {
            if strict {
                return Err(Abort);
            }
            tf.numeric = true;
            Ok(Some(other.coerce_f64() != 0.0))
        }
    }
}

/// Per-lane [`crate::eval::bool3_to_value`].
#[inline]
fn b3_value(b: Bool3, strict: bool) -> Value {
    match b {
        None => Value::Null,
        Some(t) => {
            if strict {
                Value::Bool(t)
            } else {
                Value::Int(t as i64)
            }
        }
    }
}

/// Per-lane `value_to_text` (strict dialects reject non-TEXT operands).
#[inline]
fn to_text_lane(v: &Value, strict: bool) -> Result<String, Abort> {
    match v {
        Value::Text(s) => Ok(s.clone()),
        other if !strict => Ok(other.to_string()),
        _ => Err(Abort),
    }
}

/// Mirror of `eval.rs::finite_or_null`.
#[inline]
fn finite_or_null(r: f64) -> Value {
    if r.is_finite() {
        Value::Real(r)
    } else {
        Value::Null
    }
}

/// Coverage classes of the arithmetic kernel.
#[derive(Default)]
struct ArithFlags {
    null: bool,
    int: bool,
    real: bool,
    div_zero_null: bool,
}

impl ArithFlags {
    fn fire(&self, cov: &Coverage) {
        if self.null {
            cov.hit(pt::EVAL_ARITH_NULL);
        }
        if self.int {
            cov.hit(pt::EVAL_ARITH_INT);
        }
        if self.real {
            cov.hit(pt::EVAL_ARITH_REAL);
        }
        if self.div_zero_null {
            cov.hit(pt::EVAL_DIV_ZERO_NULL);
        }
    }
}

/// Per-lane comparison. Numeric/numeric pairs reduce to
/// [`Value::sql_cmp`] in **every** dialect (strict dialects accept
/// numeric-numeric operands, MySQL-family coercion only touches TEXT),
/// so the hot lanes skip [`compare`]'s dialect dispatch; everything
/// else delegates to it bit for bit.
#[inline]
fn cmp_lane(
    a: &Value,
    b: &Value,
    ctx: &EngineCtx,
    info: ExprCtx,
) -> Result<Option<Ordering>, Abort> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => Ok(None),
        (Value::Int(x), Value::Int(y)) => Ok(Some(x.cmp(y))),
        (Value::Int(x), Value::Real(y)) => Ok(Some((*x as f64).total_cmp(y))),
        (Value::Real(x), Value::Int(y)) => Ok(Some(x.total_cmp(&(*y as f64)))),
        (Value::Real(x), Value::Real(y)) => Ok(Some(x.total_cmp(y))),
        _ => compare(a, b, ctx, info).map_err(|_| Abort),
    }
}

/// Per-lane mirror of `eval.rs::eval_arith`, minus the mutant hooks
/// (classification keeps hooked shapes off this path). Every scalar
/// error condition — strict type errors, overflow, erroring division by
/// zero — aborts the chunk. The Int/Int arm is the generic path
/// specialized (both operands numeric, `both_int` true, identical
/// checked semantics) without the per-lane type dispatch.
fn arith_lane(
    op: BinaryOp,
    lv: &Value,
    rv: &Value,
    strict: bool,
    int_div_real: bool,
    div0_null: bool,
    flags: &mut ArithFlags,
) -> Result<Value, Abort> {
    if let (Value::Int(a), Value::Int(b)) = (lv, rv) {
        let (a, b) = (*a, *b);
        match op {
            BinaryOp::Add => {
                flags.int = true;
                return a.checked_add(b).map(Value::Int).ok_or(Abort);
            }
            BinaryOp::Sub => {
                flags.int = true;
                return a.checked_sub(b).map(Value::Int).ok_or(Abort);
            }
            BinaryOp::Mul => {
                flags.int = true;
                return a.checked_mul(b).map(Value::Int).ok_or(Abort);
            }
            BinaryOp::Div => {
                if b == 0 {
                    if div0_null {
                        flags.div_zero_null = true;
                        return Ok(Value::Null);
                    }
                    return Err(Abort);
                }
                if !int_div_real {
                    flags.int = true;
                    return a.checked_div(b).map(Value::Int).ok_or(Abort);
                }
                flags.real = true;
                return Ok(finite_or_null(a as f64 / b as f64));
            }
            BinaryOp::Mod => {
                if b == 0 {
                    if div0_null {
                        flags.div_zero_null = true;
                        return Ok(Value::Null);
                    }
                    return Err(Abort);
                }
                flags.int = true;
                return a.checked_rem(b).map(Value::Int).ok_or(Abort);
            }
            _ => return Err(Abort),
        }
    }
    if lv.is_null() || rv.is_null() {
        flags.null = true;
        return Ok(Value::Null);
    }
    if strict {
        let numeric = |v: &Value| matches!(v, Value::Int(_) | Value::Real(_));
        if !numeric(lv) || !numeric(rv) {
            return Err(Abort);
        }
    }
    let both_int = matches!(lv, Value::Int(_) | Value::Bool(_))
        && matches!(rv, Value::Int(_) | Value::Bool(_));
    match op {
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul => {
            if both_int {
                flags.int = true;
                let a = lv.as_i64().unwrap();
                let b = rv.as_i64().unwrap();
                let r = match op {
                    BinaryOp::Add => a.checked_add(b),
                    BinaryOp::Sub => a.checked_sub(b),
                    _ => a.checked_mul(b),
                };
                // Overflow errors (and their EVAL_ARITH_OVERFLOW hit)
                // surface through the row-at-a-time rerun.
                r.map(Value::Int).ok_or(Abort)
            } else {
                flags.real = true;
                let a = lv.coerce_f64();
                let b = rv.coerce_f64();
                let r = match op {
                    BinaryOp::Add => a + b,
                    BinaryOp::Sub => a - b,
                    _ => a * b,
                };
                Ok(finite_or_null(r))
            }
        }
        BinaryOp::Div => {
            let b_num = rv.coerce_f64();
            if b_num == 0.0 {
                if div0_null {
                    flags.div_zero_null = true;
                    return Ok(Value::Null);
                }
                return Err(Abort);
            }
            if both_int && !int_div_real {
                flags.int = true;
                let a = lv.as_i64().unwrap();
                let b = rv.as_i64().unwrap();
                a.checked_div(b).map(Value::Int).ok_or(Abort)
            } else {
                flags.real = true;
                Ok(finite_or_null(lv.coerce_f64() / b_num))
            }
        }
        BinaryOp::Mod => {
            let a = lv
                .as_i64()
                .or_else(|| Some(lv.coerce_f64() as i64))
                .unwrap();
            let b = rv
                .as_i64()
                .or_else(|| Some(rv.coerce_f64() as i64))
                .unwrap();
            if b == 0 {
                if div0_null {
                    flags.div_zero_null = true;
                    return Ok(Value::Null);
                }
                return Err(Abort);
            }
            flags.int = true;
            a.checked_rem(b).map(Value::Int).ok_or(Abort)
        }
        _ => Err(Abort),
    }
}

/// Per-lane mirror of `eval.rs::eval_cast` (null in → null out before any
/// coverage; strict parse failures abort; the `CockroachInternalCastTextInt`
/// hook is classification-rejected).
fn cast_lane(
    v: &Value,
    ty: DataType,
    strict: bool,
    hit_nonnull: &mut bool,
) -> Result<Value, Abort> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    *hit_nonnull = true;
    match ty {
        DataType::Int => match v {
            Value::Int(i) => Ok(Value::Int(*i)),
            Value::Bool(b) => Ok(Value::Int(*b as i64)),
            Value::Real(r) => Ok(Value::Int(*r as i64)),
            Value::Text(s) => {
                if strict {
                    s.trim().parse::<i64>().map(Value::Int).map_err(|_| Abort)
                } else {
                    Ok(Value::Int(v.coerce_f64() as i64))
                }
            }
            Value::Null => unreachable!(),
        },
        DataType::Real => match v {
            Value::Real(r) => Ok(Value::Real(*r)),
            Value::Int(i) => Ok(Value::Real(*i as f64)),
            Value::Bool(b) => Ok(Value::Real(*b as i64 as f64)),
            Value::Text(s) => {
                if strict {
                    s.trim().parse::<f64>().map(Value::Real).map_err(|_| Abort)
                } else {
                    Ok(Value::Real(v.coerce_f64()))
                }
            }
            Value::Null => unreachable!(),
        },
        DataType::Text => Ok(Value::Text(v.to_string())),
        DataType::Bool => match v {
            Value::Bool(b) => Ok(Value::Bool(*b)),
            Value::Int(i) => Ok(Value::Bool(*i != 0)),
            Value::Real(r) => Ok(Value::Bool(*r != 0.0)),
            Value::Text(s) => {
                let t = s.trim().to_ascii_lowercase();
                match t.as_str() {
                    "true" | "t" | "1" => Ok(Value::Bool(true)),
                    "false" | "f" | "0" => Ok(Value::Bool(false)),
                    _ if !strict => Ok(Value::Bool(v.coerce_f64() != 0.0)),
                    _ => Err(Abort),
                }
            }
            Value::Null => unreachable!(),
        },
        DataType::Any => Ok(v.clone()),
    }
}

/// One chunk's evaluation state: the chunk rows, the (fixed) outer
/// scopes, the scratch coverage accumulator and the statement's buffer
/// pool.
struct ChunkEval<'a, 'e> {
    ctx: &'e EngineCtx<'a>,
    cov: &'e Coverage,
    rows: &'e [Row],
    outer: &'e [Frame<'e>],
    info: ExprCtx,
    pool: &'e mut Pool,
}

impl<'a, 'e> ChunkEval<'a, 'e> {
    fn strict(&self) -> bool {
        self.ctx.dialect.strict_types()
    }

    /// Evaluate `e` over the active lanes. `sel` must be non-empty: a
    /// node is entered only when at least one lane reaches it, which is
    /// what keeps per-node coverage hits equal to the scalar union.
    fn eval(&mut self, e: &BoundExpr, sel: &[u32]) -> Result<Col, Abort> {
        debug_assert!(!sel.is_empty(), "kernels require at least one active lane");
        match e {
            BoundExpr::Literal(v) => {
                self.cov.hit(pt::EVAL_LITERAL);
                Ok(Col::Const(v.clone()))
            }
            BoundExpr::Column(c) => self.load_column(c, sel),
            BoundExpr::Unary { op, expr } => self.unary(*op, expr, sel),
            BoundExpr::Binary { op, left, right } => self.binary(*op, left, right, sel),
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => self.between(expr, low, high, *negated, sel),
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => self.in_list(expr, list, *negated, sel),
            BoundExpr::Case {
                operand,
                whens,
                else_expr,
                ..
            } => self.case(operand.as_deref(), whens, else_expr.as_deref(), sel),
            BoundExpr::Func { func, args } => self.func(*func, args, sel),
            BoundExpr::Cast { expr, ty } => {
                let input = self.eval(expr, sel)?;
                let strict = self.strict();
                let mut nonnull = false;
                let out = self.map1(input, sel, |v| cast_lane(v, *ty, strict, &mut nonnull))?;
                if nonnull {
                    match ty {
                        DataType::Int => self.cov.hit(pt::EVAL_CAST_INT),
                        DataType::Real => self.cov.hit(pt::EVAL_CAST_REAL),
                        DataType::Text => self.cov.hit(pt::EVAL_CAST_TEXT),
                        DataType::Bool => self.cov.hit(pt::EVAL_CAST_BOOL),
                        DataType::Any => {}
                    }
                }
                Ok(out)
            }
            BoundExpr::IsNull { expr, negated } => {
                let input = self.eval(expr, sel)?;
                let strict = self.strict();
                let negated = *negated;
                self.map1(input, sel, |v| {
                    Ok(b3_value(Some(v.is_null() != negated), strict))
                })
            }
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => self.like(expr, pattern, *negated, sel),
            // Classification keeps these off the vectorized path.
            BoundExpr::InSubquery { .. }
            | BoundExpr::Exists { .. }
            | BoundExpr::Scalar { .. }
            | BoundExpr::Quantified { .. }
            | BoundExpr::Agg { .. } => {
                debug_assert!(false, "unclassified expression reached the vectorized path");
                Err(Abort)
            }
        }
    }

    fn load_column(&mut self, c: &BoundColumn, sel: &[u32]) -> Result<Col, Abort> {
        let (up, index) = (c.up as usize, c.index as usize);
        let nscopes = self.outer.len() + 1;
        let fi = nscopes - 1 - up;
        self.cov.hit(if up == 0 {
            pt::EVAL_COLUMN_LOCAL
        } else {
            pt::EVAL_COLUMN_OUTER
        });
        // The correlation detector dedups slots, so recording once per
        // chunk equals recording once per row. Recording on the real
        // context is sound even if the chunk later aborts: the scalar
        // rerun re-records the same slots (or the statement errors).
        self.ctx.note_column_read(fi, index);
        if up == 0 {
            let mut out = self.pool.vals(self.rows.len());
            for &lane in sel {
                out[lane as usize] = self.rows[lane as usize][index].clone();
            }
            Ok(Col::Dense(out))
        } else {
            // Outer frames are fixed across the chunk: lane-invariant.
            Ok(Col::Const(self.outer[fi].row[index].clone()))
        }
    }

    fn unary(&mut self, op: UnaryOp, expr: &BoundExpr, sel: &[u32]) -> Result<Col, Abort> {
        let input = self.eval(expr, sel)?;
        let strict = self.strict();
        match op {
            UnaryOp::Neg => {
                self.cov.hit(pt::EVAL_NEG);
                self.map1(input, sel, |v| match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => i.checked_neg().map(Value::Int).ok_or(Abort),
                    Value::Real(r) => Ok(Value::Real(-r)),
                    other => {
                        if strict {
                            Err(Abort)
                        } else {
                            Ok(Value::Real(-other.coerce_f64()))
                        }
                    }
                })
            }
            UnaryOp::Not => {
                self.cov.hit(pt::EVAL_NOT);
                let mut tf = TruthFlags::default();
                let out = self.map1(input, sel, |v| {
                    let b = truth_lane(v, strict, &mut tf)?;
                    Ok(b3_value(not3(b), strict))
                })?;
                tf.fire(self.cov);
                Ok(out)
            }
        }
    }

    fn binary(
        &mut self,
        op: BinaryOp,
        left: &BoundExpr,
        right: &BoundExpr,
        sel: &[u32],
    ) -> Result<Col, Abort> {
        match op {
            BinaryOp::And | BinaryOp::Or => self.and_or(op, left, right, sel),
            BinaryOp::Is | BinaryOp::IsNot => {
                self.cov.hit(pt::EVAL_IS_OP);
                let l = self.eval(left, sel)?;
                let r = self.eval(right, sel)?;
                let strict = self.strict();
                self.map2(l, r, sel, |a, b| {
                    let same = a.is_identical(b);
                    Ok(b3_value(Some(same == (op == BinaryOp::Is)), strict))
                })
            }
            _ if op.is_comparison() => {
                let lop = self.operand(left, sel)?;
                let rop = self.operand(right, sel)?;
                let strict = self.strict();
                let (ctx, info) = (self.ctx, self.info);
                let (mut t, mut f, mut n) = (false, false, false);
                let out = if let (Some(a), Some(b)) = (lop.konst(), rop.konst()) {
                    let ord = cmp_lane(a, b, ctx, info)?;
                    let b3 = ord.map(|o| cmp_matches(op, o));
                    match b3 {
                        Some(true) => t = true,
                        Some(false) => f = true,
                        None => n = true,
                    }
                    Col::Const(b3_value(b3, strict))
                } else {
                    let mut out = self.pool.vals(self.rows.len());
                    for &lane in sel {
                        let a = lop.get(self.rows, lane);
                        let b = rop.get(self.rows, lane);
                        let ord = cmp_lane(a, b, ctx, info)?;
                        let b3 = ord.map(|o| cmp_matches(op, o));
                        match b3 {
                            Some(true) => t = true,
                            Some(false) => f = true,
                            None => n = true,
                        }
                        out[lane as usize] = b3_value(b3, strict);
                    }
                    Col::Dense(out)
                };
                if t {
                    self.cov.hit(pt::EVAL_CMP_TRUE);
                }
                if f {
                    self.cov.hit(pt::EVAL_CMP_FALSE);
                }
                if n {
                    self.cov.hit(pt::EVAL_CMP_NULL);
                }
                self.release_operand(lop);
                self.release_operand(rop);
                Ok(out)
            }
            BinaryOp::Concat => {
                self.cov.hit(pt::EVAL_CONCAT);
                let l = self.eval(left, sel)?;
                let r = self.eval(right, sel)?;
                let strict = self.strict();
                self.map2(l, r, sel, |a, b| {
                    if a.is_null() || b.is_null() {
                        return Ok(Value::Null);
                    }
                    let ls = to_text_lane(a, strict)?;
                    let rs = to_text_lane(b, strict)?;
                    Ok(Value::Text(format!("{ls}{rs}")))
                })
            }
            _ => {
                debug_assert!(op.is_arithmetic());
                let lop = self.operand(left, sel)?;
                let rop = self.operand(right, sel)?;
                let strict = self.strict();
                let int_div_real = self.ctx.dialect.int_div_yields_real();
                let div0_null = self.ctx.dialect.div_by_zero_is_null();
                let mut flags = ArithFlags::default();
                let out = if let (Some(a), Some(b)) = (lop.konst(), rop.konst()) {
                    Col::Const(arith_lane(
                        op,
                        a,
                        b,
                        strict,
                        int_div_real,
                        div0_null,
                        &mut flags,
                    )?)
                } else {
                    let mut out = self.pool.vals(self.rows.len());
                    for &lane in sel {
                        let a = lop.get(self.rows, lane);
                        let b = rop.get(self.rows, lane);
                        out[lane as usize] =
                            arith_lane(op, a, b, strict, int_div_real, div0_null, &mut flags)?;
                    }
                    Col::Dense(out)
                };
                flags.fire(self.cov);
                self.release_operand(lop);
                self.release_operand(rop);
                Ok(out)
            }
        }
    }

    /// `AND` / `OR` with exact short-circuit laziness: the right operand
    /// evaluates only over lanes the scalar walk would reach.
    fn and_or(
        &mut self,
        op: BinaryOp,
        left: &BoundExpr,
        right: &BoundExpr,
        sel: &[u32],
    ) -> Result<Col, Abort> {
        let is_and = op == BinaryOp::And;
        let strict = self.strict();
        let l = self.eval(left, sel)?;
        let mut tf = TruthFlags::default();
        let mut lb = self.pool.b3s(self.rows.len());
        let mut rhs_sel = self.pool.sel();
        let mut shorted = false;
        for &lane in sel {
            let t = truth_lane(l.get(lane), strict, &mut tf)?;
            lb[lane as usize] = t;
            let short = t == Some(!is_and);
            if short {
                shorted = true;
            } else {
                rhs_sel.push(lane);
            }
        }
        self.pool.give(l);
        if shorted {
            self.cov.hit(if is_and {
                pt::EVAL_AND_SHORT
            } else {
                pt::EVAL_OR_SHORT
            });
        }
        let mut out = self.pool.vals(self.rows.len());
        let mut saw_null = false;
        if !rhs_sel.is_empty() {
            let r = self.eval(right, &rhs_sel)?;
            for &lane in &rhs_sel {
                let rb = truth_lane(r.get(lane), strict, &mut tf)?;
                let b = if is_and {
                    and3(lb[lane as usize], rb)
                } else {
                    or3(lb[lane as usize], rb)
                };
                if b.is_none() {
                    saw_null = true;
                }
                out[lane as usize] = b3_value(b, strict);
            }
            self.pool.give(r);
        }
        if shorted {
            let short_val = b3_value(Some(!is_and), strict);
            for &lane in sel {
                if lb[lane as usize] == Some(!is_and) {
                    out[lane as usize] = short_val.clone();
                }
            }
        }
        tf.fire(self.cov);
        if saw_null {
            self.cov.hit(if is_and {
                pt::EVAL_AND_NULL
            } else {
                pt::EVAL_OR_NULL
            });
        }
        self.pool.give_b3(lb);
        self.pool.give_sel(rhs_sel);
        Ok(Col::Dense(out))
    }

    fn between(
        &mut self,
        expr: &BoundExpr,
        low: &BoundExpr,
        high: &BoundExpr,
        negated: bool,
        sel: &[u32],
    ) -> Result<Col, Abort> {
        self.cov.hit(if negated {
            pt::EVAL_BETWEEN_NEG
        } else {
            pt::EVAL_BETWEEN
        });
        let v = self.operand(expr, sel)?;
        let lo = self.operand(low, sel)?;
        let hi = self.operand(high, sel)?;
        let strict = self.strict();
        let (ctx, info) = (self.ctx, self.info);
        let mut out = self.pool.vals(self.rows.len());
        for &lane in sel {
            let x = v.get(self.rows, lane);
            let ge = cmp_lane(x, lo.get(self.rows, lane), ctx, info)?.map(|o| o != Ordering::Less);
            let le =
                cmp_lane(x, hi.get(self.rows, lane), ctx, info)?.map(|o| o != Ordering::Greater);
            let b = and3(ge, le);
            out[lane as usize] = b3_value(if negated { not3(b) } else { b }, strict);
        }
        self.release_operand(v);
        self.release_operand(lo);
        self.release_operand(hi);
        Ok(Col::Dense(out))
    }

    fn in_list(
        &mut self,
        expr: &BoundExpr,
        list: &[BoundExpr],
        negated: bool,
        sel: &[u32],
    ) -> Result<Col, Abort> {
        let strict = self.strict();
        let v = self.operand(expr, sel)?;
        if list.is_empty() {
            self.cov.hit(pt::EVAL_IN_LIST_MISS);
            self.release_operand(v);
            return Ok(Col::Const(b3_value(Some(negated), strict)));
        }
        // Like the scalar walk, every item evaluates before comparison.
        let mut items = Vec::with_capacity(list.len());
        for item in list {
            items.push(self.eval(item, sel)?);
        }
        let (ctx, info) = (self.ctx, self.info);
        let (mut hit_f, mut null_f, mut miss_f) = (false, false, false);
        let mut out = self.pool.vals(self.rows.len());
        for &lane in sel {
            let lv = v.get(self.rows, lane);
            let mut any_null = lv.is_null();
            let mut hit = false;
            if !lv.is_null() {
                for item in &items {
                    match cmp_lane(lv, item.get(lane), ctx, info)? {
                        Some(Ordering::Equal) => {
                            hit = true;
                            break;
                        }
                        None => any_null = true,
                        _ => {}
                    }
                }
            }
            let b = if hit {
                hit_f = true;
                Some(true)
            } else if any_null {
                null_f = true;
                None
            } else {
                miss_f = true;
                Some(false)
            };
            out[lane as usize] = b3_value(if negated { not3(b) } else { b }, strict);
        }
        if hit_f {
            self.cov.hit(pt::EVAL_IN_LIST_HIT);
        }
        if null_f {
            self.cov.hit(pt::EVAL_IN_LIST_NULL);
        }
        if miss_f {
            self.cov.hit(pt::EVAL_IN_LIST_MISS);
        }
        self.release_operand(v);
        for item in items {
            self.pool.give(item);
        }
        Ok(Col::Dense(out))
    }

    fn case(
        &mut self,
        operand: Option<&BoundExpr>,
        whens: &[(BoundExpr, BoundExpr)],
        else_expr: Option<&BoundExpr>,
        sel: &[u32],
    ) -> Result<Col, Abort> {
        let strict = self.strict();
        let mut out = self.pool.vals(self.rows.len());
        let mut active = self.pool.sel();
        active.extend_from_slice(sel);
        let mut next = self.pool.sel();
        let mut matched = self.pool.sel();
        let mut tf = TruthFlags::default();
        let base = match operand {
            Some(o) => {
                self.cov.hit(pt::EVAL_CASE_OPERAND);
                Some(self.eval(o, sel)?)
            }
            None => {
                self.cov.hit(pt::EVAL_CASE_SEARCHED);
                None
            }
        };
        let (ctx, info) = (self.ctx, self.info);
        for (w, t) in whens {
            if active.is_empty() {
                break;
            }
            let wv = self.eval(w, &active)?;
            next.clear();
            matched.clear();
            for &lane in &active {
                let is_match = match &base {
                    Some(b) => {
                        cmp_lane(b.get(lane), wv.get(lane), ctx, info)? == Some(Ordering::Equal)
                    }
                    None => truth_lane(wv.get(lane), strict, &mut tf)? == Some(true),
                };
                if is_match {
                    matched.push(lane);
                } else {
                    next.push(lane);
                }
            }
            self.pool.give(wv);
            if !matched.is_empty() {
                let tv = self.eval(t, &matched)?;
                self.scatter(tv, &matched, &mut out);
            }
            std::mem::swap(&mut active, &mut next);
        }
        if let Some(b) = base {
            self.pool.give(b);
        }
        if !active.is_empty() {
            match else_expr {
                Some(e) => {
                    self.cov.hit(pt::EVAL_CASE_ELSE);
                    let ev = self.eval(e, &active)?;
                    self.scatter(ev, &active, &mut out);
                }
                // Unmatched lanes stay NULL.
                None => self.cov.hit(pt::EVAL_CASE_NO_MATCH),
            }
        }
        tf.fire(self.cov);
        self.pool.give_sel(active);
        self.pool.give_sel(next);
        self.pool.give_sel(matched);
        Ok(Col::Dense(out))
    }

    fn like(
        &mut self,
        expr: &BoundExpr,
        pattern: &BoundExpr,
        negated: bool,
        sel: &[u32],
    ) -> Result<Col, Abort> {
        let v = self.eval(expr, sel)?;
        let p = self.eval(pattern, sel)?;
        let strict = self.strict();
        let ci = self.ctx.dialect.like_case_insensitive();
        let (mut null_f, mut match_f, mut nomatch_f) = (false, false, false);
        let out = self.map2(v, p, sel, |a, b| {
            if a.is_null() || b.is_null() {
                null_f = true;
                return Ok(Value::Null);
            }
            let text = to_text_lane(a, strict)?;
            let pat = to_text_lane(b, strict)?;
            let mut m = like_match(&text, &pat, ci);
            if m {
                match_f = true;
            } else {
                nomatch_f = true;
            }
            if negated {
                m = !m;
            }
            Ok(b3_value(Some(m), strict))
        })?;
        if null_f {
            self.cov.hit(pt::EVAL_LIKE_NULL);
        }
        if match_f {
            self.cov.hit(pt::EVAL_LIKE_MATCH);
        }
        if nomatch_f {
            self.cov.hit(pt::EVAL_LIKE_NOMATCH);
        }
        Ok(out)
    }

    fn func(&mut self, func: FuncName, args: &[BoundExpr], sel: &[u32]) -> Result<Col, Abort> {
        let strict = self.strict();
        // Arity errors surface through the row-at-a-time rerun.
        let arity_ok = match func {
            FuncName::Length
            | FuncName::Abs
            | FuncName::Upper
            | FuncName::Lower
            | FuncName::Typeof
            | FuncName::Sign => args.len() == 1,
            FuncName::Nullif | FuncName::Instr => args.len() == 2,
            FuncName::Iif => args.len() == 3,
            FuncName::Coalesce => !args.is_empty(),
            FuncName::Version => args.is_empty(),
            FuncName::Round => !args.is_empty() && args.len() <= 2,
            FuncName::Substr => args.len() == 2 || args.len() == 3,
        };
        if !arity_ok {
            return Err(Abort);
        }
        match func {
            FuncName::Length => {
                self.cov.hit(pt::EVAL_FUNC_LENGTH);
                let v = self.eval(&args[0], sel)?;
                self.map1(v, sel, |v| {
                    if v.is_null() {
                        return Ok(Value::Null);
                    }
                    let s = to_text_lane(v, strict)?;
                    Ok(Value::Int(s.chars().count() as i64))
                })
            }
            FuncName::Abs => {
                self.cov.hit(pt::EVAL_FUNC_ABS);
                let v = self.eval(&args[0], sel)?;
                self.map1(v, sel, |v| match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => i.checked_abs().map(Value::Int).ok_or(Abort),
                    Value::Real(r) => Ok(Value::Real(r.abs())),
                    other if !strict => Ok(Value::Real(other.coerce_f64().abs())),
                    _ => Err(Abort),
                })
            }
            FuncName::Upper | FuncName::Lower => {
                self.cov.hit(if func == FuncName::Upper {
                    pt::EVAL_FUNC_UPPER
                } else {
                    pt::EVAL_FUNC_LOWER
                });
                let v = self.eval(&args[0], sel)?;
                self.map1(v, sel, |v| {
                    if v.is_null() {
                        return Ok(Value::Null);
                    }
                    let s = to_text_lane(v, strict)?;
                    Ok(Value::Text(if func == FuncName::Upper {
                        s.to_uppercase()
                    } else {
                        s.to_lowercase()
                    }))
                })
            }
            FuncName::Coalesce => {
                self.cov.hit(pt::EVAL_FUNC_COALESCE);
                let mut out = self.pool.vals(self.rows.len());
                let mut active = self.pool.sel();
                active.extend_from_slice(sel);
                let mut next = self.pool.sel();
                for a in args {
                    if active.is_empty() {
                        break;
                    }
                    let v = self.eval(a, &active)?;
                    next.clear();
                    for &lane in &active {
                        let val = v.get(lane);
                        if val.is_null() {
                            next.push(lane);
                        } else {
                            out[lane as usize] = val.clone();
                        }
                    }
                    self.pool.give(v);
                    std::mem::swap(&mut active, &mut next);
                }
                self.pool.give_sel(active);
                self.pool.give_sel(next);
                Ok(Col::Dense(out))
            }
            FuncName::Nullif => {
                self.cov.hit(pt::EVAL_FUNC_NULLIF);
                let a = self.eval(&args[0], sel)?;
                let b = self.eval(&args[1], sel)?;
                let (ctx, info) = (self.ctx, self.info);
                self.map2(a, b, sel, |a, b| {
                    if cmp_lane(a, b, ctx, info)? == Some(Ordering::Equal) {
                        Ok(Value::Null)
                    } else {
                        Ok(a.clone())
                    }
                })
            }
            FuncName::Iif => {
                self.cov.hit(pt::EVAL_FUNC_IIF);
                let c = self.eval(&args[0], sel)?;
                let mut tf = TruthFlags::default();
                let mut then_sel = self.pool.sel();
                let mut else_sel = self.pool.sel();
                for &lane in sel {
                    if truth_lane(c.get(lane), strict, &mut tf)? == Some(true) {
                        then_sel.push(lane);
                    } else {
                        else_sel.push(lane);
                    }
                }
                self.pool.give(c);
                tf.fire(self.cov);
                let mut out = self.pool.vals(self.rows.len());
                if !then_sel.is_empty() {
                    let tv = self.eval(&args[1], &then_sel)?;
                    self.scatter(tv, &then_sel, &mut out);
                }
                if !else_sel.is_empty() {
                    let ev = self.eval(&args[2], &else_sel)?;
                    self.scatter(ev, &else_sel, &mut out);
                }
                self.pool.give_sel(then_sel);
                self.pool.give_sel(else_sel);
                Ok(Col::Dense(out))
            }
            FuncName::Typeof => {
                self.cov.hit(pt::EVAL_FUNC_TYPEOF);
                let v = self.eval(&args[0], sel)?;
                self.map1(v, sel, |v| {
                    Ok(Value::Text(
                        match v {
                            Value::Null => "null",
                            Value::Int(_) => "integer",
                            Value::Real(_) => "real",
                            Value::Text(_) => "text",
                            Value::Bool(_) => "boolean",
                        }
                        .into(),
                    ))
                })
            }
            FuncName::Version => {
                self.cov.hit(pt::EVAL_FUNC_VERSION);
                Ok(Col::Const(Value::Text(
                    self.ctx.dialect.version_string().into(),
                )))
            }
            FuncName::Round => {
                self.cov.hit(pt::EVAL_FUNC_ROUND);
                let v = self.eval(&args[0], sel)?;
                // The precision argument evaluates only for lanes whose
                // value is non-NULL (the scalar walk returns early).
                let mut live = self.pool.sel();
                for &lane in sel {
                    if !v.get(lane).is_null() {
                        live.push(lane);
                    }
                }
                let p = if args.len() == 2 && !live.is_empty() {
                    Some(self.eval(&args[1], &live)?)
                } else {
                    None
                };
                let mut out = self.pool.vals(self.rows.len());
                for &lane in &live {
                    let pv = match &p {
                        Some(pc) => match pc.get(lane) {
                            Value::Null => {
                                out[lane as usize] = Value::Null;
                                continue;
                            }
                            pv => pv.as_i64().unwrap_or(0),
                        },
                        None => 0,
                    };
                    let x = match v.get(lane).as_f64() {
                        Some(x) => x,
                        None if !strict => v.get(lane).coerce_f64(),
                        None => return Err(Abort),
                    };
                    let pv = pv.clamp(-15, 15);
                    let factor = 10f64.powi(pv as i32);
                    out[lane as usize] = finite_or_null((x * factor).round() / factor);
                }
                self.pool.give(v);
                if let Some(pc) = p {
                    self.pool.give(pc);
                }
                self.pool.give_sel(live);
                Ok(Col::Dense(out))
            }
            FuncName::Sign => {
                self.cov.hit(pt::EVAL_FUNC_SIGN);
                let v = self.eval(&args[0], sel)?;
                self.map1(v, sel, |v| {
                    if v.is_null() {
                        return Ok(Value::Null);
                    }
                    let x = match v.as_f64() {
                        Some(x) => x,
                        None if !strict => v.coerce_f64(),
                        None => return Err(Abort),
                    };
                    Ok(Value::Int(if x > 0.0 {
                        1
                    } else if x < 0.0 {
                        -1
                    } else {
                        0
                    }))
                })
            }
            FuncName::Instr => {
                self.cov.hit(pt::EVAL_FUNC_INSTR);
                let a = self.eval(&args[0], sel)?;
                let b = self.eval(&args[1], sel)?;
                self.map2(a, b, sel, |a, b| {
                    if a.is_null() || b.is_null() {
                        return Ok(Value::Null);
                    }
                    let hay = to_text_lane(a, strict)?;
                    let needle = to_text_lane(b, strict)?;
                    let pos = hay
                        .find(&needle)
                        .map(|byte| hay[..byte].chars().count() as i64 + 1)
                        .unwrap_or(0);
                    Ok(Value::Int(pos))
                })
            }
            FuncName::Substr => {
                self.cov.hit(pt::EVAL_FUNC_SUBSTR);
                let s = self.eval(&args[0], sel)?;
                let start = self.eval(&args[1], sel)?;
                // The length argument evaluates only for lanes where
                // neither the string nor the start is NULL.
                let mut live = self.pool.sel();
                for &lane in sel {
                    if !s.get(lane).is_null() && !start.get(lane).is_null() {
                        live.push(lane);
                    }
                }
                let take_col = if args.len() == 3 && !live.is_empty() {
                    Some(self.eval(&args[2], &live)?)
                } else {
                    None
                };
                let mut out = self.pool.vals(self.rows.len());
                for &lane in &live {
                    let text = to_text_lane(s.get(lane), strict)?;
                    let st = start.get(lane).as_i64().unwrap_or(1);
                    let chars: Vec<char> = text.chars().collect();
                    let len = chars.len() as i64;
                    let begin = if st > 0 {
                        st - 1
                    } else if st < 0 {
                        (len + st).max(0)
                    } else {
                        0
                    };
                    let take = match &take_col {
                        Some(tc) => match tc.get(lane) {
                            Value::Null => {
                                out[lane as usize] = Value::Null;
                                continue;
                            }
                            tv => tv.as_i64().unwrap_or(0).max(0),
                        },
                        None => len,
                    };
                    let begin = begin.clamp(0, len) as usize;
                    let end = (begin + take as usize).min(chars.len());
                    out[lane as usize] = Value::Text(chars[begin..end].iter().collect());
                }
                self.pool.give(s);
                self.pool.give(start);
                if let Some(tc) = take_col {
                    self.pool.give(tc);
                }
                self.pool.give_sel(live);
                Ok(Col::Dense(out))
            }
        }
    }

    /// Build a kernel operand: local columns fuse into direct row reads
    /// (their coverage hit and correlation record fire here, once —
    /// identical to the materialized load), everything else evaluates.
    fn operand(&mut self, e: &BoundExpr, sel: &[u32]) -> Result<Operand, Abort> {
        if let BoundExpr::Column(c) = e {
            if c.up == 0 {
                let index = c.index as usize;
                self.cov.hit(pt::EVAL_COLUMN_LOCAL);
                self.ctx.note_column_read(self.outer.len(), index);
                return Ok(Operand::ColRef(index));
            }
        }
        Ok(Operand::Mat(self.eval(e, sel)?))
    }

    fn release_operand(&mut self, op: Operand) {
        if let Operand::Mat(c) = op {
            self.pool.give(c);
        }
    }

    /// Apply a fallible per-lane map to one column.
    fn map1(
        &mut self,
        input: Col,
        sel: &[u32],
        mut f: impl FnMut(&Value) -> Result<Value, Abort>,
    ) -> Result<Col, Abort> {
        match input {
            Col::Const(v) => Ok(Col::Const(f(&v)?)),
            Col::Dense(vs) => {
                let mut out = self.pool.vals(self.rows.len());
                for &lane in sel {
                    out[lane as usize] = f(&vs[lane as usize])?;
                }
                self.pool.give_vals(vs);
                Ok(Col::Dense(out))
            }
        }
    }

    /// Apply a fallible per-lane map to a pair of columns.
    fn map2(
        &mut self,
        l: Col,
        r: Col,
        sel: &[u32],
        mut f: impl FnMut(&Value, &Value) -> Result<Value, Abort>,
    ) -> Result<Col, Abort> {
        if let (Col::Const(a), Col::Const(b)) = (&l, &r) {
            return Ok(Col::Const(f(a, b)?));
        }
        let mut out = self.pool.vals(self.rows.len());
        for &lane in sel {
            out[lane as usize] = f(l.get(lane), r.get(lane))?;
        }
        self.pool.give(l);
        self.pool.give(r);
        Ok(Col::Dense(out))
    }

    /// Move a column's values into `out` at the given lanes.
    fn scatter(&mut self, src: Col, lanes: &[u32], out: &mut [Value]) {
        match src {
            Col::Const(v) => {
                for &lane in lanes {
                    out[lane as usize] = v.clone();
                }
            }
            Col::Dense(mut vs) => {
                for &lane in lanes {
                    out[lane as usize] = std::mem::replace(&mut vs[lane as usize], Value::Null);
                }
                self.pool.give_vals(vs);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Chunk drivers (called from the executor).
// ---------------------------------------------------------------------------

/// Vectorized WHERE filter over one chunk: sets `keep[lane]` for passing
/// lanes and fires the exact filter/truthiness coverage. `false` means
/// the chunk must re-run row-at-a-time (an erroring lane, or a strict
/// truthiness error); nothing has been merged into the real coverage and
/// `keep` contents are unspecified in that case.
pub(crate) fn filter_chunk(
    pred: &BoundExpr,
    rows: &[Row],
    outer: &[Frame],
    ctx: &EngineCtx,
    info: ExprCtx,
    keep: &mut [bool],
) -> bool {
    debug_assert_eq!(rows.len(), keep.len());
    let scratch = Coverage::new();
    let mut pool = ctx.vec_pool.borrow_mut();
    let mut sel = pool.sel();
    sel.extend(0..rows.len() as u32);
    let mut ce = ChunkEval {
        ctx,
        cov: &scratch,
        rows,
        outer,
        info,
        pool: &mut pool,
    };
    let Ok(col) = ce.eval(pred, &sel) else {
        return false;
    };
    let strict = ctx.dialect.strict_types();
    let mut tf = TruthFlags::default();
    let (mut pass, mut dropped, mut nul) = (false, false, false);
    for &lane in &sel {
        let Ok(t) = truth_lane(col.get(lane), strict, &mut tf) else {
            return false;
        };
        match t {
            Some(true) => {
                pass = true;
                keep[lane as usize] = true;
            }
            Some(false) => dropped = true,
            None => nul = true,
        }
    }
    tf.fire(&scratch);
    if pass {
        scratch.hit(pt::EXEC_FILTER_PASS);
    }
    if dropped {
        scratch.hit(pt::EXEC_FILTER_DROP);
    }
    if nul {
        scratch.hit(pt::EXEC_FILTER_NULL);
    }
    pool.give(col);
    pool.give_sel(sel);
    ctx.cov.merge(&scratch);
    true
}

/// Vectorized projection over one chunk: evaluates every output
/// expression column-at-a-time, then assembles output rows. On success
/// the chunk's rows are appended to `out_rows` and coverage merged; on
/// `false` nothing was appended and the caller re-runs the chunk
/// row-at-a-time.
pub(crate) fn project_chunk(
    bounds: &[&BoundExpr],
    rows: &[Row],
    outer: &[Frame],
    ctx: &EngineCtx,
    info: ExprCtx,
    out_rows: &mut Vec<Row>,
) -> bool {
    let scratch = Coverage::new();
    let mut pool = ctx.vec_pool.borrow_mut();
    let mut sel = pool.sel();
    sel.extend(0..rows.len() as u32);
    let mut ce = ChunkEval {
        ctx,
        cov: &scratch,
        rows,
        outer,
        info,
        pool: &mut pool,
    };
    let mut cols = Vec::with_capacity(bounds.len());
    for b in bounds {
        match ce.eval(b, &sel) {
            Ok(c) => cols.push(c),
            Err(Abort) => return false,
        }
    }
    for lane in 0..rows.len() {
        let mut vals = Vec::with_capacity(cols.len());
        for c in &mut cols {
            vals.push(match c {
                Col::Const(v) => v.clone(),
                Col::Dense(vs) => std::mem::replace(&mut vs[lane], Value::Null),
            });
        }
        out_rows.push(Row::new(vals));
    }
    for c in cols {
        pool.give(c);
    }
    pool.give_sel(sel);
    ctx.cov.merge(&scratch);
    true
}

/// Evaluate one bound expression over a chunk, appending one value per
/// row to `out` in row order. Coverage goes to `scratch` — the caller
/// decides when (whether) to merge, which lets grouped execution make
/// its aggregate-argument pre-evaluation all-or-nothing.
pub(crate) fn eval_chunk_into(
    bound: &BoundExpr,
    rows: &[Row],
    outer: &[Frame],
    ctx: &EngineCtx,
    info: ExprCtx,
    scratch: &Coverage,
    out: &mut Vec<Value>,
) -> bool {
    let mut pool = ctx.vec_pool.borrow_mut();
    let mut sel = pool.sel();
    sel.extend(0..rows.len() as u32);
    let mut ce = ChunkEval {
        ctx,
        cov: scratch,
        rows,
        outer,
        info,
        pool: &mut pool,
    };
    let ok = match ce.eval(bound, &sel) {
        Ok(Col::Const(v)) => {
            out.extend(std::iter::repeat_with(|| v.clone()).take(rows.len()));
            true
        }
        Ok(Col::Dense(mut vs)) => {
            out.append(&mut vs);
            pool.give_vals(vs);
            true
        }
        Err(Abort) => false,
    };
    pool.give_sel(sel);
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugRegistry;

    #[test]
    fn classify_ast_rejects_subqueries_and_hooked_shapes() {
        let bugs = BugRegistry::none();
        let d = Dialect::Sqlite;
        let ok = Expr::and(
            Expr::eq(Expr::bare_col("a"), Expr::lit(1i64)),
            Expr::bin(BinaryOp::Gt, Expr::bare_col("b"), Expr::lit(2i64)),
        );
        assert!(classify_ast(&ok, &bugs, d, StmtKind::Select, 0).is_ok());
        assert_eq!(
            classify_ast(&Expr::count_star(), &bugs, d, StmtKind::Select, 0),
            Err("aggregate")
        );
        let mut hooked = BugRegistry::none();
        hooked.enable(BugId::TidbInValueListWhere);
        let in_list = Expr::InList {
            expr: Box::new(Expr::bare_col("a")),
            list: vec![Expr::lit(1i64)],
            negated: false,
        };
        assert!(classify_ast(&in_list, &bugs, d, StmtKind::Select, 0).is_ok());
        assert_eq!(
            classify_ast(&in_list, &hooked, d, StmtKind::Select, 0),
            Err("mutant-hooked IN list")
        );
    }

    #[test]
    fn classify_ast_rejects_mysql_dml_comparisons() {
        let bugs = BugRegistry::none();
        let cmp = Expr::eq(Expr::bare_col("a"), Expr::lit(1i64));
        assert!(classify_ast(&cmp, &bugs, Dialect::Mysql, StmtKind::Select, 0).is_ok());
        assert_eq!(
            classify_ast(&cmp, &bugs, Dialect::Mysql, StmtKind::Update, 0),
            Err("dialect DML comparison")
        );
    }
}
