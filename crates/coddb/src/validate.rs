//! Plan-IR verification: statically reject illegal plans before execution.
//!
//! The planner ([`crate::plan`]) promises a set of structural invariants to
//! the executor — seek probes justified by the WHERE clause, sort
//! elimination only when index order provably equals sorted order, hash
//! keys side-pure and prefix-closed, filters never pushed below the
//! null-padded side of an outer join. The executor *trusts* these
//! invariants; a planner defect therefore corrupts results silently. This
//! module re-derives each invariant from the plan tree and the catalog
//! alone — deliberately **without** consulting the bug registry, so a
//! mutant-corrupted plan cannot bless itself — and reports every breach as
//! a [`Violation`] with a stable invariant code.
//!
//! Three consumers:
//!
//! 1. debug builds assert a clean engine never plans a violation
//!    (hooked at the end of [`crate::plan::plan_select`], so every
//!    existing test and fuzz run sweeps the verifier for free),
//! 2. the `verify` campaign oracle (crates/core) flags violations as
//!    findings — catching planner mutants *without executing a row*,
//! 3. the validator differential suite pins which mutants are statically
//!    detectable and which are runtime-only.
//!
//! The checked invariants are enumerated in the crate docs
//! ("Plan invariants", [`crate`]).

use std::collections::BTreeSet;
use std::fmt;

use crate::ast::{BinaryOp, Expr, JoinKind, OrderItem, SelectItem, SortOrder};
use crate::bind::BoundExpr;
use crate::catalog::{Catalog, TableDef};
use crate::exec::Schema;
use crate::index::OrdIndex;
use crate::plan::{
    collect_aliases, conjoin, explain_full, refers_only_to, sargable, split_conjuncts, BodyPlan,
    CorePlan, FromPlan, SelectPlan, VecNote, MAX_SEEK_KEYS,
};
use crate::value::Value;

/// One invariant breach. `code` is a stable machine-readable identifier
/// (campaign findings and golden tests key on it); `detail` is the
/// human-readable specifics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub code: &'static str,
    pub detail: String,
}

impl Violation {
    fn new(code: &'static str, detail: impl Into<String>) -> Violation {
        Violation {
            code,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.detail)
    }
}

/// Verify every structural invariant of a planned statement. Returns all
/// breaches found (empty = the plan is well-formed). Pure: reads only the
/// plan tree and the catalog.
pub fn validate_plan(plan: &SelectPlan, catalog: &Catalog) -> Vec<Violation> {
    let mut out = Vec::new();
    check_select(plan, catalog, &mut out);
    check_explain(plan, catalog, &mut out);
    out
}

fn check_select(plan: &SelectPlan, catalog: &Catalog, out: &mut Vec<Violation>) {
    for (_, _, cte) in &plan.ctes {
        check_select(cte, catalog, out);
    }
    check_body(&plan.body, &plan.order_by, catalog, out);
}

fn check_body(
    body: &BodyPlan,
    order_by: &[OrderItem],
    catalog: &Catalog,
    out: &mut Vec<Violation>,
) {
    match body {
        BodyPlan::Core(core) => check_core(core, order_by, catalog, out),
        BodyPlan::SetOp { left, right, .. } => {
            // Sort elimination requires a bare core body: an ordered seek
            // inside a set-operation branch can never be legal, which the
            // empty ORDER BY context below enforces.
            check_body(left, &[], catalog, out);
            check_body(right, &[], catalog, out);
        }
        BodyPlan::Values(_) => {}
    }
}

/// Where a FROM node sits, for position-sensitive invariants.
#[derive(Clone, Copy, PartialEq)]
enum Pos {
    /// The root of a core's FROM tree.
    CoreRoot,
    /// Direct child of a join of the given kind.
    JoinChild(JoinKind),
    /// Anywhere else (e.g. under a pushed filter).
    Other,
}

fn check_core(
    core: &CorePlan,
    order_by: &[OrderItem],
    catalog: &Catalog,
    out: &mut Vec<Violation>,
) {
    let Some(from) = &core.from else { return };
    if let FromPlan::IndexSeek {
        table,
        alias,
        index,
        eq,
        range,
        ordered,
        reverse,
    } = from
    {
        check_seek(
            SeekView {
                table,
                alias,
                index,
                eq,
                range: range.as_ref(),
                ordered: *ordered,
                reverse: *reverse,
            },
            core,
            order_by,
            catalog,
            out,
        );
    }
    check_from(from, Pos::CoreRoot, catalog, out);
}

fn check_from(from: &FromPlan, pos: Pos, catalog: &Catalog, out: &mut Vec<Violation>) {
    match from {
        FromPlan::SeqScan { .. } | FromPlan::ValuesScan { .. } | FromPlan::CteScan { .. } => {}
        FromPlan::IndexScan { table, index, .. } => match catalog.index(index) {
            None => out.push(Violation::new(
                "seek-index-missing",
                format!("INDEX SCAN references unknown index {index}"),
            )),
            Some(def) if !def.table.eq_ignore_ascii_case(table) => {
                out.push(Violation::new(
                    "seek-index-wrong-table",
                    format!(
                        "INDEX SCAN of {table} uses index {index} of table {}",
                        def.table
                    ),
                ));
            }
            Some(_) => {}
        },
        FromPlan::IndexSeek { table, index, .. } => {
            // Seeks only upgrade a core's root scan; the WHERE-clause
            // justification (checked in `check_seek`) is meaningless
            // anywhere else in the tree.
            if pos != Pos::CoreRoot {
                out.push(Violation::new(
                    "seek-position",
                    format!("INDEX SEEK of {table} USING {index} below the FROM root"),
                ));
            }
        }
        FromPlan::Derived { plan, .. } => check_select(plan, catalog, out),
        FromPlan::Filtered { input, pred, .. } => {
            match pos {
                // A pushed filter is legal only directly below an
                // inner/cross join: pushing below the preserved or
                // null-padded side of an outer join changes semantics
                // (exactly the `DuckdbPushdownLeftJoin` corruption).
                Pos::JoinChild(JoinKind::Inner) | Pos::JoinChild(JoinKind::Cross) => {}
                _ => out.push(Violation::new(
                    "filter-position",
                    format!("pushed filter `{pred}` outside an inner/cross join child"),
                )),
            }
            let mut aliases = BTreeSet::new();
            collect_aliases(input, &mut aliases);
            if !refers_only_to(pred, &aliases) {
                out.push(Violation::new(
                    "filter-scope",
                    format!("pushed filter `{pred}` reads outside its input subtree"),
                ));
            }
            check_from(input, Pos::Other, catalog, out);
        }
        FromPlan::Join {
            kind,
            on,
            hash_keys,
            residual,
            left,
            right,
        } => {
            check_hash_join(on.as_ref(), hash_keys, residual.as_ref(), left, right, out);
            check_from(left, Pos::JoinChild(*kind), catalog, out);
            check_from(right, Pos::JoinChild(*kind), catalog, out);
        }
    }
}

/// Hash-join legality: keys side-pure over disjoint alias sets, keys a
/// prefix of the ON conjunction (AND short-circuits in conjunct order),
/// residual exactly the remaining conjuncts and free of subqueries.
fn check_hash_join(
    on: Option<&Expr>,
    hash_keys: &[(Expr, Expr)],
    residual: Option<&Expr>,
    left: &FromPlan,
    right: &FromPlan,
    out: &mut Vec<Violation>,
) {
    if hash_keys.is_empty() {
        if residual.is_some() {
            out.push(Violation::new(
                "join-residual-orphan",
                "residual predicate without hash keys",
            ));
        }
        return;
    }
    let Some(on) = on else {
        out.push(Violation::new(
            "join-hash-prefix",
            "hash keys recognized without an ON predicate",
        ));
        return;
    };
    let mut left_aliases = BTreeSet::new();
    let mut right_aliases = BTreeSet::new();
    collect_aliases(left, &mut left_aliases);
    collect_aliases(right, &mut right_aliases);
    if !left_aliases.is_disjoint(&right_aliases) {
        out.push(Violation::new(
            "join-hash-sides",
            "hash join over inputs with overlapping alias sets",
        ));
        return;
    }
    for (l, r) in hash_keys {
        if !refers_only_to(l, &left_aliases) || !refers_only_to(r, &right_aliases) {
            out.push(Violation::new(
                "join-hash-sides",
                format!("hash key pair `{l}` = `{r}` is not side-pure"),
            ));
        }
    }
    let conjs = split_conjuncts(on);
    if conjs.len() < hash_keys.len() {
        out.push(Violation::new(
            "join-hash-prefix",
            format!(
                "{} hash key(s) from a {}-conjunct ON predicate",
                hash_keys.len(),
                conjs.len()
            ),
        ));
        return;
    }
    for (conj, (kl, kr)) in conjs.iter().zip(hash_keys.iter()) {
        let matches_pair = match conj {
            Expr::Binary {
                op: BinaryOp::Eq,
                left: cl,
                right: cr,
            } => {
                (cl.as_ref() == kl && cr.as_ref() == kr) || (cl.as_ref() == kr && cr.as_ref() == kl)
            }
            _ => false,
        };
        if !matches_pair {
            out.push(Violation::new(
                "join-hash-prefix",
                format!("ON conjunct `{conj}` does not justify hash key `{kl}` = `{kr}`"),
            ));
        }
    }
    let rest: Vec<Expr> = conjs.into_iter().skip(hash_keys.len()).collect();
    if conjoin(rest).as_ref() != residual {
        out.push(Violation::new(
            "join-hash-prefix",
            "residual predicate differs from the unconsumed ON conjuncts",
        ));
    }
    if residual.is_some_and(|r| r.contains_subquery()) {
        out.push(Violation::new(
            "join-residual-subquery",
            "hash-join residual contains a subquery",
        ));
    }
}

/// Borrowed view of one `FromPlan::IndexSeek`.
struct SeekView<'a> {
    table: &'a str,
    alias: &'a str,
    index: &'a str,
    eq: &'a [Value],
    range: Option<&'a (BinaryOp, Value)>,
    ordered: bool,
    reverse: bool,
}

/// Re-derive the seek's justification: the consumed key prefix must be
/// exactly what the WHERE clause's leading conjuncts probe (same columns,
/// same comparison operators, same literals), within the engine's key
/// budget, over a physical index of the scanned table.
fn check_seek(
    seek: SeekView,
    core: &CorePlan,
    order_by: &[OrderItem],
    catalog: &Catalog,
    out: &mut Vec<Violation>,
) {
    let Some(def) = catalog.index(seek.index) else {
        out.push(Violation::new(
            "seek-index-missing",
            format!("INDEX SEEK references unknown index {}", seek.index),
        ));
        return;
    };
    if !def.table.eq_ignore_ascii_case(seek.table) {
        out.push(Violation::new(
            "seek-index-wrong-table",
            format!(
                "INDEX SEEK of {} uses index {} of table {}",
                seek.table, seek.index, def.table
            ),
        ));
        return;
    }
    let Some(data) = &def.data else {
        out.push(Violation::new(
            "seek-index-unphysical",
            format!("INDEX SEEK over expression index {}", seek.index),
        ));
        return;
    };
    let Ok(t) = catalog.table(seek.table) else {
        out.push(Violation::new(
            "seek-index-missing",
            format!("INDEX SEEK of unknown table {}", seek.table),
        ));
        return;
    };
    let consumed = seek.eq.len() + usize::from(seek.range.is_some());
    if consumed > MAX_SEEK_KEYS || consumed > data.cols.len() {
        out.push(Violation::new(
            "seek-key-overflow",
            format!(
                "{consumed} consumed key(s), budget {MAX_SEEK_KEYS}, index has {}",
                data.cols.len()
            ),
        ));
        return;
    }
    if consumed == 0 && !seek.ordered {
        out.push(Violation::new(
            "seek-empty",
            "unordered seek consuming no key columns",
        ));
    }
    if seek
        .eq
        .iter()
        .chain(seek.range.iter().map(|(_, v)| v))
        .any(Value::is_null)
    {
        out.push(Violation::new("seek-null-probe", "NULL seek probe value"));
    }
    if let Some((op, _)) = seek.range {
        if !matches!(
            op,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        ) {
            out.push(Violation::new(
                "seek-range-op",
                format!("range probe with non-comparison operator {op:?}"),
            ));
        }
    }

    // The consumed conjuncts stay in the WHERE clause (the seek is a
    // pre-filter, not a substitute), so the plan itself carries its own
    // justification: leading conjunct j must probe key column j with the
    // seek's exact operator and literal.
    let conjs = core
        .where_clause
        .as_ref()
        .map(split_conjuncts)
        .unwrap_or_default();
    if conjs.len() < consumed {
        out.push(Violation::new(
            "seek-prefix-mismatch",
            format!(
                "seek consumes {consumed} conjunct(s) but WHERE has {}",
                conjs.len()
            ),
        ));
    } else {
        let key_col = |j: usize| -> Option<&str> {
            data.cols
                .get(j)
                .and_then(|&c| t.columns.get(c))
                .map(|c| c.name.as_str())
        };
        for (j, val) in seek.eq.iter().enumerate() {
            let justified = matches!(
                (sargable(&conjs[j], seek.alias), key_col(j)),
                (Some((col, BinaryOp::Eq, v)), Some(key)) if v == *val && key.eq_ignore_ascii_case(&col)
            );
            if !justified {
                out.push(Violation::new(
                    "seek-prefix-mismatch",
                    format!(
                        "eq probe {val:?} on key column {j} is not justified by conjunct `{}`",
                        conjs[j]
                    ),
                ));
            }
        }
        if let Some((rop, rv)) = seek.range {
            let j = seek.eq.len();
            let justified = matches!(
                (sargable(&conjs[j], seek.alias), key_col(j)),
                (Some((col, op, v)), Some(key))
                    if op == *rop && v == *rv && key.eq_ignore_ascii_case(&col)
            );
            if !justified {
                out.push(Violation::new(
                    "seek-prefix-mismatch",
                    format!(
                        "range probe {rop:?} {rv:?} on key column {j} is not justified by conjunct `{}`",
                        conjs[j]
                    ),
                ));
            }
        }
    }

    if seek.ordered {
        match sort_elim_legal(core, order_by, consumed, conjs.len(), t, data) {
            Err(reason) => out.push(Violation::new(
                "sort-elim-illegal",
                format!("ordered seek USING {}: {reason}", seek.index),
            )),
            Ok(desc) => {
                if seek.reverse != desc {
                    out.push(Violation::new(
                        "sort-elim-direction",
                        format!(
                            "ORDER BY is {} but the ordered seek emits {}",
                            if desc { "DESC" } else { "ASC" },
                            if seek.reverse {
                                "descending"
                            } else {
                                "ascending"
                            },
                        ),
                    ));
                }
            }
        }
    } else if seek.reverse {
        out.push(Violation::new(
            "sort-elim-direction",
            "reverse emission on an unordered seek",
        ));
    }
}

/// Re-derive the sort-elimination decision: emission order provably equals
/// sorted order. Returns the required direction (`true` = DESC) or the
/// reason the elimination is illegal. Mirrors the legality rules of
/// `plan::eliminate_sort` but is derived independently from the plan tree.
fn sort_elim_legal(
    core: &CorePlan,
    order_by: &[OrderItem],
    consumed: usize,
    total_conjuncts: usize,
    t: &TableDef,
    data: &OrdIndex,
) -> Result<bool, String> {
    if order_by.is_empty() {
        return Err("no ORDER BY to eliminate".into());
    }
    if !core.group_by.is_empty()
        || core.having.is_some()
        || core.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
    {
        return Err("grouping or aggregation re-orders emission".into());
    }
    if consumed != total_conjuncts {
        return Err(format!(
            "residual WHERE work ({total_conjuncts} conjunct(s), {consumed} consumed)"
        ));
    }
    let desc = order_by[0].order == SortOrder::Desc;
    if order_by
        .iter()
        .any(|o| (o.order == SortOrder::Desc) != desc)
    {
        return Err("mixed sort directions".into());
    }
    let mut key_names = Vec::with_capacity(order_by.len());
    for o in order_by {
        match &o.expr {
            Expr::Column(c) if c.table.is_none() => key_names.push(c.column.as_str()),
            other => return Err(format!("non-bare sort key `{other}`")),
        }
    }
    // The output-name table the executor's sort would resolve against.
    let outputs: Vec<(&str, usize)> =
        if core.items.len() == 1 && matches!(core.items[0], SelectItem::Wildcard) {
            t.columns
                .iter()
                .enumerate()
                .map(|(i, c)| (c.name.as_str(), i))
                .collect()
        } else {
            let mut outs = Vec::with_capacity(core.items.len());
            for item in &core.items {
                let SelectItem::Expr { expr, alias } = item else {
                    return Err("non-column output item".into());
                };
                let Expr::Column(c) = expr else {
                    return Err(format!("non-column output item `{expr}`"));
                };
                if c.table.is_some() {
                    return Err(format!("qualified output column `{expr}`"));
                }
                let Some(ord) = t.column_index(&c.column) else {
                    return Err(format!("output column `{expr}` not in table"));
                };
                outs.push((alias.as_deref().unwrap_or(c.column.as_str()), ord));
            }
            outs
        };
    let mut ordinals = Vec::with_capacity(key_names.len());
    for name in &key_names {
        let Some((_, ord)) = outputs.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)) else {
            return Err(format!("sort key `{name}` not in the output-name table"));
        };
        ordinals.push(*ord);
    }
    if ordinals != data.cols {
        return Err(format!(
            "sort ordinals {ordinals:?} differ from index key columns {:?}",
            data.cols
        ));
    }
    Ok(desc)
}

// ---------------------------------------------------------------------------
// EXPLAIN faithfulness
// ---------------------------------------------------------------------------

#[derive(Default)]
struct OpCounts {
    seeks: usize,
    index_scans: usize,
    hash_joins: usize,
    nested_loops: usize,
    pushed_filters: usize,
    ctes: usize,
    sorts: usize,
}

/// Every plan operator must surface in the rendered EXPLAIN: a dropped
/// line means the annotation lies about the physical plan. Rendered counts
/// may *exceed* the walk (SQL text literals can contain operator-shaped
/// text), so only under-rendering is a violation.
fn check_explain(plan: &SelectPlan, catalog: &Catalog, out: &mut Vec<Violation>) {
    let text = explain_full(plan, true, Some(catalog), VecNote::Off);
    let mut want = OpCounts::default();
    count_select(plan, &mut want);
    let rendered = |prefix: &str| {
        text.lines()
            .filter(|l| l.trim_start().starts_with(prefix))
            .count()
    };
    let checks: [(&str, usize); 7] = [
        ("INDEX SEEK ", want.seeks),
        ("INDEX SCAN ", want.index_scans),
        ("HASH (", want.hash_joins),
        ("NESTED LOOP", want.nested_loops),
        ("PUSHED FILTER ", want.pushed_filters),
        ("MATERIALIZE CTE ", want.ctes),
        ("SORT (", want.sorts),
    ];
    for (prefix, expected) in checks {
        let got = rendered(prefix);
        if got < expected {
            out.push(Violation::new(
                "explain-missing-op",
                format!("EXPLAIN renders {got} `{prefix}` line(s), plan has {expected}"),
            ));
        }
    }
}

fn count_select(plan: &SelectPlan, c: &mut OpCounts) {
    c.ctes += plan.ctes.len();
    for (_, _, cte) in &plan.ctes {
        count_select(cte, c);
    }
    if !plan.order_by.is_empty() {
        c.sorts += 1;
    }
    count_body(&plan.body, c);
}

fn count_body(body: &BodyPlan, c: &mut OpCounts) {
    match body {
        BodyPlan::Core(core) => {
            if let Some(f) = &core.from {
                count_from(f, c);
            }
        }
        BodyPlan::SetOp { left, right, .. } => {
            count_body(left, c);
            count_body(right, c);
        }
        BodyPlan::Values(_) => {}
    }
}

fn count_from(from: &FromPlan, c: &mut OpCounts) {
    match from {
        FromPlan::SeqScan { .. } | FromPlan::ValuesScan { .. } | FromPlan::CteScan { .. } => {}
        FromPlan::IndexScan { .. } => c.index_scans += 1,
        FromPlan::IndexSeek { .. } => c.seeks += 1,
        FromPlan::Derived { plan, .. } => count_select(plan, c),
        FromPlan::Filtered { input, .. } => {
            c.pushed_filters += 1;
            count_from(input, c);
        }
        FromPlan::Join {
            hash_keys,
            left,
            right,
            ..
        } => {
            if hash_keys.is_empty() {
                c.nested_loops += 1;
            } else {
                c.hash_joins += 1;
            }
            count_from(left, c);
            count_from(right, c);
        }
    }
}

// ---------------------------------------------------------------------------
// Bound-form verification
// ---------------------------------------------------------------------------

/// Verify a bound expression against its binder scopes: every resolved
/// column (and recorded collision alternative) must point inside the scope
/// stack, and aggregate slots must index the per-group value table
/// (`agg_slots`; `None` = aggregates are illegal in this clause). Scopes
/// are outermost-first, exactly as handed to [`crate::bind::Binder::new`].
pub fn validate_bound(
    bound: &BoundExpr,
    scopes: &[&Schema],
    agg_slots: Option<usize>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    walk_bound(bound, scopes, agg_slots, &mut out);
    out
}

fn check_hop(up: u16, index: u16, scopes: &[&Schema], what: &str, out: &mut Vec<Violation>) {
    // `up` counts hops from the innermost frame; scopes are outermost-first.
    let Some(frame) = scopes.iter().rev().nth(up as usize) else {
        out.push(Violation::new(
            "bound-scope-hop",
            format!(
                "{what} hops {up} scope(s) up, only {} in scope",
                scopes.len()
            ),
        ));
        return;
    };
    if (index as usize) >= frame.cols.len() {
        out.push(Violation::new(
            "bound-ordinal",
            format!(
                "{what} ordinal {index} out of range for a {}-column frame",
                frame.cols.len()
            ),
        ));
    }
}

fn walk_bound(
    bound: &BoundExpr,
    scopes: &[&Schema],
    agg_slots: Option<usize>,
    out: &mut Vec<Violation>,
) {
    let mut rec = |e: &BoundExpr| walk_bound(e, scopes, agg_slots, out);
    match bound {
        BoundExpr::Literal(_) => {}
        BoundExpr::Column(c) => {
            check_hop(c.up, c.index, scopes, "bound column", out);
            if let Some((up, index)) = c.collision_alt {
                check_hop(up, index, scopes, "collision alternative", out);
            }
        }
        BoundExpr::Unary { expr, .. }
        | BoundExpr::Cast { expr, .. }
        | BoundExpr::IsNull { expr, .. } => rec(expr),
        BoundExpr::Binary { left, right, .. } => {
            rec(left);
            rec(right);
        }
        BoundExpr::Between {
            expr, low, high, ..
        } => {
            rec(expr);
            rec(low);
            rec(high);
        }
        BoundExpr::InList { expr, list, .. } => {
            rec(expr);
            list.iter().for_each(rec);
        }
        // Subquery bodies stay AST; they are planned, bound, and verified
        // lazily at evaluation time.
        BoundExpr::InSubquery { expr, .. } => rec(expr),
        BoundExpr::Exists { .. } | BoundExpr::Scalar { .. } => {}
        BoundExpr::Quantified { expr, .. } => rec(expr),
        BoundExpr::Case {
            operand,
            whens,
            else_expr,
            ..
        } => {
            if let Some(o) = operand {
                rec(o);
            }
            for (w, t) in whens {
                rec(w);
                rec(t);
            }
            if let Some(e) = else_expr {
                rec(e);
            }
        }
        BoundExpr::Like { expr, pattern, .. } => {
            rec(expr);
            rec(pattern);
        }
        BoundExpr::Func { args, .. } => args.iter().for_each(rec),
        BoundExpr::Agg { slot, .. } => match agg_slots {
            None => out.push(Violation::new(
                "bound-agg-slot",
                "aggregate in a non-aggregate clause",
            )),
            Some(n) if (*slot as usize) >= n => out.push(Violation::new(
                "bound-agg-slot",
                format!("aggregate slot {slot} out of range for {n} spec(s)"),
            )),
            Some(_) => {}
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ColumnDef, ColumnRef};
    use crate::bind::BoundColumn;
    use crate::bugs::BugRegistry;
    use crate::coverage::Coverage;
    use crate::exec::ColMeta;
    use crate::plan::{plan_select, PlanCtx};
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let col = |n: &str| ColumnDef {
            name: n.into(),
            ty: DataType::Int,
            not_null: false,
        };
        c.create_table("t", vec![col("k"), col("v")], false)
            .unwrap();
        c.create_index(
            "ik",
            "t",
            vec![Expr::Column(ColumnRef {
                table: None,
                column: "k".into(),
            })],
            false,
        )
        .unwrap();
        c
    }

    fn plan(catalog: &Catalog, sql: &str) -> SelectPlan {
        let q = crate::parser::parse_select(sql).unwrap();
        let bugs = BugRegistry::none();
        let cov = Coverage::new();
        let pctx = PlanCtx {
            catalog,
            dialect: crate::Dialect::Sqlite,
            bugs: &bugs,
            cov: &cov,
            optimize: true,
        };
        plan_select(&q, &pctx, &BTreeSet::new()).unwrap()
    }

    fn codes(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.code).collect()
    }

    fn root_from(plan: &mut SelectPlan) -> &mut FromPlan {
        match &mut plan.body {
            BodyPlan::Core(core) => core.from.as_mut().unwrap(),
            _ => panic!("expected core body"),
        }
    }

    #[test]
    fn clean_plans_validate() {
        let c = catalog();
        for sql in [
            "SELECT v FROM t WHERE k >= 2",
            "SELECT v FROM t WHERE k = 1 AND v > 0",
            "SELECT k FROM t ORDER BY k DESC",
            "SELECT * FROM t a JOIN t b ON a.k = b.k AND a.v < b.v WHERE a.v > 0",
            "SELECT (SELECT MAX(v) FROM t) FROM t GROUP BY k",
        ] {
            let p = plan(&c, sql);
            assert!(validate_plan(&p, &c).is_empty(), "false positive on {sql}");
        }
    }

    #[test]
    fn tightened_range_bound_is_rejected() {
        let c = catalog();
        let mut p = plan(&c, "SELECT v FROM t WHERE k >= 2");
        match root_from(&mut p) {
            FromPlan::IndexSeek { range, .. } => {
                let (_, v) = range.take().unwrap();
                *range = Some((BinaryOp::Gt, v)); // WHERE says >=
            }
            other => panic!("expected a range seek, got {other:?}"),
        }
        assert!(codes(&validate_plan(&p, &c)).contains(&"seek-prefix-mismatch"));
    }

    #[test]
    fn mangled_eq_probe_is_rejected() {
        let c = catalog();
        let mut p = plan(&c, "SELECT v FROM t WHERE k = 2");
        match root_from(&mut p) {
            FromPlan::IndexSeek { eq, .. } => eq[0] = Value::Int(3),
            other => panic!("expected an eq seek, got {other:?}"),
        }
        assert!(codes(&validate_plan(&p, &c)).contains(&"seek-prefix-mismatch"));
    }

    #[test]
    fn key_budget_overflow_is_rejected() {
        let c = catalog();
        let mut p = plan(&c, "SELECT v FROM t WHERE k = 2");
        match root_from(&mut p) {
            FromPlan::IndexSeek { eq, .. } => {
                eq.extend([Value::Int(3), Value::Int(4)]);
            }
            other => panic!("expected an eq seek, got {other:?}"),
        }
        assert!(codes(&validate_plan(&p, &c)).contains(&"seek-key-overflow"));
    }

    #[test]
    fn wrong_sort_direction_is_rejected() {
        let c = catalog();
        let mut p = plan(&c, "SELECT k FROM t ORDER BY k DESC");
        match root_from(&mut p) {
            FromPlan::IndexSeek {
                ordered, reverse, ..
            } => {
                assert!(*ordered && *reverse, "expected a reverse ordered seek");
                *reverse = false; // ORDER BY is DESC
            }
            other => panic!("expected an ordered seek, got {other:?}"),
        }
        assert!(codes(&validate_plan(&p, &c)).contains(&"sort-elim-direction"));
    }

    #[test]
    fn filter_pushed_below_outer_join_is_rejected() {
        let c = catalog();
        let mut p = plan(&c, "SELECT * FROM t a JOIN t b ON a.k = b.k WHERE a.v > 0");
        match root_from(&mut p) {
            FromPlan::Join { kind, left, .. } => {
                assert!(
                    matches!(**left, FromPlan::Filtered { .. }),
                    "expected the WHERE conjunct pushed into the left child"
                );
                *kind = JoinKind::Left;
            }
            other => panic!("expected a join, got {other:?}"),
        }
        assert!(codes(&validate_plan(&p, &c)).contains(&"filter-position"));
    }

    #[test]
    fn seek_below_a_join_is_rejected() {
        let c = catalog();
        let mut p = plan(&c, "SELECT v FROM t WHERE k >= 2");
        let from = root_from(&mut p);
        let seek = std::mem::replace(
            from,
            FromPlan::SeqScan {
                table: "t".into(),
                alias: "t2".into(),
            },
        );
        *from = FromPlan::Join {
            kind: JoinKind::Cross,
            on: None,
            hash_keys: Vec::new(),
            residual: None,
            left: Box::new(seek),
            right: Box::new(FromPlan::SeqScan {
                table: "t".into(),
                alias: "t2".into(),
            }),
        };
        assert!(codes(&validate_plan(&p, &c)).contains(&"seek-position"));
    }

    #[test]
    fn dropped_hash_residual_is_rejected() {
        let c = catalog();
        let mut p = plan(&c, "SELECT * FROM t a JOIN t b ON a.k = b.k AND a.v < b.v");
        match root_from(&mut p) {
            FromPlan::Join {
                hash_keys,
                residual,
                ..
            } => {
                assert!(!hash_keys.is_empty() && residual.is_some());
                *residual = None; // the unconsumed conjunct vanishes
            }
            other => panic!("expected a hash join, got {other:?}"),
        }
        assert!(codes(&validate_plan(&p, &c)).contains(&"join-hash-prefix"));
    }

    fn schema(n: usize) -> Schema {
        Schema {
            cols: (0..n)
                .map(|i| ColMeta {
                    table: None,
                    name: format!("c{i}"),
                    from_view: false,
                    from_cte: false,
                })
                .collect(),
        }
    }

    #[test]
    fn bound_column_bounds_are_checked() {
        let s = schema(2);
        let scopes: Vec<&Schema> = vec![&s];
        let col = |up, index| {
            BoundExpr::Column(BoundColumn {
                up,
                index,
                collision_alt: None,
            })
        };
        assert!(validate_bound(&col(0, 1), &scopes, None).is_empty());
        assert_eq!(
            codes(&validate_bound(&col(0, 5), &scopes, None)),
            ["bound-ordinal"]
        );
        assert_eq!(
            codes(&validate_bound(&col(2, 0), &scopes, None)),
            ["bound-scope-hop"]
        );
        let alt = BoundExpr::Column(BoundColumn {
            up: 0,
            index: 0,
            collision_alt: Some((3, 0)),
        });
        assert_eq!(
            codes(&validate_bound(&alt, &scopes, None)),
            ["bound-scope-hop"]
        );
    }

    #[test]
    fn aggregate_slots_are_checked() {
        let s = schema(1);
        let scopes: Vec<&Schema> = vec![&s];
        let agg = BoundExpr::Agg {
            slot: 2,
            func: crate::ast::AggFunc::Sum,
            distinct: false,
        };
        assert_eq!(
            codes(&validate_bound(&agg, &scopes, None)),
            ["bound-agg-slot"]
        );
        assert_eq!(
            codes(&validate_bound(&agg, &scopes, Some(2))),
            ["bound-agg-slot"]
        );
        assert!(validate_bound(&agg, &scopes, Some(3)).is_empty());
    }
}
