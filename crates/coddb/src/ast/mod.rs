//! SQL abstract syntax tree.
//!
//! The AST is the lingua franca of the whole reproduction: `sqlgen` builds
//! random statements over it, the CODDTest oracle rewrites it (constant
//! propagation replaces a sub-expression node, exactly like the paper's
//! SQLancer implementation swaps AST child nodes), and CoddDB plans and
//! executes it. [`display`] renders SQL text and [`crate::parser`] parses it
//! back; the two round-trip.

pub mod display;
pub mod visit;

use crate::value::{DataType, Value};

/// A possibly-qualified column reference (`t0.c0` or `c0`).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    pub table: Option<String>,
    pub column: String,
}

impl ColumnRef {
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Binary operators. `Is`/`IsNot` are null-safe equality (SQLite `IS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Is,
    IsNot,
}

impl BinaryOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod
        )
    }
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }
}

/// Comparison operator for quantified comparisons (`= ANY`, `> ALL`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CompareOp {
    pub fn as_binary(self) -> BinaryOp {
        match self {
            CompareOp::Eq => BinaryOp::Eq,
            CompareOp::Ne => BinaryOp::Ne,
            CompareOp::Lt => BinaryOp::Lt,
            CompareOp::Le => BinaryOp::Le,
            CompareOp::Gt => BinaryOp::Gt,
            CompareOp::Ge => BinaryOp::Ge,
        }
    }
}

/// `ANY` / `ALL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    Any,
    All,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    CountStar,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Total,
}

impl AggFunc {
    pub fn sql_name(self) -> &'static str {
        match self {
            AggFunc::CountStar | AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Total => "TOTAL",
        }
    }
}

/// Scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuncName {
    Length,
    Abs,
    Upper,
    Lower,
    Coalesce,
    Nullif,
    Iif,
    Typeof,
    Version,
    Round,
    Sign,
    Instr,
    Substr,
}

impl FuncName {
    pub fn sql_name(self) -> &'static str {
        match self {
            FuncName::Length => "LENGTH",
            FuncName::Abs => "ABS",
            FuncName::Upper => "UPPER",
            FuncName::Lower => "LOWER",
            FuncName::Coalesce => "COALESCE",
            FuncName::Nullif => "NULLIF",
            FuncName::Iif => "IIF",
            FuncName::Typeof => "TYPEOF",
            FuncName::Version => "VERSION",
            FuncName::Round => "ROUND",
            FuncName::Sign => "SIGN",
            FuncName::Instr => "INSTR",
            FuncName::Substr => "SUBSTR",
        }
    }

    pub fn parse(name: &str) -> Option<FuncName> {
        match name.to_ascii_uppercase().as_str() {
            "LENGTH" => Some(FuncName::Length),
            "ABS" => Some(FuncName::Abs),
            "UPPER" => Some(FuncName::Upper),
            "LOWER" => Some(FuncName::Lower),
            "COALESCE" => Some(FuncName::Coalesce),
            "NULLIF" => Some(FuncName::Nullif),
            "IIF" => Some(FuncName::Iif),
            "TYPEOF" | "PG_TYPEOF" => Some(FuncName::Typeof),
            "VERSION" => Some(FuncName::Version),
            "ROUND" => Some(FuncName::Round),
            "SIGN" => Some(FuncName::Sign),
            "INSTR" => Some(FuncName::Instr),
            "SUBSTR" | "SUBSTRING" => Some(FuncName::Substr),
            _ => None,
        }
    }
}

/// SQL scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    Column(ColumnRef),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        query: Box<Select>,
        negated: bool,
    },
    Exists {
        query: Box<Select>,
        negated: bool,
    },
    /// Scalar subquery — must return at most one row and exactly one column.
    Scalar(Box<Select>),
    /// `expr op ANY/ALL (subquery)`.
    Quantified {
        op: CompareOp,
        quantifier: Quantifier,
        expr: Box<Expr>,
        query: Box<Select>,
    },
    Case {
        operand: Option<Box<Expr>>,
        whens: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    Func {
        func: FuncName,
        args: Vec<Expr>,
    },
    Agg {
        func: AggFunc,
        arg: Option<Box<Expr>>,
        distinct: bool,
    },
    Cast {
        expr: Box<Expr>,
        ty: DataType,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
}

impl Expr {
    // -- ergonomic constructors ------------------------------------------
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }
    pub fn null() -> Expr {
        Expr::Literal(Value::Null)
    }
    pub fn col(table: impl Into<String>, column: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::new(table, column))
    }
    pub fn bare_col(column: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::bare(column))
    }
    pub fn bin(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::bin(BinaryOp::And, left, right)
    }
    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::bin(BinaryOp::Or, left, right)
    }
    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::bin(BinaryOp::Eq, left, right)
    }
    #[allow(clippy::should_implement_trait)] // SQL NOT, not std::ops::Not
    pub fn not(expr: Expr) -> Expr {
        Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(expr),
        }
    }
    pub fn is_null(expr: Expr) -> Expr {
        Expr::IsNull {
            expr: Box::new(expr),
            negated: false,
        }
    }
    pub fn count_star() -> Expr {
        Expr::Agg {
            func: AggFunc::CountStar,
            arg: None,
            distinct: false,
        }
    }

    /// Does this expression tree contain an aggregate call (outside of
    /// subqueries, which establish their own aggregation scope)?
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        visit::walk_expr_shallow(self, &mut |e| {
            if matches!(e, Expr::Agg { .. }) {
                found = true;
            }
        });
        found
    }

    /// Does this expression tree contain any subquery (at any depth)?
    pub fn contains_subquery(&self) -> bool {
        let mut found = false;
        visit::walk_expr_deep(self, &mut |e| {
            if matches!(
                e,
                Expr::Scalar(_)
                    | Expr::Exists { .. }
                    | Expr::InSubquery { .. }
                    | Expr::Quantified { .. }
            ) {
                found = true;
            }
        });
        found
    }

    /// Is this a constant expression: no column references and no
    /// subqueries anywhere in the tree?
    pub fn is_constant(&self) -> bool {
        let mut constant = true;
        visit::walk_expr_deep(self, &mut |e| match e {
            Expr::Column(_) | Expr::Agg { .. } => constant = false,
            Expr::Scalar(_)
            | Expr::Exists { .. }
            | Expr::InSubquery { .. }
            | Expr::Quantified { .. } => constant = false,
            Expr::Func {
                func: FuncName::Version,
                ..
            } => {
                // VERSION() is constant per-session but we treat it as
                // opaque so the planner never folds it (mirrors MySQL
                // marking it non-deterministic for caching purposes).
                constant = false;
            }
            _ => {}
        });
        constant
    }

    /// Collect every column reference in this expression, excluding those
    /// inside subqueries (which may bind to the subquery's own FROM).
    pub fn shallow_column_refs(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        visit::walk_expr_shallow(self, &mut |e| {
            if let Expr::Column(c) = e {
                out.push(c.clone());
            }
        });
        out
    }
}

/// One projection item of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    TableWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// `ASC` / `DESC`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    Asc,
    Desc,
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub order: SortOrder,
}

/// Join kinds. `Cross` has no `ON` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
}

impl JoinKind {
    pub fn sql_name(self) -> &'static str {
        match self {
            JoinKind::Inner => "INNER JOIN",
            JoinKind::Left => "LEFT JOIN",
            JoinKind::Right => "RIGHT JOIN",
            JoinKind::Full => "FULL OUTER JOIN",
            JoinKind::Cross => "CROSS JOIN",
        }
    }
}

/// A table expression in a FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableExpr {
    /// A named table, view or CTE reference.
    Named {
        name: String,
        alias: Option<String>,
        indexed_by: Option<String>,
    },
    /// `(SELECT ...) AS alias`.
    Derived { query: Box<Select>, alias: String },
    /// `(VALUES (...), (...)) AS alias (c0, c1)` — a table value
    /// constructor, the folded-relation shape of §3.4.
    Values {
        rows: Vec<Vec<Expr>>,
        alias: String,
        columns: Vec<String>,
    },
    /// A join of two table expressions.
    Join {
        left: Box<TableExpr>,
        right: Box<TableExpr>,
        kind: JoinKind,
        on: Option<Expr>,
    },
}

impl TableExpr {
    pub fn named(name: impl Into<String>) -> TableExpr {
        TableExpr::Named {
            name: name.into(),
            alias: None,
            indexed_by: None,
        }
    }
    pub fn aliased(name: impl Into<String>, alias: impl Into<String>) -> TableExpr {
        TableExpr::Named {
            name: name.into(),
            alias: Some(alias.into()),
            indexed_by: None,
        }
    }
}

/// A common table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    pub name: String,
    pub columns: Vec<String>,
    pub query: Select,
}

/// Set operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

impl SetOp {
    pub fn sql_name(self) -> &'static str {
        match self {
            SetOp::Union => "UNION",
            SetOp::Intersect => "INTERSECT",
            SetOp::Except => "EXCEPT",
        }
    }
}

/// Body of a select: a plain core, a set operation, or a bare `VALUES`
/// list (usable as a CTE body or derived table).
#[allow(clippy::large_enum_variant)] // Core dominates; bodies are built once
#[derive(Debug, Clone, PartialEq)]
pub enum SelectBody {
    Core(SelectCore),
    SetOp {
        op: SetOp,
        all: bool,
        left: Box<SelectBody>,
        right: Box<SelectBody>,
    },
    Values(Vec<Vec<Expr>>),
}

/// The core of a `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectCore {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<TableExpr>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

/// A full `SELECT` statement (CTE prologue + body + ordering + limits).
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub with: Vec<Cte>,
    pub body: SelectBody,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<Expr>,
    pub offset: Option<Expr>,
}

impl Select {
    /// A bare `SELECT <expr>` — the auxiliary-query shape for independent
    /// expressions (Algorithm 1, line 4).
    pub fn scalar_probe(expr: Expr) -> Select {
        Select::from_core(SelectCore {
            items: vec![SelectItem::Expr { expr, alias: None }],
            ..SelectCore::default()
        })
    }

    pub fn from_core(core: SelectCore) -> Select {
        Select {
            with: Vec::new(),
            body: SelectBody::Core(core),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// Access the outermost core if the body is not a set operation.
    pub fn core(&self) -> Option<&SelectCore> {
        match &self.body {
            SelectBody::Core(c) => Some(c),
            _ => None,
        }
    }

    pub fn core_mut(&mut self) -> Option<&mut SelectCore> {
        match &mut self.body {
            SelectBody::Core(c) => Some(c),
            _ => None,
        }
    }
}

/// Column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub not_null: bool,
}

/// Source of an `INSERT`.
#[allow(clippy::large_enum_variant)] // statements are built once, not stored in bulk
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Select),
}

/// Top-level SQL statements.
#[allow(clippy::large_enum_variant)] // statements are built once, not stored in bulk
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        if_not_exists: bool,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    CreateView {
        name: String,
        columns: Vec<String>,
        query: Select,
    },
    CreateIndex {
        name: String,
        table: String,
        /// One or more key expressions, in index-key order.
        exprs: Vec<Expr>,
        unique: bool,
    },
    Insert {
        table: String,
        columns: Vec<String>,
        source: InsertSource,
    },
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        where_clause: Option<Expr>,
    },
    Delete {
        table: String,
        where_clause: Option<Expr>,
    },
    Select(Select),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subq() -> Select {
        Select::scalar_probe(Expr::lit(1i64))
    }

    #[test]
    fn constructors_build_expected_shapes() {
        let e = Expr::and(
            Expr::eq(Expr::col("t", "c"), Expr::lit(1i64)),
            Expr::lit(true),
        );
        match e {
            Expr::Binary {
                op: BinaryOp::And, ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn contains_subquery_sees_nested() {
        let e = Expr::not(Expr::Exists {
            query: Box::new(subq()),
            negated: false,
        });
        assert!(e.contains_subquery());
        assert!(!Expr::lit(1i64).contains_subquery());
    }

    #[test]
    fn is_constant_rejects_columns_subqueries_and_version() {
        assert!(Expr::bin(BinaryOp::Add, Expr::lit(1i64), Expr::lit(2i64)).is_constant());
        assert!(!Expr::col("t", "c").is_constant());
        assert!(!Expr::Scalar(Box::new(subq())).is_constant());
        assert!(!Expr::Func {
            func: FuncName::Version,
            args: vec![]
        }
        .is_constant());
    }

    #[test]
    fn shallow_column_refs_skip_subqueries() {
        let inner = Select::scalar_probe(Expr::col("inner_t", "x"));
        let e = Expr::and(
            Expr::col("t", "a"),
            Expr::Exists {
                query: Box::new(inner),
                negated: false,
            },
        );
        let refs = e.shallow_column_refs();
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].column, "a");
    }

    #[test]
    fn contains_aggregate_is_shallow() {
        let agg = Expr::count_star();
        assert!(agg.contains_aggregate());
        // An aggregate inside a subquery belongs to the subquery's scope.
        let sub = Select::scalar_probe(Expr::count_star());
        let e = Expr::Scalar(Box::new(sub));
        assert!(!e.contains_aggregate());
    }
}
