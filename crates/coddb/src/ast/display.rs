//! SQL rendering.
//!
//! Renders the AST back to SQL text. Composite expressions are always
//! parenthesized — the same defensive style SQLancer emits (visible in the
//! paper's listings) — so rendering never depends on precedence and the
//! text round-trips through [`crate::parser`].

use std::fmt;

use super::{
    AggFunc, BinaryOp, ColumnRef, CompareOp, Cte, Expr, InsertSource, JoinKind, OrderItem,
    Quantifier, Select, SelectBody, SelectCore, SelectItem, SortOrder, Statement, TableExpr,
    UnaryOp,
};

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnaryOp::Neg => "-",
            UnaryOp::Not => "NOT ",
        })
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Is => "IS",
            BinaryOp::IsNot => "IS NOT",
        })
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_binary())
    }
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Quantifier::Any => "ANY",
            Quantifier::All => "ALL",
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => f.write_str(&v.to_sql()),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Unary { op, expr } => write!(f, "({op}{expr})"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                write!(
                    f,
                    "({expr} {}BETWEEN {low} AND {high})",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                join_exprs(f, list)?;
                f.write_str("))")
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                write!(
                    f,
                    "({expr} {}IN ({query}))",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Exists { query, negated } => {
                write!(
                    f,
                    "({}EXISTS ({query}))",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Scalar(query) => write!(f, "({query})"),
            Expr::Quantified {
                op,
                quantifier,
                expr,
                query,
            } => {
                write!(f, "({expr} {op} {quantifier} ({query}))")
            }
            Expr::Case {
                operand,
                whens,
                else_expr,
            } => {
                f.write_str("(CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in whens {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END)")
            }
            Expr::Func { func, args } => {
                write!(f, "{}(", func.sql_name())?;
                join_exprs(f, args)?;
                f.write_str(")")
            }
            Expr::Agg {
                func,
                arg,
                distinct,
            } => {
                if *func == AggFunc::CountStar {
                    return f.write_str("COUNT(*)");
                }
                write!(f, "{}(", func.sql_name())?;
                if *distinct {
                    f.write_str("DISTINCT ")?;
                }
                if let Some(a) = arg {
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Cast { expr, ty } => write!(f, "CAST({expr} AS {ty})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(
                    f,
                    "({expr} {}LIKE {pattern})",
                    if *negated { "NOT " } else { "" }
                )
            }
        }
    }
}

fn join_exprs(f: &mut fmt::Formatter<'_>, exprs: &[Expr]) -> fmt::Result {
    for (i, e) in exprs.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{e}")?;
    }
    Ok(())
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::TableWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => write!(f, "{expr} AS {a}"),
                None => write!(f, "{expr}"),
            },
        }
    }
}

impl fmt::Display for TableExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableExpr::Named {
                name,
                alias,
                indexed_by,
            } => {
                f.write_str(name)?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                if let Some(i) = indexed_by {
                    write!(f, " INDEXED BY {i}")?;
                }
                Ok(())
            }
            TableExpr::Derived { query, alias } => write!(f, "({query}) AS {alias}"),
            TableExpr::Values {
                rows,
                alias,
                columns,
            } => {
                f.write_str("(VALUES ")?;
                write_value_rows(f, rows)?;
                write!(f, ") AS {alias}")?;
                if !columns.is_empty() {
                    write!(f, " ({})", columns.join(", "))?;
                }
                Ok(())
            }
            TableExpr::Join {
                left,
                right,
                kind,
                on,
            } => {
                write!(f, "{left} {} {right}", kind.sql_name())?;
                if let Some(on) = on {
                    write!(f, " ON {on}")?;
                }
                Ok(())
            }
        }
    }
}

fn write_value_rows(f: &mut fmt::Formatter<'_>, rows: &[Vec<Expr>]) -> fmt::Result {
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        f.write_str("(")?;
        join_exprs(f, row)?;
        f.write_str(")")?;
    }
    Ok(())
}

impl fmt::Display for Cte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if !self.columns.is_empty() {
            write!(f, " ({})", self.columns.join(", "))?;
        }
        write!(f, " AS ({})", self.query)
    }
}

impl fmt::Display for SelectCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            join_exprs(f, &self.group_by)?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectBody::Core(core) => write!(f, "{core}"),
            SelectBody::SetOp {
                op,
                all,
                left,
                right,
            } => {
                write!(
                    f,
                    "{left} {}{} {right}",
                    op.sql_name(),
                    if *all { " ALL" } else { "" }
                )
            }
            SelectBody::Values(rows) => {
                f.write_str("VALUES ")?;
                write_value_rows(f, rows)
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.with.is_empty() {
            f.write_str("WITH ")?;
            for (i, cte) in self.with.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{cte}")?;
            }
            f.write_str(" ")?;
        }
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, item) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{item}")?;
            }
        }
        if let Some(l) = &self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = &self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

impl fmt::Display for OrderItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        match self.order {
            SortOrder::Asc => f.write_str(" ASC"),
            SortOrder::Desc => f.write_str(" DESC"),
        }
    }
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                write!(
                    f,
                    "CREATE TABLE {}{name} (",
                    if *if_not_exists { "IF NOT EXISTS " } else { "" }
                )?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str(&c.name)?;
                    if c.ty != crate::value::DataType::Any {
                        write!(f, " {}", c.ty)?;
                    }
                    if c.not_null {
                        f.write_str(" NOT NULL")?;
                    }
                }
                f.write_str(")")
            }
            Statement::DropTable { name, if_exists } => {
                write!(
                    f,
                    "DROP TABLE {}{name}",
                    if *if_exists { "IF EXISTS " } else { "" }
                )
            }
            Statement::CreateView {
                name,
                columns,
                query,
            } => {
                write!(f, "CREATE VIEW {name}")?;
                if !columns.is_empty() {
                    write!(f, " ({})", columns.join(", "))?;
                }
                write!(f, " AS {query}")
            }
            Statement::CreateIndex {
                name,
                table,
                exprs,
                unique,
            } => {
                write!(
                    f,
                    "CREATE {}INDEX {name} ON {table} (",
                    if *unique { "UNIQUE " } else { "" }
                )?;
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Statement::Insert {
                table,
                columns,
                source,
            } => {
                write!(f, "INSERT INTO {table}")?;
                if !columns.is_empty() {
                    write!(f, " ({})", columns.join(", "))?;
                }
                match source {
                    InsertSource::Values(rows) => {
                        f.write_str(" VALUES ")?;
                        write_value_rows(f, rows)
                    }
                    InsertSource::Query(q) => write!(f, " {q}"),
                }
            }
            Statement::Update {
                table,
                sets,
                where_clause,
            } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (c, e)) in sets.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Select(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggFunc, SelectCore};
    use crate::value::Value;

    #[test]
    fn renders_listing1_style_query() {
        // SELECT COUNT(*) FROM t0 WHERE (...)
        let subq = Select::from_core(SelectCore {
            items: vec![SelectItem::Expr {
                expr: Expr::count_star(),
                alias: None,
            }],
            from: Some(TableExpr::named("v0")),
            where_clause: Some(Expr::Between {
                expr: Box::new(Expr::col("v0", "c0")),
                low: Box::new(Expr::lit(0i64)),
                high: Box::new(Expr::lit(0i64)),
                negated: false,
            }),
            ..SelectCore::default()
        });
        let outer = Select::from_core(SelectCore {
            items: vec![SelectItem::Expr {
                expr: Expr::count_star(),
                alias: None,
            }],
            from: Some(TableExpr::Named {
                name: "t0".into(),
                alias: None,
                indexed_by: Some("i0".into()),
            }),
            where_clause: Some(Expr::Scalar(Box::new(subq))),
            ..SelectCore::default()
        });
        let sql = outer.to_string();
        assert_eq!(
            sql,
            "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE \
             (SELECT COUNT(*) FROM v0 WHERE (v0.c0 BETWEEN 0 AND 0))"
        );
    }

    #[test]
    fn renders_case_mapping() {
        let case = Expr::Case {
            operand: None,
            whens: vec![(
                Expr::eq(Expr::col("t0", "c0"), Expr::lit(-1i64)),
                Expr::lit(0i64),
            )],
            else_expr: Some(Box::new(Expr::lit(1i64))),
        };
        assert_eq!(
            case.to_string(),
            "(CASE WHEN (t0.c0 = -1) THEN 0 ELSE 1 END)"
        );
    }

    #[test]
    fn renders_values_table() {
        let te = TableExpr::Values {
            rows: vec![vec![Expr::lit(1i64), Expr::lit("a")]],
            alias: "ft0".into(),
            columns: vec!["c0".into(), "c1".into()],
        };
        assert_eq!(te.to_string(), "(VALUES (1, 'a')) AS ft0 (c0, c1)");
    }

    #[test]
    fn renders_agg_and_quantified() {
        let agg = Expr::Agg {
            func: AggFunc::Avg,
            arg: Some(Box::new(Expr::col("t", "score"))),
            distinct: true,
        };
        assert_eq!(agg.to_string(), "AVG(DISTINCT t.score)");
        let q = Expr::Quantified {
            op: CompareOp::Ge,
            quantifier: Quantifier::All,
            expr: Box::new(Expr::lit(3i64)),
            query: Box::new(Select::scalar_probe(Expr::lit(Value::Int(1)))),
        };
        assert_eq!(q.to_string(), "(3 >= ALL (SELECT 1))");
    }

    #[test]
    fn renders_statements() {
        let stmt = Statement::Update {
            table: "t0".into(),
            sets: vec![("c0".into(), Expr::lit(5i64))],
            where_clause: Some(Expr::is_null(Expr::bare_col("c1"))),
        };
        assert_eq!(stmt.to_string(), "UPDATE t0 SET c0 = 5 WHERE (c1 IS NULL)");
        let del = Statement::Delete {
            table: "t0".into(),
            where_clause: None,
        };
        assert_eq!(del.to_string(), "DELETE FROM t0");
    }
}
