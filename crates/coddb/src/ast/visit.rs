//! AST traversal and rewriting.
//!
//! [`replace_in_select`] / [`replace_in_statement`] implement the paper's
//! `ReplaceExpr` (Algorithm 1, line 13): constant propagation swaps the
//! selected expression `φ` for its folded result `Rφ` *in place* in the AST,
//! matching by structural equality.

use super::{Expr, InsertSource, Select, SelectBody, SelectCore, SelectItem, Statement, TableExpr};

/// Visit `expr` and all sub-expressions, but do **not** descend into
/// subqueries (they open a new name scope).
pub fn walk_expr_shallow(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    for_each_child(expr, &mut |child| walk_expr_shallow(child, f));
}

/// Visit `expr` and all sub-expressions including those inside subqueries.
pub fn walk_expr_deep(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    for_each_child(expr, &mut |child| walk_expr_deep(child, f));
    for_each_subquery(expr, &mut |q| walk_select_exprs(q, f));
}

/// Visit every expression appearing anywhere in a `SELECT` (deeply).
pub fn walk_select_exprs(select: &Select, f: &mut impl FnMut(&Expr)) {
    for cte in &select.with {
        walk_select_exprs(&cte.query, f);
    }
    walk_body_exprs(&select.body, f);
    for item in &select.order_by {
        walk_expr_deep(&item.expr, f);
    }
    if let Some(l) = &select.limit {
        walk_expr_deep(l, f);
    }
    if let Some(o) = &select.offset {
        walk_expr_deep(o, f);
    }
}

fn walk_body_exprs(body: &SelectBody, f: &mut impl FnMut(&Expr)) {
    match body {
        SelectBody::Core(core) => walk_core_exprs(core, f),
        SelectBody::SetOp { left, right, .. } => {
            walk_body_exprs(left, f);
            walk_body_exprs(right, f);
        }
        SelectBody::Values(rows) => {
            for row in rows {
                for e in row {
                    walk_expr_deep(e, f);
                }
            }
        }
    }
}

fn walk_core_exprs(core: &SelectCore, f: &mut impl FnMut(&Expr)) {
    for item in &core.items {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr_deep(expr, f);
        }
    }
    if let Some(from) = &core.from {
        walk_table_exprs(from, f);
    }
    if let Some(w) = &core.where_clause {
        walk_expr_deep(w, f);
    }
    for g in &core.group_by {
        walk_expr_deep(g, f);
    }
    if let Some(h) = &core.having {
        walk_expr_deep(h, f);
    }
}

fn walk_table_exprs(te: &TableExpr, f: &mut impl FnMut(&Expr)) {
    match te {
        TableExpr::Named { .. } => {}
        TableExpr::Derived { query, .. } => walk_select_exprs(query, f),
        TableExpr::Values { rows, .. } => {
            for row in rows {
                for e in row {
                    walk_expr_deep(e, f);
                }
            }
        }
        TableExpr::Join {
            left, right, on, ..
        } => {
            walk_table_exprs(left, f);
            walk_table_exprs(right, f);
            if let Some(on) = on {
                walk_expr_deep(on, f);
            }
        }
    }
}

/// Apply `f` to each *immediate* child expression (not into subqueries).
fn for_each_child(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    match expr {
        Expr::Literal(_) | Expr::Column(_) => {}
        Expr::Unary { expr, .. } => f(expr),
        Expr::Binary { left, right, .. } => {
            f(left);
            f(right);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            f(expr);
            f(low);
            f(high);
        }
        Expr::InList { expr, list, .. } => {
            f(expr);
            for e in list {
                f(e);
            }
        }
        Expr::InSubquery { expr, .. } => f(expr),
        Expr::Exists { .. } => {}
        Expr::Scalar(_) => {}
        Expr::Quantified { expr, .. } => f(expr),
        Expr::Case {
            operand,
            whens,
            else_expr,
        } => {
            if let Some(op) = operand {
                f(op);
            }
            for (w, t) in whens {
                f(w);
                f(t);
            }
            if let Some(e) = else_expr {
                f(e);
            }
        }
        Expr::Func { args, .. } => {
            for a in args {
                f(a);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                f(a);
            }
        }
        Expr::Cast { expr, .. } => f(expr),
        Expr::IsNull { expr, .. } => f(expr),
        Expr::Like { expr, pattern, .. } => {
            f(expr);
            f(pattern);
        }
    }
}

/// Apply `f` to each subquery directly attached to this expression node.
fn for_each_subquery(expr: &Expr, f: &mut impl FnMut(&Select)) {
    match expr {
        Expr::InSubquery { query, .. }
        | Expr::Exists { query, .. }
        | Expr::Scalar(query)
        | Expr::Quantified { query, .. } => f(query),
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Mutable rewriting (constant propagation).
// ---------------------------------------------------------------------------

/// Replace every occurrence of `target` (structural equality) in `expr`
/// with `replacement`, descending into subqueries. Returns the number of
/// replacements performed.
pub fn replace_in_expr(expr: &mut Expr, target: &Expr, replacement: &Expr) -> usize {
    if expr == target {
        *expr = replacement.clone();
        return 1;
    }
    let mut count = 0;
    for_each_child_mut(expr, &mut |child| {
        count += replace_in_expr(child, target, replacement);
    });
    for_each_subquery_mut(expr, &mut |q| {
        count += replace_in_select(q, target, replacement);
    });
    count
}

/// Replace `target` throughout a `SELECT` statement.
pub fn replace_in_select(select: &mut Select, target: &Expr, replacement: &Expr) -> usize {
    let mut count = 0;
    for cte in &mut select.with {
        count += replace_in_select(&mut cte.query, target, replacement);
    }
    count += replace_in_body(&mut select.body, target, replacement);
    for item in &mut select.order_by {
        count += replace_in_expr(&mut item.expr, target, replacement);
    }
    if let Some(l) = &mut select.limit {
        count += replace_in_expr(l, target, replacement);
    }
    if let Some(o) = &mut select.offset {
        count += replace_in_expr(o, target, replacement);
    }
    count
}

fn replace_in_body(body: &mut SelectBody, target: &Expr, replacement: &Expr) -> usize {
    match body {
        SelectBody::Core(core) => replace_in_core(core, target, replacement),
        SelectBody::SetOp { left, right, .. } => {
            replace_in_body(left, target, replacement) + replace_in_body(right, target, replacement)
        }
        SelectBody::Values(rows) => rows
            .iter_mut()
            .flat_map(|row| row.iter_mut())
            .map(|e| replace_in_expr(e, target, replacement))
            .sum(),
    }
}

fn replace_in_core(core: &mut SelectCore, target: &Expr, replacement: &Expr) -> usize {
    let mut count = 0;
    for item in &mut core.items {
        if let SelectItem::Expr { expr, .. } = item {
            count += replace_in_expr(expr, target, replacement);
        }
    }
    if let Some(from) = &mut core.from {
        count += replace_in_table(from, target, replacement);
    }
    if let Some(w) = &mut core.where_clause {
        count += replace_in_expr(w, target, replacement);
    }
    for g in &mut core.group_by {
        count += replace_in_expr(g, target, replacement);
    }
    if let Some(h) = &mut core.having {
        count += replace_in_expr(h, target, replacement);
    }
    count
}

fn replace_in_table(te: &mut TableExpr, target: &Expr, replacement: &Expr) -> usize {
    match te {
        TableExpr::Named { .. } => 0,
        TableExpr::Derived { query, .. } => replace_in_select(query, target, replacement),
        TableExpr::Values { rows, .. } => rows
            .iter_mut()
            .flat_map(|row| row.iter_mut())
            .map(|e| replace_in_expr(e, target, replacement))
            .sum(),
        TableExpr::Join {
            left, right, on, ..
        } => {
            let mut count = replace_in_table(left, target, replacement)
                + replace_in_table(right, target, replacement);
            if let Some(on) = on {
                count += replace_in_expr(on, target, replacement);
            }
            count
        }
    }
}

/// Replace `target` throughout any statement.
pub fn replace_in_statement(stmt: &mut Statement, target: &Expr, replacement: &Expr) -> usize {
    match stmt {
        Statement::Select(s) => replace_in_select(s, target, replacement),
        Statement::Insert { source, .. } => match source {
            InsertSource::Values(rows) => rows
                .iter_mut()
                .flat_map(|row| row.iter_mut())
                .map(|e| replace_in_expr(e, target, replacement))
                .sum(),
            InsertSource::Query(q) => replace_in_select(q, target, replacement),
        },
        Statement::Update {
            sets, where_clause, ..
        } => {
            let mut count = 0;
            for (_, e) in sets {
                count += replace_in_expr(e, target, replacement);
            }
            if let Some(w) = where_clause {
                count += replace_in_expr(w, target, replacement);
            }
            count
        }
        Statement::Delete { where_clause, .. } => where_clause
            .as_mut()
            .map(|w| replace_in_expr(w, target, replacement))
            .unwrap_or(0),
        Statement::CreateView { query, .. } => replace_in_select(query, target, replacement),
        Statement::CreateIndex { exprs, .. } => exprs
            .iter_mut()
            .map(|e| replace_in_expr(e, target, replacement))
            .sum(),
        Statement::CreateTable { .. } | Statement::DropTable { .. } => 0,
    }
}

fn for_each_child_mut(expr: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match expr {
        Expr::Literal(_) | Expr::Column(_) => {}
        Expr::Unary { expr, .. } => f(expr),
        Expr::Binary { left, right, .. } => {
            f(left);
            f(right);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            f(expr);
            f(low);
            f(high);
        }
        Expr::InList { expr, list, .. } => {
            f(expr);
            for e in list {
                f(e);
            }
        }
        Expr::InSubquery { expr, .. } => f(expr),
        Expr::Exists { .. } => {}
        Expr::Scalar(_) => {}
        Expr::Quantified { expr, .. } => f(expr),
        Expr::Case {
            operand,
            whens,
            else_expr,
        } => {
            if let Some(op) = operand {
                f(op);
            }
            for (w, t) in whens {
                f(w);
                f(t);
            }
            if let Some(e) = else_expr {
                f(e);
            }
        }
        Expr::Func { args, .. } => {
            for a in args {
                f(a);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                f(a);
            }
        }
        Expr::Cast { expr, .. } => f(expr),
        Expr::IsNull { expr, .. } => f(expr),
        Expr::Like { expr, pattern, .. } => {
            f(expr);
            f(pattern);
        }
    }
}

fn for_each_subquery_mut(expr: &mut Expr, f: &mut impl FnMut(&mut Select)) {
    match expr {
        Expr::InSubquery { query, .. }
        | Expr::Exists { query, .. }
        | Expr::Scalar(query)
        | Expr::Quantified { query, .. } => f(query),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinaryOp;

    #[test]
    fn replace_swaps_matching_subtree() {
        let phi = Expr::bin(BinaryOp::Gt, Expr::col("t", "c"), Expr::lit(0i64));
        let mut host = Expr::and(phi.clone(), Expr::lit(true));
        let n = replace_in_expr(&mut host, &phi, &Expr::lit(false));
        assert_eq!(n, 1);
        assert_eq!(host, Expr::and(Expr::lit(false), Expr::lit(true)));
    }

    #[test]
    fn replace_descends_into_subqueries() {
        let phi = Expr::col("t", "c");
        let sub = Select::scalar_probe(phi.clone());
        let mut host = Expr::Scalar(Box::new(sub));
        let n = replace_in_expr(&mut host, &phi, &Expr::lit(9i64));
        assert_eq!(n, 1);
        match host {
            Expr::Scalar(q) => {
                let core = q.core().unwrap();
                match &core.items[0] {
                    SelectItem::Expr { expr, .. } => assert_eq!(*expr, Expr::lit(9i64)),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn replace_in_statement_reaches_where_clause() {
        let phi = Expr::bin(BinaryOp::Lt, Expr::bare_col("c"), Expr::lit(5i64));
        let mut stmt = Statement::Delete {
            table: "t".into(),
            where_clause: Some(phi.clone()),
        };
        let n = replace_in_statement(&mut stmt, &phi, &Expr::lit(true));
        assert_eq!(n, 1);
        match stmt {
            Statement::Delete { where_clause, .. } => {
                assert_eq!(where_clause, Some(Expr::lit(true)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn replace_counts_multiple_occurrences() {
        let phi = Expr::lit(1i64);
        let mut host = Expr::and(phi.clone(), phi.clone());
        let n = replace_in_expr(&mut host, &phi, &Expr::lit(2i64));
        assert_eq!(n, 2);
    }

    #[test]
    fn walk_select_visits_order_by_and_limit() {
        let mut s = Select::scalar_probe(Expr::lit(1i64));
        s.order_by.push(crate::ast::OrderItem {
            expr: Expr::lit(2i64),
            order: crate::ast::SortOrder::Asc,
        });
        s.limit = Some(Expr::lit(3i64));
        let mut seen = Vec::new();
        walk_select_exprs(&s, &mut |e| {
            if let Expr::Literal(v) = e {
                seen.push(v.clone());
            }
        });
        assert_eq!(seen.len(), 3);
    }
}
