//! Crash recovery: replay a WAL image into a fresh store.
//!
//! Recovery is two-phase, like a real redo-only WAL:
//!
//! 1. **Scan** ([`scan_log`]) walks the surviving byte image frame by
//!    frame, verifying each record's length and checksum. The scan stops —
//!    truncating the log — at the first incomplete header, truncated
//!    payload, or checksum mismatch: everything past the damage is, by the
//!    fault model, the torn tail of the crashing write.
//! 2. **Replay** ([`replay`]) buffers effect records per statement and
//!    applies them to a fresh [`Database`] only when the statement's
//!    commit marker is reached. Effects whose commit never became durable
//!    are discarded — recovery reconstructs *exactly* the committed
//!    prefix, byte-identical to a never-crashed engine that executed only
//!    those statements.
//!
//! The [`RecoveryBugId`] mutants are seeded into these two phases the way
//! [`crate::bugs::BugId`] mutants are seeded into the planner/executor, so
//! campaigns can hunt recovery bugs the way they hunt optimizer bugs.

use crate::bugs::{BugRegistry, RecoveryBugId};
use crate::database::Database;
use crate::dialect::Dialect;
use crate::error::{Error, Result};
use crate::value::Row;
use crate::wal::{checksum, decode_record, WalRecord, FRAME_HEADER};

/// Parse the surviving log image into the sequence of intact records,
/// truncating at the first sign of damage.
pub fn scan_log(image: &[u8], bugs: &BugRegistry) -> Result<Vec<WalRecord>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < image.len() {
        if image.len() - pos < FRAME_HEADER {
            // Dangling header bytes: the tail of a write that died before
            // even its length prefix was complete.
            if bugs.recovery_active(RecoveryBugId::TornTailAsComplete) {
                return Err(Error::Internal(format!(
                    "wal scan: {} dangling tail byte(s) decoded as a record",
                    image.len() - pos
                )));
            }
            break;
        }
        let len = u32::from_le_bytes(image[pos..pos + 4].try_into().unwrap()) as usize;
        let stored_sum = u32::from_le_bytes(image[pos + 4..pos + 8].try_into().unwrap());
        let body_start = pos + FRAME_HEADER;
        if image.len() - body_start < len {
            // Torn payload: the final frame is shorter than its own length
            // prefix claims.
            if bugs.recovery_active(RecoveryBugId::TornTailAsComplete) {
                let partial = &image[body_start..];
                out.push(decode_record(partial).map_err(|e| {
                    Error::Internal(format!("wal scan: torn tail decoded as complete: {e}"))
                })?);
            }
            break;
        }
        let payload = &image[body_start..body_start + len];
        if checksum(payload) != stored_sum
            && !bugs.recovery_active(RecoveryBugId::SkipChecksumVerify)
        {
            // Checksum mismatch: the crashing write landed full-length but
            // damaged. Truncate here.
            break;
        }
        let rec = decode_record(payload)
            .map_err(|e| Error::Internal(format!("wal scan: undecodable record: {e}")))?;
        out.push(rec);
        pos = body_start + len;
    }
    Ok(out)
}

/// Apply one effect record to the recovered store. DML effects are
/// physical; DDL re-executes its logged SQL against the recovered catalog.
fn apply_effect(db: &mut Database, rec: &WalRecord) -> Result<()> {
    match rec {
        WalRecord::Ddl { sql } => {
            let stmts = crate::parser::parse_statements(sql)
                .map_err(|e| Error::Internal(format!("wal replay: DDL does not re-parse: {e}")))?;
            for s in &stmts {
                db.execute(s).map_err(|e| {
                    Error::Internal(format!("wal replay: DDL does not re-execute: {e}"))
                })?;
            }
            Ok(())
        }
        WalRecord::InsertRow { table, row } => {
            let t = db.catalog_mut().table_mut(table)?;
            t.rows.push(Row::new(row.clone()));
            Ok(())
        }
        WalRecord::UpdateRow {
            table,
            row_idx,
            cols,
            vals,
        } => {
            let t = db.catalog_mut().table_mut(table)?;
            let i = *row_idx as usize;
            if i >= t.rows.len() {
                return Err(Error::Internal(format!(
                    "wal replay: update of row {i} but table {table} has {} rows",
                    t.rows.len()
                )));
            }
            for (c, v) in cols.iter().zip(vals.iter()) {
                let ci = *c as usize;
                if ci >= t.columns.len() {
                    return Err(Error::Internal(format!(
                        "wal replay: update of column {ci} but table {table} has {} columns",
                        t.columns.len()
                    )));
                }
                t.rows[i].set(ci, v.clone());
            }
            Ok(())
        }
        WalRecord::DeleteRows { table, rows } => {
            let t = db.catalog_mut().table_mut(table)?;
            for &r in rows.iter().rev() {
                let i = r as usize;
                if i >= t.rows.len() {
                    return Err(Error::Internal(format!(
                        "wal replay: delete of row {i} but table {table} has {} rows",
                        t.rows.len()
                    )));
                }
                t.rows.remove(i);
            }
            Ok(())
        }
        WalRecord::Commit { .. } => Err(Error::Internal(
            "wal replay: commit marker reached apply_effect".into(),
        )),
    }
}

/// Replay scanned records into a fresh database: effects buffer per
/// statement and apply at their commit marker; uncommitted effects are
/// discarded.
pub fn replay(records: &[WalRecord], dialect: Dialect, bugs: &BugRegistry) -> Result<Database> {
    let mut db = Database::new(dialect);
    let last_commit = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::Commit { .. }));
    let mut pending: Vec<&WalRecord> = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        match rec {
            WalRecord::Commit { .. } => {
                if bugs.recovery_active(RecoveryBugId::DropLastCommit) && Some(i) == last_commit {
                    // Mutant: the final durability point vanishes; its
                    // effects stay pending (i.e. uncommitted).
                    continue;
                }
                if bugs.recovery_active(RecoveryBugId::ReorderCommitEffects) {
                    pending.reverse();
                }
                for e in pending.drain(..) {
                    apply_effect(&mut db, e)?;
                }
            }
            effect => pending.push(effect),
        }
    }
    if bugs.recovery_active(RecoveryBugId::ReplayUncommitted) {
        for e in pending.drain(..) {
            apply_effect(&mut db, e)?;
        }
    }
    Ok(db)
}

/// Recover a database from a surviving WAL image: scan, then replay.
pub fn recover(image: &[u8], dialect: Dialect, bugs: &BugRegistry) -> Result<Database> {
    let records = scan_log(image, bugs)?;
    replay(&records, dialect, bugs)
}

/// The crash-recovery differential, shared by the `recover` oracle and the
/// reducer: execute `script` on a durable engine under `plan`, recover the
/// surviving image, and compare against a never-crashed engine that
/// executed only the committed prefix. Returns `Some(detail)` when
/// recovery diverges (wrong state or a recovery error), `None` when it is
/// byte-identical.
///
/// Both executions run under the same `bugs` registry, so injected
/// *engine* mutants corrupt both sides identically and cancel out; only
/// *recovery* mutants (or a genuine recovery defect) can produce a
/// divergence.
pub fn recovery_divergence(
    script: &[crate::ast::Statement],
    plan: &crate::wal::FaultPlan,
    dialect: Dialect,
    bugs: &BugRegistry,
) -> Option<String> {
    let durable_run = |plan: crate::wal::FaultPlan, stop_at: Option<u64>| -> Database {
        let mut db = Database::with_bugs(dialect, bugs.clone());
        db.set_storage_mode(crate::wal::StorageMode::Durable);
        db.set_fault_plan(plan);
        for s in script {
            if let Some(c) = stop_at {
                if db.wal().map(|w| w.committed_statements()) == Some(c) {
                    break;
                }
            }
            let _ = db.execute(s);
        }
        db
    };

    let faulted = durable_run(plan.clone(), None);
    let committed = faulted.wal().expect("durable").committed_statements();
    let image = faulted.wal().expect("durable").image().to_vec();

    let recovered = match recover(&image, dialect, bugs) {
        Ok(db) => db,
        Err(e) => return Some(format!("recovery failed: {e}")),
    };

    let reference = durable_run(crate::wal::FaultPlan::none(), Some(committed));
    let got_committed = reference.wal().expect("durable").committed_statements();
    if got_committed != committed {
        return Some(format!(
            "reference run reached {got_committed} commits, expected {committed}"
        ));
    }
    let want = reference.dump_state();
    let got = recovered.dump_state();
    if want != got {
        return Some(format!(
            "recovered state diverges from the committed prefix \
             (committed={committed}, {}):\n--- expected ---\n{want}\n--- recovered ---\n{got}",
            plan.describe()
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{encode_record, FaultMode, FaultPlan, StorageMode, Wal};

    fn durable_db() -> Database {
        let mut db = Database::new(Dialect::Sqlite);
        db.set_storage_mode(StorageMode::Durable);
        db
    }

    fn run_sql(db: &mut Database, sql: &str) {
        db.execute_sql(sql).unwrap();
    }

    #[test]
    fn clean_log_recovers_byte_identically() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT, b TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z');
             CREATE INDEX i ON t (a);
             CREATE VIEW v (n) AS SELECT COUNT(*) FROM t;
             UPDATE t SET b = 'q' WHERE a > 1;
             DELETE FROM t WHERE a = 2",
        );
        let image = db.wal().unwrap().image().to_vec();
        let rec = recover(&image, Dialect::Sqlite, &BugRegistry::none()).unwrap();
        assert_eq!(rec.dump_state(), db.dump_state());
    }

    #[test]
    fn torn_tail_is_truncated_not_replayed() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2)",
        );
        let mut image = db.wal().unwrap().image().to_vec();
        // Append half of another frame by hand.
        let extra = {
            let mut w = Wal::new(FaultPlan {
                crash_op: 0,
                mode: FaultMode::Torn { keep_sel: 11 },
            });
            w.append(&WalRecord::InsertRow {
                table: "t".into(),
                row: vec![crate::value::Value::Int(9)],
            });
            w.image().to_vec()
        };
        image.extend_from_slice(&extra);
        let rec = recover(&image, Dialect::Sqlite, &BugRegistry::none()).unwrap();
        assert_eq!(rec.dump_state(), db.dump_state());
    }

    #[test]
    fn checksum_mismatch_truncates_the_log() {
        let mut db = durable_db();
        run_sql(&mut db, "CREATE TABLE t (a INT); INSERT INTO t VALUES (1)");
        let committed_image = db.wal().unwrap().image().to_vec();
        // A corrupted full-length frame after the good prefix.
        let mut image = committed_image.clone();
        let mut w = Wal::new(FaultPlan {
            crash_op: 0,
            mode: FaultMode::Corrupt { byte_sel: 3 },
        });
        w.append(&WalRecord::InsertRow {
            table: "t".into(),
            row: vec![crate::value::Value::Int(7)],
        });
        image.extend_from_slice(w.image());
        let rec = recover(&image, Dialect::Sqlite, &BugRegistry::none()).unwrap();
        let reference = recover(&committed_image, Dialect::Sqlite, &BugRegistry::none()).unwrap();
        assert_eq!(rec.dump_state(), reference.dump_state());
    }

    #[test]
    fn uncommitted_effects_are_discarded() {
        // Effects with no commit marker: build the image by hand.
        let mut w = Wal::new(FaultPlan::none());
        w.append(&WalRecord::Ddl {
            sql: "CREATE TABLE t (a INT)".into(),
        });
        w.commit_statement();
        w.append(&WalRecord::InsertRow {
            table: "t".into(),
            row: vec![crate::value::Value::Int(1)],
        });
        // ... crash before the commit marker.
        let rec = recover(w.image(), Dialect::Sqlite, &BugRegistry::none()).unwrap();
        assert_eq!(rec.catalog().table("t").unwrap().rows.len(), 0);

        // The ReplayUncommitted mutant applies them anyway.
        let buggy = recover(
            w.image(),
            Dialect::Sqlite,
            &BugRegistry::only_recovery(RecoveryBugId::ReplayUncommitted),
        )
        .unwrap();
        assert_eq!(buggy.catalog().table("t").unwrap().rows.len(), 1);
    }

    #[test]
    fn reorder_mutant_reverses_multi_row_inserts() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2), (3)",
        );
        let image = db.wal().unwrap().image().to_vec();
        let buggy = recover(
            &image,
            Dialect::Sqlite,
            &BugRegistry::only_recovery(RecoveryBugId::ReorderCommitEffects),
        )
        .unwrap();
        let vals: Vec<_> = buggy.catalog().table("t").unwrap().rows.clone();
        assert_eq!(
            vals.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![
                crate::value::Value::Int(3),
                crate::value::Value::Int(2),
                crate::value::Value::Int(1)
            ]
        );
    }

    #[test]
    fn drop_last_commit_mutant_loses_the_final_statement() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); INSERT INTO t VALUES (2)",
        );
        let image = db.wal().unwrap().image().to_vec();
        let buggy = recover(
            &image,
            Dialect::Sqlite,
            &BugRegistry::only_recovery(RecoveryBugId::DropLastCommit),
        )
        .unwrap();
        assert_eq!(buggy.catalog().table("t").unwrap().rows.len(), 1);
    }

    #[test]
    fn skip_checksum_mutant_accepts_corrupt_records() {
        // A corrupted frame: clean scan truncates, mutant scan accepts
        // (decoding either garbage or an error — both are wrong).
        let mut w = Wal::new(FaultPlan {
            crash_op: 2,
            mode: FaultMode::Corrupt { byte_sel: 9 },
        });
        w.append(&WalRecord::Ddl {
            sql: "CREATE TABLE t (a INT)".into(),
        });
        w.commit_statement();
        w.append(&WalRecord::InsertRow {
            table: "t".into(),
            row: vec![crate::value::Value::Int(5)],
        });
        let clean = scan_log(w.image(), &BugRegistry::none()).unwrap();
        assert_eq!(clean.len(), 2, "corrupt record truncated");
        let buggy = scan_log(
            w.image(),
            &BugRegistry::only_recovery(RecoveryBugId::SkipChecksumVerify),
        );
        match buggy {
            Ok(recs) => assert_ne!(
                recs.get(2),
                Some(&encode_record(&clean[0])).map(|_| &clean[0])
            ),
            Err(e) => assert!(e.to_string().contains("wal scan")),
        }
    }

    #[test]
    fn divergence_helper_is_clean_on_a_correct_engine() {
        let script = crate::parser::parse_statements(
            "CREATE TABLE t (a INT);
             INSERT INTO t VALUES (1), (2), (3);
             UPDATE t SET a = a * 10 WHERE a >= 2;
             DELETE FROM t WHERE a = 20",
        )
        .unwrap();
        // Every crash point, every mode.
        let mut db = Database::new(Dialect::Sqlite);
        db.set_storage_mode(StorageMode::Durable);
        for s in &script {
            db.execute(s).unwrap();
        }
        let total = db.wal().unwrap().ops();
        assert!(total > 0);
        for op in 0..total {
            for mode in [
                FaultMode::Lost,
                FaultMode::Torn { keep_sel: 5 },
                FaultMode::Corrupt { byte_sel: 2 },
            ] {
                let plan = FaultPlan { crash_op: op, mode };
                assert_eq!(
                    recovery_divergence(&script, &plan, Dialect::Sqlite, &BugRegistry::none()),
                    None,
                    "divergence at {plan:?}"
                );
            }
        }
    }
}
