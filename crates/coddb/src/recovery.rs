//! Crash recovery: load the newest sealed snapshot, then replay the WAL
//! suffix into it.
//!
//! Recovery is three-phase, like a real checkpointing redo-WAL:
//!
//! 1. **Snapshot scan** ([`scan_snapshots`]) walks the snapshot file with
//!    the same frame/checksum discipline as the log scan, groups frames
//!    into [`Snapshot`]s (a `SnapshotBegin` … body … `SnapshotEnd` run is
//!    *sealed* only when the end marker matches the begin marker's
//!    `stmt_idx` and its declared record count), and recovery bases itself
//!    on the **newest sealed** snapshot — an unsealed trailing snapshot is
//!    a writer that died mid-checkpoint and must be ignored, falling back
//!    to the previous sealed snapshot or genesis.
//! 2. **Log scan** ([`scan_log`]) walks the surviving log image frame by
//!    frame, verifying each record's length and checksum. The scan stops —
//!    truncating the log — at the first incomplete header, truncated
//!    payload, or checksum mismatch: everything past the damage is, by the
//!    fault model, the torn tail of the crashing write.
//! 3. **Replay** ([`replay_into`]) buffers effect records per statement
//!    and applies them only when the statement's commit marker is reached;
//!    commits the snapshot already covers (`stmt_idx <` the snapshot's
//!    coverage) discard their effects instead of double-applying. Effects
//!    whose commit never became durable are discarded — recovery
//!    reconstructs *exactly* the committed prefix, byte-identical to a
//!    never-crashed engine that executed only those statements, whether
//!    the base is a snapshot or genesis.
//!
//! The [`RecoveryBugId`] mutants are seeded into these phases the way
//! [`crate::bugs::BugId`] mutants are seeded into the planner/executor, so
//! campaigns can hunt recovery bugs the way they hunt optimizer bugs.

use crate::bugs::{BugRegistry, RecoveryBugId};
use crate::database::Database;
use crate::dialect::Dialect;
use crate::error::{Error, Result};
use crate::value::Row;
use crate::wal::{checksum, decode_record, WalRecord, FRAME_HEADER};

/// Parse the surviving log image into the sequence of intact records,
/// truncating at the first sign of damage.
pub fn scan_log(image: &[u8], bugs: &BugRegistry) -> Result<Vec<WalRecord>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < image.len() {
        if image.len() - pos < FRAME_HEADER {
            // Dangling header bytes: the tail of a write that died before
            // even its length prefix was complete.
            if bugs.recovery_active(RecoveryBugId::TornTailAsComplete) {
                return Err(Error::Internal(format!(
                    "wal scan: {} dangling tail byte(s) decoded as a record",
                    image.len() - pos
                )));
            }
            break;
        }
        let len = u32::from_le_bytes(image[pos..pos + 4].try_into().unwrap()) as usize;
        let stored_sum = u32::from_le_bytes(image[pos + 4..pos + 8].try_into().unwrap());
        let body_start = pos + FRAME_HEADER;
        if image.len() - body_start < len {
            // Torn payload: the final frame is shorter than its own length
            // prefix claims.
            if bugs.recovery_active(RecoveryBugId::TornTailAsComplete) {
                let partial = &image[body_start..];
                out.push(decode_record(partial).map_err(|e| {
                    Error::Internal(format!("wal scan: torn tail decoded as complete: {e}"))
                })?);
            }
            break;
        }
        let payload = &image[body_start..body_start + len];
        if checksum(payload) != stored_sum
            && !bugs.recovery_active(RecoveryBugId::SkipChecksumVerify)
        {
            // Checksum mismatch: the crashing write landed full-length but
            // damaged. Truncate here.
            break;
        }
        let rec = decode_record(payload)
            .map_err(|e| Error::Internal(format!("wal scan: undecodable record: {e}")))?;
        out.push(rec);
        pos = body_start + len;
    }
    Ok(out)
}

/// One snapshot parsed out of the snapshot file: its declared statement
/// coverage, its body records, and whether its end marker sealed it.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The first `stmt_idx` commits are contained in this snapshot.
    pub stmt_idx: u64,
    /// The serialized state: DDL history in execution order, then each
    /// table's rows.
    pub body: Vec<WalRecord>,
    /// A matching [`WalRecord::SnapshotEnd`] (same `stmt_idx`, correct
    /// record count) made this snapshot durable. Unsealed snapshots are
    /// writers that died mid-checkpoint.
    pub sealed: bool,
}

/// Parse the snapshot file into its snapshots, oldest first. Uses the
/// same frame discipline as [`scan_log`]: the walk truncates at the first
/// damaged frame (which, by the fault model, can only be the trailing
/// write of the crashing checkpoint). Stray frames outside a
/// `SnapshotBegin`/`SnapshotEnd` pair are skipped — a hostile image must
/// produce an error or a clean parse, never a panic.
pub fn scan_snapshots(image: &[u8], bugs: &BugRegistry) -> Result<Vec<Snapshot>> {
    let mut out: Vec<Snapshot> = Vec::new();
    let mut open: Option<Snapshot> = None;
    let mut pos = 0usize;
    while pos < image.len() {
        if image.len() - pos < FRAME_HEADER {
            break;
        }
        let len = u32::from_le_bytes(image[pos..pos + 4].try_into().unwrap()) as usize;
        let stored_sum = u32::from_le_bytes(image[pos + 4..pos + 8].try_into().unwrap());
        let body_start = pos + FRAME_HEADER;
        if image.len() - body_start < len {
            // Torn trailing frame: the checkpoint writer died mid-write.
            break;
        }
        let payload = &image[body_start..body_start + len];
        if checksum(payload) != stored_sum
            && !bugs.recovery_active(RecoveryBugId::SkipSnapshotChecksum)
        {
            break;
        }
        let rec = decode_record(payload)
            .map_err(|e| Error::Internal(format!("snapshot scan: undecodable record: {e}")))?;
        pos = body_start + len;
        match rec {
            WalRecord::SnapshotBegin { stmt_idx } => {
                // A begin while another snapshot is open abandons the open
                // one (it never sealed).
                if let Some(s) = open.take() {
                    out.push(s);
                }
                open = Some(Snapshot {
                    stmt_idx,
                    body: Vec::new(),
                    sealed: false,
                });
            }
            WalRecord::SnapshotEnd { stmt_idx, records } => {
                if let Some(mut s) = open.take() {
                    s.sealed = s.stmt_idx == stmt_idx && s.body.len() as u64 == records;
                    out.push(s);
                }
                // A stray end with no open snapshot is skipped.
            }
            body => {
                if let Some(s) = open.as_mut() {
                    s.body.push(body);
                }
                // Body records outside a snapshot are skipped.
            }
        }
    }
    if let Some(s) = open.take() {
        out.push(s);
    }
    Ok(out)
}

/// Pick the recovery base among the scanned snapshots: the newest sealed
/// one, or `None` for genesis. The checkpoint-path mutants hook here.
pub fn choose_snapshot<'a>(snaps: &'a [Snapshot], bugs: &BugRegistry) -> Option<&'a Snapshot> {
    if bugs.recovery_active(RecoveryBugId::AcceptTornSnapshot) {
        // Mutant: a trailing unsealed snapshot (writer died mid-
        // checkpoint) is used as the base anyway.
        if let Some(last) = snaps.last() {
            if !last.sealed {
                return Some(last);
            }
        }
    }
    let mut sealed = snaps.iter().filter(|s| s.sealed);
    if bugs.recovery_active(RecoveryBugId::StaleSnapshotPreferred) {
        // Mutant: the oldest sealed snapshot wins instead of the newest.
        return sealed.next();
    }
    sealed.last()
}

/// Rebuild the snapshot's state into `db` by applying its body records in
/// order: the DDL history re-executes, then the physical rows land.
pub fn apply_snapshot(db: &mut Database, snap: &Snapshot) -> Result<()> {
    for rec in &snap.body {
        apply_effect(db, rec)
            .map_err(|e| Error::Internal(format!("snapshot replay: {e}")))?;
    }
    Ok(())
}

/// Apply one effect record to the recovered store. DML effects are
/// physical; DDL re-executes its logged SQL against the recovered catalog.
fn apply_effect(db: &mut Database, rec: &WalRecord) -> Result<()> {
    match rec {
        WalRecord::Ddl { sql } => {
            let stmts = crate::parser::parse_statements(sql)
                .map_err(|e| Error::Internal(format!("wal replay: DDL does not re-parse: {e}")))?;
            for s in &stmts {
                db.execute(s).map_err(|e| {
                    Error::Internal(format!("wal replay: DDL does not re-execute: {e}"))
                })?;
            }
            Ok(())
        }
        WalRecord::InsertRow { table, row } => {
            let t = db.catalog_mut().table_mut(table)?;
            t.rows.push(Row::new(row.clone()));
            Ok(())
        }
        WalRecord::UpdateRow {
            table,
            row_idx,
            cols,
            vals,
        } => {
            let t = db.catalog_mut().table_mut(table)?;
            let i = *row_idx as usize;
            if i >= t.rows.len() {
                return Err(Error::Internal(format!(
                    "wal replay: update of row {i} but table {table} has {} rows",
                    t.rows.len()
                )));
            }
            for (c, v) in cols.iter().zip(vals.iter()) {
                let ci = *c as usize;
                if ci >= t.columns.len() {
                    return Err(Error::Internal(format!(
                        "wal replay: update of column {ci} but table {table} has {} columns",
                        t.columns.len()
                    )));
                }
                t.rows[i].set(ci, v.clone());
            }
            Ok(())
        }
        WalRecord::DeleteRows { table, rows } => {
            let t = db.catalog_mut().table_mut(table)?;
            for &r in rows.iter().rev() {
                let i = r as usize;
                if i >= t.rows.len() {
                    return Err(Error::Internal(format!(
                        "wal replay: delete of row {i} but table {table} has {} rows",
                        t.rows.len()
                    )));
                }
                t.rows.remove(i);
            }
            Ok(())
        }
        WalRecord::Commit { .. } => Err(Error::Internal(
            "wal replay: commit marker reached apply_effect".into(),
        )),
        // Checkpoint and snapshot markers are never effects; a hostile
        // image that smuggles one into an effect position must produce an
        // error, not a panic or a silent state change.
        WalRecord::CheckpointComplete { .. } => Err(Error::Internal(
            "wal replay: checkpoint marker reached apply_effect".into(),
        )),
        WalRecord::SnapshotBegin { .. } | WalRecord::SnapshotEnd { .. } => Err(Error::Internal(
            "wal replay: snapshot marker reached apply_effect".into(),
        )),
    }
}

/// Replay scanned log records into `db` on top of a base state covering
/// the first `base_stmts` commits (`None` = genesis). Effects buffer per
/// statement and apply at their commit marker; commits the base already
/// contains discard their effects (a truncation that never happened must
/// not double-apply); uncommitted effects are discarded.
pub fn replay_into(
    db: &mut Database,
    base_stmts: Option<u64>,
    records: &[WalRecord],
    bugs: &BugRegistry,
) -> Result<()> {
    let last_commit = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::Commit { .. }));
    let mut pending: Vec<&WalRecord> = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        match rec {
            WalRecord::Commit { stmt_idx } => {
                if let Some(base) = base_stmts {
                    if *stmt_idx < base
                        && !bugs.recovery_active(RecoveryBugId::ReplayFromWrongOffset)
                    {
                        // The snapshot already contains this statement:
                        // the log overlaps the base (a crash landed
                        // between the checkpoint marker and the
                        // truncation). Discard, don't double-apply.
                        pending.clear();
                        continue;
                    }
                }
                if bugs.recovery_active(RecoveryBugId::DropLastCommit) && Some(i) == last_commit {
                    // Mutant: the final durability point vanishes; its
                    // effects stay pending (i.e. uncommitted).
                    continue;
                }
                if bugs.recovery_active(RecoveryBugId::ReorderCommitEffects) {
                    pending.reverse();
                }
                for e in pending.drain(..) {
                    apply_effect(db, e)?;
                }
            }
            // The checkpoint durability marker carries no effect; it
            // survives in the log only when the crash beat the truncation.
            WalRecord::CheckpointComplete { .. } => {}
            effect => pending.push(effect),
        }
    }
    if bugs.recovery_active(RecoveryBugId::ReplayUncommitted) {
        for e in pending.drain(..) {
            apply_effect(db, e)?;
        }
    }
    // Row effects were applied physically, bypassing the per-DML index
    // maintenance hooks: rebuild every ordered index from the recovered
    // rows. Deterministic — build order is catalog order, key order is
    // value order — so a recovered engine's seek behaviour is
    // byte-identical to the never-crashed reference's.
    db.catalog_mut().rebuild_index_data();
    Ok(())
}

/// Replay scanned records into a fresh database from genesis (no
/// snapshot base).
pub fn replay(records: &[WalRecord], dialect: Dialect, bugs: &BugRegistry) -> Result<Database> {
    let mut db = Database::new(dialect);
    replay_into(&mut db, None, records, bugs)?;
    Ok(db)
}

/// What [`recover_detailed`] did, for assertions and reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Statement coverage of the snapshot recovery based itself on, or
    /// `None` when it replayed from genesis.
    pub snapshot_stmts: Option<u64>,
    /// Snapshots parsed out of the snapshot file (sealed or not).
    pub snapshots_scanned: usize,
    /// Intact records parsed out of the log image.
    pub log_records: usize,
}

/// Recover a database from the surviving log and snapshot images: scan
/// the snapshot file, base on the newest sealed snapshot (genesis when
/// there is none — an empty `snap_image` is the pre-checkpoint world),
/// then replay the log suffix on top.
pub fn recover(
    log_image: &[u8],
    snap_image: &[u8],
    dialect: Dialect,
    bugs: &BugRegistry,
) -> Result<Database> {
    recover_detailed(log_image, snap_image, dialect, bugs).map(|(db, _)| db)
}

/// [`recover`], also reporting which base it chose and what it scanned.
pub fn recover_detailed(
    log_image: &[u8],
    snap_image: &[u8],
    dialect: Dialect,
    bugs: &BugRegistry,
) -> Result<(Database, RecoveryInfo)> {
    let snaps = scan_snapshots(snap_image, bugs)?;
    let base = choose_snapshot(&snaps, bugs);
    let mut db = Database::new(dialect);
    if let Some(s) = base {
        apply_snapshot(&mut db, s)?;
    }
    let records = scan_log(log_image, bugs)?;
    replay_into(&mut db, base.map(|s| s.stmt_idx), &records, bugs)?;
    let info = RecoveryInfo {
        snapshot_stmts: base.map(|s| s.stmt_idx),
        snapshots_scanned: snaps.len(),
        log_records: records.len(),
    };
    Ok((db, info))
}

/// The crash-recovery differential, shared by the `recover` oracle and the
/// reducer: execute `script` on a durable engine under `plan`, recover the
/// surviving image, and compare against a never-crashed engine that
/// executed only the committed prefix. Returns `Some(detail)` when
/// recovery diverges (wrong state or a recovery error), `None` when it is
/// byte-identical.
///
/// Both executions run under the same `bugs` registry, so injected
/// *engine* mutants corrupt both sides identically and cancel out; only
/// *recovery* mutants (or a genuine recovery defect) can produce a
/// divergence.
pub fn recovery_divergence(
    script: &[crate::ast::Statement],
    plan: &crate::wal::FaultPlan,
    dialect: Dialect,
    bugs: &BugRegistry,
) -> Option<String> {
    recovery_divergence_checkpointed(script, &[], plan, dialect, bugs)
}

/// The checkpointed crash-recovery differential: like
/// [`recovery_divergence`], but the faulted run calls
/// [`Database::checkpoint`] after each statement index listed in
/// `checkpoints` (0-based; indices past the script are ignored). The
/// reference run never checkpoints — checkpointing is a pure storage-layer
/// operation, so the committed-prefix state it must match is unchanged.
///
/// Beyond the state diff, this also checks the snapshot contract against
/// writer-side ground truth: recovery must base itself on exactly the
/// newest snapshot whose seal became durable before the crash
/// ([`crate::wal::Wal::durable_snapshot_stmts`]) — recovering correct
/// bytes from genesis when a valid checkpoint survived (or from a stale
/// or torn snapshot) is a divergence even if the final state matches.
pub fn recovery_divergence_checkpointed(
    script: &[crate::ast::Statement],
    checkpoints: &[usize],
    plan: &crate::wal::FaultPlan,
    dialect: Dialect,
    bugs: &BugRegistry,
) -> Option<String> {
    let durable_run =
        |plan: crate::wal::FaultPlan, ckpts: &[usize], stop_at: Option<u64>| -> Database {
            let mut db = Database::with_bugs(dialect, bugs.clone());
            db.set_storage_mode(crate::wal::StorageMode::Durable);
            db.set_fault_plan(plan);
            for (i, s) in script.iter().enumerate() {
                if let Some(c) = stop_at {
                    if db.wal().map(|w| w.committed_statements()) == Some(c) {
                        break;
                    }
                }
                let _ = db.execute(s);
                if ckpts.contains(&i) {
                    let _ = db.checkpoint();
                }
            }
            db
        };

    let faulted = durable_run(plan.clone(), checkpoints, None);
    let wal = faulted.wal().expect("durable");
    let committed = wal.committed_statements();
    let log_image = wal.image().to_vec();
    let snap_image = wal.snapshot_image().to_vec();
    let durable_snap = wal.durable_snapshot_stmts();
    let context = {
        let site = wal
            .crash_site()
            .map(|s| format!(", crashed during {}", s.label()))
            .unwrap_or_default();
        let ckpts = if checkpoints.is_empty() {
            String::new()
        } else {
            format!(", checkpoints after stmts {checkpoints:?}")
        };
        format!("{}{site}{ckpts}", plan.describe())
    };

    let (recovered, info) = match recover_detailed(&log_image, &snap_image, dialect, bugs) {
        Ok(x) => x,
        Err(e) => return Some(format!("recovery failed: {e} ({context})")),
    };

    if info.snapshot_stmts != durable_snap {
        return Some(format!(
            "recovery based itself on snapshot {:?} but the newest durable \
             snapshot covers {:?} ({context})",
            info.snapshot_stmts, durable_snap
        ));
    }

    let reference = durable_run(crate::wal::FaultPlan::none(), &[], Some(committed));
    let got_committed = reference.wal().expect("durable").committed_statements();
    if got_committed != committed {
        return Some(format!(
            "reference run reached {got_committed} commits, expected {committed}"
        ));
    }
    let want = reference.dump_state();
    let got = recovered.dump_state();
    if want != got {
        return Some(format!(
            "recovered state diverges from the committed prefix \
             (committed={committed}, {context}):\n--- expected ---\n{want}\n--- recovered ---\n{got}",
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{encode_record, FaultMode, FaultPlan, StorageMode, Wal};

    fn durable_db() -> Database {
        let mut db = Database::new(Dialect::Sqlite);
        db.set_storage_mode(StorageMode::Durable);
        db
    }

    fn run_sql(db: &mut Database, sql: &str) {
        db.execute_sql(sql).unwrap();
    }

    #[test]
    fn clean_log_recovers_byte_identically() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT, b TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z');
             CREATE INDEX i ON t (a);
             CREATE VIEW v (n) AS SELECT COUNT(*) FROM t;
             UPDATE t SET b = 'q' WHERE a > 1;
             DELETE FROM t WHERE a = 2",
        );
        let image = db.wal().unwrap().image().to_vec();
        let rec = recover(&image, &[], Dialect::Sqlite, &BugRegistry::none()).unwrap();
        assert_eq!(rec.dump_state(), db.dump_state());
    }

    #[test]
    fn torn_tail_is_truncated_not_replayed() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2)",
        );
        let mut image = db.wal().unwrap().image().to_vec();
        // Append half of another frame by hand.
        let extra = {
            let mut w = Wal::new(FaultPlan {
                crash_op: 0,
                mode: FaultMode::Torn { keep_sel: 11 },
            });
            w.append(&WalRecord::InsertRow {
                table: "t".into(),
                row: vec![crate::value::Value::Int(9)],
            });
            w.image().to_vec()
        };
        image.extend_from_slice(&extra);
        let rec = recover(&image, &[], Dialect::Sqlite, &BugRegistry::none()).unwrap();
        assert_eq!(rec.dump_state(), db.dump_state());
    }

    #[test]
    fn checksum_mismatch_truncates_the_log() {
        let mut db = durable_db();
        run_sql(&mut db, "CREATE TABLE t (a INT); INSERT INTO t VALUES (1)");
        let committed_image = db.wal().unwrap().image().to_vec();
        // A corrupted full-length frame after the good prefix.
        let mut image = committed_image.clone();
        let mut w = Wal::new(FaultPlan {
            crash_op: 0,
            mode: FaultMode::Corrupt { byte_sel: 3 },
        });
        w.append(&WalRecord::InsertRow {
            table: "t".into(),
            row: vec![crate::value::Value::Int(7)],
        });
        image.extend_from_slice(w.image());
        let rec = recover(&image, &[], Dialect::Sqlite, &BugRegistry::none()).unwrap();
        let reference = recover(&committed_image, &[], Dialect::Sqlite, &BugRegistry::none()).unwrap();
        assert_eq!(rec.dump_state(), reference.dump_state());
    }

    #[test]
    fn uncommitted_effects_are_discarded() {
        // Effects with no commit marker: build the image by hand.
        let mut w = Wal::new(FaultPlan::none());
        w.append(&WalRecord::Ddl {
            sql: "CREATE TABLE t (a INT)".into(),
        });
        w.commit_statement();
        w.append(&WalRecord::InsertRow {
            table: "t".into(),
            row: vec![crate::value::Value::Int(1)],
        });
        // ... crash before the commit marker.
        let rec = recover(w.image(), &[], Dialect::Sqlite, &BugRegistry::none()).unwrap();
        assert_eq!(rec.catalog().table("t").unwrap().rows.len(), 0);

        // The ReplayUncommitted mutant applies them anyway.
        let buggy = recover(
            w.image(),
            &[],
            Dialect::Sqlite,
            &BugRegistry::only_recovery(RecoveryBugId::ReplayUncommitted),
        )
        .unwrap();
        assert_eq!(buggy.catalog().table("t").unwrap().rows.len(), 1);
    }

    #[test]
    fn reorder_mutant_reverses_multi_row_inserts() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2), (3)",
        );
        let image = db.wal().unwrap().image().to_vec();
        let buggy = recover(
            &image,
            &[],
            Dialect::Sqlite,
            &BugRegistry::only_recovery(RecoveryBugId::ReorderCommitEffects),
        )
        .unwrap();
        let vals: Vec<_> = buggy.catalog().table("t").unwrap().rows.clone();
        assert_eq!(
            vals.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![
                crate::value::Value::Int(3),
                crate::value::Value::Int(2),
                crate::value::Value::Int(1)
            ]
        );
    }

    #[test]
    fn drop_last_commit_mutant_loses_the_final_statement() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); INSERT INTO t VALUES (2)",
        );
        let image = db.wal().unwrap().image().to_vec();
        let buggy = recover(
            &image,
            &[],
            Dialect::Sqlite,
            &BugRegistry::only_recovery(RecoveryBugId::DropLastCommit),
        )
        .unwrap();
        assert_eq!(buggy.catalog().table("t").unwrap().rows.len(), 1);
    }

    #[test]
    fn skip_checksum_mutant_accepts_corrupt_records() {
        // A corrupted frame: clean scan truncates, mutant scan accepts
        // (decoding either garbage or an error — both are wrong).
        let mut w = Wal::new(FaultPlan {
            crash_op: 2,
            mode: FaultMode::Corrupt { byte_sel: 9 },
        });
        w.append(&WalRecord::Ddl {
            sql: "CREATE TABLE t (a INT)".into(),
        });
        w.commit_statement();
        w.append(&WalRecord::InsertRow {
            table: "t".into(),
            row: vec![crate::value::Value::Int(5)],
        });
        let clean = scan_log(w.image(), &BugRegistry::none()).unwrap();
        assert_eq!(clean.len(), 2, "corrupt record truncated");
        let buggy = scan_log(
            w.image(),
            &BugRegistry::only_recovery(RecoveryBugId::SkipChecksumVerify),
        );
        match buggy {
            Ok(recs) => assert_ne!(
                recs.get(2),
                Some(&encode_record(&clean[0])).map(|_| &clean[0])
            ),
            Err(e) => assert!(e.to_string().contains("wal scan")),
        }
    }

    #[test]
    fn divergence_helper_is_clean_on_a_correct_engine() {
        let script = crate::parser::parse_statements(
            "CREATE TABLE t (a INT);
             INSERT INTO t VALUES (1), (2), (3);
             UPDATE t SET a = a * 10 WHERE a >= 2;
             DELETE FROM t WHERE a = 20",
        )
        .unwrap();
        // Every crash point, every mode.
        let mut db = Database::new(Dialect::Sqlite);
        db.set_storage_mode(StorageMode::Durable);
        for s in &script {
            db.execute(s).unwrap();
        }
        let total = db.wal().unwrap().ops();
        assert!(total > 0);
        for op in 0..total {
            for mode in [
                FaultMode::Lost,
                FaultMode::Torn { keep_sel: 5 },
                FaultMode::Corrupt { byte_sel: 2 },
            ] {
                let plan = FaultPlan { crash_op: op, mode };
                assert_eq!(
                    recovery_divergence(&script, &plan, Dialect::Sqlite, &BugRegistry::none()),
                    None,
                    "divergence at {plan:?}"
                );
            }
        }
    }

    #[test]
    fn checkpoint_recovers_from_snapshot_plus_suffix() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT, b TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, 'y');
             CREATE VIEW v (n) AS SELECT COUNT(*) FROM t",
        );
        db.checkpoint().unwrap();
        run_sql(&mut db, "INSERT INTO t VALUES (3, 'z'); DELETE FROM t WHERE a = 1");
        let w = db.wal().unwrap();
        assert_eq!(w.durable_snapshot_stmts(), Some(3));
        let (rec, info) = recover_detailed(
            &w.image().to_vec(),
            &w.snapshot_image().to_vec(),
            Dialect::Sqlite,
            &BugRegistry::none(),
        )
        .unwrap();
        assert_eq!(info.snapshot_stmts, Some(3), "recovery used the snapshot");
        assert_eq!(rec.dump_state(), db.dump_state());
    }

    #[test]
    fn truncation_bounds_the_replayable_log() {
        let mut db = durable_db();
        run_sql(&mut db, "CREATE TABLE t (a INT); INSERT INTO t VALUES (1)");
        let genesis_len = db.wal().unwrap().image().len();
        assert!(genesis_len > 0);
        db.checkpoint().unwrap();
        assert!(db.wal().unwrap().image().is_empty(), "log truncated");
        run_sql(&mut db, "INSERT INTO t VALUES (2)");
        assert!(db.wal().unwrap().image().len() < genesis_len, "suffix only");
    }

    #[test]
    fn ddl_history_snapshot_restores_drops_and_views() {
        // Schema history with a drop: snapshot-based recovery must rebuild
        // the post-drop catalog, not resurrect the dropped table.
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE gone (z INT);
             CREATE TABLE t (a INT);
             INSERT INTO t VALUES (7);
             CREATE INDEX i ON t (a);
             DROP TABLE gone",
        );
        db.checkpoint().unwrap();
        let w = db.wal().unwrap();
        let rec = recover(
            &w.image().to_vec(),
            &w.snapshot_image().to_vec(),
            Dialect::Sqlite,
            &BugRegistry::none(),
        )
        .unwrap();
        assert!(rec.catalog().table("gone").is_err());
        assert_eq!(rec.dump_state(), db.dump_state());
    }

    #[test]
    fn torn_snapshot_falls_back_to_previous_base() {
        // Two checkpoints; the fault plan kills a body write of the second
        // snapshot. Recovery must fall back to the first sealed snapshot
        // (clean reader) — the AcceptTornSnapshot mutant uses the torn one.
        let script = crate::parser::parse_statements(
            "CREATE TABLE t (a INT);
             INSERT INTO t VALUES (1);
             INSERT INTO t VALUES (2);
             INSERT INTO t VALUES (3)",
        )
        .unwrap();
        // Dry run with checkpoints after stmts 1 and 3 to find the op
        // range of the second snapshot.
        let mut db = durable_db();
        for (i, s) in script.iter().enumerate() {
            db.execute(s).unwrap();
            if i == 1 || i == 3 {
                db.checkpoint().unwrap();
            }
        }
        let total = db.wal().unwrap().ops();
        let mut fell_back = false;
        for op in 0..total {
            let plan = FaultPlan {
                crash_op: op,
                mode: FaultMode::Lost,
            };
            assert_eq!(
                recovery_divergence_checkpointed(
                    &script,
                    &[1, 3],
                    &plan,
                    Dialect::Sqlite,
                    &BugRegistry::none()
                ),
                None,
                "clean fallback diverged at op {op}"
            );
            // Re-derive whether this op landed inside the second snapshot:
            // writer ground truth says the newest durable seal is still
            // the first checkpoint's.
            let mut f = Database::new(Dialect::Sqlite);
            f.set_storage_mode(StorageMode::Durable);
            f.set_fault_plan(plan);
            for (i, s) in script.iter().enumerate() {
                let _ = f.execute(s);
                if i == 1 || i == 3 {
                    let _ = f.checkpoint();
                }
            }
            if f.wal().unwrap().durable_snapshot_stmts() == Some(2)
                && f.wal().unwrap().crashed()
            {
                fell_back = true;
            }
        }
        assert!(fell_back, "no crash point exercised the fallback path");
    }

    #[test]
    fn checkpoint_mutants_diverge_and_ground_truth_catches_base_lies() {
        let script = crate::parser::parse_statements(
            "CREATE TABLE t (a INT);
             INSERT INTO t VALUES (1);
             INSERT INTO t VALUES (2);
             INSERT INTO t VALUES (3)",
        )
        .unwrap();
        let mut db = durable_db();
        for (i, s) in script.iter().enumerate() {
            db.execute(s).unwrap();
            if i == 1 || i == 2 {
                db.checkpoint().unwrap();
            }
        }
        let total = db.wal().unwrap().ops();
        for bug in [
            RecoveryBugId::TruncateBeforeMarker,
            RecoveryBugId::ReplayFromWrongOffset,
            RecoveryBugId::AcceptTornSnapshot,
            RecoveryBugId::StaleSnapshotPreferred,
            RecoveryBugId::SkipSnapshotChecksum,
        ] {
            let bugs = BugRegistry::only_recovery(bug);
            let mut hit = false;
            for op in 0..=total {
                for mode in [
                    FaultMode::Lost,
                    FaultMode::Torn { keep_sel: 5 },
                    FaultMode::Corrupt { byte_sel: 2 },
                ] {
                    let plan = if op == total {
                        FaultPlan::none()
                    } else {
                        FaultPlan { crash_op: op, mode }
                    };
                    if recovery_divergence_checkpointed(
                        &script,
                        &[1, 2],
                        &plan,
                        Dialect::Sqlite,
                        &bugs,
                    )
                    .is_some()
                    {
                        hit = true;
                    }
                }
            }
            assert!(hit, "{} never diverged across the grid", bug.name());
        }
    }
}
