//! Crash recovery: load the newest sealed snapshot, then replay the WAL
//! suffix into it.
//!
//! Recovery is three-phase, like a real checkpointing redo-WAL:
//!
//! 1. **Snapshot scan** ([`scan_snapshots`]) walks the snapshot file with
//!    the same frame/checksum discipline as the log scan, groups frames
//!    into [`Snapshot`]s (a `SnapshotBegin` … body … `SnapshotEnd` run is
//!    *sealed* only when the end marker matches the begin marker's
//!    `stmt_idx` and its declared record count), and recovery bases itself
//!    on the **newest sealed** snapshot — an unsealed trailing snapshot is
//!    a writer that died mid-checkpoint and must be ignored, falling back
//!    to the previous sealed snapshot or genesis.
//! 2. **Log scan** ([`scan_log`]) walks the surviving log image frame by
//!    frame, verifying each record's length and checksum. The scan stops —
//!    truncating the log — at the first incomplete header, truncated
//!    payload, or checksum mismatch: everything past the damage is, by the
//!    fault model, the torn tail of the crashing write.
//! 3. **Replay** ([`replay_into`]) buffers effect records per statement
//!    and applies them only when the statement's commit marker is reached;
//!    commits the snapshot already covers (`stmt_idx <` the snapshot's
//!    coverage) discard their effects instead of double-applying. Effects
//!    whose commit never became durable are discarded — recovery
//!    reconstructs *exactly* the committed prefix, byte-identical to a
//!    never-crashed engine that executed only those statements, whether
//!    the base is a snapshot or genesis.
//!
//! The [`RecoveryBugId`] mutants are seeded into these phases the way
//! [`crate::bugs::BugId`] mutants are seeded into the planner/executor, so
//! campaigns can hunt recovery bugs the way they hunt optimizer bugs.

use crate::bugs::{BugRegistry, MediaBugId, RecoveryBugId};
use crate::database::Database;
use crate::dialect::Dialect;
use crate::error::{Error, Result, StorageError, StorageFaultKind, StorageSite};
use crate::value::Row;
use crate::wal::{
    checksum, decode_record, MediaMode, ReadFault, SimDisk, WalRecord, FRAME_HEADER, READ_RETRY_CAP,
};

/// Parse the surviving log image into the sequence of intact records,
/// truncating at the first sign of damage.
pub fn scan_log(image: &[u8], bugs: &BugRegistry) -> Result<Vec<WalRecord>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < image.len() {
        if image.len() - pos < FRAME_HEADER {
            // Dangling header bytes: the tail of a write that died before
            // even its length prefix was complete.
            if bugs.recovery_active(RecoveryBugId::TornTailAsComplete) {
                return Err(Error::Internal(format!(
                    "wal scan: {} dangling tail byte(s) decoded as a record",
                    image.len() - pos
                )));
            }
            break;
        }
        let len = u32::from_le_bytes(image[pos..pos + 4].try_into().unwrap()) as usize;
        let stored_sum = u32::from_le_bytes(image[pos + 4..pos + 8].try_into().unwrap());
        let body_start = pos + FRAME_HEADER;
        if image.len() - body_start < len {
            // Torn payload: the final frame is shorter than its own length
            // prefix claims.
            if bugs.recovery_active(RecoveryBugId::TornTailAsComplete) {
                let partial = &image[body_start..];
                out.push(decode_record(partial).map_err(|e| {
                    Error::Internal(format!("wal scan: torn tail decoded as complete: {e}"))
                })?);
            }
            break;
        }
        let payload = &image[body_start..body_start + len];
        if checksum(payload) != stored_sum
            && !bugs.recovery_active(RecoveryBugId::SkipChecksumVerify)
        {
            if bugs.media_active(MediaBugId::SalvagePastCorruptCommit) {
                // Mutant: salvage skips the damaged frame and keeps
                // scanning, replaying records *past* the corruption — the
                // suffix may now describe effects whose context is gone.
                pos = body_start + len;
                continue;
            }
            // Checksum mismatch: the crashing write landed full-length but
            // damaged. Truncate here — salvage may drop a suffix, never
            // replay across damage.
            break;
        }
        let rec = decode_record(payload)
            .map_err(|e| Error::Internal(format!("wal scan: undecodable record: {e}")))?;
        out.push(rec);
        pos = body_start + len;
    }
    Ok(out)
}

/// One snapshot parsed out of the snapshot file: its declared statement
/// coverage, its body records, and whether its end marker sealed it.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The first `stmt_idx` commits are contained in this snapshot.
    pub stmt_idx: u64,
    /// The serialized state: DDL history in execution order, then each
    /// table's rows.
    pub body: Vec<WalRecord>,
    /// A matching [`WalRecord::SnapshotEnd`] (same `stmt_idx`, correct
    /// record count) made this snapshot durable. Unsealed snapshots are
    /// writers that died mid-checkpoint.
    pub sealed: bool,
}

/// Parse the snapshot file into its snapshots, oldest first. Uses the
/// same frame discipline as [`scan_log`]: the walk truncates at the first
/// damaged frame (which, by the fault model, can only be the trailing
/// write of the crashing checkpoint). Stray frames outside a
/// `SnapshotBegin`/`SnapshotEnd` pair are skipped — a hostile image must
/// produce an error or a clean parse, never a panic.
pub fn scan_snapshots(image: &[u8], bugs: &BugRegistry) -> Result<Vec<Snapshot>> {
    let mut out: Vec<Snapshot> = Vec::new();
    let mut open: Option<Snapshot> = None;
    let mut pos = 0usize;
    while pos < image.len() {
        if image.len() - pos < FRAME_HEADER {
            break;
        }
        let len = u32::from_le_bytes(image[pos..pos + 4].try_into().unwrap()) as usize;
        let stored_sum = u32::from_le_bytes(image[pos + 4..pos + 8].try_into().unwrap());
        let body_start = pos + FRAME_HEADER;
        if image.len() - body_start < len {
            // Torn trailing frame: the checkpoint writer died mid-write.
            break;
        }
        let payload = &image[body_start..body_start + len];
        if checksum(payload) != stored_sum
            && !bugs.recovery_active(RecoveryBugId::SkipSnapshotChecksum)
        {
            break;
        }
        let rec = decode_record(payload)
            .map_err(|e| Error::Internal(format!("snapshot scan: undecodable record: {e}")))?;
        pos = body_start + len;
        match rec {
            WalRecord::SnapshotBegin { stmt_idx } => {
                // A begin while another snapshot is open abandons the open
                // one (it never sealed).
                if let Some(s) = open.take() {
                    out.push(s);
                }
                open = Some(Snapshot {
                    stmt_idx,
                    body: Vec::new(),
                    sealed: false,
                });
            }
            WalRecord::SnapshotEnd { stmt_idx, records } => {
                if let Some(mut s) = open.take() {
                    s.sealed = s.stmt_idx == stmt_idx && s.body.len() as u64 == records;
                    out.push(s);
                }
                // A stray end with no open snapshot is skipped.
            }
            body => {
                if let Some(s) = open.as_mut() {
                    s.body.push(body);
                }
                // Body records outside a snapshot are skipped.
            }
        }
    }
    if let Some(s) = open.take() {
        out.push(s);
    }
    Ok(out)
}

/// Pick the recovery base among the scanned snapshots: the newest sealed
/// one, or `None` for genesis. The checkpoint-path mutants hook here.
pub fn choose_snapshot<'a>(snaps: &'a [Snapshot], bugs: &BugRegistry) -> Option<&'a Snapshot> {
    if bugs.recovery_active(RecoveryBugId::AcceptTornSnapshot) {
        // Mutant: a trailing unsealed snapshot (writer died mid-
        // checkpoint) is used as the base anyway.
        if let Some(last) = snaps.last() {
            if !last.sealed {
                return Some(last);
            }
        }
    }
    let mut sealed = snaps.iter().filter(|s| s.sealed);
    if bugs.recovery_active(RecoveryBugId::StaleSnapshotPreferred) {
        // Mutant: the oldest sealed snapshot wins instead of the newest.
        return sealed.next();
    }
    sealed.next_back()
}

/// Rebuild the snapshot's state into `db` by applying its body records in
/// order: the DDL history re-executes, then the physical rows land.
pub fn apply_snapshot(db: &mut Database, snap: &Snapshot) -> Result<()> {
    for rec in &snap.body {
        apply_effect(db, rec).map_err(|e| Error::Internal(format!("snapshot replay: {e}")))?;
    }
    Ok(())
}

/// Apply one effect record to the recovered store. DML effects are
/// physical; DDL re-executes its logged SQL against the recovered catalog.
fn apply_effect(db: &mut Database, rec: &WalRecord) -> Result<()> {
    match rec {
        WalRecord::Ddl { sql } => {
            let stmts = crate::parser::parse_statements(sql)
                .map_err(|e| Error::Internal(format!("wal replay: DDL does not re-parse: {e}")))?;
            for s in &stmts {
                db.execute(s).map_err(|e| {
                    Error::Internal(format!("wal replay: DDL does not re-execute: {e}"))
                })?;
            }
            Ok(())
        }
        WalRecord::InsertRow { table, row } => {
            let t = db.catalog_mut().table_mut(table)?;
            t.rows.push(Row::new(row.clone()));
            Ok(())
        }
        WalRecord::UpdateRow {
            table,
            row_idx,
            cols,
            vals,
        } => {
            let t = db.catalog_mut().table_mut(table)?;
            let i = *row_idx as usize;
            if i >= t.rows.len() {
                return Err(Error::Internal(format!(
                    "wal replay: update of row {i} but table {table} has {} rows",
                    t.rows.len()
                )));
            }
            for (c, v) in cols.iter().zip(vals.iter()) {
                let ci = *c as usize;
                if ci >= t.columns.len() {
                    return Err(Error::Internal(format!(
                        "wal replay: update of column {ci} but table {table} has {} columns",
                        t.columns.len()
                    )));
                }
                t.rows[i].set(ci, v.clone());
            }
            Ok(())
        }
        WalRecord::DeleteRows { table, rows } => {
            let t = db.catalog_mut().table_mut(table)?;
            for &r in rows.iter().rev() {
                let i = r as usize;
                if i >= t.rows.len() {
                    return Err(Error::Internal(format!(
                        "wal replay: delete of row {i} but table {table} has {} rows",
                        t.rows.len()
                    )));
                }
                t.rows.remove(i);
            }
            Ok(())
        }
        WalRecord::Commit { .. } => Err(Error::Internal(
            "wal replay: commit marker reached apply_effect".into(),
        )),
        // Checkpoint and snapshot markers are never effects; a hostile
        // image that smuggles one into an effect position must produce an
        // error, not a panic or a silent state change.
        WalRecord::CheckpointComplete { .. } => Err(Error::Internal(
            "wal replay: checkpoint marker reached apply_effect".into(),
        )),
        WalRecord::SnapshotBegin { .. } | WalRecord::SnapshotEnd { .. } => Err(Error::Internal(
            "wal replay: snapshot marker reached apply_effect".into(),
        )),
    }
}

/// Replay scanned log records into `db` on top of a base state covering
/// the first `base_stmts` commits (`None` = genesis). Effects buffer per
/// statement and apply at their commit marker; commits the base already
/// contains discard their effects (a truncation that never happened must
/// not double-apply); uncommitted effects are discarded.
pub fn replay_into(
    db: &mut Database,
    base_stmts: Option<u64>,
    records: &[WalRecord],
    bugs: &BugRegistry,
) -> Result<()> {
    let last_commit = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::Commit { .. }));
    let mut pending: Vec<&WalRecord> = Vec::new();
    // Commits applied on top of the base must be contiguous. A gap means
    // the image lost a committed statement in the middle (at-rest damage,
    // or a rotted seal forcing fallback to a stale base): replaying past
    // it would apply effects whose context is gone. Drop the suffix — a
    // sound salvage never resurrects effects past missing history.
    let mut next = base_stmts.unwrap_or(0);
    for (i, rec) in records.iter().enumerate() {
        match rec {
            WalRecord::Commit { stmt_idx } => {
                if let Some(base) = base_stmts {
                    if *stmt_idx < base
                        && !bugs.recovery_active(RecoveryBugId::ReplayFromWrongOffset)
                    {
                        // The snapshot already contains this statement:
                        // the log overlaps the base (a crash landed
                        // between the checkpoint marker and the
                        // truncation). Discard, don't double-apply.
                        pending.clear();
                        continue;
                    }
                }
                if bugs.recovery_active(RecoveryBugId::DropLastCommit) && Some(i) == last_commit {
                    // Mutant: the final durability point vanishes; its
                    // effects stay pending (i.e. uncommitted).
                    continue;
                }
                if *stmt_idx > next {
                    // Contiguity gap: statement `next` is missing from the
                    // replayable history. Salvage stops here.
                    pending.clear();
                    break;
                }
                if bugs.recovery_active(RecoveryBugId::ReorderCommitEffects) {
                    pending.reverse();
                }
                for e in pending.drain(..) {
                    apply_effect(db, e)?;
                }
                next = stmt_idx + 1;
            }
            // The checkpoint durability marker carries no effect; it
            // survives in the log only when the crash beat the truncation.
            WalRecord::CheckpointComplete { .. } => {}
            effect => pending.push(effect),
        }
    }
    if bugs.recovery_active(RecoveryBugId::ReplayUncommitted) {
        for e in pending.drain(..) {
            apply_effect(db, e)?;
        }
    }
    // Row effects were applied physically, bypassing the per-DML index
    // maintenance hooks: rebuild every ordered index from the recovered
    // rows. Deterministic — build order is catalog order, key order is
    // value order — so a recovered engine's seek behaviour is
    // byte-identical to the never-crashed reference's.
    db.catalog_mut().rebuild_index_data();
    Ok(())
}

/// Replay scanned records into a fresh database from genesis (no
/// snapshot base).
pub fn replay(records: &[WalRecord], dialect: Dialect, bugs: &BugRegistry) -> Result<Database> {
    let mut db = Database::new(dialect);
    replay_into(&mut db, None, records, bugs)?;
    Ok(db)
}

/// What [`recover_detailed`] did, for assertions and reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Statement coverage of the snapshot recovery based itself on, or
    /// `None` when it replayed from genesis.
    pub snapshot_stmts: Option<u64>,
    /// Snapshots parsed out of the snapshot file (sealed or not).
    pub snapshots_scanned: usize,
    /// Intact records parsed out of the log image.
    pub log_records: usize,
}

/// Recover a database from the surviving log and snapshot images: scan
/// the snapshot file, base on the newest sealed snapshot (genesis when
/// there is none — an empty `snap_image` is the pre-checkpoint world),
/// then replay the log suffix on top.
pub fn recover(
    log_image: &[u8],
    snap_image: &[u8],
    dialect: Dialect,
    bugs: &BugRegistry,
) -> Result<Database> {
    recover_detailed(log_image, snap_image, dialect, bugs).map(|(db, _)| db)
}

/// [`recover`], also reporting which base it chose and what it scanned.
pub fn recover_detailed(
    log_image: &[u8],
    snap_image: &[u8],
    dialect: Dialect,
    bugs: &BugRegistry,
) -> Result<(Database, RecoveryInfo)> {
    let snaps = scan_snapshots(snap_image, bugs)?;
    let base = choose_snapshot(&snaps, bugs);
    let mut db = Database::new(dialect);
    if let Some(s) = base {
        apply_snapshot(&mut db, s)?;
    }
    let records = scan_log(log_image, bugs)?;
    replay_into(&mut db, base.map(|s| s.stmt_idx), &records, bugs)?;
    let info = RecoveryInfo {
        snapshot_stmts: base.map(|s| s.stmt_idx),
        snapshots_scanned: snaps.len(),
        log_records: records.len(),
    };
    Ok((db, info))
}

/// The crash-recovery differential, shared by the `recover` oracle and the
/// reducer: execute `script` on a durable engine under `plan`, recover the
/// surviving image, and compare against a never-crashed engine that
/// executed only the committed prefix. Returns `Some(detail)` when
/// recovery diverges (wrong state or a recovery error), `None` when it is
/// byte-identical.
///
/// Both executions run under the same `bugs` registry, so injected
/// *engine* mutants corrupt both sides identically and cancel out; only
/// *recovery* mutants (or a genuine recovery defect) can produce a
/// divergence.
pub fn recovery_divergence(
    script: &[crate::ast::Statement],
    plan: &crate::wal::FaultPlan,
    dialect: Dialect,
    bugs: &BugRegistry,
) -> Option<String> {
    recovery_divergence_checkpointed(script, &[], plan, dialect, bugs)
}

/// The checkpointed crash-recovery differential: like
/// [`recovery_divergence`], but the faulted run calls
/// [`Database::checkpoint`] after each statement index listed in
/// `checkpoints` (0-based; indices past the script are ignored). The
/// reference run never checkpoints — checkpointing is a pure storage-layer
/// operation, so the committed-prefix state it must match is unchanged.
///
/// Beyond the state diff, this also checks the snapshot contract against
/// writer-side ground truth: recovery must base itself on exactly the
/// newest snapshot whose seal became durable before the crash
/// ([`crate::wal::Wal::durable_snapshot_stmts`]) — recovering correct
/// bytes from genesis when a valid checkpoint survived (or from a stale
/// or torn snapshot) is a divergence even if the final state matches.
pub fn recovery_divergence_checkpointed(
    script: &[crate::ast::Statement],
    checkpoints: &[usize],
    plan: &crate::wal::FaultPlan,
    dialect: Dialect,
    bugs: &BugRegistry,
) -> Option<String> {
    let durable_run =
        |plan: crate::wal::FaultPlan, ckpts: &[usize], stop_at: Option<u64>| -> Database {
            let mut db = Database::with_bugs(dialect, bugs.clone());
            db.set_storage_mode(crate::wal::StorageMode::Durable);
            db.set_fault_plan(plan);
            for (i, s) in script.iter().enumerate() {
                if let Some(c) = stop_at {
                    if db.wal().map(|w| w.committed_statements()) == Some(c) {
                        break;
                    }
                }
                let _ = db.execute(s);
                if ckpts.contains(&i) {
                    let _ = db.checkpoint();
                }
            }
            db
        };

    let faulted = durable_run(plan.clone(), checkpoints, None);
    let wal = faulted.wal().expect("durable");
    let committed = wal.committed_statements();
    let log_image = wal.image().to_vec();
    let snap_image = wal.snapshot_image().to_vec();
    let durable_snap = wal.durable_snapshot_stmts();
    let context = {
        let site = wal
            .crash_site()
            .map(|s| format!(", crashed during {}", s.label()))
            .unwrap_or_default();
        let ckpts = if checkpoints.is_empty() {
            String::new()
        } else {
            format!(", checkpoints after stmts {checkpoints:?}")
        };
        format!("{}{site}{ckpts}", plan.describe())
    };

    let (recovered, info) = match recover_detailed(&log_image, &snap_image, dialect, bugs) {
        Ok(x) => x,
        Err(e) => return Some(format!("recovery failed: {e} ({context})")),
    };

    if info.snapshot_stmts != durable_snap {
        return Some(format!(
            "recovery based itself on snapshot {:?} but the newest durable \
             snapshot covers {:?} ({context})",
            info.snapshot_stmts, durable_snap
        ));
    }

    let reference = durable_run(crate::wal::FaultPlan::none(), &[], Some(committed));
    let got_committed = reference.wal().expect("durable").committed_statements();
    if got_committed != committed {
        return Some(format!(
            "reference run reached {got_committed} commits, expected {committed}"
        ));
    }
    let want = reference.dump_state();
    let got = recovered.dump_state();
    if want != got {
        return Some(format!(
            "recovered state diverges from the committed prefix \
             (committed={committed}, {context}):\n--- expected ---\n{want}\n--- recovered ---\n{got}",
        ));
    }
    None
}

/// One damaged or suspicious region found by [`scrub_images`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubFinding {
    /// Which image the finding is in.
    pub site: StorageSite,
    /// Byte offset of the damaged frame (or region start) in its image.
    pub offset: usize,
    /// Human-readable diagnosis.
    pub reason: String,
    /// `true` when the damage is consistent with an ordinary crash
    /// artifact at the end of the image (torn tail, dangling header,
    /// unsealed trailing snapshot). Tail findings are quarantined but do
    /// not force fail-stop: recovery truncates them by design. Non-tail
    /// findings are mid-image damage only at-rest corruption can produce.
    pub tail: bool,
}

/// What [`Database::scrub`] / [`scrub_images`] verified and found.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Intact frames verified in the log image.
    pub log_frames: usize,
    /// Intact frames verified in the snapshot image.
    pub snapshot_frames: usize,
    /// Damaged or suspicious regions, in image order (log first).
    pub findings: Vec<ScrubFinding>,
}

impl ScrubReport {
    /// No findings at all: every frame checksum and snapshot seal
    /// verified, and no crash artifacts were present.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings that cannot be explained as crash artifacts — evidence of
    /// at-rest corruption (or a scrub mutant's blind spot).
    pub fn damage(&self) -> impl Iterator<Item = &ScrubFinding> {
        self.findings.iter().filter(|f| !f.tail)
    }
}

/// Walk one image frame by frame, verifying checksums, and decode what
/// verifies. Returns the verified frame count plus the decoded records
/// (for the snapshot structure pass); damage is appended to `findings`.
fn scrub_frames(
    site: StorageSite,
    image: &[u8],
    bugs: &BugRegistry,
    findings: &mut Vec<ScrubFinding>,
) -> (usize, Vec<WalRecord>) {
    let mut frames = 0usize;
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < image.len() {
        if image.len() - pos < FRAME_HEADER {
            findings.push(ScrubFinding {
                site,
                offset: pos,
                reason: format!("dangling frame header ({} byte(s))", image.len() - pos),
                tail: true,
            });
            break;
        }
        let len = u32::from_le_bytes(image[pos..pos + 4].try_into().unwrap()) as usize;
        let stored_sum = u32::from_le_bytes(image[pos + 4..pos + 8].try_into().unwrap());
        let body_start = pos + FRAME_HEADER;
        if image.len() - body_start < len {
            findings.push(ScrubFinding {
                site,
                offset: pos,
                reason: format!(
                    "torn frame: payload declares {len} byte(s), {} present",
                    image.len() - body_start
                ),
                tail: true,
            });
            break;
        }
        let payload = &image[body_start..body_start + len];
        if checksum(payload) != stored_sum && !bugs.media_active(MediaBugId::SkipScrubChecksum) {
            findings.push(ScrubFinding {
                site,
                offset: pos,
                reason: "frame checksum mismatch".into(),
                tail: false,
            });
            let after = image.len() - (body_start + len);
            if after > 0 {
                findings.push(ScrubFinding {
                    site,
                    offset: body_start + len,
                    reason: format!("unverifiable suffix ({after} byte(s) past damaged frame)"),
                    tail: false,
                });
            }
            break;
        }
        match decode_record(payload) {
            Ok(rec) => {
                frames += 1;
                records.push(rec);
            }
            Err(e) => {
                findings.push(ScrubFinding {
                    site,
                    offset: pos,
                    reason: format!("undecodable record: {e}"),
                    tail: false,
                });
                break;
            }
        }
        pos = body_start + len;
    }
    (frames, records)
}

/// Verify every frame checksum in both images and every snapshot seal,
/// producing a quarantine report. Scrub never mutates anything and never
/// panics on hostile bytes; it classifies each finding as a *tail*
/// artifact (an ordinary crashing write — recovery truncates these by
/// design) or mid-image *damage* (at-rest corruption). The
/// [`MediaBugId::SkipScrubChecksum`] mutant hooks the checksum step.
pub fn scrub_images(log_image: &[u8], snap_image: &[u8], bugs: &BugRegistry) -> ScrubReport {
    let mut findings = Vec::new();
    let (log_frames, _) = scrub_frames(StorageSite::Log, log_image, bugs, &mut findings);
    let (snapshot_frames, snap_records) =
        scrub_frames(StorageSite::Snapshot, snap_image, bugs, &mut findings);

    // Structure pass over the snapshot records: every group must be
    // begin … body … matching seal. Only a *trailing* unsealed group is a
    // crash artifact; anything else is damage.
    let mut open: Option<(u64, u64)> = None; // (declared stmt_idx, body count)
    for (i, rec) in snap_records.iter().enumerate() {
        match rec {
            WalRecord::SnapshotBegin { stmt_idx } => {
                if open.is_some() {
                    findings.push(ScrubFinding {
                        site: StorageSite::Snapshot,
                        offset: i,
                        reason: "snapshot group abandoned by a new begin (never sealed)".into(),
                        tail: false,
                    });
                }
                open = Some((*stmt_idx, 0));
            }
            WalRecord::SnapshotEnd { stmt_idx, records } => match open.take() {
                Some((begin, count)) => {
                    if begin != *stmt_idx || count != *records {
                        findings.push(ScrubFinding {
                            site: StorageSite::Snapshot,
                            offset: i,
                            reason: format!(
                                "snapshot seal mismatch: begin stmt_idx={begin} with {count} \
                                 record(s), seal declares stmt_idx={stmt_idx} with {records}"
                            ),
                            tail: false,
                        });
                    }
                }
                None => findings.push(ScrubFinding {
                    site: StorageSite::Snapshot,
                    offset: i,
                    reason: "stray snapshot seal with no open group".into(),
                    tail: false,
                }),
            },
            _ => match open.as_mut() {
                Some((_, count)) => *count += 1,
                None => findings.push(ScrubFinding {
                    site: StorageSite::Snapshot,
                    offset: i,
                    reason: "stray record outside any snapshot group".into(),
                    tail: false,
                }),
            },
        }
    }
    if open.is_some() {
        findings.push(ScrubFinding {
            site: StorageSite::Snapshot,
            offset: snap_records.len(),
            reason: "trailing unsealed snapshot (writer died mid-checkpoint)".into(),
            tail: true,
        });
    }

    ScrubReport {
        log_frames,
        snapshot_frames,
        findings,
    }
}

/// What recovery does when scrub finds mid-image damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Recover the longest sound committed prefix, dropping an
    /// unreplayable suffix. Never replays across damage and never
    /// resurrects effects past a corrupt commit.
    #[default]
    Salvage,
    /// Refuse to recover at all when scrub reports mid-image damage:
    /// surface a structured [`StorageError`] instead. Tail artifacts
    /// (ordinary torn crashing writes) do not trigger fail-stop.
    FailStop,
}

/// [`recover_detailed`] behind a damage policy: `FailStop` scrubs first
/// and refuses damaged images with [`Error::Storage`]; `Salvage` is plain
/// [`recover_detailed`] (whose scan already truncates at damage).
pub fn recover_with_policy(
    log_image: &[u8],
    snap_image: &[u8],
    dialect: Dialect,
    bugs: &BugRegistry,
    policy: RecoveryPolicy,
) -> Result<(Database, RecoveryInfo)> {
    if policy == RecoveryPolicy::FailStop {
        let report = scrub_images(log_image, snap_image, bugs);
        let damage: Vec<&ScrubFinding> = report.damage().collect();
        if let Some(first) = damage.first() {
            return Err(Error::Storage(StorageError {
                site: first.site,
                kind: StorageFaultKind::Corrupted {
                    findings: damage.len(),
                },
            }));
        }
    }
    recover_detailed(log_image, snap_image, dialect, bugs)
}

/// The media-fault differential: the detect-or-identical contract.
///
/// Execute `script` on a durable engine under both a write-path crash
/// `plan` and an orthogonal media `plan` (at-rest bit rot, read faults
/// with bounded retry, disk-full appends), then demand that every
/// injected media fault is either **detected** (a scrub finding or a
/// structured [`StorageError`]) or **harmless** (the live writer and the
/// recovered engine are byte-identical to the committed-prefix oracle).
/// When damage is detected and the recovered state is not the full
/// prefix, the salvage must still equal *some* committed prefix — a
/// recovered state matching no prefix means salvage resurrected or
/// corrupted effects past the damage. Silent wrong recovery is the
/// finding.
pub fn recovery_divergence_media(
    script: &[crate::ast::Statement],
    checkpoints: &[usize],
    plan: &crate::wal::FaultPlan,
    media: &crate::wal::MediaPlan,
    dialect: Dialect,
    bugs: &BugRegistry,
) -> Option<String> {
    if !media.faults() {
        return recovery_divergence_checkpointed(script, checkpoints, plan, dialect, bugs);
    }
    let durable_run = |plan: crate::wal::FaultPlan,
                       media: crate::wal::MediaPlan,
                       ckpts: &[usize],
                       stop_at: Option<u64>|
     -> Database {
        let mut db = Database::with_bugs(dialect, bugs.clone());
        db.set_storage_mode(crate::wal::StorageMode::Durable);
        db.set_fault_plan(plan);
        db.set_media_plan(media);
        for (i, s) in script.iter().enumerate() {
            if let Some(c) = stop_at {
                if db.wal().map(|w| w.committed_statements()) == Some(c) {
                    break;
                }
            }
            let _ = db.execute(s);
            if ckpts.contains(&i) {
                let _ = db.checkpoint();
            }
        }
        db
    };

    let faulted = durable_run(plan.clone(), *media, checkpoints, None);
    let wal = faulted.wal().expect("durable");
    let committed = wal.committed_statements();
    let crashed = wal.crashed();
    let durable_snap = wal.durable_snapshot_stmts();
    let mut log_image = wal.image().to_vec();
    let mut snap_image = wal.snapshot_image().to_vec();
    let context = {
        let site = wal
            .crash_site()
            .map(|s| format!(", crashed during {}", s.label()))
            .unwrap_or_default();
        let ckpts = if checkpoints.is_empty() {
            String::new()
        } else {
            format!(", checkpoints after stmts {checkpoints:?}")
        };
        format!("{}, {}{site}{ckpts}", plan.describe(), media.describe())
    };

    // A clean engine executing the same script (same bugs registry, so
    // engine mutants cancel out) with no faults, stopped after `k`
    // commits: the committed-prefix oracle.
    let reference = |k: u64| -> Option<Database> {
        let db = durable_run(
            crate::wal::FaultPlan::none(),
            crate::wal::MediaPlan::none(),
            &[],
            Some(k),
        );
        (db.wal().expect("durable").committed_statements() == k).then_some(db)
    };

    // Live-writer check: a media fault on the append path (disk full)
    // must abort the statement cleanly — the serving engine stays exactly
    // at the committed prefix. Only meaningful when the writer survived.
    if !crashed {
        let Some(refdb) = reference(committed) else {
            return Some(format!(
                "reference run cannot reach {committed} commits ({context})"
            ));
        };
        let want = refdb.dump_state();
        let live = faulted.dump_state();
        if live != want {
            return Some(format!(
                "writer state diverges from the committed prefix after a media fault \
                 (committed={committed}, {context}):\n--- expected ---\n{want}\n--- live ---\n{live}"
            ));
        }
    }

    // At-rest degradation between shutdown and recovery: bit rot lands in
    // the images, read faults arm on the faulted site's disk.
    media.rot_images(&mut log_image, &mut snap_image);
    let mut log_disk = SimDisk::from_bytes(log_image);
    let mut snap_disk = SimDisk::from_bytes(snap_image);
    let fault = match media.mode {
        MediaMode::TransientRead { failures } => Some(ReadFault::Transient { failures }),
        MediaMode::PermanentRead => Some(ReadFault::Permanent),
        _ => None,
    };
    match media.site {
        StorageSite::Log => log_disk.set_read_fault(fault),
        StorageSite::Snapshot => snap_disk.set_read_fault(fault),
    }
    let must_fail = media.read_must_fail();
    let log_read = log_disk
        .read_with_retry(StorageSite::Log, bugs)
        .map(|b| b.to_vec());
    let snap_read = snap_disk
        .read_with_retry(StorageSite::Snapshot, bugs)
        .map(|b| b.to_vec());
    let (log_bytes, snap_bytes) = match (log_read, snap_read) {
        (Ok(l), Ok(s)) => {
            if must_fail {
                // The fault cannot heal within the bounded schedule, yet
                // the read came back: the retry cap was ignored.
                return Some(format!(
                    "retry contract violated: a read that must exceed the retry cap \
                     (cap {READ_RETRY_CAP}) succeeded ({context})"
                ));
            }
            (l, s)
        }
        (Err(e), _) | (_, Err(e)) => {
            if must_fail {
                // Graceful fail-stop on an unreadable medium: detected.
                return None;
            }
            // A transient fault within the retry budget must heal.
            return Some(format!(
                "recovery failed: {} ({context})",
                Error::Storage(e)
            ));
        }
    };

    let report = scrub_images(&log_bytes, &snap_bytes, bugs);

    let (recovered, info) = match recover_detailed(&log_bytes, &snap_bytes, dialect, bugs) {
        Ok(x) => x,
        Err(e) => {
            if !report.clean() {
                // Fail-stop on damage scrub also saw: detected.
                return None;
            }
            return Some(format!("recovery failed: {e} ({context})"));
        }
    };

    let Some(refdb) = reference(committed) else {
        return Some(format!(
            "reference run cannot reach {committed} commits ({context})"
        ));
    };
    let want = refdb.dump_state();
    let got = recovered.dump_state();
    if got == want {
        // Harmless (byte-identical). With a clean scrub the snapshot base
        // contract still applies; with findings, damage may legitimately
        // have forced a different base.
        if report.clean() && info.snapshot_stmts != durable_snap {
            return Some(format!(
                "recovery based itself on snapshot {:?} but the newest durable \
                 snapshot covers {:?} ({context})",
                info.snapshot_stmts, durable_snap
            ));
        }
        return None;
    }
    if report.clean() {
        return Some(format!(
            "silent wrong recovery: media damage went undetected and recovery \
             diverged from the committed prefix (committed={committed}, {context}):\n\
             --- expected ---\n{want}\n--- recovered ---\n{got}"
        ));
    }
    // Damage was detected and the full prefix is gone: the salvage must
    // equal SOME shorter committed prefix — never a state no committed
    // history ever produced.
    for k in (0..committed).rev() {
        if let Some(r) = reference(k) {
            if r.dump_state() == got {
                return None;
            }
        }
    }
    Some(format!(
        "salvage resurrected or corrupted state past the damage: recovered state \
         matches no committed prefix (committed={committed}, {context}):\n\
         --- committed prefix ---\n{want}\n--- recovered ---\n{got}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{encode_record, FaultMode, FaultPlan, StorageMode, Wal};

    fn durable_db() -> Database {
        let mut db = Database::new(Dialect::Sqlite);
        db.set_storage_mode(StorageMode::Durable);
        db
    }

    fn run_sql(db: &mut Database, sql: &str) {
        db.execute_sql(sql).unwrap();
    }

    #[test]
    fn clean_log_recovers_byte_identically() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT, b TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z');
             CREATE INDEX i ON t (a);
             CREATE VIEW v (n) AS SELECT COUNT(*) FROM t;
             UPDATE t SET b = 'q' WHERE a > 1;
             DELETE FROM t WHERE a = 2",
        );
        let image = db.wal().unwrap().image().to_vec();
        let rec = recover(&image, &[], Dialect::Sqlite, &BugRegistry::none()).unwrap();
        assert_eq!(rec.dump_state(), db.dump_state());
    }

    #[test]
    fn torn_tail_is_truncated_not_replayed() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2)",
        );
        let mut image = db.wal().unwrap().image().to_vec();
        // Append half of another frame by hand.
        let extra = {
            let mut w = Wal::new(FaultPlan {
                crash_op: 0,
                mode: FaultMode::Torn { keep_sel: 11 },
            });
            w.append(&WalRecord::InsertRow {
                table: "t".into(),
                row: vec![crate::value::Value::Int(9)],
            })
            .unwrap();
            w.image().to_vec()
        };
        image.extend_from_slice(&extra);
        let rec = recover(&image, &[], Dialect::Sqlite, &BugRegistry::none()).unwrap();
        assert_eq!(rec.dump_state(), db.dump_state());
    }

    #[test]
    fn checksum_mismatch_truncates_the_log() {
        let mut db = durable_db();
        run_sql(&mut db, "CREATE TABLE t (a INT); INSERT INTO t VALUES (1)");
        let committed_image = db.wal().unwrap().image().to_vec();
        // A corrupted full-length frame after the good prefix.
        let mut image = committed_image.clone();
        let mut w = Wal::new(FaultPlan {
            crash_op: 0,
            mode: FaultMode::Corrupt { byte_sel: 3 },
        });
        w.append(&WalRecord::InsertRow {
            table: "t".into(),
            row: vec![crate::value::Value::Int(7)],
        })
        .unwrap();
        image.extend_from_slice(w.image());
        let rec = recover(&image, &[], Dialect::Sqlite, &BugRegistry::none()).unwrap();
        let reference =
            recover(&committed_image, &[], Dialect::Sqlite, &BugRegistry::none()).unwrap();
        assert_eq!(rec.dump_state(), reference.dump_state());
    }

    #[test]
    fn uncommitted_effects_are_discarded() {
        // Effects with no commit marker: build the image by hand.
        let mut w = Wal::new(FaultPlan::none());
        w.append(&WalRecord::Ddl {
            sql: "CREATE TABLE t (a INT)".into(),
        })
        .unwrap();
        w.commit_statement().unwrap();
        w.append(&WalRecord::InsertRow {
            table: "t".into(),
            row: vec![crate::value::Value::Int(1)],
        })
        .unwrap();
        // ... crash before the commit marker.
        let rec = recover(w.image(), &[], Dialect::Sqlite, &BugRegistry::none()).unwrap();
        assert_eq!(rec.catalog().table("t").unwrap().rows.len(), 0);

        // The ReplayUncommitted mutant applies them anyway.
        let buggy = recover(
            w.image(),
            &[],
            Dialect::Sqlite,
            &BugRegistry::only_recovery(RecoveryBugId::ReplayUncommitted),
        )
        .unwrap();
        assert_eq!(buggy.catalog().table("t").unwrap().rows.len(), 1);
    }

    #[test]
    fn reorder_mutant_reverses_multi_row_inserts() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2), (3)",
        );
        let image = db.wal().unwrap().image().to_vec();
        let buggy = recover(
            &image,
            &[],
            Dialect::Sqlite,
            &BugRegistry::only_recovery(RecoveryBugId::ReorderCommitEffects),
        )
        .unwrap();
        let vals: Vec<_> = buggy.catalog().table("t").unwrap().rows.clone();
        assert_eq!(
            vals.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![
                crate::value::Value::Int(3),
                crate::value::Value::Int(2),
                crate::value::Value::Int(1)
            ]
        );
    }

    #[test]
    fn drop_last_commit_mutant_loses_the_final_statement() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); INSERT INTO t VALUES (2)",
        );
        let image = db.wal().unwrap().image().to_vec();
        let buggy = recover(
            &image,
            &[],
            Dialect::Sqlite,
            &BugRegistry::only_recovery(RecoveryBugId::DropLastCommit),
        )
        .unwrap();
        assert_eq!(buggy.catalog().table("t").unwrap().rows.len(), 1);
    }

    #[test]
    fn skip_checksum_mutant_accepts_corrupt_records() {
        // A corrupted frame: clean scan truncates, mutant scan accepts
        // (decoding either garbage or an error — both are wrong).
        let mut w = Wal::new(FaultPlan {
            crash_op: 2,
            mode: FaultMode::Corrupt { byte_sel: 9 },
        });
        w.append(&WalRecord::Ddl {
            sql: "CREATE TABLE t (a INT)".into(),
        })
        .unwrap();
        w.commit_statement().unwrap();
        w.append(&WalRecord::InsertRow {
            table: "t".into(),
            row: vec![crate::value::Value::Int(5)],
        })
        .unwrap();
        let clean = scan_log(w.image(), &BugRegistry::none()).unwrap();
        assert_eq!(clean.len(), 2, "corrupt record truncated");
        let buggy = scan_log(
            w.image(),
            &BugRegistry::only_recovery(RecoveryBugId::SkipChecksumVerify),
        );
        match buggy {
            Ok(recs) => assert_ne!(
                recs.get(2),
                Some(&encode_record(&clean[0])).map(|_| &clean[0])
            ),
            Err(e) => assert!(e.to_string().contains("wal scan")),
        }
    }

    #[test]
    fn divergence_helper_is_clean_on_a_correct_engine() {
        let script = crate::parser::parse_statements(
            "CREATE TABLE t (a INT);
             INSERT INTO t VALUES (1), (2), (3);
             UPDATE t SET a = a * 10 WHERE a >= 2;
             DELETE FROM t WHERE a = 20",
        )
        .unwrap();
        // Every crash point, every mode.
        let mut db = Database::new(Dialect::Sqlite);
        db.set_storage_mode(StorageMode::Durable);
        for s in &script {
            db.execute(s).unwrap();
        }
        let total = db.wal().unwrap().ops();
        assert!(total > 0);
        for op in 0..total {
            for mode in [
                FaultMode::Lost,
                FaultMode::Torn { keep_sel: 5 },
                FaultMode::Corrupt { byte_sel: 2 },
            ] {
                let plan = FaultPlan { crash_op: op, mode };
                assert_eq!(
                    recovery_divergence(&script, &plan, Dialect::Sqlite, &BugRegistry::none()),
                    None,
                    "divergence at {plan:?}"
                );
            }
        }
    }

    #[test]
    fn checkpoint_recovers_from_snapshot_plus_suffix() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT, b TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, 'y');
             CREATE VIEW v (n) AS SELECT COUNT(*) FROM t",
        );
        db.checkpoint().unwrap();
        run_sql(
            &mut db,
            "INSERT INTO t VALUES (3, 'z'); DELETE FROM t WHERE a = 1",
        );
        let w = db.wal().unwrap();
        assert_eq!(w.durable_snapshot_stmts(), Some(3));
        let (rec, info) = recover_detailed(
            w.image(),
            w.snapshot_image(),
            Dialect::Sqlite,
            &BugRegistry::none(),
        )
        .unwrap();
        assert_eq!(info.snapshot_stmts, Some(3), "recovery used the snapshot");
        assert_eq!(rec.dump_state(), db.dump_state());
    }

    #[test]
    fn truncation_bounds_the_replayable_log() {
        let mut db = durable_db();
        run_sql(&mut db, "CREATE TABLE t (a INT); INSERT INTO t VALUES (1)");
        let genesis_len = db.wal().unwrap().image().len();
        assert!(genesis_len > 0);
        db.checkpoint().unwrap();
        assert!(db.wal().unwrap().image().is_empty(), "log truncated");
        run_sql(&mut db, "INSERT INTO t VALUES (2)");
        assert!(db.wal().unwrap().image().len() < genesis_len, "suffix only");
    }

    #[test]
    fn ddl_history_snapshot_restores_drops_and_views() {
        // Schema history with a drop: snapshot-based recovery must rebuild
        // the post-drop catalog, not resurrect the dropped table.
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE gone (z INT);
             CREATE TABLE t (a INT);
             INSERT INTO t VALUES (7);
             CREATE INDEX i ON t (a);
             DROP TABLE gone",
        );
        db.checkpoint().unwrap();
        let w = db.wal().unwrap();
        let rec = recover(
            w.image(),
            w.snapshot_image(),
            Dialect::Sqlite,
            &BugRegistry::none(),
        )
        .unwrap();
        assert!(rec.catalog().table("gone").is_err());
        assert_eq!(rec.dump_state(), db.dump_state());
    }

    #[test]
    fn torn_snapshot_falls_back_to_previous_base() {
        // Two checkpoints; the fault plan kills a body write of the second
        // snapshot. Recovery must fall back to the first sealed snapshot
        // (clean reader) — the AcceptTornSnapshot mutant uses the torn one.
        let script = crate::parser::parse_statements(
            "CREATE TABLE t (a INT);
             INSERT INTO t VALUES (1);
             INSERT INTO t VALUES (2);
             INSERT INTO t VALUES (3)",
        )
        .unwrap();
        // Dry run with checkpoints after stmts 1 and 3 to find the op
        // range of the second snapshot.
        let mut db = durable_db();
        for (i, s) in script.iter().enumerate() {
            db.execute(s).unwrap();
            if i == 1 || i == 3 {
                db.checkpoint().unwrap();
            }
        }
        let total = db.wal().unwrap().ops();
        let mut fell_back = false;
        for op in 0..total {
            let plan = FaultPlan {
                crash_op: op,
                mode: FaultMode::Lost,
            };
            assert_eq!(
                recovery_divergence_checkpointed(
                    &script,
                    &[1, 3],
                    &plan,
                    Dialect::Sqlite,
                    &BugRegistry::none()
                ),
                None,
                "clean fallback diverged at op {op}"
            );
            // Re-derive whether this op landed inside the second snapshot:
            // writer ground truth says the newest durable seal is still
            // the first checkpoint's.
            let mut f = Database::new(Dialect::Sqlite);
            f.set_storage_mode(StorageMode::Durable);
            f.set_fault_plan(plan);
            for (i, s) in script.iter().enumerate() {
                let _ = f.execute(s);
                if i == 1 || i == 3 {
                    let _ = f.checkpoint();
                }
            }
            if f.wal().unwrap().durable_snapshot_stmts() == Some(2) && f.wal().unwrap().crashed() {
                fell_back = true;
            }
        }
        assert!(fell_back, "no crash point exercised the fallback path");
    }

    #[test]
    fn scrub_is_clean_on_intact_images_and_classifies_tail_vs_damage() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2)",
        );
        db.checkpoint().unwrap();
        run_sql(&mut db, "INSERT INTO t VALUES (3)");
        let log = db.wal().unwrap().image().to_vec();
        let snap = db.wal().unwrap().snapshot_image().to_vec();

        let report = scrub_images(&log, &snap, &BugRegistry::none());
        assert!(report.clean(), "intact images: {:?}", report.findings);
        assert!(report.log_frames > 0);
        assert!(report.snapshot_frames > 0);

        // Dangling tail bytes are a crash artifact, not damage.
        let mut torn = log.clone();
        torn.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
        let report = scrub_images(&torn, &snap, &BugRegistry::none());
        assert!(!report.clean());
        assert_eq!(report.damage().count(), 0, "tail artifact is not damage");
        assert!(report.findings[0].tail);
        assert!(report.findings[0].reason.contains("dangling"));

        // A mid-image bit flip is damage, and the suffix past it is
        // reported unverifiable.
        let mut rotted = log.clone();
        let mid = FRAME_HEADER + 1; // inside the first frame's payload
        rotted[mid] ^= 0x40;
        let report = scrub_images(&rotted, &snap, &BugRegistry::none());
        assert!(report.damage().count() >= 1, "{:?}", report.findings);
        assert!(report
            .damage()
            .any(|f| f.reason.contains("checksum mismatch")));
        assert!(report.damage().any(|f| f.reason.contains("unverifiable")));

        // The SkipScrubChecksum mutant goes blind on the same image.
        let blind = scrub_images(
            &rotted,
            &snap,
            &BugRegistry::only_media(MediaBugId::SkipScrubChecksum),
        );
        assert!(
            blind.damage().count() < report.damage().count(),
            "mutant scrub must miss checksum damage"
        );
    }

    #[test]
    fn scrub_flags_snapshot_seal_violations() {
        // An unsealed trailing group is a crash artifact; a seal whose
        // declared record count disagrees with the body is damage.
        let mut w = Wal::new(FaultPlan::none());
        w.append_snapshot(&WalRecord::SnapshotBegin { stmt_idx: 2 })
            .unwrap();
        w.append_snapshot(&WalRecord::InsertRow {
            table: "t".into(),
            row: vec![crate::value::Value::Int(1)],
        })
        .unwrap();
        let trailing = w.snapshot_image().to_vec();
        let report = scrub_images(&[], &trailing, &BugRegistry::none());
        assert!(!report.clean());
        assert_eq!(report.damage().count(), 0);
        assert!(report.findings.iter().any(|f| f.tail
            && f.site == StorageSite::Snapshot
            && f.reason.contains("mid-checkpoint")));

        w.append_snapshot(&WalRecord::SnapshotEnd {
            stmt_idx: 2,
            records: 7, // body has 1 record
        })
        .unwrap();
        let mismatched = w.snapshot_image().to_vec();
        let report = scrub_images(&[], &mismatched, &BugRegistry::none());
        assert!(
            report.damage().any(|f| f.reason.contains("seal mismatch")),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn fail_stop_refuses_damage_salvage_recovers_the_prefix() {
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); INSERT INTO t VALUES (2)",
        );
        let mut log = db.wal().unwrap().image().to_vec();
        // Rot the final frame's payload (the last statement's commit).
        *log.last_mut().unwrap() ^= 0xFF;

        match recover_with_policy(
            &log,
            &[],
            Dialect::Sqlite,
            &BugRegistry::none(),
            RecoveryPolicy::FailStop,
        ) {
            Err(Error::Storage(StorageError {
                site: StorageSite::Log,
                kind: StorageFaultKind::Corrupted { findings },
            })) => assert!(findings >= 1),
            Err(other) => panic!("expected fail-stop storage error, got {other:?}"),
            Ok(_) => panic!("fail-stop accepted a damaged image"),
        }

        let (salvaged, _) = recover_with_policy(
            &log,
            &[],
            Dialect::Sqlite,
            &BugRegistry::none(),
            RecoveryPolicy::Salvage,
        )
        .unwrap();
        // The damaged commit is dropped; the prefix survives.
        assert_eq!(salvaged.catalog().table("t").unwrap().rows.len(), 1);

        // FailStop still accepts an ordinary torn tail.
        let clean = db.wal().unwrap().image().to_vec();
        let mut torn = clean.clone();
        torn.extend_from_slice(&[0x01, 0x02]);
        let (rec, _) = recover_with_policy(
            &torn,
            &[],
            Dialect::Sqlite,
            &BugRegistry::none(),
            RecoveryPolicy::FailStop,
        )
        .unwrap();
        assert_eq!(rec.dump_state(), db.dump_state());
    }

    #[test]
    fn replay_drops_the_suffix_past_a_commit_gap() {
        // Commit 1 is missing from the history: replaying commit 2 on top
        // of commit 0 would apply effects whose context is gone.
        let records = vec![
            WalRecord::Ddl {
                sql: "CREATE TABLE t (a INT)".into(),
            },
            WalRecord::Commit { stmt_idx: 0 },
            WalRecord::InsertRow {
                table: "t".into(),
                row: vec![crate::value::Value::Int(2)],
            },
            WalRecord::Commit { stmt_idx: 2 },
        ];
        let db = replay(&records, Dialect::Sqlite, &BugRegistry::none()).unwrap();
        assert_eq!(
            db.catalog().table("t").unwrap().rows.len(),
            0,
            "suffix past the gap must be dropped"
        );
    }

    #[test]
    fn salvage_past_corrupt_commit_mutant_replays_across_damage() {
        // Three inserts in one statement; rot the middle row's frame. The
        // clean scan truncates; the mutant skips the damaged frame and
        // keeps replaying — committing a statement with a missing effect.
        let mut db = durable_db();
        run_sql(
            &mut db,
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2), (3); INSERT INTO t VALUES (4)",
        );
        let log = db.wal().unwrap().image().to_vec();
        // Find the frame encoding the row (2) insert and rot its payload.
        let needle = encode_record(&WalRecord::InsertRow {
            table: "t".into(),
            row: vec![crate::value::Value::Int(2)],
        });
        let at = log
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("row 2 frame present");
        let mut rotted = log.clone();
        rotted[at] ^= 0x01; // flip a payload bit: the frame checksum breaks

        let clean = recover(&rotted, &[], Dialect::Sqlite, &BugRegistry::none()).unwrap();
        assert_eq!(
            clean.catalog().table("t").unwrap().rows.len(),
            0,
            "sound salvage drops everything from the damaged statement on"
        );

        let buggy = recover(
            &rotted,
            &[],
            Dialect::Sqlite,
            &BugRegistry::only_media(MediaBugId::SalvagePastCorruptCommit),
        )
        .unwrap();
        assert_eq!(
            buggy.catalog().table("t").unwrap().rows.len(),
            3,
            "mutant resurrects the suffix with a row missing"
        );
    }

    #[test]
    fn checkpoint_mutants_diverge_and_ground_truth_catches_base_lies() {
        let script = crate::parser::parse_statements(
            "CREATE TABLE t (a INT);
             INSERT INTO t VALUES (1);
             INSERT INTO t VALUES (2);
             INSERT INTO t VALUES (3)",
        )
        .unwrap();
        let mut db = durable_db();
        for (i, s) in script.iter().enumerate() {
            db.execute(s).unwrap();
            if i == 1 || i == 2 {
                db.checkpoint().unwrap();
            }
        }
        let total = db.wal().unwrap().ops();
        for bug in [
            RecoveryBugId::TruncateBeforeMarker,
            RecoveryBugId::ReplayFromWrongOffset,
            RecoveryBugId::AcceptTornSnapshot,
            RecoveryBugId::StaleSnapshotPreferred,
            RecoveryBugId::SkipSnapshotChecksum,
        ] {
            let bugs = BugRegistry::only_recovery(bug);
            let mut hit = false;
            for op in 0..=total {
                for mode in [
                    FaultMode::Lost,
                    FaultMode::Torn { keep_sel: 5 },
                    FaultMode::Corrupt { byte_sel: 2 },
                ] {
                    let plan = if op == total {
                        FaultPlan::none()
                    } else {
                        FaultPlan { crash_op: op, mode }
                    };
                    if recovery_divergence_checkpointed(
                        &script,
                        &[1, 2],
                        &plan,
                        Dialect::Sqlite,
                        &bugs,
                    )
                    .is_some()
                    {
                        hit = true;
                    }
                }
            }
            assert!(hit, "{} never diverged across the grid", bug.name());
        }
    }
}
