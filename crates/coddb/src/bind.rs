//! The binding pass: compile expressions once, evaluate many times.
//!
//! CoddDB executes a statement in three phases (see the crate docs for the
//! full contract):
//!
//! 1. **plan** ([`crate::plan`]) lowers the AST to a [`crate::plan::SelectPlan`],
//! 2. **bind** (this module) compiles each clause expression against the
//!    schemas in scope, and
//! 3. **exec** ([`crate::exec`]) streams rows through the bound form.
//!
//! Binding resolves every [`ColumnRef`] to a `(scope hop, column ordinal)`
//! pair — one case-normalized name lookup per *query*, instead of a
//! lowercased `String` allocation plus a linear scope scan per *row* — and
//! precomputes everything else the evaluator would otherwise rediscover
//! per row: aggregate slots, subquery-shape flags for the bug hooks, and
//! the alternative outer binding the `TidbCorrelatedNameCollision` mutant
//! switches to at runtime. The produced [`BoundExpr`] mirrors [`Expr`]
//! node for node, so the context-sensitive mutants in [`crate::eval`]
//! keep pattern-matching the same shapes; subqueries stay as AST
//! ([`Select`]) and are planned + bound lazily at evaluation time, exactly
//! like the planner treats them.
//!
//! Name-resolution errors (unknown or ambiguous columns) surface at bind
//! time — once per query — matching real engines, where name resolution
//! is static.

use crate::ast::{
    AggFunc, BinaryOp, ColumnRef, CompareOp, Expr, FuncName, Quantifier, Select, SelectItem,
    UnaryOp,
};
use crate::error::{Error, Result};
use crate::exec::Schema;
use crate::value::{DataType, Value};

/// A column reference resolved to a frame hop and ordinal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundColumn {
    /// Scope hops from the innermost frame (0 = local scope).
    pub up: u16,
    /// Column ordinal within that frame's schema.
    pub index: u16,
    /// Alternative binding recorded for the `TidbCorrelatedNameCollision`
    /// mutant: a bare name that resolved locally but shadows an outer
    /// column. The evaluator switches to it only when the mutant is
    /// active, keeping the hook a runtime branch.
    pub collision_alt: Option<(u16, u16)>,
}

/// One aggregate computed per group; `slot` indexes the per-group value
/// table handed to the evaluator.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    pub func: AggFunc,
    pub distinct: bool,
    /// Bound argument (`None` for `COUNT(*)` and for malformed calls,
    /// which the executor rejects when a group is actually computed).
    pub arg: Option<BoundExpr>,
}

/// An [`Expr`] with all name resolution and per-row bookkeeping
/// precomputed. Shapes mirror [`Expr`] so the injected bug hooks keep
/// matching structurally.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    Literal(Value),
    Column(BoundColumn),
    Unary {
        op: UnaryOp,
        expr: Box<BoundExpr>,
    },
    Binary {
        op: BinaryOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
    Between {
        expr: Box<BoundExpr>,
        low: Box<BoundExpr>,
        high: Box<BoundExpr>,
        negated: bool,
    },
    InList {
        expr: Box<BoundExpr>,
        list: Vec<BoundExpr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<BoundExpr>,
        query: Box<Select>,
        negated: bool,
    },
    Exists {
        query: Box<Select>,
        negated: bool,
    },
    Scalar {
        query: Box<Select>,
        /// Precomputed trigger shape for `SqliteAggSubqueryIndexedWhere`
        /// (the evaluator previously re-walked the subquery per row).
        has_aggregate: bool,
    },
    Quantified {
        op: CompareOp,
        quantifier: Quantifier,
        expr: Box<BoundExpr>,
        query: Box<Select>,
    },
    Case {
        operand: Option<Box<BoundExpr>>,
        whens: Vec<(BoundExpr, BoundExpr)>,
        else_expr: Option<Box<BoundExpr>>,
        /// Precomputed trigger shape for `DuckdbCaseSubqueryElse`.
        then_subquery: bool,
    },
    Func {
        func: FuncName,
        args: Vec<BoundExpr>,
    },
    Agg {
        /// Index into the per-group aggregate value table.
        slot: u16,
        func: AggFunc,
        distinct: bool,
    },
    Cast {
        expr: Box<BoundExpr>,
        ty: DataType,
    },
    IsNull {
        expr: Box<BoundExpr>,
        negated: bool,
    },
    Like {
        expr: Box<BoundExpr>,
        pattern: Box<BoundExpr>,
        negated: bool,
    },
}

/// Bind the recognized hash-join key pairs of a join: each left-side key
/// expression resolves against the left input's schema and each
/// right-side expression against the right input's, yielding the bound
/// column ordinals the executor's build/probe loops evaluate once per
/// *row* (instead of once per row pair, as the nested loop does).
///
/// Aggregate calls are illegal in ON clauses, so keys bind through
/// [`Binder::bind`] — exactly the rule the nested-loop path applies to
/// the whole ON predicate.
pub fn bind_join_keys(
    keys: &[(Expr, Expr)],
    left: &Schema,
    right: &Schema,
    depth: u32,
) -> Result<(Vec<BoundExpr>, Vec<BoundExpr>)> {
    let lscopes: [&Schema; 1] = [left];
    let rscopes: [&Schema; 1] = [right];
    let mut lbinder = Binder::new(&lscopes, depth);
    let mut rbinder = Binder::new(&rscopes, depth);
    let mut lbound = Vec::with_capacity(keys.len());
    let mut rbound = Vec::with_capacity(keys.len());
    for (l, r) in keys {
        lbound.push(lbinder.bind(l)?);
        rbound.push(rbinder.bind(r)?);
    }
    Ok((lbound, rbound))
}

/// The Listing-1 trigger shape: does the subquery project an aggregate?
pub fn subquery_has_aggregate(q: &Select) -> bool {
    let Some(core) = q.core() else { return false };
    core.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        _ => false,
    })
}

/// Compiles expressions against a stack of scope schemas (outermost
/// first; the innermost scope is last, mirroring [`crate::exec::Frame`]
/// order at evaluation time).
pub struct Binder<'a> {
    scopes: &'a [&'a Schema],
    /// Subquery nesting depth of the enclosing SELECT (0 = top statement);
    /// the collision-alt hook only applies inside subqueries.
    depth: u32,
    /// Distinct aggregate expressions seen so far, in slot order. Dedup is
    /// by structural equality of the original AST, matching the executor's
    /// previous "compute each distinct aggregate once per group" rule.
    agg_exprs: Vec<Expr>,
    agg_specs: Vec<AggSpec>,
    /// Whether aggregate calls are legal in the expression being bound.
    in_aggregate_scope: bool,
}

impl<'a> Binder<'a> {
    pub fn new(scopes: &'a [&'a Schema], depth: u32) -> Self {
        Binder {
            scopes,
            depth,
            agg_exprs: Vec::new(),
            agg_specs: Vec::new(),
            in_aggregate_scope: false,
        }
    }

    /// Bind an expression in which aggregate calls are illegal (WHERE,
    /// JOIN ON, GROUP BY keys, ...).
    pub fn bind(&mut self, expr: &Expr) -> Result<BoundExpr> {
        self.in_aggregate_scope = false;
        self.bind_expr(expr)
    }

    /// Bind a grouped-context expression (SELECT items, HAVING): aggregate
    /// calls are collected into slots.
    pub fn bind_aggregate(&mut self, expr: &Expr) -> Result<BoundExpr> {
        self.in_aggregate_scope = true;
        let bound = self.bind_expr(expr);
        self.in_aggregate_scope = false;
        bound
    }

    /// The aggregate specs collected by [`Binder::bind_aggregate`], in
    /// slot order.
    pub fn into_agg_specs(self) -> Vec<AggSpec> {
        self.agg_specs
    }

    fn bind_expr(&mut self, expr: &Expr) -> Result<BoundExpr> {
        Ok(match expr {
            Expr::Literal(v) => BoundExpr::Literal(v.clone()),
            Expr::Column(c) => BoundExpr::Column(self.resolve(c)?),
            Expr::Unary { op, expr } => BoundExpr::Unary {
                op: *op,
                expr: Box::new(self.bind_expr(expr)?),
            },
            Expr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(self.bind_expr(left)?),
                right: Box::new(self.bind_expr(right)?),
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => BoundExpr::Between {
                expr: Box::new(self.bind_expr(expr)?),
                low: Box::new(self.bind_expr(low)?),
                high: Box::new(self.bind_expr(high)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(self.bind_expr(expr)?),
                list: list
                    .iter()
                    .map(|e| self.bind_expr(e))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => BoundExpr::InSubquery {
                expr: Box::new(self.bind_expr(expr)?),
                query: query.clone(),
                negated: *negated,
            },
            Expr::Exists { query, negated } => BoundExpr::Exists {
                query: query.clone(),
                negated: *negated,
            },
            Expr::Scalar(query) => BoundExpr::Scalar {
                has_aggregate: subquery_has_aggregate(query),
                query: query.clone(),
            },
            Expr::Quantified {
                op,
                quantifier,
                expr,
                query,
            } => BoundExpr::Quantified {
                op: *op,
                quantifier: *quantifier,
                expr: Box::new(self.bind_expr(expr)?),
                query: query.clone(),
            },
            Expr::Case {
                operand,
                whens,
                else_expr,
            } => BoundExpr::Case {
                operand: match operand {
                    Some(o) => Some(Box::new(self.bind_expr(o)?)),
                    None => None,
                },
                whens: whens
                    .iter()
                    .map(|(w, t)| Ok::<_, Error>((self.bind_expr(w)?, self.bind_expr(t)?)))
                    .collect::<Result<_>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(self.bind_expr(e)?)),
                    None => None,
                },
                then_subquery: whens.iter().any(|(_, t)| t.contains_subquery()),
            },
            Expr::Func { func, args } => BoundExpr::Func {
                func: *func,
                args: args
                    .iter()
                    .map(|a| self.bind_expr(a))
                    .collect::<Result<_>>()?,
            },
            Expr::Agg {
                func,
                arg,
                distinct,
            } => {
                if !self.in_aggregate_scope {
                    return Err(Error::Eval("misuse of aggregate function".into()));
                }
                let slot = match self.agg_exprs.iter().position(|e| e == expr) {
                    Some(i) => i,
                    None => {
                        // Aggregate arguments evaluate per input row, where
                        // nested aggregates are illegal.
                        self.in_aggregate_scope = false;
                        let bound_arg = match arg {
                            Some(a) => Some(self.bind_expr(a)?),
                            None => None,
                        };
                        self.in_aggregate_scope = true;
                        self.agg_exprs.push(expr.clone());
                        self.agg_specs.push(AggSpec {
                            func: *func,
                            distinct: *distinct,
                            arg: bound_arg,
                        });
                        self.agg_exprs.len() - 1
                    }
                };
                BoundExpr::Agg {
                    slot: slot as u16,
                    func: *func,
                    distinct: *distinct,
                }
            }
            Expr::Cast { expr, ty } => BoundExpr::Cast {
                expr: Box::new(self.bind_expr(expr)?),
                ty: *ty,
            },
            Expr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(self.bind_expr(expr)?),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => BoundExpr::Like {
                expr: Box::new(self.bind_expr(expr)?),
                pattern: Box::new(self.bind_expr(pattern)?),
                negated: *negated,
            },
        })
    }

    /// Resolve a column reference against the scope stack, innermost
    /// scope first. Comparison is case-insensitive without allocating:
    /// schema names are normalized to lowercase at construction
    /// ([`crate::exec::ColMeta::new`]).
    fn resolve(&self, c: &ColumnRef) -> Result<BoundColumn> {
        let mut found: Option<(usize, usize)> = None; // (hops up, ordinal)
        for (up, frame) in self.scopes.iter().rev().enumerate() {
            let mut matches = frame.cols.iter().enumerate().filter(|(_, col)| {
                col.name.eq_ignore_ascii_case(&c.column)
                    && match &c.table {
                        Some(t) => col
                            .table
                            .as_deref()
                            .is_some_and(|ct| ct.eq_ignore_ascii_case(t)),
                        None => true,
                    }
            });
            if let Some((idx, _)) = matches.next() {
                if matches.next().is_some() {
                    return Err(Error::Catalog(format!("ambiguous column name: {c}")));
                }
                found = Some((up, idx));
                break;
            }
        }
        let (up, index) = found.ok_or_else(|| Error::Catalog(format!("no such column: {c}")))?;

        // TidbCorrelatedNameCollision: a bare column that resolves in the
        // subquery's own scope but shares its name with an outer column is
        // wrongly bound to the outer row when the mutant is active.
        let mut collision_alt = None;
        if c.table.is_none() && up == 0 && self.scopes.len() > 1 && self.depth > 0 {
            for (outer_up, frame) in self.scopes.iter().rev().enumerate().skip(1) {
                if let Some(idx) = frame
                    .cols
                    .iter()
                    .position(|col| col.name.eq_ignore_ascii_case(&c.column))
                {
                    collision_alt = Some((outer_up as u16, idx as u16));
                    break;
                }
            }
        }

        Ok(BoundColumn {
            up: up as u16,
            index: index as u16,
            collision_alt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ColMeta, Schema};

    fn schema(cols: &[(&str, &str)]) -> Schema {
        Schema {
            cols: cols.iter().map(|(t, n)| ColMeta::new(Some(t), n)).collect(),
        }
    }

    #[test]
    fn resolves_local_then_outer() {
        let outer = schema(&[("t1", "a"), ("t1", "b")]);
        let inner = schema(&[("t0", "a"), ("t0", "c")]);
        let scopes: Vec<&Schema> = vec![&outer, &inner];
        let mut b = Binder::new(&scopes, 1);

        match b.bind(&Expr::bare_col("C")).unwrap() {
            BoundExpr::Column(c) => {
                assert_eq!((c.up, c.index), (0, 1));
                assert_eq!(c.collision_alt, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match b.bind(&Expr::bare_col("b")).unwrap() {
            BoundExpr::Column(c) => assert_eq!((c.up, c.index), (1, 1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn records_collision_alt_for_shadowed_bare_names() {
        let outer = schema(&[("t1", "a")]);
        let inner = schema(&[("t0", "a")]);
        let scopes: Vec<&Schema> = vec![&outer, &inner];
        let mut b = Binder::new(&scopes, 1);
        match b.bind(&Expr::bare_col("a")).unwrap() {
            BoundExpr::Column(c) => {
                assert_eq!((c.up, c.index), (0, 0));
                assert_eq!(c.collision_alt, Some((1, 0)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Qualified references never record the hook binding.
        match b.bind(&Expr::col("t0", "a")).unwrap() {
            BoundExpr::Column(c) => assert_eq!(c.collision_alt, None),
            other => panic!("unexpected {other:?}"),
        }
        // At depth 0 (not a subquery) the hook cannot fire.
        let mut top = Binder::new(&scopes, 0);
        match top.bind(&Expr::bare_col("a")).unwrap() {
            BoundExpr::Column(c) => assert_eq!(c.collision_alt, None),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ambiguous_and_missing_columns_error() {
        let s = schema(&[("t0", "a"), ("t1", "a")]);
        let scopes: Vec<&Schema> = vec![&s];
        let mut b = Binder::new(&scopes, 0);
        assert!(
            matches!(b.bind(&Expr::bare_col("a")), Err(Error::Catalog(m)) if m.contains("ambiguous"))
        );
        assert!(
            matches!(b.bind(&Expr::bare_col("zz")), Err(Error::Catalog(m)) if m.contains("no such column"))
        );
        // A qualifier disambiguates.
        assert!(b.bind(&Expr::col("t1", "a")).is_ok());
    }

    #[test]
    fn aggregates_get_deduplicated_slots() {
        let s = schema(&[("t0", "a")]);
        let scopes: Vec<&Schema> = vec![&s];
        let mut b = Binder::new(&scopes, 0);
        let sum = Expr::Agg {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::bare_col("a"))),
            distinct: false,
        };
        let count = Expr::count_star();
        let e = Expr::and(
            Expr::eq(sum.clone(), Expr::lit(1i64)),
            Expr::eq(
                Expr::bin(BinaryOp::Add, sum.clone(), count.clone()),
                Expr::lit(2i64),
            ),
        );
        let bound = b.bind_aggregate(&e).unwrap();
        let specs = b.into_agg_specs();
        assert_eq!(specs.len(), 2, "SUM(a) deduplicated, COUNT(*) separate");
        assert_eq!(specs[0].func, AggFunc::Sum);
        assert_eq!(specs[1].func, AggFunc::CountStar);
        // Both SUM occurrences share slot 0.
        let mut slots = Vec::new();
        fn walk(e: &BoundExpr, out: &mut Vec<u16>) {
            match e {
                BoundExpr::Agg { slot, .. } => out.push(*slot),
                BoundExpr::Binary { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
                _ => {}
            }
        }
        walk(&bound, &mut slots);
        assert_eq!(slots, vec![0, 0, 1]);
    }

    #[test]
    fn aggregates_outside_aggregate_scope_error() {
        let s = schema(&[("t0", "a")]);
        let scopes: Vec<&Schema> = vec![&s];
        let mut b = Binder::new(&scopes, 0);
        assert!(matches!(
            b.bind(&Expr::count_star()),
            Err(Error::Eval(m)) if m.contains("misuse of aggregate")
        ));
    }
}
