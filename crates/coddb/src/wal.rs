//! Write-ahead log over a simulated disk with deterministic fault injection.
//!
//! The durable storage layer follows the engine's differential-mode
//! pattern (`set_bind_mode` / `set_scan_mode` / ...): when a [`Database`]
//! runs with [`StorageMode::Durable`], every DML/DDL *effect* is appended
//! to a [`Wal`] as a checksummed, length-prefixed redo record, followed by
//! a commit marker per statement — while the in-memory catalog remains the
//! byte-exact baseline. [`crate::recovery`] replays the log into a fresh
//! store and must reconstruct exactly the committed prefix.
//!
//! # Record framing
//!
//! Each record is framed as `[u32 len][u32 fnv1a(payload)][payload]`, all
//! little-endian. The payload starts with a one-byte tag followed by the
//! record's fields; values serialize with `Real` as raw IEEE-754 bits so
//! recovery is bit-exact.
//!
//! # Fault model
//!
//! [`SimDisk`] is an in-memory byte file. Writes pass through a
//! [`FaultPlan`]: a deterministic, seeded choice of *which* append dies
//! (`crash_op`, counted in records) and *how* ([`FaultMode`]):
//!
//! * [`FaultMode::Lost`] — the write never reaches the disk (a crash
//!   *before* the write; at a commit record this is a crash after the
//!   effects but before the durability point),
//! * [`FaultMode::Torn`] — a proper prefix of the frame lands (a torn
//!   tail, mid-record crash),
//! * [`FaultMode::Corrupt`] — the full frame lands with one payload bit
//!   flipped (a latent media error the recovery checksum must catch).
//!
//! Everything appended before `crash_op` is durable; nothing after it is.
//! The fault plan's seed is part of the stable reproduction contract, like
//! `state_seed`/`test_seed` in the campaign runner: the same
//! `(script, fault_seed)` pair rebuilds the same log image in any build.
//!
//! # Checkpoints
//!
//! [`Database::checkpoint`](crate::Database::checkpoint) bounds replay
//! cost: it serializes the whole committed state as a framed, checksummed
//! **snapshot** to a second [`SimDisk`] file ([`Wal::snapshot_image`]),
//! seals it between [`WalRecord::SnapshotBegin`] and
//! [`WalRecord::SnapshotEnd`] markers, records a
//! [`WalRecord::CheckpointComplete`] durability marker in the log, and
//! then truncates the log to the suffix after that marker
//! ([`Wal::truncate_log`]). Snapshot frames and the truncation step ride
//! the **same operation counter** as log appends, so a seeded
//! [`FaultPlan`] lands crashes inside snapshot writes and between the
//! marker and the truncation exactly the way it lands them inside DML
//! traffic — the torn-snapshot and early-truncation bug classes become
//! ordinary grid cells. A crash at the truncation op means the process
//! died before truncating: the log survives from its previous origin
//! (every fault mode behaves the same there — truncation either happened
//! or it did not).
//!
//! [`Database`]: crate::Database

use crate::bugs::{BugRegistry, MediaBugId};
use crate::error::{StorageError, StorageFaultKind, StorageSite};
use crate::value::Value;

/// How a [`Database`](crate::Database) persists effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// In-memory only (the default): no WAL, no recovery surface.
    #[default]
    Volatile,
    /// Every DML/DDL effect is redo-logged through the simulated disk;
    /// the in-memory catalog stays the baseline.
    Durable,
}

/// How the crashing write manifests on the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The write never reaches the disk.
    Lost,
    /// A proper prefix of the frame lands; `keep_sel` deterministically
    /// selects how many bytes (at least 1, never the whole frame).
    Torn { keep_sel: u64 },
    /// The whole frame lands with one payload bit flipped; `byte_sel`
    /// deterministically selects the byte.
    Corrupt { byte_sel: u64 },
}

/// A deterministic crash schedule: the `crash_op`-th append (0-based) dies
/// per `mode`; every earlier append is durable, every later one is lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Index of the append that crashes. `u64::MAX` (or any index the run
    /// never reaches) means the process survives the whole script.
    pub crash_op: u64,
    pub mode: FaultMode,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan that never crashes.
    pub fn none() -> FaultPlan {
        FaultPlan {
            crash_op: u64::MAX,
            mode: FaultMode::Lost,
        }
    }

    /// Does this plan ever fire (assuming enough appends happen)?
    pub fn crashes(&self) -> bool {
        self.crash_op != u64::MAX
    }

    /// Deterministically derive a plan from a seed, given the total number
    /// of appends a fault-free run performs (measure it with a dry run
    /// under [`FaultPlan::none`]). `crash_op` is drawn from `0..=total_ops`
    /// — the `total_ops` case never fires, so seeded campaigns also
    /// exercise clean full-log recovery.
    pub fn seeded(seed: u64, total_ops: u64) -> FaultPlan {
        if total_ops == 0 {
            return FaultPlan::none();
        }
        let mut s = seed;
        let crash_op = splitmix64(&mut s) % (total_ops + 1);
        let mode = match splitmix64(&mut s) % 3 {
            0 => FaultMode::Lost,
            1 => FaultMode::Torn {
                keep_sel: splitmix64(&mut s),
            },
            _ => FaultMode::Corrupt {
                byte_sel: splitmix64(&mut s),
            },
        };
        if crash_op == total_ops {
            return FaultPlan::none();
        }
        FaultPlan { crash_op, mode }
    }

    /// Human-readable summary for reports.
    pub fn describe(&self) -> String {
        if !self.crashes() {
            return "no crash".to_string();
        }
        let mode = match self.mode {
            FaultMode::Lost => "lost write".to_string(),
            FaultMode::Torn { keep_sel } => format!("torn write (keep_sel={keep_sel})"),
            FaultMode::Corrupt { byte_sel } => format!("corrupt write (byte_sel={byte_sel})"),
        };
        format!("crash at op {}: {mode}", self.crash_op)
    }
}

/// Maximum *extra* read attempts the bounded retry schedule allows: a read
/// is tried at most `READ_RETRY_CAP + 1` times before the storage layer
/// surfaces a structured [`StorageError`]. A transient fault that heals
/// within the cap is invisible to callers; one that does not is
/// indistinguishable from a permanent fault and must fail stop.
pub const READ_RETRY_CAP: u32 = 3;

/// A read-path media fault armed on a [`SimDisk`].
///
/// Faults are *per call*: every [`SimDisk::read_with_retry`] call starts
/// its own attempt counter, so a transient fault with `failures <= cap`
/// heals inside every read (scrub and recovery alike) and one with
/// `failures > cap` deterministically exhausts every read's retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The first `failures` attempts of every read fail, then it heals.
    Transient { failures: u32 },
    /// Every attempt fails, forever.
    Permanent,
}

/// How a seeded [`MediaPlan`] damages the medium — the second, orthogonal
/// fault axis next to [`FaultPlan`]'s write-path crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaMode {
    /// No media fault.
    None,
    /// At-rest bit rot: between shutdown and recovery, one bit anywhere in
    /// the site's byte image flips (`bit_sel` selects which, modulo the
    /// image's bit length).
    Rot { bit_sel: u64 },
    /// Reads of the site fail `failures` times per read, then heal.
    TransientRead { failures: u32 },
    /// Reads of the site never succeed.
    PermanentRead,
    /// The disk is full: the `at_op`-th append (0-based, shared op counter
    /// with the crash schedule) and every later one return `NoSpace`.
    NoSpace { at_op: u64 },
}

/// A deterministic media-fault schedule, seeded like [`FaultPlan`]. One
/// plan names one fault site (log or snapshot file) and one [`MediaMode`];
/// campaigns draw both axes independently so write-path crashes and media
/// faults compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaPlan {
    /// Which file the fault strikes (`Rot`/read faults are per-site;
    /// `NoSpace` refuses appends to either file once `at_op` is reached).
    pub site: StorageSite,
    pub mode: MediaMode,
}

impl MediaPlan {
    /// A plan with no media fault.
    pub fn none() -> MediaPlan {
        MediaPlan {
            site: StorageSite::Log,
            mode: MediaMode::None,
        }
    }

    /// Does this plan inject any fault at all?
    pub fn faults(&self) -> bool {
        self.mode != MediaMode::None
    }

    /// Deterministically derive a plan from a seed, given the total number
    /// of appends a fault-free run performs. Roughly 3/8 of seeds draw no
    /// fault, so seeded media campaigns keep exercising the clean path.
    pub fn seeded(seed: u64, total_ops: u64) -> MediaPlan {
        let mut s = seed;
        let site = if splitmix64(&mut s).is_multiple_of(2) {
            StorageSite::Log
        } else {
            StorageSite::Snapshot
        };
        let mode = match splitmix64(&mut s) % 8 {
            0..=2 => MediaMode::None,
            3 | 4 => MediaMode::Rot {
                bit_sel: splitmix64(&mut s),
            },
            5 => MediaMode::TransientRead {
                // 1..=6: both the must-heal (<= cap) and must-fail-stop
                // (> cap) regimes occur across a seed sweep.
                failures: 1 + (splitmix64(&mut s) % 6) as u32,
            },
            6 => MediaMode::PermanentRead,
            _ => MediaMode::NoSpace {
                at_op: splitmix64(&mut s) % (total_ops + 1),
            },
        };
        MediaPlan { site, mode }
    }

    /// Human-readable summary for reports, in the style of
    /// [`FaultPlan::describe`].
    pub fn describe(&self) -> String {
        let site = self.site.label();
        match self.mode {
            MediaMode::None => "no media fault".to_string(),
            MediaMode::Rot { bit_sel } => {
                format!("media: bit rot in {site} image (bit_sel={bit_sel})")
            }
            MediaMode::TransientRead { failures } => format!(
                "media: transient read fault at {site} (fails {failures}x per read, retry cap {READ_RETRY_CAP})"
            ),
            MediaMode::PermanentRead => format!("media: permanent read fault at {site}"),
            MediaMode::NoSpace { at_op } => format!("media: disk full at append op {at_op}"),
        }
    }

    /// Apply at-rest bit rot to the site's byte image (no-op for other
    /// modes or an empty image). Models damage accrued between shutdown
    /// and recovery, outside any write the fault plan could kill.
    pub fn rot_images(&self, log: &mut [u8], snap: &mut [u8]) {
        if let MediaMode::Rot { bit_sel } = self.mode {
            let img: &mut [u8] = match self.site {
                StorageSite::Log => log,
                StorageSite::Snapshot => snap,
            };
            if img.is_empty() {
                return;
            }
            let bit = (bit_sel as usize) % (img.len() * 8);
            img[bit / 8] ^= 1 << (bit % 8);
        }
    }

    /// Must a bounded-retry read of the faulted site fail under this plan?
    /// (`Transient` beyond the cap, or `Permanent`.) This is the retry
    /// contract's ground truth: a read that must fail but succeeds — or
    /// must heal but fails — is a divergence.
    pub fn read_must_fail(&self) -> bool {
        match self.mode {
            MediaMode::TransientRead { failures } => failures > READ_RETRY_CAP,
            MediaMode::PermanentRead => true,
            _ => false,
        }
    }
}

/// An in-memory byte-file model of the durable medium. Only the [`Wal`]
/// writes to it; everything it holds is, by definition, what survived the
/// crash. A [`ReadFault`] can be armed on the disk, after which every
/// read must go through the bounded retry schedule of
/// [`SimDisk::read_with_retry`].
#[derive(Debug, Clone, Default)]
pub struct SimDisk {
    data: Vec<u8>,
    read_fault: Option<ReadFault>,
    read_attempts: u64,
}

impl SimDisk {
    pub fn new() -> SimDisk {
        SimDisk::default()
    }

    /// A disk pre-loaded with an at-rest image (e.g. one that survived a
    /// crash and possibly rotted), ready for fault-armed reads.
    pub fn from_bytes(data: Vec<u8>) -> SimDisk {
        SimDisk {
            data,
            read_fault: None,
            read_attempts: 0,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// The surviving byte image (what recovery gets to read). Bypasses the
    /// read-fault model — use [`SimDisk::read_with_retry`] on a
    /// fault-armed disk.
    pub fn contents(&self) -> &[u8] {
        &self.data
    }

    fn clear(&mut self) {
        self.data.clear();
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Arm (or clear) a read fault on this disk.
    pub fn set_read_fault(&mut self, fault: Option<ReadFault>) {
        self.read_fault = fault;
    }

    /// Total read attempts made across all [`SimDisk::read_with_retry`]
    /// calls — lets tests pin the retry schedule exactly.
    pub fn read_attempts(&self) -> u64 {
        self.read_attempts
    }

    /// Read the whole image through the bounded deterministic retry
    /// schedule: up to [`READ_RETRY_CAP`] retries (cap + 1 attempts per
    /// call), after which a structured [`StorageError`] surfaces. The
    /// attempt counter is per call, so a transient fault behaves
    /// identically for every caller (scrub, recovery, ...).
    pub fn read_with_retry(
        &mut self,
        site: StorageSite,
        bugs: &BugRegistry,
    ) -> Result<&[u8], StorageError> {
        // Mutant: treats the first failed attempt as permanent data loss
        // instead of walking the retry schedule.
        let max_attempts = if bugs.media_active(MediaBugId::TransientFaultAsPermanentLoss) {
            1
        } else {
            READ_RETRY_CAP + 1
        };
        // Mutant: retries transient faults forever instead of failing
        // stop at the cap (terminates once the fault heals, so the bug is
        // a silent success where the contract demands a structured error).
        let ignore_cap = bugs.media_active(MediaBugId::RetryCapIgnored);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            self.read_attempts += 1;
            let ok = match self.read_fault {
                None => true,
                Some(ReadFault::Transient { failures }) => attempts > failures,
                Some(ReadFault::Permanent) => false,
            };
            if ok {
                return Ok(&self.data);
            }
            let exhausted = attempts >= max_attempts;
            let transient = matches!(self.read_fault, Some(ReadFault::Transient { .. }));
            if exhausted && !(ignore_cap && transient) {
                return Err(StorageError {
                    site,
                    kind: StorageFaultKind::ReadFault {
                        attempts,
                        permanent: matches!(self.read_fault, Some(ReadFault::Permanent)),
                    },
                });
            }
        }
    }
}

/// One redo record. DML effects are *physical* (the rows/cells the engine
/// actually wrote), so replay needs no re-evaluation and reproduces the
/// committed state byte-for-byte even under injected engine mutants; DDL
/// is logged as rendered SQL and re-executed against the recovered
/// catalog.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A completed DDL statement, as SQL text.
    Ddl { sql: String },
    /// One row appended to `table` (a multi-row INSERT logs one record
    /// per row, giving the fault plan per-row crash points).
    InsertRow { table: String, row: Vec<Value> },
    /// One row's cell updates: `cols[i]` receives `vals[i]`.
    UpdateRow {
        table: String,
        row_idx: u64,
        cols: Vec<u32>,
        vals: Vec<Value>,
    },
    /// Rows removed from `table`, as ascending pre-delete indices.
    DeleteRows { table: String, rows: Vec<u64> },
    /// Durability point of statement `stmt_idx`: all effects logged since
    /// the previous commit become visible to recovery.
    Commit { stmt_idx: u64 },
    /// Log-side checkpoint durability marker: a snapshot covering the
    /// first `stmt_idx` committed statements is complete on the snapshot
    /// file. Written after the snapshot's [`WalRecord::SnapshotEnd`] and
    /// before the log is truncated; it survives in the log only when the
    /// process dies between the marker and the truncation.
    CheckpointComplete { stmt_idx: u64 },
    /// Snapshot-file record: opens a snapshot covering the first
    /// `stmt_idx` committed statements.
    SnapshotBegin { stmt_idx: u64 },
    /// Snapshot-file record: seals a snapshot. `records` counts the body
    /// records between this marker and its `SnapshotBegin`; a snapshot
    /// without a matching end marker is incomplete (the writer died
    /// mid-snapshot) and must be ignored by recovery.
    SnapshotEnd { stmt_idx: u64, records: u64 },
}

const TAG_DDL: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_DELETE: u8 = 4;
const TAG_COMMIT: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;
const TAG_SNAP_BEGIN: u8 = 7;
const TAG_SNAP_END: u8 = 8;

const VTAG_NULL: u8 = 0;
const VTAG_INT: u8 = 1;
const VTAG_REAL: u8 = 2;
const VTAG_TEXT: u8 = 3;
const VTAG_BOOL_FALSE: u8 = 4;
const VTAG_BOOL_TRUE: u8 = 5;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(VTAG_NULL),
        Value::Int(i) => {
            out.push(VTAG_INT);
            put_u64(out, *i as u64);
        }
        Value::Real(r) => {
            out.push(VTAG_REAL);
            put_u64(out, r.to_bits());
        }
        Value::Text(s) => {
            out.push(VTAG_TEXT);
            put_str(out, s);
        }
        Value::Bool(false) => out.push(VTAG_BOOL_FALSE),
        Value::Bool(true) => out.push(VTAG_BOOL_TRUE),
    }
}

fn put_values(out: &mut Vec<u8>, vals: &[Value]) {
    put_u32(out, vals.len() as u32);
    for v in vals {
        put_value(out, v);
    }
}

/// Serialize a record to its (unframed) payload bytes.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match rec {
        WalRecord::Ddl { sql } => {
            out.push(TAG_DDL);
            put_str(&mut out, sql);
        }
        WalRecord::InsertRow { table, row } => {
            out.push(TAG_INSERT);
            put_str(&mut out, table);
            put_values(&mut out, row);
        }
        WalRecord::UpdateRow {
            table,
            row_idx,
            cols,
            vals,
        } => {
            out.push(TAG_UPDATE);
            put_str(&mut out, table);
            put_u64(&mut out, *row_idx);
            put_u32(&mut out, cols.len() as u32);
            for c in cols {
                put_u32(&mut out, *c);
            }
            put_values(&mut out, vals);
        }
        WalRecord::DeleteRows { table, rows } => {
            out.push(TAG_DELETE);
            put_str(&mut out, table);
            put_u32(&mut out, rows.len() as u32);
            for r in rows {
                put_u64(&mut out, *r);
            }
        }
        WalRecord::Commit { stmt_idx } => {
            out.push(TAG_COMMIT);
            put_u64(&mut out, *stmt_idx);
        }
        WalRecord::CheckpointComplete { stmt_idx } => {
            out.push(TAG_CHECKPOINT);
            put_u64(&mut out, *stmt_idx);
        }
        WalRecord::SnapshotBegin { stmt_idx } => {
            out.push(TAG_SNAP_BEGIN);
            put_u64(&mut out, *stmt_idx);
        }
        WalRecord::SnapshotEnd { stmt_idx, records } => {
            out.push(TAG_SNAP_END);
            put_u64(&mut out, *stmt_idx);
            put_u64(&mut out, *records);
        }
    }
    out
}

/// Bounds-checked payload reader: a corrupted or torn payload must decode
/// to a clean error, never panic or read out of range.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "payload truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8".to_string())
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.u8()? {
            VTAG_NULL => Ok(Value::Null),
            VTAG_INT => Ok(Value::Int(self.u64()? as i64)),
            VTAG_REAL => Ok(Value::Real(f64::from_bits(self.u64()?))),
            VTAG_TEXT => Ok(Value::Text(self.str()?)),
            VTAG_BOOL_FALSE => Ok(Value::Bool(false)),
            VTAG_BOOL_TRUE => Ok(Value::Bool(true)),
            t => Err(format!("unknown value tag {t}")),
        }
    }

    fn values(&mut self) -> Result<Vec<Value>, String> {
        let n = self.u32()? as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.value()?);
        }
        Ok(out)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Deserialize a payload produced by [`encode_record`]. Errors (rather
/// than panics) on anything malformed — recovery surfaces them as
/// internal errors when a mutant lets a bad payload through.
pub fn decode_record(payload: &[u8]) -> Result<WalRecord, String> {
    let mut r = Reader::new(payload);
    let rec = match r.u8()? {
        TAG_DDL => WalRecord::Ddl { sql: r.str()? },
        TAG_INSERT => WalRecord::InsertRow {
            table: r.str()?,
            row: r.values()?,
        },
        TAG_UPDATE => {
            let table = r.str()?;
            let row_idx = r.u64()?;
            let ncols = r.u32()? as usize;
            let mut cols = Vec::new();
            for _ in 0..ncols {
                cols.push(r.u32()?);
            }
            WalRecord::UpdateRow {
                table,
                row_idx,
                cols,
                vals: r.values()?,
            }
        }
        TAG_DELETE => {
            let table = r.str()?;
            let n = r.u32()? as usize;
            let mut rows = Vec::new();
            for _ in 0..n {
                rows.push(r.u64()?);
            }
            WalRecord::DeleteRows { table, rows }
        }
        TAG_COMMIT => WalRecord::Commit { stmt_idx: r.u64()? },
        TAG_CHECKPOINT => WalRecord::CheckpointComplete { stmt_idx: r.u64()? },
        TAG_SNAP_BEGIN => WalRecord::SnapshotBegin { stmt_idx: r.u64()? },
        TAG_SNAP_END => WalRecord::SnapshotEnd {
            stmt_idx: r.u64()?,
            records: r.u64()?,
        },
        t => return Err(format!("unknown record tag {t}")),
    };
    if !r.done() {
        return Err(format!(
            "trailing garbage: {} bytes past record end",
            payload.len() - r.pos
        ));
    }
    Ok(rec)
}

/// FNV-1a over the payload — cheap, dependency-free, and a single flipped
/// bit always changes it.
pub fn checksum(payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in payload {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Size of the `[len][checksum]` frame header.
pub const FRAME_HEADER: usize = 8;

/// Which durable operation the fault plan killed. Checkpointing threads
/// snapshot frames and the truncation step through the same op counter as
/// log appends, so a seeded crash can land in three places; reports name
/// the site so a repro is readable without decoding the op index by hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// A log append (DML/DDL effect, commit, or checkpoint marker).
    Log,
    /// A snapshot-file append (begin/body/end frame).
    Snapshot,
    /// The log-truncation step after a checkpoint marker.
    Truncate,
}

impl CrashSite {
    /// Short human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CrashSite::Log => "log append",
            CrashSite::Snapshot => "snapshot write",
            CrashSite::Truncate => "log truncation",
        }
    }
}

/// The write-ahead log: an append-only sequence of framed records on a
/// [`SimDisk`], with the fault plan applied per append. The writer also
/// tracks the ground truth the recovery differential compares against:
/// how many commit markers became durable (`committed_statements`) —
/// deliberately computed at append time, independent of anything
/// `recovery.rs` later parses out of the image.
#[derive(Debug, Clone)]
pub struct Wal {
    disk: SimDisk,
    /// The snapshot file checkpoints serialize to. Shares the op counter
    /// (and thus the fault plan's crash schedule) with the log disk.
    snap: SimDisk,
    plan: FaultPlan,
    /// The media-fault schedule (orthogonal to `plan`'s crash schedule).
    media: MediaPlan,
    /// Appends attempted while the simulated process was alive.
    ops: u64,
    /// Commit markers durably written (the committed-prefix length).
    committed: u64,
    /// Statements whose commit marker was *attempted* (durable or not);
    /// numbers the next commit record.
    stmts_logged: u64,
    /// Writer-side checkpoint ground truth: the `stmt_idx` of the newest
    /// [`WalRecord::SnapshotEnd`] that became durable before the crash —
    /// the snapshot a correct recovery must load (None = genesis).
    last_snapshot_stmts: Option<u64>,
    crashed: bool,
    crash_site: Option<CrashSite>,
}

impl Wal {
    pub fn new(plan: FaultPlan) -> Wal {
        Wal {
            disk: SimDisk::new(),
            snap: SimDisk::new(),
            plan,
            media: MediaPlan::none(),
            ops: 0,
            committed: 0,
            stmts_logged: 0,
            last_snapshot_stmts: None,
            crashed: false,
            crash_site: None,
        }
    }

    /// Replace the fault plan (counters keep running). Call before any
    /// appends to schedule the crash for a whole run.
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Replace the media-fault schedule. Call before any appends so a
    /// `NoSpace` op threshold covers the whole run.
    pub fn set_media_plan(&mut self, media: MediaPlan) {
        self.media = media;
    }

    pub fn media(&self) -> &MediaPlan {
        &self.media
    }

    /// Total appends attempted before the crash (equals the run's total
    /// record count when no crash fires — the dry-run measurement
    /// [`FaultPlan::seeded`] needs).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Commit markers that became durable: the number of statements a
    /// correct recovery must reconstruct, exactly.
    pub fn committed_statements(&self) -> u64 {
        self.committed
    }

    /// Has the fault plan fired? Once crashed, the WAL silently drops all
    /// further appends (the simulated process is dead; the in-memory
    /// engine lives on as the differential baseline).
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The surviving log image.
    pub fn image(&self) -> &[u8] {
        self.disk.contents()
    }

    /// The surviving snapshot-file image (empty until a checkpoint runs).
    pub fn snapshot_image(&self) -> &[u8] {
        self.snap.contents()
    }

    /// Statements whose commit marker was attempted so far — the
    /// `stmt_idx` coverage a snapshot taken *now* would declare.
    pub fn statements_logged(&self) -> u64 {
        self.stmts_logged
    }

    /// Writer-side checkpoint ground truth: the `stmt_idx` of the newest
    /// snapshot whose [`WalRecord::SnapshotEnd`] seal became durable
    /// before the crash, or `None` when recovery must start from genesis.
    pub fn durable_snapshot_stmts(&self) -> Option<u64> {
        self.last_snapshot_stmts
    }

    /// Where the fault plan fired, if it did.
    pub fn crash_site(&self) -> Option<CrashSite> {
        self.crash_site
    }

    /// Append one framed record to `site`'s disk through the fault plan
    /// and the media plan. `Err(NoSpace)` means the disk refused the
    /// append: nothing was written, the op counter did not advance, and
    /// the caller must abort the in-flight statement cleanly.
    fn append_frame(&mut self, rec: &WalRecord, site: CrashSite) -> Result<(), StorageError> {
        if self.crashed {
            return Ok(());
        }
        if let MediaMode::NoSpace { at_op } = self.media.mode {
            if self.ops >= at_op {
                return Err(StorageError {
                    site: match site {
                        CrashSite::Log | CrashSite::Truncate => StorageSite::Log,
                        CrashSite::Snapshot => StorageSite::Snapshot,
                    },
                    kind: StorageFaultKind::NoSpace { op: self.ops },
                });
            }
        }
        let op = self.ops;
        self.ops += 1;
        let payload = encode_record(rec);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, checksum(&payload));
        frame.extend_from_slice(&payload);

        if op < self.plan.crash_op {
            match site {
                CrashSite::Log => self.disk.write(&frame),
                CrashSite::Snapshot => self.snap.write(&frame),
                CrashSite::Truncate => unreachable!("truncation writes no frame"),
            }
            match (site, rec) {
                (CrashSite::Log, WalRecord::Commit { .. }) => self.committed += 1,
                (CrashSite::Snapshot, WalRecord::SnapshotEnd { stmt_idx, .. }) => {
                    self.last_snapshot_stmts = Some(*stmt_idx);
                }
                _ => {}
            }
            return Ok(());
        }
        // This append is the crash point: the simulated process dies
        // during the write. Nothing from this op counts as durable.
        self.crashed = true;
        self.crash_site = Some(site);
        let written: Option<Vec<u8>> = match self.plan.mode {
            FaultMode::Lost => None,
            FaultMode::Torn { keep_sel } => {
                let keep = 1 + (keep_sel as usize) % (frame.len() - 1);
                Some(frame[..keep].to_vec())
            }
            FaultMode::Corrupt { byte_sel } => {
                let i = FRAME_HEADER + (byte_sel as usize) % payload.len();
                frame[i] ^= 0x40;
                Some(frame)
            }
        };
        if let Some(bytes) = written {
            match site {
                CrashSite::Log => self.disk.write(&bytes),
                CrashSite::Snapshot => self.snap.write(&bytes),
                CrashSite::Truncate => unreachable!("truncation writes no frame"),
            }
        }
        Ok(())
    }

    /// Append one record to the log through the fault plan.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), StorageError> {
        self.append_frame(rec, CrashSite::Log)
    }

    /// Append one record to the snapshot file through the fault plan.
    /// Rides the same op counter as log appends, so seeded crash points
    /// land inside snapshot writes.
    pub fn append_snapshot(&mut self, rec: &WalRecord) -> Result<(), StorageError> {
        self.append_frame(rec, CrashSite::Snapshot)
    }

    /// Discard the replayable log after a durable checkpoint marker. The
    /// truncation is itself one fault-plan operation: a crash here means
    /// the process died *before* truncating, so the whole log survives
    /// (truncation is all-or-nothing for every fault mode — there is no
    /// torn or corrupt variant of deleting a file's contents).
    pub fn truncate_log(&mut self) {
        if self.crashed {
            return;
        }
        let op = self.ops;
        self.ops += 1;
        if op < self.plan.crash_op {
            self.disk.clear();
        } else {
            self.crashed = true;
            self.crash_site = Some(CrashSite::Truncate);
        }
    }

    /// Append the commit marker for the statement whose effects were just
    /// logged. On `NoSpace` the marker did not land and the statement
    /// number is *not* consumed: the caller aborts the statement and the
    /// next one commits under the same index.
    pub fn commit_statement(&mut self) -> Result<(), StorageError> {
        let stmt_idx = self.stmts_logged;
        self.append(&WalRecord::Commit { stmt_idx })?;
        self.stmts_logged += 1;
        Ok(())
    }

    /// Apply the media plan's at-rest damage to the stored images and arm
    /// any read fault on the faulted site's disk. Models the time between
    /// shutdown and recovery; call once after the writer is done.
    pub fn degrade_at_rest(&mut self) {
        let mut log = std::mem::take(&mut self.disk.data);
        let mut snap = std::mem::take(&mut self.snap.data);
        self.media.rot_images(&mut log, &mut snap);
        self.disk.data = log;
        self.snap.data = snap;
        let fault = match self.media.mode {
            MediaMode::TransientRead { failures } => Some(ReadFault::Transient { failures }),
            MediaMode::PermanentRead => Some(ReadFault::Permanent),
            _ => None,
        };
        match self.media.site {
            StorageSite::Log => self.disk.set_read_fault(fault),
            StorageSite::Snapshot => self.snap.set_read_fault(fault),
        }
    }

    /// Read the log image through the bounded retry schedule.
    pub fn read_log_image(&mut self, bugs: &BugRegistry) -> Result<&[u8], StorageError> {
        self.disk.read_with_retry(StorageSite::Log, bugs)
    }

    /// Read the snapshot image through the bounded retry schedule.
    pub fn read_snapshot_image(&mut self, bugs: &BugRegistry) -> Result<&[u8], StorageError> {
        self.snap.read_with_retry(StorageSite::Snapshot, bugs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Ddl {
                sql: "CREATE TABLE t (c INT)".into(),
            },
            WalRecord::InsertRow {
                table: "t".into(),
                row: vec![
                    Value::Null,
                    Value::Int(-7),
                    Value::Real(2.5),
                    Value::Text("héllo %_".into()),
                    Value::Bool(true),
                    Value::Bool(false),
                ],
            },
            WalRecord::UpdateRow {
                table: "t".into(),
                row_idx: 3,
                cols: vec![0, 2],
                vals: vec![Value::Int(1), Value::Real(-0.0)],
            },
            WalRecord::DeleteRows {
                table: "t".into(),
                rows: vec![0, 5, 9],
            },
            WalRecord::Commit { stmt_idx: 42 },
            WalRecord::CheckpointComplete { stmt_idx: 42 },
            WalRecord::SnapshotBegin { stmt_idx: 42 },
            WalRecord::SnapshotEnd {
                stmt_idx: 42,
                records: 17,
            },
        ]
    }

    #[test]
    fn records_round_trip() {
        for rec in sample_records() {
            let payload = encode_record(&rec);
            let back = decode_record(&payload).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn real_values_round_trip_bit_exact() {
        for bits in [0u64, f64::NAN.to_bits(), (-0.0f64).to_bits(), 0x7FF8_0123] {
            let rec = WalRecord::InsertRow {
                table: "t".into(),
                row: vec![Value::Real(f64::from_bits(bits))],
            };
            match decode_record(&encode_record(&rec)).unwrap() {
                WalRecord::InsertRow { row, .. } => match row[0] {
                    Value::Real(r) => assert_eq!(r.to_bits(), bits),
                    ref other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_payload_decodes_to_error() {
        for rec in sample_records() {
            let payload = encode_record(&rec);
            for cut in 0..payload.len() {
                assert!(
                    decode_record(&payload[..cut]).is_err(),
                    "prefix of len {cut} of {rec:?} decoded"
                );
            }
        }
    }

    #[test]
    fn checksum_detects_every_single_bit_flip() {
        let payload = encode_record(&sample_records()[1]);
        let sum = checksum(&payload);
        for i in 0..payload.len() {
            for bit in 0..8 {
                let mut flipped = payload.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(checksum(&flipped), sum, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn fault_plan_none_never_crashes() {
        let mut wal = Wal::new(FaultPlan::none());
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        assert!(!wal.crashed());
        assert_eq!(wal.ops(), 8);
        assert_eq!(wal.committed_statements(), 1);
        assert_eq!(wal.crash_site(), None);
    }

    #[test]
    fn lost_fault_drops_the_op_and_everything_after() {
        let mut wal = Wal::new(FaultPlan {
            crash_op: 2,
            mode: FaultMode::Lost,
        });
        let recs = sample_records();
        let mut clean = Wal::new(FaultPlan::none());
        for rec in &recs[..2] {
            clean.append(rec).unwrap();
        }
        for rec in &recs {
            wal.append(rec).unwrap();
        }
        assert!(wal.crashed());
        assert_eq!(wal.image(), clean.image(), "durable prefix is ops 0..2");
        assert_eq!(wal.committed_statements(), 0, "the commit op never landed");
    }

    #[test]
    fn torn_fault_writes_a_proper_prefix() {
        let recs = sample_records();
        for keep_sel in 0..64u64 {
            let mut wal = Wal::new(FaultPlan {
                crash_op: 1,
                mode: FaultMode::Torn { keep_sel },
            });
            let mut clean = Wal::new(FaultPlan::none());
            clean.append(&recs[0]).unwrap();
            let full = clean.image().len();
            for rec in &recs {
                wal.append(rec).unwrap();
            }
            let torn_len = wal.image().len() - full;
            let frame_len = FRAME_HEADER + encode_record(&recs[1]).len();
            assert!(torn_len >= 1 && torn_len < frame_len, "torn_len={torn_len}");
            assert_eq!(&wal.image()[..full], clean.image());
        }
    }

    #[test]
    fn corrupt_fault_lands_full_length_but_fails_checksum() {
        let recs = sample_records();
        for byte_sel in 0..32u64 {
            let mut wal = Wal::new(FaultPlan {
                crash_op: 0,
                mode: FaultMode::Corrupt { byte_sel },
            });
            wal.append(&recs[1]).unwrap();
            let payload_len = encode_record(&recs[1]).len();
            assert_eq!(wal.image().len(), FRAME_HEADER + payload_len);
            let stored = u32::from_le_bytes(wal.image()[4..8].try_into().unwrap());
            assert_ne!(checksum(&wal.image()[8..]), stored);
        }
    }

    #[test]
    fn snapshot_appends_share_the_op_counter() {
        // Ops: log(0), snap begin(1), snap end(2), log(3). A crash_op of 2
        // must land on the snapshot seal, leaving the log intact and the
        // snapshot unsealed.
        let mut wal = Wal::new(FaultPlan {
            crash_op: 2,
            mode: FaultMode::Lost,
        });
        wal.append(&WalRecord::Ddl { sql: "x".into() }).unwrap();
        wal.append_snapshot(&WalRecord::SnapshotBegin { stmt_idx: 1 })
            .unwrap();
        wal.append_snapshot(&WalRecord::SnapshotEnd {
            stmt_idx: 1,
            records: 0,
        })
        .unwrap();
        wal.append(&WalRecord::Commit { stmt_idx: 1 }).unwrap();
        assert!(wal.crashed());
        assert_eq!(wal.crash_site(), Some(CrashSite::Snapshot));
        assert_eq!(wal.durable_snapshot_stmts(), None, "seal never landed");
        assert!(!wal.snapshot_image().is_empty(), "begin frame is durable");
        assert_eq!(wal.committed_statements(), 0);
    }

    #[test]
    fn durable_snapshot_seal_records_ground_truth() {
        let mut wal = Wal::new(FaultPlan::none());
        wal.append_snapshot(&WalRecord::SnapshotBegin { stmt_idx: 3 })
            .unwrap();
        wal.append_snapshot(&WalRecord::SnapshotEnd {
            stmt_idx: 3,
            records: 0,
        })
        .unwrap();
        assert_eq!(wal.durable_snapshot_stmts(), Some(3));
        // A seal written to the *log* (hostile/mutant image) never counts.
        wal.append(&WalRecord::SnapshotEnd {
            stmt_idx: 9,
            records: 0,
        })
        .unwrap();
        assert_eq!(wal.durable_snapshot_stmts(), Some(3));
    }

    #[test]
    fn truncate_clears_log_and_counts_one_op() {
        let mut wal = Wal::new(FaultPlan::none());
        wal.append(&WalRecord::Ddl { sql: "x".into() }).unwrap();
        wal.append(&WalRecord::Commit { stmt_idx: 0 }).unwrap();
        assert!(!wal.image().is_empty());
        wal.truncate_log();
        assert!(wal.image().is_empty());
        assert_eq!(wal.ops(), 3);
        assert_eq!(wal.committed_statements(), 1, "ground truth survives");
    }

    #[test]
    fn crash_at_truncation_leaves_log_intact_for_every_mode() {
        for mode in [
            FaultMode::Lost,
            FaultMode::Torn { keep_sel: 5 },
            FaultMode::Corrupt { byte_sel: 5 },
        ] {
            let mut wal = Wal::new(FaultPlan { crash_op: 2, mode });
            wal.append(&WalRecord::Ddl { sql: "x".into() }).unwrap();
            wal.append(&WalRecord::Commit { stmt_idx: 0 }).unwrap();
            let before = wal.image().to_vec();
            wal.truncate_log();
            assert!(wal.crashed());
            assert_eq!(wal.crash_site(), Some(CrashSite::Truncate));
            assert_eq!(wal.image(), &before[..], "truncation must be lost");
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..200u64 {
            let a = FaultPlan::seeded(seed, 10);
            let b = FaultPlan::seeded(seed, 10);
            assert_eq!(a, b);
            assert!(!a.crashes() || a.crash_op < 10);
        }
        assert!(!FaultPlan::seeded(99, 0).crashes());
        // All three modes (and the no-crash case) occur over a seed sweep.
        let mut lost = 0;
        let mut torn = 0;
        let mut corrupt = 0;
        let mut none = 0;
        for seed in 0..200u64 {
            match FaultPlan::seeded(seed, 10) {
                p if !p.crashes() => none += 1,
                FaultPlan {
                    mode: FaultMode::Lost,
                    ..
                } => lost += 1,
                FaultPlan {
                    mode: FaultMode::Torn { .. },
                    ..
                } => torn += 1,
                FaultPlan {
                    mode: FaultMode::Corrupt { .. },
                    ..
                } => corrupt += 1,
            }
        }
        assert!(lost > 0 && torn > 0 && corrupt > 0 && none > 0);
    }

    #[test]
    fn fault_plan_seeded_streams_are_pinned() {
        // Golden values: the seed → plan mapping is part of the repro
        // contract (a finding's fault_seed must rebuild the same plan in
        // any build on any platform). If this test breaks, the seed
        // scheme changed and every recorded repro coordinate is invalid.
        assert_eq!(
            FaultPlan::seeded(0, 10),
            FaultPlan {
                crash_op: 1,
                mode: FaultMode::Lost
            }
        );
        assert_eq!(
            FaultPlan::seeded(1, 10),
            FaultPlan {
                crash_op: 9,
                mode: FaultMode::Torn {
                    keep_sel: 17911839290282890590
                }
            }
        );
        assert_eq!(
            FaultPlan::seeded(2, 10),
            FaultPlan {
                crash_op: 6,
                mode: FaultMode::Corrupt {
                    byte_sel: 10987583248141275951
                }
            }
        );
        assert_eq!(FaultPlan::seeded(4, 10), FaultPlan::none());
    }

    #[test]
    fn media_plan_seeded_streams_are_pinned() {
        // Golden values for the media axis — same contract as the fault
        // plan's pinned stream.
        assert_eq!(
            MediaPlan::seeded(0, 10),
            MediaPlan {
                site: StorageSite::Snapshot,
                mode: MediaMode::Rot {
                    bit_sel: 487617019471545679
                }
            }
        );
        assert_eq!(
            MediaPlan::seeded(2, 10),
            MediaPlan {
                site: StorageSite::Log,
                mode: MediaMode::None
            }
        );
        assert_eq!(
            MediaPlan::seeded(10, 10),
            MediaPlan {
                site: StorageSite::Log,
                mode: MediaMode::PermanentRead
            }
        );
        assert_eq!(
            MediaPlan::seeded(20, 10),
            MediaPlan {
                site: StorageSite::Log,
                mode: MediaMode::TransientRead { failures: 2 }
            }
        );
        assert_eq!(
            MediaPlan::seeded(23, 10),
            MediaPlan {
                site: StorageSite::Log,
                mode: MediaMode::NoSpace { at_op: 1 }
            }
        );
    }

    #[test]
    fn media_plan_seeded_covers_every_mode_and_both_retry_regimes() {
        let mut none = 0;
        let mut rot = 0;
        let mut heal = 0; // transient within the cap
        let mut beyond = 0; // transient beyond the cap
        let mut permanent = 0;
        let mut nospace = 0;
        for seed in 0..400u64 {
            let p = MediaPlan::seeded(seed, 10);
            assert_eq!(p, MediaPlan::seeded(seed, 10), "deterministic");
            match p.mode {
                MediaMode::None => none += 1,
                MediaMode::Rot { .. } => rot += 1,
                MediaMode::TransientRead { failures } => {
                    assert!((1..=6).contains(&failures));
                    if failures <= READ_RETRY_CAP {
                        heal += 1;
                    } else {
                        beyond += 1;
                    }
                }
                MediaMode::PermanentRead => permanent += 1,
                MediaMode::NoSpace { at_op } => {
                    assert!(at_op <= 10);
                    nospace += 1;
                }
            }
        }
        assert!(
            none > 0 && rot > 0 && heal > 0 && beyond > 0 && permanent > 0 && nospace > 0,
            "none={none} rot={rot} heal={heal} beyond={beyond} permanent={permanent} nospace={nospace}"
        );
    }

    #[test]
    fn read_retry_heals_transient_faults_within_the_cap() {
        let bugs = BugRegistry::none();
        for failures in 1..=READ_RETRY_CAP {
            let mut disk = SimDisk::from_bytes(vec![1, 2, 3]);
            disk.set_read_fault(Some(ReadFault::Transient { failures }));
            let got = disk
                .read_with_retry(StorageSite::Log, &bugs)
                .unwrap()
                .to_vec();
            assert_eq!(got, vec![1, 2, 3]);
            assert_eq!(disk.read_attempts(), (failures + 1) as u64);
            // Per-call semantics: a second read pays the same schedule.
            disk.read_with_retry(StorageSite::Log, &bugs).unwrap();
            assert_eq!(disk.read_attempts(), 2 * (failures + 1) as u64);
        }
    }

    #[test]
    fn read_retry_fails_stop_beyond_the_cap_and_on_permanent_faults() {
        let bugs = BugRegistry::none();
        let mut disk = SimDisk::from_bytes(vec![9]);
        disk.set_read_fault(Some(ReadFault::Transient {
            failures: READ_RETRY_CAP + 1,
        }));
        let err = disk.read_with_retry(StorageSite::Log, &bugs).unwrap_err();
        assert_eq!(
            err.kind,
            StorageFaultKind::ReadFault {
                attempts: READ_RETRY_CAP + 1,
                permanent: false
            }
        );

        let mut disk = SimDisk::from_bytes(vec![9]);
        disk.set_read_fault(Some(ReadFault::Permanent));
        let err = disk
            .read_with_retry(StorageSite::Snapshot, &bugs)
            .unwrap_err();
        assert_eq!(err.site, StorageSite::Snapshot);
        assert_eq!(
            err.kind,
            StorageFaultKind::ReadFault {
                attempts: READ_RETRY_CAP + 1,
                permanent: true
            }
        );
    }

    #[test]
    fn read_retry_mutants_break_the_contract_in_opposite_directions() {
        // TransientFaultAsPermanentLoss: gives up on the first failure of
        // a fault the retry schedule must heal.
        let bugs = BugRegistry::only_media(MediaBugId::TransientFaultAsPermanentLoss);
        let mut disk = SimDisk::from_bytes(vec![7]);
        disk.set_read_fault(Some(ReadFault::Transient { failures: 1 }));
        let err = disk.read_with_retry(StorageSite::Log, &bugs).unwrap_err();
        assert_eq!(
            err.kind,
            StorageFaultKind::ReadFault {
                attempts: 1,
                permanent: false
            }
        );

        // RetryCapIgnored: silently retries a transient fault past the cap
        // where the contract demands a structured error...
        let bugs = BugRegistry::only_media(MediaBugId::RetryCapIgnored);
        let mut disk = SimDisk::from_bytes(vec![7]);
        disk.set_read_fault(Some(ReadFault::Transient {
            failures: READ_RETRY_CAP + 3,
        }));
        assert!(disk.read_with_retry(StorageSite::Log, &bugs).is_ok());
        assert_eq!(disk.read_attempts(), (READ_RETRY_CAP + 4) as u64);
        // ...but still terminates (with an error) on a permanent fault.
        let mut disk = SimDisk::from_bytes(vec![7]);
        disk.set_read_fault(Some(ReadFault::Permanent));
        assert!(disk.read_with_retry(StorageSite::Log, &bugs).is_err());
    }

    #[test]
    fn nospace_refuses_the_nth_append_and_every_later_one() {
        let mut wal = Wal::new(FaultPlan::none());
        wal.set_media_plan(MediaPlan {
            site: StorageSite::Log,
            mode: MediaMode::NoSpace { at_op: 2 },
        });
        wal.append(&WalRecord::Ddl { sql: "a".into() }).unwrap();
        wal.commit_statement().unwrap();
        assert_eq!(wal.committed_statements(), 1);
        let before = wal.image().to_vec();
        let err = wal.append(&WalRecord::Ddl { sql: "b".into() }).unwrap_err();
        assert_eq!(err.site, StorageSite::Log);
        assert_eq!(err.kind, StorageFaultKind::NoSpace { op: 2 });
        // Nothing landed, the op counter did not advance, and later
        // appends (to either file) keep failing.
        assert_eq!(wal.image(), &before[..]);
        assert_eq!(wal.ops(), 2);
        assert!(wal.commit_statement().is_err());
        assert!(wal
            .append_snapshot(&WalRecord::SnapshotBegin { stmt_idx: 1 })
            .is_err());
        assert_eq!(wal.committed_statements(), 1);
        assert_eq!(wal.statements_logged(), 1, "failed commit keeps its index");
        assert!(!wal.crashed(), "disk-full is degradation, not a crash");
    }

    #[test]
    fn degrade_at_rest_applies_rot_and_arms_read_faults() {
        let mut wal = Wal::new(FaultPlan::none());
        wal.append(&WalRecord::Ddl { sql: "x".into() }).unwrap();
        let clean = wal.image().to_vec();

        let mut rotted = wal.clone();
        rotted.set_media_plan(MediaPlan {
            site: StorageSite::Log,
            mode: MediaMode::Rot { bit_sel: 13 },
        });
        rotted.degrade_at_rest();
        let dirty = rotted.image().to_vec();
        assert_ne!(dirty, clean);
        let diff: Vec<usize> = (0..clean.len()).filter(|&i| clean[i] != dirty[i]).collect();
        assert_eq!(diff.len(), 1, "exactly one byte differs");
        assert_eq!(
            (clean[diff[0]] ^ dirty[diff[0]]).count_ones(),
            1,
            "exactly one bit flipped"
        );

        let mut faulted = wal.clone();
        faulted.set_media_plan(MediaPlan {
            site: StorageSite::Log,
            mode: MediaMode::PermanentRead,
        });
        faulted.degrade_at_rest();
        let bugs = BugRegistry::none();
        assert!(faulted.read_log_image(&bugs).is_err());
        assert!(
            faulted.read_snapshot_image(&bugs).is_ok(),
            "other site unhurt"
        );
    }

    #[test]
    fn media_describe_names_site_mode_and_retry_cap() {
        assert_eq!(MediaPlan::none().describe(), "no media fault");
        let p = MediaPlan {
            site: StorageSite::Snapshot,
            mode: MediaMode::TransientRead { failures: 5 },
        };
        let d = p.describe();
        assert!(d.contains("snapshot"), "{d}");
        assert!(d.contains("fails 5x"), "{d}");
        assert!(d.contains("retry cap 3"), "{d}");
        let p = MediaPlan {
            site: StorageSite::Log,
            mode: MediaMode::NoSpace { at_op: 7 },
        };
        assert!(p.describe().contains("disk full at append op 7"));
    }
}
