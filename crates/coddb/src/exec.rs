//! Plan execution.
//!
//! A materializing executor: each operator produces a vector of shared
//! copy-on-write rows ([`Row`]). Scans are zero-copy — a base-table,
//! index or CTE scan hands out refcount bumps to storage instead of
//! cloning values ([`ScanMode::Cloning`] restores the deep-cloning
//! baseline for differential testing) — and cacheable FROM subtrees are
//! materialized once per statement and reused across a correlated
//! subquery's re-instantiations ([`exec_from`]). Joins with
//! planner-recognized equality keys run as build/probe hash joins over
//! bound key ordinals ([`hash_join`]), falling back to the nested loop
//! for non-equi predicates, mutant-forced ON rewrites, and runtime
//! key-class mixes where hash equality cannot reproduce SQL `=`.
//! Correlated subqueries receive the outer row scopes as a stack of
//! [`Frame`]s; their plans and bindings are compiled once per statement,
//! non-correlated results are memoized whole, and correlated results are
//! memoized per outer key — the runtime detector records exactly which
//! outer slots an evaluation read, and those slots' values key the memo
//! ([`exec_subquery`], [`crate::cache`]). CTEs are materialized once per
//! SELECT and shared through a chained [`CteEnv`]. A fuel counter bounds
//! total row work so that injected hang bugs (and any accidental
//! blow-ups) surface as [`Error::Hang`] instead of wedging a campaign.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use crate::ast::{AggFunc, BinaryOp, Expr, JoinKind, Select, SelectItem, SetOp, SortOrder};
use crate::bind::{bind_join_keys, Binder, BoundExpr};
use crate::bugs::{BugId, BugRegistry, IndexBugId};
use crate::cache::{get_or_build, GroupedBindings, ProjBindings, StmtCaches, SubqEntry};
use crate::catalog::Catalog;
use crate::coverage::{pt, Coverage};
use crate::dialect::Dialect;
use crate::error::{Error, Result};
use crate::eval::{
    compute_aggregate, eval_bound, eval_expr, truthiness, AggValues, Clause, ExprCtx,
};
use crate::plan::{self, BodyPlan, CorePlan, FromPlan, PlanCtx, SelectPlan};
use crate::value::{OrdRow, OrdValue, Relation, Row, Value};

/// How often clause expressions are bound during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BindMode {
    /// Bind once per operator instantiation, evaluate per row (default).
    #[default]
    PerQuery,
    /// Re-bind (re-resolve every column name) for every row. This is the
    /// tree-walking baseline the bind-once pipeline replaced; it exists so
    /// benchmarks can compare the two on identical machinery. Note the
    /// baseline allocates a fresh bound tree per row, which is more work
    /// than the original by-name interpreter's per-ColumnRef allocation —
    /// `bind_vs_walk` numbers measure bind-once vs. per-row binding, not
    /// vs. the historical implementation bit for bit.
    PerRow,
}

/// Physical join strategy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinMode {
    /// Hash join on recognized equality keys, nested loop otherwise
    /// (default).
    #[default]
    Auto,
    /// Force the nested loop everywhere — kept for differential testing
    /// of the hash-join path and as a benchmarking baseline.
    NestedLoop,
}

/// How scans hand rows to the operator pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Zero-copy: scans hand out refcount bumps to table / CTE storage
    /// (rows are [`Row`]-shared), and FROM subtrees re-instantiated by
    /// correlated subqueries reuse their materialized result (default).
    #[default]
    Shared,
    /// Deep-clone every scanned row and rematerialize FROM subtrees on
    /// every instantiation — the pre-shared-row pipeline, kept for
    /// differential testing of the zero-copy path
    /// (`coddb/tests/scan_differential.rs`) and as a baseline.
    Cloning,
}

/// How clause expressions are evaluated over operator input rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Chunk-at-a-time vectorized kernels ([`crate::vec_eval`]) for
    /// classified-vectorizable expressions, with an exact per-chunk
    /// row-at-a-time fallback (default).
    #[default]
    Vectorized,
    /// Row-at-a-time interpretation everywhere — kept for differential
    /// testing of the vectorized path (`coddb/tests/eval_differential.rs`)
    /// and as the `vectorized_vs_row` benchmarking baseline.
    RowAtATime,
}

/// Which statement kind is executing (several mutants key on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    Select,
    Insert,
    Update,
    Delete,
}

/// Shared execution context for one statement.
pub struct EngineCtx<'a> {
    pub catalog: &'a Catalog,
    pub dialect: Dialect,
    pub bugs: &'a BugRegistry,
    pub cov: &'a Coverage,
    pub optimize: bool,
    pub stmt: StmtKind,
    /// Baseline mode: re-bind clause expressions for every row (see
    /// [`BindMode::PerRow`]).
    pub rebind_per_row: bool,
    /// Force nested-loop joins (see [`JoinMode::NestedLoop`]).
    pub force_nested_loop: bool,
    /// Baseline mode: deep-clone scanned rows (see [`ScanMode::Cloning`]).
    pub clone_scans: bool,
    /// Baseline mode: execute `IndexSeek` nodes as full sequential scans
    /// (see [`crate::database::AccessMode::ScanOnly`]).
    pub scan_only: bool,
    /// Vectorized chunk evaluation enabled (see [`EvalMode`]).
    pub vectorize: bool,
    /// Reusable buffers for the vectorized kernels — one pool per
    /// statement, so chunk evaluation allocates O(1) buffers total.
    pub(crate) vec_pool: RefCell<crate::vec_eval::Pool>,
    fuel: Cell<u64>,
    /// Per-statement plan / binding / result caches.
    pub(crate) caches: StmtCaches,
    /// The innermost executing subquery's scope floor: frames strictly
    /// below it belong to outer queries. Column evaluation records every
    /// read below the floor in [`Self::outer_reads`] — the runtime
    /// correlation detector behind subquery result memoization. 0 (the
    /// top level, and [`Self::untracked`] regions) disables recording.
    pub(crate) outer_floor: Cell<usize>,
    /// Outer slots `(absolute frame index, column ordinal)` read since
    /// the innermost [`exec_subquery`] swap — deduplicated, tiny.
    pub(crate) outer_reads: RefCell<Vec<(u32, u32)>>,
    /// Statement-scoped subquery memo accounting (full + keyed hits vs.
    /// executions), surfaced through `Database::subquery_memo_stats`.
    pub(crate) subq_memo_hits: Cell<u64>,
    pub(crate) subq_memo_misses: Cell<u64>,
}

impl<'a> EngineCtx<'a> {
    pub fn new(
        catalog: &'a Catalog,
        dialect: Dialect,
        bugs: &'a BugRegistry,
        cov: &'a Coverage,
        optimize: bool,
        stmt: StmtKind,
        fuel: u64,
    ) -> Self {
        EngineCtx {
            catalog,
            dialect,
            bugs,
            cov,
            optimize,
            stmt,
            rebind_per_row: false,
            force_nested_loop: false,
            clone_scans: false,
            scan_only: false,
            vectorize: true,
            vec_pool: RefCell::new(crate::vec_eval::Pool::default()),
            fuel: Cell::new(fuel),
            caches: StmtCaches::default(),
            outer_floor: Cell::new(0),
            outer_reads: RefCell::new(Vec::new()),
            subq_memo_hits: Cell::new(0),
            subq_memo_misses: Cell::new(0),
        }
    }

    /// Record a column read at absolute frame index `fi`: below the
    /// current subquery's scope floor it is an outer read and enters the
    /// correlation detector's slot set. The floor comparison is the whole
    /// hot-path cost — outside subqueries the floor is 0 and nothing
    /// records.
    #[inline]
    pub(crate) fn note_column_read(&self, fi: usize, index: usize) {
        if fi < self.outer_floor.get() {
            let mut reads = self.outer_reads.borrow_mut();
            let slot = (fi as u32, index as u32);
            if !reads.contains(&slot) {
                reads.push(slot);
            }
        }
    }

    /// May vectorized chunk evaluation run? The per-row rebinding
    /// baseline re-binds from the AST every row, which the kernels
    /// (which walk the bound form) would not reproduce.
    #[inline]
    pub(crate) fn vec_enabled(&self) -> bool {
        self.vectorize && !self.rebind_per_row
    }

    /// Fuel still available (the chunked paths check the budget covers a
    /// whole chunk before charging it, so exhaustion mid-chunk falls back
    /// to the per-row loop and hangs at exactly the scalar row).
    #[inline]
    pub(crate) fn fuel_left(&self) -> u64 {
        self.fuel.get()
    }

    /// Spend `n` units of row work; exceeding the budget is a hang.
    #[inline]
    pub fn consume_fuel(&self, n: u64) -> Result<()> {
        let left = self.fuel.get();
        if left < n {
            return Err(Error::Hang);
        }
        self.fuel.set(left - n);
        Ok(())
    }

    /// May a binding built at this subquery depth enter the pointer-keyed
    /// caches? Depth-0 operators execute exactly once per statement (only
    /// `exec_subquery` re-enters execution, and it bumps the depth), so
    /// caching them is pure overhead — and the PerRow baseline's plans
    /// are not retained, so their addresses must never become keys.
    pub(crate) fn bindings_cacheable(&self, depth: u32) -> bool {
        depth > 0 && !self.rebind_per_row
    }

    /// Run `f` with the correlation tracker suspended. FROM-clause
    /// internals (join keys and ON predicates, pushed filters, index
    /// expressions, derived tables, CTE bodies) evaluate on *rootless*
    /// frame stacks that do not contain the enclosing subquery's outer
    /// frames — their frame indexes start at 0, so counting them would
    /// falsely mark the subquery correlated. They also *cannot* read
    /// outer frames (not in scope), so dropping their observations is
    /// exact; any nested subquery inside re-arms the tracker for its own
    /// scope before its own memoization decision.
    pub(crate) fn untracked<T>(&self, f: impl FnOnce() -> T) -> T {
        let prev = self.outer_floor.replace(0);
        let out = f();
        self.outer_floor.set(prev);
        out
    }

    pub fn plan_ctx(&self) -> PlanCtx<'a> {
        PlanCtx {
            catalog: self.catalog,
            dialect: self.dialect,
            bugs: self.bugs,
            cov: self.cov,
            optimize: self.optimize,
        }
    }
}

/// Metadata of one output column of a relation in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct ColMeta {
    /// Qualifying alias (lowercase), if any.
    pub table: Option<String>,
    /// Column name (lowercase).
    pub name: String,
    /// True when the column came from an expanded view.
    pub from_view: bool,
    /// True when the column came from a CTE scan.
    pub from_cte: bool,
}

impl ColMeta {
    /// Case-normalize names once, at schema construction — the binder and
    /// the legacy by-name lookup both rely on `table`/`name` being
    /// lowercase so per-lookup comparisons never allocate.
    pub fn new(table: Option<&str>, name: &str) -> ColMeta {
        ColMeta {
            table: table.map(str::to_ascii_lowercase),
            name: name.to_ascii_lowercase(),
            from_view: false,
            from_cte: false,
        }
    }

    pub fn from_view(mut self, from_view: bool) -> ColMeta {
        self.from_view = from_view;
        self
    }

    pub fn from_cte(mut self, from_cte: bool) -> ColMeta {
        self.from_cte = from_cte;
        self
    }
}

/// Schema of a relation in flight.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    pub cols: Vec<ColMeta>,
}

impl Schema {
    fn concat(mut self, other: Schema) -> Schema {
        self.cols.extend(other.cols);
        self
    }
}

/// One visible row scope (innermost scope is the last frame).
#[derive(Clone, Copy)]
pub struct Frame<'a> {
    pub schema: &'a Schema,
    pub row: &'a [Value],
}

/// Materialized CTEs visible to the current query, chained to enclosing
/// queries' CTEs.
pub struct CteEnv<'a> {
    parent: Option<&'a CteEnv<'a>>,
    entries: Vec<(String, Rc<CteData>)>,
}

/// A materialized CTE.
pub struct CteData {
    pub columns: Vec<String>,
    pub rel: Relation,
    reads: Cell<u32>,
}

impl CteEnv<'static> {
    pub fn root() -> Self {
        CteEnv {
            parent: None,
            entries: Vec::new(),
        }
    }
}

impl<'a> CteEnv<'a> {
    fn lookup(&self, name: &str) -> Option<Rc<CteData>> {
        for (n, data) in self.entries.iter().rev() {
            if n == name {
                return Some(Rc::clone(data));
            }
        }
        self.parent.and_then(|p| p.lookup(name))
    }

    /// All visible CTE names (used to seed subquery planning).
    pub fn names(&self) -> std::collections::BTreeSet<String> {
        let mut out = self.parent.map(|p| p.names()).unwrap_or_default();
        out.extend(self.entries.iter().map(|(n, _)| n.clone()));
        out
    }

    /// True when no CTE is visible anywhere up the chain (the common
    /// case — lets cache verification skip name comparison entirely).
    pub fn is_empty_chain(&self) -> bool {
        self.entries.is_empty() && self.parent.is_none_or(|p| p.is_empty_chain())
    }

    /// Is `name` visible in this environment?
    fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name) || self.parent.is_some_and(|p| p.contains(name))
    }

    /// Is every visible name contained in `names`?
    fn names_subset_of(&self, names: &std::collections::BTreeSet<String>) -> bool {
        self.entries.iter().all(|(n, _)| names.contains(n))
            && self.parent.is_none_or(|p| p.names_subset_of(names))
    }
}

/// Evaluation environment handed to the expression evaluator.
#[derive(Clone, Copy)]
pub struct EvalEnv<'a> {
    pub ctx: &'a EngineCtx<'a>,
    pub scopes: &'a [Frame<'a>],
    pub aggs: Option<&'a AggValues>,
    pub ctes: &'a CteEnv<'a>,
    pub info: ExprCtx,
}

impl<'a> EvalEnv<'a> {
    /// Environment for child sub-expressions (clears `top_level`).
    pub fn child(self) -> Self {
        EvalEnv {
            info: self.info.child(),
            ..self
        }
    }
}

/// A clause expression compiled once per *statement*: the AST is kept
/// (borrowed — operator inputs outlive their row loops) for the
/// shape-sensitive bug hooks, the bound form is what the per-row loop
/// evaluates. The bound form is shared through the per-statement binding
/// cache, so a subquery's clause expressions are not re-bound for every
/// outer-row re-instantiation of its operators.
pub(crate) struct Prepared<'p> {
    ast: &'p Expr,
    bound: Rc<BoundExpr>,
}

impl<'p> Prepared<'p> {
    /// Bind `expr` against the scope stack (outermost schema first),
    /// reusing the statement's binding cache when possible. Cache keys
    /// are expression addresses: sound because every expression routed
    /// through here lives for the whole statement (statement AST, catalog
    /// index expressions, the executing plan, or a plan retained by the
    /// subquery cache — see [`crate::cache`]), and because a given
    /// expression site always binds against the same scope schemas within
    /// one statement.
    pub(crate) fn new(
        expr: &'p Expr,
        scopes: &[&Schema],
        depth: u32,
        ctx: &EngineCtx,
    ) -> Result<Prepared<'p>> {
        let bound = get_or_build(
            &ctx.caches.bound,
            ctx.bindings_cacheable(depth),
            expr as *const Expr as usize,
            || {
                let mut binder = Binder::new(scopes, depth);
                Ok(Rc::new(binder.bind(expr)?))
            },
        )?;
        // Debug builds verify every bound clause at the bind seam: scope
        // hops and ordinals in bounds, no aggregate slots (this path
        // rejects aggregates), and agreement between the AST-mirror and
        // bound-form vectorization classifiers. Clean engines only —
        // mutant behavior is the campaign's business.
        #[cfg(debug_assertions)]
        if ctx.bugs.is_clean() {
            let violations = crate::validate::validate_bound(&bound, scopes, None);
            assert!(
                violations.is_empty(),
                "binder produced an out-of-bounds form for `{expr}`: {violations:?}"
            );
            if depth == 0 {
                let bound_ok = crate::vec_eval::classify(&bound, ctx).is_ok();
                let ast_ok =
                    crate::vec_eval::classify_ast(expr, ctx.bugs, ctx.dialect, ctx.stmt, 0).is_ok();
                assert!(
                    bound_ok == ast_ok,
                    "vectorization classifiers disagree on `{expr}`"
                );
            }
        }
        Ok(Prepared { bound, ast: expr })
    }

    /// Wrap an already-bound form (used by the cached projection path).
    pub(crate) fn from_bound(ast: &'p Expr, bound: Rc<BoundExpr>) -> Prepared<'p> {
        Prepared { ast, bound }
    }

    pub(crate) fn ast(&self) -> &Expr {
        self.ast
    }

    pub(crate) fn bound(&self) -> &BoundExpr {
        &self.bound
    }

    /// Evaluate for one row. In the default mode this is a bound-form
    /// walk with zero name resolution; in [`BindMode::PerRow`] it re-binds
    /// from the AST first (the tree-walking baseline).
    #[inline]
    pub(crate) fn eval(&self, env: EvalEnv) -> Result<Value> {
        if env.ctx.rebind_per_row {
            eval_expr(self.ast, env)
        } else {
            eval_bound(&self.bound, env)
        }
    }
}

/// Scope schemas for binding: the schemas of the outer frames plus the
/// local schema, outermost first.
fn bind_scopes<'a>(outer_scopes: &'a [Frame<'a>], local: &'a Schema) -> Vec<&'a Schema> {
    let mut scopes: Vec<&Schema> = Vec::with_capacity(outer_scopes.len() + 1);
    scopes.extend(outer_scopes.iter().map(|f| f.schema));
    scopes.push(local);
    scopes
}

/// A reusable frame stack: the outer frames plus one local slot that
/// [`set_local_row`] repoints per row — no per-row allocation.
fn frame_stack<'a>(outer_scopes: &'a [Frame<'a>], local: &'a Schema) -> Vec<Frame<'a>> {
    let mut frames = Vec::with_capacity(outer_scopes.len() + 1);
    frames.extend_from_slice(outer_scopes);
    frames.push(Frame {
        schema: local,
        row: &[],
    });
    frames
}

#[inline]
fn set_local_row<'a>(frames: &mut [Frame<'a>], schema: &'a Schema, row: &'a [Value]) {
    *frames.last_mut().expect("frame stack has a local slot") = Frame { schema, row };
}

/// Execute a subquery from inside expression evaluation, with the current
/// scopes as outer context.
///
/// The subquery's plan is compiled once per statement (keyed by AST
/// identity, verified structurally — see [`crate::cache`]). Result
/// memoization is two-tier, driven by the runtime correlation detector:
///
/// * an evaluation that reads **no** outer column proves the subquery
///   non-correlated — its full result relation is memoized and every
///   later evaluation within the statement returns the shared relation;
/// * an evaluation that reads outer columns records exactly **which**
///   slots it read, and the result is memoized keyed by those slots'
///   values — a correlated subquery over K distinct outer keys executes
///   K times, not once per outer row. A keyed hit is sound because a
///   deterministic execution that agrees with the cached one on every
///   value it actually read must follow the identical path (including
///   reads redirected by the name-collision mutant, which the detector
///   tracks at the load site and therefore folds into the key).
///
/// All caches are bypassed in the [`BindMode::PerRow`] baseline.
pub fn exec_subquery(query: &Select, env: EvalEnv) -> Result<Rc<Relation>> {
    let ctx = env.ctx;
    if ctx.rebind_per_row {
        // Baseline: plan + bind + execute from scratch on every call.
        let pctx = ctx.plan_ctx();
        let plan = plan::plan_select(query, &pctx, &env.ctes.names())?;
        let rel = exec_select_plan(&plan, ctx, env.ctes, env.scopes, env.info.depth + 1)?;
        return Ok(Rc::new(rel));
    }

    let key = query as *const Select as usize;
    let entry = match ctx
        .caches
        .subq_get(key, query)
        .filter(|e| cte_env_matches(&e.cte_names, env.ctes))
    {
        Some(entry) => {
            ctx.cov.hit(pt::EXEC_SUBQ_PLAN_HIT);
            entry
        }
        None => {
            let pctx = ctx.plan_ctx();
            let cte_names = env.ctes.names();
            let plan = Rc::new(plan::plan_select(query, &pctx, &cte_names)?);
            let entry = Rc::new(SubqEntry::new(query.clone(), cte_names, plan));
            ctx.caches.subq_insert(key, Rc::clone(&entry));
            entry
        }
    };

    if let Some(rel) = entry.result.borrow().clone() {
        ctx.cov.hit(pt::EXEC_SUBQ_RESULT_HIT);
        ctx.subq_memo_hits.set(ctx.subq_memo_hits.get() + 1);
        return Ok(rel);
    }

    // Keyed memo: a previous execution read exactly some outer slot set;
    // if the current outer rows carry the same values in those slots, the
    // cached result is the answer. The slots the cached execution read
    // still count as reads for the *enclosing* subquery's detector.
    if let Some(rel) = entry.keyed_lookup(env.scopes, |fi, ci| {
        ctx.note_column_read(fi as usize, ci as usize)
    }) {
        ctx.cov.hit(pt::EXEC_SUBQ_KEYED_HIT);
        ctx.subq_memo_hits.set(ctx.subq_memo_hits.get() + 1);
        return Ok(rel);
    }

    // Execute, recording every read below this subquery's scope floor
    // (column evaluation tracks the frames it touches — including reads
    // redirected by the name-collision mutant).
    let floor = env.scopes.len();
    let prev_floor = ctx.outer_floor.replace(floor);
    let prev_reads = ctx.outer_reads.take();
    let out = exec_select_plan(&entry.plan, ctx, env.ctes, env.scopes, env.info.depth + 1);
    let observed = ctx.outer_reads.replace(prev_reads);
    ctx.outer_floor.set(prev_floor);
    // Propagate outer reads to the enclosing subquery's detector (its
    // floor check drops reads that are local to it).
    for &(fi, ci) in &observed {
        ctx.note_column_read(fi as usize, ci as usize);
    }
    let rel = Rc::new(out?);
    ctx.subq_memo_misses.set(ctx.subq_memo_misses.get() + 1);
    if observed.is_empty() {
        // No outer column read: a deterministic function of table state,
        // which cannot change within the statement — memoize fully.
        *entry.result.borrow_mut() = Some(Rc::clone(&rel));
    } else {
        entry.keyed_insert(observed, env.scopes, Rc::clone(&rel));
    }
    Ok(rel)
}

/// Does the CTE-name snapshot a cached subquery plan was compiled under
/// still describe the current environment? Compares name *sets* (chain
/// shadowing collapses, exactly like [`CteEnv::names`]) without
/// allocating — this runs on every subquery evaluation, including
/// result-memo hits of per-outer-row correlated subqueries.
fn cte_env_matches(names: &std::collections::BTreeSet<String>, env: &CteEnv) -> bool {
    if names.is_empty() {
        return env.is_empty_chain();
    }
    env.names_subset_of(names) && names.iter().all(|n| env.contains(n))
}

/// Plan and execute a top-level SELECT; returns the result and the plan
/// fingerprint (Table 3's "unique query plans" metric).
pub fn run_query(select: &Select, ctx: &EngineCtx) -> Result<(Relation, u64)> {
    let pctx = ctx.plan_ctx();
    let plan = plan::plan_select(select, &pctx, &std::collections::BTreeSet::new())?;
    let fp = plan::fingerprint(&plan);
    let root = CteEnv::root();
    let rel = exec_select_plan(&plan, ctx, &root, &[], 0)?;
    Ok((rel, fp))
}

/// Execute a planned SELECT.
pub fn exec_select_plan(
    plan: &SelectPlan,
    ctx: &EngineCtx,
    outer_ctes: &CteEnv,
    outer_scopes: &[Frame],
    depth: u32,
) -> Result<Relation> {
    // Materialize CTEs in definition order; each sees its predecessors.
    let mut local: Vec<(String, Rc<CteData>)> = Vec::with_capacity(plan.ctes.len());
    for (name, columns, cte_plan) in &plan.ctes {
        let env = CteEnv {
            parent: Some(outer_ctes),
            entries: local.clone(),
        };
        ctx.cov.hit(pt::EXEC_CTE_EVAL);
        let rel = ctx.untracked(|| exec_select_plan(cte_plan, ctx, &env, &[], depth))?;
        let cols = if columns.is_empty() {
            rel.columns.clone()
        } else {
            if columns.len() != rel.columns.len() {
                return Err(Error::Catalog(format!(
                    "CTE {name} declares {} columns but its query returns {}",
                    columns.len(),
                    rel.columns.len()
                )));
            }
            columns.iter().map(|c| c.to_ascii_lowercase()).collect()
        };
        local.push((
            name.clone(),
            Rc::new(CteData {
                columns: cols,
                rel,
                reads: Cell::new(0),
            }),
        ));
    }
    let ctes = CteEnv {
        parent: Some(outer_ctes),
        entries: local,
    };

    // Bug hook: TidbInternalSetOpOrderBy.
    if ctx.bugs.active(BugId::TidbInternalSetOpOrderBy)
        && matches!(plan.body, BodyPlan::SetOp { .. })
        && plan
            .order_by
            .iter()
            .any(|o| matches!(o.expr, Expr::Literal(Value::Int(_))))
    {
        return Err(Error::Internal(
            "cannot resolve positional ORDER BY over set operation".into(),
        ));
    }

    let (mut rel, pre_rows, pre_from) = exec_body(&plan.body, ctx, &ctes, outer_scopes, depth)?;

    // ORDER BY. When the FROM result is an index seek that ran in key
    // order (`SeekInfo::ordered` — the *runtime* signal, absent whenever
    // the exactness gate or ScanOnly mode fell back to a plain scan),
    // the rows already carry the planner-proven output order and the
    // sort is skipped. `sort_relation` charges no fuel and the
    // branch-point bit is hit either way, so the elimination is
    // observation-free.
    if !plan.order_by.is_empty() {
        ctx.cov.hit(pt::EXEC_SORT);
        let pre_ordered = pre_from
            .as_ref()
            .and_then(|f| f.seek.as_ref())
            .is_some_and(|s| s.ordered);
        if !pre_ordered {
            sort_relation(
                &mut rel,
                pre_rows,
                pre_from.as_ref().map(|f| &f.schema),
                plan,
                ctx,
                &ctes,
                outer_scopes,
                depth,
            )?;
        }
    }

    // OFFSET / LIMIT.
    if let Some(off) = &plan.offset {
        ctx.cov.hit(pt::EXEC_OFFSET);
        let n = eval_limit_operand(off, ctx, &ctes, outer_scopes, depth, "OFFSET")?;
        rel.rows.drain(..n.min(rel.rows.len()));
    }
    if let Some(lim) = &plan.limit {
        ctx.cov.hit(pt::EXEC_LIMIT);
        let n = eval_limit_operand(lim, ctx, &ctes, outer_scopes, depth, "LIMIT")?;
        rel.rows.truncate(n);
    }

    if rel.rows.is_empty() {
        ctx.cov.hit(pt::EXEC_EMPTY_RELATION);
    }
    Ok(rel)
}

fn eval_limit_operand(
    e: &Expr,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    depth: u32,
    what: &str,
) -> Result<usize> {
    let env = EvalEnv {
        ctx,
        scopes: outer_scopes,
        aggs: None,
        ctes,
        info: ExprCtx {
            depth,
            ..ExprCtx::new(Clause::Limit)
        },
    };
    let v = eval_expr(e, env)?;
    match v.as_i64() {
        Some(n) if n >= 0 => Ok(n as usize),
        Some(_) => Ok(0),
        None => Err(Error::Eval(format!("{what} must be an integer"))),
    }
}

/// How one ORDER BY item produces its sort key; decided once per sort.
enum SortKey<'p> {
    /// `ORDER BY 2` — positional reference into the output row.
    Positional(usize),
    /// A bare column naming an output column (alias match).
    Output(usize),
    /// An expression bound against the pre-projection scope.
    Expr(Prepared<'p>),
}

#[allow(clippy::too_many_arguments)]
fn sort_relation<'p>(
    rel: &mut Relation,
    pre_rows: Option<Vec<Row>>,
    pre_schema: Option<&Schema>,
    plan: &'p SelectPlan,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    depth: u32,
) -> Result<()> {
    if rel.rows.is_empty() {
        return Ok(());
    }

    // Classify and bind each key once.
    let mut key_sources: Vec<(SortKey, bool)> = Vec::with_capacity(plan.order_by.len());
    for item in &plan.order_by {
        let desc = item.order == SortOrder::Desc;
        let prepare_expr = |e: &'p Expr| -> Result<SortKey<'p>> {
            match pre_schema {
                Some(schema) => {
                    let scopes = bind_scopes(outer_scopes, schema);
                    Ok(SortKey::Expr(Prepared::new(e, &scopes, depth, ctx)?))
                }
                None => Err(Error::Eval(format!(
                    "cannot resolve ORDER BY expression {e}"
                ))),
            }
        };
        let src = match &item.expr {
            Expr::Literal(Value::Int(k)) => {
                ctx.cov.hit(pt::EXEC_SORT_POSITIONAL);
                let idx = (*k - 1) as usize;
                if *k < 1 || idx >= rel.columns.len() {
                    return Err(Error::Eval(format!(
                        "ORDER BY position {k} is out of range"
                    )));
                }
                SortKey::Positional(idx)
            }
            Expr::Column(c) if c.table.is_none() => {
                // Prefer an output-column (alias) match, then fall back
                // to the pre-projection scope.
                match rel
                    .columns
                    .iter()
                    .position(|n| n.eq_ignore_ascii_case(&c.column))
                {
                    Some(idx) => SortKey::Output(idx),
                    None => prepare_expr(&item.expr)?,
                }
            }
            e => prepare_expr(e)?,
        };
        key_sources.push((src, desc));
    }

    // Compute sort keys per output row.
    let mut keyed: Vec<(Vec<(OrdValue, bool)>, Row)> = Vec::with_capacity(rel.rows.len());
    {
        let mut frames = match pre_schema {
            Some(schema) => frame_stack(outer_scopes, schema),
            None => Vec::new(),
        };
        for (i, row) in rel.rows.iter().enumerate() {
            let mut keys = Vec::with_capacity(key_sources.len());
            for (src, desc) in &key_sources {
                let v = match src {
                    SortKey::Positional(idx) | SortKey::Output(idx) => row[*idx].clone(),
                    SortKey::Expr(prepared) => match (&pre_rows, pre_schema) {
                        (Some(rows), Some(schema)) if i < rows.len() => {
                            set_local_row(&mut frames, schema, &rows[i]);
                            let env = EvalEnv {
                                ctx,
                                scopes: &frames,
                                aggs: None,
                                ctes,
                                info: ExprCtx {
                                    depth,
                                    ..ExprCtx::new(Clause::OrderBy)
                                },
                            };
                            prepared.eval(env)?
                        }
                        _ => {
                            return Err(Error::Eval(format!(
                                "cannot resolve ORDER BY expression {}",
                                prepared.ast()
                            )))
                        }
                    },
                };
                keys.push((OrdValue(v), *desc));
            }
            keyed.push((keys, row.clone()));
        }
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for ((a, desc), (b, _)) in ka.iter().zip(kb.iter()) {
            let ord = a.cmp(b);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    rel.rows = keyed.into_iter().map(|(_, r)| r).collect();
    Ok(())
}

/// A body's output: the relation plus, when available, the pre-projection
/// rows and FROM result (whose schema ORDER BY expressions bind against).
type BodyOutput = (Relation, Option<Vec<Row>>, Option<Rc<FromResult>>);

/// Execute a body plan.
fn exec_body(
    body: &BodyPlan,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    depth: u32,
) -> Result<BodyOutput> {
    match body {
        BodyPlan::Core(core) => exec_core(core, ctx, ctes, outer_scopes, depth),
        BodyPlan::SetOp {
            op,
            all,
            left,
            right,
        } => {
            let (l, _, _) = exec_body(left, ctx, ctes, outer_scopes, depth)?;
            let (r, _, _) = exec_body(right, ctx, ctes, outer_scopes, depth)?;
            let rel = exec_set_op(*op, *all, l, r, ctx, left, right)?;
            Ok((rel, None, None))
        }
        BodyPlan::Values(rows) => {
            ctx.cov.hit(pt::EXEC_VALUES_ROWS);
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                ctx.consume_fuel(1)?;
                let mut vals = Vec::with_capacity(row.len());
                for e in row {
                    let env = EvalEnv {
                        ctx,
                        scopes: outer_scopes,
                        aggs: None,
                        ctes,
                        info: ExprCtx {
                            depth,
                            ..ExprCtx::new(Clause::SelectList)
                        },
                    };
                    vals.push(eval_expr(e, env)?);
                }
                out.push(Row::new(vals));
            }
            let arity = rows.first().map(|r| r.len()).unwrap_or(0);
            let columns = (1..=arity).map(|i| format!("column{i}")).collect();
            Ok((Relation { columns, rows: out }, None, None))
        }
    }
}

fn core_is_distinct(body: &BodyPlan) -> bool {
    match body {
        BodyPlan::Core(c) => c.distinct,
        BodyPlan::SetOp { left, right, .. } => core_is_distinct(left) || core_is_distinct(right),
        BodyPlan::Values(_) => false,
    }
}

fn exec_set_op(
    op: SetOp,
    all: bool,
    left: Relation,
    right: Relation,
    ctx: &EngineCtx,
    left_body: &BodyPlan,
    right_body: &BodyPlan,
) -> Result<Relation> {
    if !left.rows.is_empty() && !right.rows.is_empty() && left.columns.len() != right.columns.len()
    {
        return Err(Error::Eval(format!(
            "SELECTs to the left and right of {} do not have the same number of result columns",
            op.sql_name()
        )));
    }
    // Bug hook: MysqlInternalUnionTypeUnify.
    if ctx.bugs.active(BugId::MysqlInternalUnionTypeUnify) && op == SetOp::Union {
        let lt = left.column_types();
        let rt = right.column_types();
        let clash = lt.iter().zip(rt.iter()).any(|(a, b)| {
            matches!(
                (a, b),
                (crate::value::DataType::Int, crate::value::DataType::Text)
                    | (crate::value::DataType::Text, crate::value::DataType::Int)
            )
        });
        if clash {
            return Err(Error::Internal("failed to unify UNION column types".into()));
        }
    }
    // Bug hook: DuckdbHangDistinctUnion.
    if ctx.bugs.active(BugId::DuckdbHangDistinctUnion)
        && op == SetOp::Union
        && !all
        && (core_is_distinct(left_body) || core_is_distinct(right_body))
    {
        return Err(Error::Hang);
    }
    // Bug hook: CockroachInternalIntersectNull.
    if ctx.bugs.active(BugId::CockroachInternalIntersectNull)
        && op == SetOp::Intersect
        && (left.rows.iter().any(|r| r.iter().any(Value::is_null))
            || right.rows.iter().any(|r| r.iter().any(Value::is_null)))
    {
        return Err(Error::Internal(
            "NULL row reached INTERSECT hash table".into(),
        ));
    }

    ctx.consume_fuel((left.rows.len() + right.rows.len()) as u64)?;
    let columns = if left.columns.is_empty() {
        right.columns.clone()
    } else {
        left.columns.clone()
    };
    let rows = match (op, all) {
        (SetOp::Union, true) => {
            ctx.cov.hit(pt::EXEC_UNION_ALL);
            let mut rows = left.rows;
            rows.extend(right.rows);
            rows
        }
        (SetOp::Union, false) => {
            ctx.cov.hit(pt::EXEC_UNION);
            let mut rows = left.rows;
            rows.extend(right.rows);
            dedup_rows(rows)
        }
        (SetOp::Intersect, _) => {
            ctx.cov.hit(pt::EXEC_INTERSECT);
            let rset: std::collections::BTreeSet<OrdRow> =
                right.rows.into_iter().map(OrdRow).collect();
            let rows: Vec<Row> = left
                .rows
                .into_iter()
                .filter(|r| rset.contains(&OrdRow(r.clone())))
                .collect();
            dedup_rows(rows)
        }
        (SetOp::Except, _) => {
            ctx.cov.hit(pt::EXEC_EXCEPT);
            let rset: std::collections::BTreeSet<OrdRow> =
                right.rows.into_iter().map(OrdRow).collect();
            let rows: Vec<Row> = left
                .rows
                .into_iter()
                .filter(|r| !rset.contains(&OrdRow(r.clone())))
                .collect();
            dedup_rows(rows)
        }
    };
    Ok(Relation { columns, rows })
}

fn dedup_rows(rows: Vec<Row>) -> Vec<Row> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        if seen.insert(OrdRow(r.clone())) {
            out.push(r);
        }
    }
    out
}

/// Runtime record of an executed index seek, consumed by [`exec_core`]'s
/// WHERE stage for coverage/fuel parity with the ScanOnly baseline (see
/// [`seek_filter`]).
#[derive(Clone)]
pub(crate) struct SeekInfo {
    /// Storage positions of the emitted rows, aligned with the result
    /// rows (ascending when the seek is unordered).
    positions: Vec<usize>,
    /// Table row count at seek time (`positions.len()` + skipped rows).
    total: usize,
    /// Catalog name of the seeked index — [`seek_filter`] computes the
    /// skipped-class representatives from it on demand, exact or lazy
    /// depending on which charging regime the baseline filter would use.
    index: String,
    /// Key-column ordinals of that index (for synthetic rep rows).
    key_cols: Vec<usize>,
    /// The consumed equality probes, post bug hooks.
    eq: Vec<Value>,
    /// The consumed range probe, post bug hooks.
    range_probe: Option<(BinaryOp, Value)>,
    /// Rows arrived in index-key order: the ORDER BY sort may be skipped.
    ordered: bool,
    /// Bug hook [`IndexBugId::PrefixSeekIgnoresResidual`]: the WHERE
    /// stage (wrongly) trusts the seek output wholesale.
    filter_suppressed: bool,
}

/// Result of executing a FROM clause. Shared (behind `Rc`) across
/// operator re-instantiations via the per-statement FROM-result cache —
/// rows are [`Row`]-shared, so a reuse is a refcount bump per row.
#[derive(Clone)]
pub(crate) struct FromResult {
    schema: Schema,
    rows: Vec<Row>,
    via_index: bool,
    has_cte: bool,
    has_full_join: bool,
    /// `Some` when the rows came from an executed index seek.
    seek: Option<SeekInfo>,
}

fn exec_core(
    core: &CorePlan,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    depth: u32,
) -> Result<BodyOutput> {
    // Hang hooks keyed on FROM shape.
    if let Some(from) = &core.from {
        if ctx.bugs.active(BugId::CockroachHangCteReuse) {
            let mut names = Vec::new();
            collect_cte_scans(from, &mut names);
            names.sort();
            if names.windows(2).any(|w| w[0] == w[1]) {
                return Err(Error::Hang);
            }
        }
        if ctx.bugs.active(BugId::DuckdbHangTripleJoin) && count_joins(from) >= 3 {
            return Err(Error::Hang);
        }
    }

    let fr: Rc<FromResult> = match &core.from {
        Some(f) => ctx.untracked(|| exec_from(f, ctx, ctes, depth))?,
        None => Rc::new(FromResult {
            schema: Schema::default(),
            rows: vec![Row::new(Vec::new())],
            via_index: false,
            has_cte: false,
            has_full_join: false,
            seek: None,
        }),
    };
    let schema = &fr.schema;
    let (via_index, has_cte, has_full_join) = (fr.via_index, fr.has_cte, fr.has_full_join);
    // Shared rows: pulling the input out of a (possibly cached) result is
    // a refcount bump per row, never a value copy.
    let rows = fr.rows.clone();

    let base_info = ExprCtx {
        clause: Clause::Where,
        top_level: true,
        via_index,
        from_has_cte: has_cte,
        depth,
    };

    // Bug hook: CockroachHangFullJoinHaving.
    if ctx.bugs.active(BugId::CockroachHangFullJoinHaving) && core.having.is_some() && has_full_join
    {
        return Err(Error::Hang);
    }

    // WHERE: bound once against the FROM schema plus the outer scopes.
    let mut rows = rows;
    if let Some(pred) = &core.where_clause {
        let prepared = Prepared::new(pred, &bind_scopes(outer_scopes, schema), depth, ctx)?;
        match fr.seek.as_ref() {
            // Bug hook: PrefixSeekIgnoresResidual — the seek output is
            // (wrongly) trusted wholesale. Binding still ran, so name
            // resolution errors surface as usual.
            Some(seek) if seek.filter_suppressed => {}
            Some(seek) => {
                rows = seek_filter(
                    rows,
                    seek,
                    schema,
                    &prepared,
                    ctx,
                    ctes,
                    outer_scopes,
                    base_info,
                )?;
            }
            None => {
                rows = apply_filter(rows, schema, &prepared, ctx, ctes, outer_scopes, base_info)?;
            }
        }
    }

    let has_aggregates = !core.group_by.is_empty()
        || core.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
        || core.having.as_ref().is_some_and(|h| h.contains_aggregate());

    if has_aggregates {
        let (rel, reps) = exec_grouped(core, rows, schema, ctx, ctes, outer_scopes, base_info)?;
        let rel = maybe_distinct(rel, core.distinct, ctx)?;
        return Ok((rel, Some(reps), Some(fr)));
    }

    // Plain projection: every output expression is expanded and bound
    // once per statement (the per-statement cache makes re-instantiation
    // of a subquery's projection free), then the row loop is pure
    // bound-form evaluation.
    ctx.cov.hit(pt::EXEC_PROJECT);
    let proj = projection_bindings(core, schema, has_full_join, ctx, outer_scopes, depth)?;
    let columns = proj.columns.clone();
    let prepared: Vec<Prepared> = proj
        .exprs
        .iter()
        .zip(proj.bound.iter())
        .map(|(e, b)| Prepared::from_bound(e, Rc::clone(b)))
        .collect();
    let mut out_rows = Vec::with_capacity(rows.len());
    {
        let proj_info = ExprCtx {
            clause: Clause::SelectList,
            ..base_info
        };
        let use_vec = ctx.vec_enabled()
            && !rows.is_empty()
            && prepared
                .iter()
                .all(|p| crate::vec_eval::classify(p.bound(), ctx).is_ok());
        let bounds: Vec<&BoundExpr> = prepared.iter().map(|p| p.bound()).collect();
        let mut frames = frame_stack(outer_scopes, schema);
        let mut start = 0usize;
        while start < rows.len() {
            let end = (start + crate::vec_eval::CHUNK).min(rows.len());
            let chunk = &rows[start..end];
            if use_vec
                && ctx.fuel_left() >= chunk.len() as u64
                && crate::vec_eval::project_chunk(
                    &bounds,
                    chunk,
                    outer_scopes,
                    ctx,
                    proj_info,
                    &mut out_rows,
                )
            {
                ctx.consume_fuel(chunk.len() as u64)?;
                start = end;
                continue;
            }
            for row in chunk {
                ctx.consume_fuel(1)?;
                set_local_row(&mut frames, schema, row);
                let mut out = Vec::with_capacity(prepared.len());
                for p in &prepared {
                    let env = EvalEnv {
                        ctx,
                        scopes: &frames,
                        aggs: None,
                        ctes,
                        info: proj_info,
                    };
                    out.push(p.eval(env)?);
                }
                out_rows.push(Row::new(out));
            }
            start = end;
        }
    }
    let rel = Relation {
        columns,
        rows: out_rows,
    };
    let rel = maybe_distinct(rel, core.distinct, ctx)?;
    Ok((rel, Some(rows), Some(fr)))
}

fn maybe_distinct(mut rel: Relation, distinct: bool, ctx: &EngineCtx) -> Result<Relation> {
    if distinct {
        ctx.cov.hit(pt::EXEC_DISTINCT_DEDUP);
        ctx.consume_fuel(rel.rows.len() as u64)?;
        rel.rows = dedup_rows(rel.rows);
    }
    Ok(rel)
}

/// Expand SELECT items into output column names plus one expression per
/// output column.
fn expand_items(
    core: &CorePlan,
    schema: &Schema,
    has_full_join: bool,
    ctx: &EngineCtx,
) -> Result<(Vec<String>, Vec<Expr>)> {
    let mut columns = Vec::new();
    let mut exprs = Vec::new();
    for item in &core.items {
        match item {
            SelectItem::Wildcard => {
                ctx.cov.hit(pt::EXEC_WILDCARD);
                if schema.cols.is_empty() {
                    return Err(Error::Eval("SELECT * with no FROM clause".into()));
                }
                for col in &schema.cols {
                    columns.push(col.name.clone());
                    exprs.push(Expr::Column(crate::ast::ColumnRef {
                        table: col.table.clone(),
                        column: col.name.clone(),
                    }));
                }
            }
            SelectItem::TableWildcard(t) => {
                ctx.cov.hit(pt::EXEC_WILDCARD);
                // Bug hook: CockroachInternalFullJoinWildcard.
                if ctx.bugs.active(BugId::CockroachInternalFullJoinWildcard) && has_full_join {
                    return Err(Error::Internal(
                        "cannot expand table wildcard over FULL JOIN".into(),
                    ));
                }
                let tl = t.to_ascii_lowercase();
                let mut found = false;
                for col in &schema.cols {
                    if col.table.as_deref() == Some(tl.as_str()) {
                        found = true;
                        columns.push(col.name.clone());
                        exprs.push(Expr::Column(crate::ast::ColumnRef {
                            table: col.table.clone(),
                            column: col.name.clone(),
                        }));
                    }
                }
                if !found {
                    return Err(Error::Catalog(format!("no such table: {t}")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.to_ascii_lowercase(),
                    None => match expr {
                        Expr::Column(c) => c.column.to_ascii_lowercase(),
                        other => other.to_string(),
                    },
                };
                columns.push(name);
                exprs.push(expr.clone());
            }
        }
    }
    if columns.is_empty() {
        return Err(Error::Parse(
            "SELECT requires at least one result column".into(),
        ));
    }
    Ok((columns, exprs))
}

/// How each aggregate argument evaluates inside the group loop when
/// vectorized evaluation is enabled. Decided once per statement, applied
/// per group — batching is **per group** so that coverage merges exactly
/// when the row-at-a-time walk would have evaluated that group's
/// members (a mid-loop error in `compute_aggregate` or HAVING must not
/// leave bits from groups the scalar walk never reaches).
enum BatchedArg {
    /// Non-distinct `COUNT(*)`: member count, no value vector.
    CountStarFast,
    /// `COUNT(DISTINCT *)`: the dummy-1 vector the scalar loop builds.
    CountStarValues,
    /// Bare local column: gather members' values straight from the rows.
    ColRef(usize),
    /// Classified-vectorizable argument: the group's member rows form
    /// one chunk, with per-group scratch merge and per-group fallback.
    Vectorized,
    /// Row-at-a-time member loop (unclassified, or `RowAtATime` mode).
    Scalar,
}

/// Grouped execution: grouping, aggregate computation, HAVING, projection.
/// Returns the output relation and one representative pre-projection row
/// per output row (for ORDER BY expressions).
#[allow(clippy::too_many_arguments)]
fn exec_grouped(
    core: &CorePlan,
    rows: Vec<Row>,
    schema: &Schema,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    base_info: ExprCtx,
) -> Result<(Relation, Vec<Row>)> {
    // Group keys, projection, HAVING and aggregate slots are resolved and
    // bound once per statement (cached across re-instantiations of a
    // subquery's grouping operator).
    let gb = grouped_bindings(core, schema, ctx, outer_scopes, base_info.depth)?;
    let group_exprs = &gb.group_exprs;
    let group_preds: Vec<Prepared> = gb
        .group_exprs
        .iter()
        .zip(gb.group_bound.iter())
        .map(|(e, b)| Prepared::from_bound(e, Rc::clone(b)))
        .collect();

    // Partition rows into groups (BTreeMap keeps key order deterministic).
    // Single-key vectorized grouping fills `single_groups` instead (bare
    // `OrdValue` keys, no per-row key-vector allocation), and while every
    // key seen is an INT it uses `int_groups` (plain `i64` keys — the
    // common GROUP BY shape, ~2.5x cheaper to probe). The first non-INT
    // key migrates `int_groups` into `single_groups` (INT ordering and
    // first-seen key retention are identical across the three maps, so
    // the resulting group list is bit-identical whichever map served).
    let mut groups: BTreeMap<Vec<OrdValue>, Vec<usize>> = BTreeMap::new();
    let mut single_groups: BTreeMap<OrdValue, Vec<usize>> = BTreeMap::new();
    let mut int_groups: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
    let mut int_ok = true;
    fn single_key_insert(
        v: Value,
        idx: usize,
        int_ok: &mut bool,
        int_groups: &mut BTreeMap<i64, Vec<usize>>,
        single_groups: &mut BTreeMap<OrdValue, Vec<usize>>,
    ) {
        if *int_ok {
            if let Value::Int(k) = v {
                int_groups.entry(k).or_default().push(idx);
                return;
            }
            *int_ok = false;
            for (k, m) in std::mem::take(int_groups) {
                single_groups.insert(OrdValue(Value::Int(k)), m);
            }
        }
        single_groups.entry(OrdValue(v)).or_default().push(idx);
    }
    if group_preds.is_empty() {
        if rows.is_empty() {
            ctx.cov.hit(pt::EXEC_GROUP_EMPTY_INPUT);
        } else {
            ctx.cov.hit(pt::EXEC_GROUP_SINGLE);
        }
        groups.insert(Vec::new(), (0..rows.len()).collect());
    } else {
        ctx.cov.hit(pt::EXEC_GROUP_MULTI);
        let key_info = ExprCtx {
            clause: Clause::GroupBy,
            ..base_info
        };
        let use_vec = ctx.vec_enabled()
            && !rows.is_empty()
            && group_preds
                .iter()
                .all(|g| crate::vec_eval::classify(g.bound(), ctx).is_ok());
        let mut frames = frame_stack(outer_scopes, schema);
        // Reused across chunks: one value column per group expression.
        let mut key_cols: Vec<Vec<Value>> = vec![Vec::new(); group_preds.len()];
        // Single-key grouping keys the map by a bare `OrdValue`, skipping
        // the per-row key-vector allocation (the dominant grouping cost);
        // the singleton wrapper is rebuilt once per *group* when the
        // group list materializes.
        let single = use_vec && group_preds.len() == 1;
        let mut start = 0usize;
        while start < rows.len() {
            let end = (start + crate::vec_eval::CHUNK).min(rows.len());
            let chunk = &rows[start..end];
            let mut vectorized = false;
            if use_vec && ctx.fuel_left() >= chunk.len() as u64 {
                // One scratch accumulator for every key expression of the
                // chunk — merged only when all of them succeed.
                let scratch = Coverage::new();
                key_cols.iter_mut().for_each(Vec::clear);
                vectorized = group_preds.iter().zip(key_cols.iter_mut()).all(|(g, col)| {
                    crate::vec_eval::eval_chunk_into(
                        g.bound(),
                        chunk,
                        outer_scopes,
                        ctx,
                        key_info,
                        &scratch,
                        col,
                    )
                });
                if vectorized {
                    ctx.cov.merge(&scratch);
                    ctx.consume_fuel(chunk.len() as u64)?;
                    if single {
                        for (lane, v) in key_cols[0].drain(..).enumerate() {
                            single_key_insert(
                                v,
                                start + lane,
                                &mut int_ok,
                                &mut int_groups,
                                &mut single_groups,
                            );
                        }
                    } else {
                        for lane in 0..chunk.len() {
                            let mut key = Vec::with_capacity(group_preds.len());
                            for col in &mut key_cols {
                                key.push(OrdValue(std::mem::replace(&mut col[lane], Value::Null)));
                            }
                            groups.entry(key).or_default().push(start + lane);
                        }
                    }
                }
            }
            if !vectorized {
                for (i, row) in chunk.iter().enumerate() {
                    ctx.consume_fuel(1)?;
                    set_local_row(&mut frames, schema, row);
                    if single {
                        let env = EvalEnv {
                            ctx,
                            scopes: &frames,
                            aggs: None,
                            ctes,
                            info: key_info,
                        };
                        let v = group_preds[0].eval(env)?;
                        single_key_insert(
                            v,
                            start + i,
                            &mut int_ok,
                            &mut int_groups,
                            &mut single_groups,
                        );
                        continue;
                    }
                    let mut key = Vec::with_capacity(group_preds.len());
                    for g in &group_preds {
                        let env = EvalEnv {
                            ctx,
                            scopes: &frames,
                            aggs: None,
                            ctes,
                            info: key_info,
                        };
                        key.push(OrdValue(g.eval(env)?));
                    }
                    groups.entry(key).or_default().push(start + i);
                }
            }
            start = end;
        }
        // Grouping over an empty input with GROUP BY yields no groups.
    }

    // Bug hook: DuckdbInternalGroupByRealMany (`int_groups` keys are
    // INTs by construction and can never satisfy the REAL condition).
    if ctx.bugs.active(BugId::DuckdbInternalGroupByRealMany)
        && groups.len() + single_groups.len() + int_groups.len() > 2
        && (groups
            .keys()
            .any(|k| k.iter().any(|v| matches!(v.0, Value::Real(_))))
            || single_groups.keys().any(|k| matches!(k.0, Value::Real(_))))
    {
        return Err(Error::Internal(
            "REAL group key misaligned in hash table".into(),
        ));
    }

    // Bug hook: TidbInternalHavingCorrelated — a subquery under HAVING.
    if ctx.bugs.active(BugId::TidbInternalHavingCorrelated) {
        if let Some(h) = &core.having {
            if h.contains_subquery() {
                return Err(Error::Internal(
                    "failed to decorrelate subquery in HAVING".into(),
                ));
            }
        }
    }

    // A singleton `OrdValue` (or plain `i64`) orders exactly like its
    // one-element key vector, so every source yields the identical group
    // order.
    let mut group_list: Vec<(Vec<OrdValue>, Vec<usize>)> = if !int_groups.is_empty() {
        int_groups
            .into_iter()
            .map(|(k, m)| (vec![OrdValue(Value::Int(k))], m))
            .collect()
    } else if !single_groups.is_empty() {
        single_groups
            .into_iter()
            .map(|(k, m)| (vec![k], m))
            .collect()
    } else {
        groups.into_iter().collect()
    };

    // Bug hook: DuckdbDistinctGroupByDrop — DISTINCT + GROUP BY drops the
    // last group. The rewrite rule pattern-matches plain grouping
    // expressions, so a CASE-shaped group key escapes it (which is what
    // lets a folded query expose the discrepancy).
    if ctx.bugs.active(BugId::DuckdbDistinctGroupByDrop)
        && core.distinct
        && !core.group_by.is_empty()
        && group_list.len() > 1
        && !matches!(group_exprs.first(), Some(Expr::Case { .. }))
    {
        group_list.pop();
    }

    let columns = gb.columns.clone();
    let bound_projs = &gb.bound_projs;
    let bound_having = &gb.bound_having;
    let agg_specs = &gb.agg_specs;

    // Batched aggregate-argument evaluation mode, decided once per spec.
    // Evaluation itself happens per group inside the loop below, so its
    // coverage merges exactly when the scalar walk evaluates that
    // group's members, and a dropped group (`DuckdbDistinctGroupByDrop`)
    // or a mid-loop error leaves later groups untouched in both modes.
    // Argument evaluation charges no fuel in either path (the group
    // loop's per-group charge is unchanged).
    let spec_modes: Vec<BatchedArg> = agg_specs
        .iter()
        .map(|spec| {
            if !ctx.vec_enabled() {
                return BatchedArg::Scalar;
            }
            if spec.func == AggFunc::CountStar {
                return if spec.distinct {
                    BatchedArg::CountStarValues
                } else {
                    BatchedArg::CountStarFast
                };
            }
            match &spec.arg {
                Some(arg) if crate::vec_eval::classify(arg, ctx).is_ok() => {
                    if let BoundExpr::Column(c) = arg {
                        if c.up == 0 {
                            return BatchedArg::ColRef(c.index as usize);
                        }
                    }
                    BatchedArg::Vectorized
                }
                _ => BatchedArg::Scalar,
            }
        })
        .collect();

    let mut out_rows: Vec<Row> = Vec::with_capacity(group_list.len());
    let mut rep_rows: Vec<Row> = Vec::with_capacity(group_list.len());
    let empty_row = Row::new(vec![Value::Null; schema.cols.len()]);
    let mut frames = frame_stack(outer_scopes, schema);

    for (_key, members) in &group_list {
        ctx.consume_fuel(1 + members.len() as u64)?;
        // Compute aggregates for this group, one value per slot. The
        // group's member rows form one chunk for vectorized arguments,
        // built lazily (shared refcount bumps) and reused across specs.
        let mut member_chunk: Option<Vec<Row>> = None;
        let mut aggs: AggValues = Vec::with_capacity(agg_specs.len());
        for (si, spec) in agg_specs.iter().enumerate() {
            let mut values: Option<Vec<Value>> = match &spec_modes[si] {
                // Non-distinct COUNT(*) needs only the member count —
                // `compute_aggregate`'s arm hits one bit and returns
                // the length, reproduced here without the value vec.
                BatchedArg::CountStarFast => {
                    ctx.cov.hit(pt::AGG_COUNT_STAR);
                    aggs.push(Value::Int(members.len() as i64));
                    continue;
                }
                BatchedArg::CountStarValues => Some(vec![Value::Int(1); members.len()]),
                BatchedArg::ColRef(idx) => {
                    // The scalar loop hits the column's coverage point
                    // (and records the correlation read) once per
                    // member; once per non-empty group is the same
                    // bitset and the same deduplicated slot set.
                    if !members.is_empty() {
                        ctx.cov.hit(pt::EVAL_COLUMN_LOCAL);
                        ctx.note_column_read(outer_scopes.len(), *idx);
                    }
                    Some(members.iter().map(|&ri| rows[ri][*idx].clone()).collect())
                }
                BatchedArg::Vectorized if !members.is_empty() => {
                    let chunk = member_chunk.get_or_insert_with(|| {
                        members.iter().map(|&ri| rows[ri].clone()).collect()
                    });
                    let arg = spec.arg.as_ref().expect("vectorized spec has an argument");
                    let scratch = Coverage::new();
                    let mut out = Vec::with_capacity(members.len());
                    let arg_info = ExprCtx {
                        clause: Clause::SelectList,
                        ..base_info
                    };
                    if crate::vec_eval::eval_chunk_into(
                        arg,
                        chunk,
                        outer_scopes,
                        ctx,
                        arg_info,
                        &scratch,
                        &mut out,
                    ) {
                        ctx.cov.merge(&scratch);
                        Some(out)
                    } else {
                        // An erroring lane: this spec re-runs its member
                        // loop row-at-a-time (exact error and coverage).
                        None
                    }
                }
                BatchedArg::Vectorized | BatchedArg::Scalar => None,
            };
            let values = match values.take() {
                Some(v) => v,
                None => {
                    let mut values = Vec::with_capacity(members.len());
                    for &ri in members {
                        set_local_row(&mut frames, schema, &rows[ri]);
                        let v = match (spec.func, &spec.arg) {
                            (AggFunc::CountStar, _) => Value::Int(1),
                            (_, Some(a)) => {
                                let env = EvalEnv {
                                    ctx,
                                    scopes: &frames,
                                    aggs: None,
                                    ctes,
                                    info: ExprCtx {
                                        clause: Clause::SelectList,
                                        ..base_info
                                    },
                                };
                                eval_bound(a, env)?
                            }
                            (_, None) => {
                                return Err(Error::Parse(format!(
                                    "{}() requires an argument",
                                    spec.func.sql_name()
                                )))
                            }
                        };
                        values.push(v);
                    }
                    values
                }
            };
            let rep = members.first().map(|&i| &rows[i]).unwrap_or(&empty_row);
            set_local_row(&mut frames, schema, rep);
            let env = EvalEnv {
                ctx,
                scopes: &frames,
                aggs: None,
                ctes,
                info: ExprCtx {
                    clause: Clause::SelectList,
                    ..base_info
                },
            };
            let v = compute_aggregate(spec.func, spec.distinct, values, env)?;
            aggs.push(v);
        }

        // Representative row: bare columns take the group's first row
        // (SQLite "bare column in aggregate query" semantics).
        let rep: &Row = members.first().map(|&i| &rows[i]).unwrap_or(&empty_row);

        // HAVING.
        if let Some(h) = bound_having {
            set_local_row(&mut frames, schema, rep);
            let env = EvalEnv {
                ctx,
                scopes: &frames,
                aggs: Some(&aggs),
                ctes,
                info: ExprCtx {
                    clause: Clause::Having,
                    top_level: true,
                    ..base_info
                },
            };
            let hv = eval_bound(h, env)?;
            if truthiness(&hv, ctx)? != Some(true) {
                ctx.cov.hit(pt::EXEC_HAVING_DROP);
                continue;
            }
            ctx.cov.hit(pt::EXEC_HAVING_PASS);
        }

        // Projection.
        set_local_row(&mut frames, schema, rep);
        let mut out = Vec::with_capacity(bound_projs.len());
        for e in bound_projs {
            let env = EvalEnv {
                ctx,
                scopes: &frames,
                aggs: Some(&aggs),
                ctes,
                info: ExprCtx {
                    clause: Clause::SelectList,
                    ..base_info
                },
            };
            out.push(eval_bound(e, env)?);
        }
        out_rows.push(Row::new(out));
        rep_rows.push(rep.clone());
    }

    Ok((
        Relation {
            columns,
            rows: out_rows,
        },
        rep_rows,
    ))
}

/// In grouped execution only explicit expressions are allowed (CoddDB
/// restricts wildcards to non-aggregated queries, matching common DBMS
/// behaviour for grouped queries).
fn expand_items_grouped(core: &CorePlan) -> Result<(Vec<String>, Vec<Expr>)> {
    let mut columns = Vec::new();
    let mut exprs = Vec::new();
    for item in &core.items {
        match item {
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.to_ascii_lowercase(),
                    None => match expr {
                        Expr::Column(c) => c.column.to_ascii_lowercase(),
                        other => other.to_string(),
                    },
                };
                columns.push(name);
                exprs.push(expr.clone());
            }
            _ => {
                return Err(Error::Eval(
                    "wildcards are not supported in aggregated queries".into(),
                ))
            }
        }
    }
    if columns.is_empty() {
        return Err(Error::Parse(
            "SELECT requires at least one result column".into(),
        ));
    }
    Ok((columns, exprs))
}

/// Expand and bind a plain projection, once per statement. Keyed by the
/// core plan's address (stable: the executing plan lives for the whole
/// statement, and subquery plans are retained by the statement cache).
/// The [`BindMode::PerRow`] baseline rebuilds from scratch every call —
/// its plans are not retained, so their addresses must not become keys.
fn projection_bindings(
    core: &CorePlan,
    schema: &Schema,
    has_full_join: bool,
    ctx: &EngineCtx,
    outer_scopes: &[Frame],
    depth: u32,
) -> Result<Rc<ProjBindings>> {
    let key = core as *const CorePlan as usize;
    get_or_build(&ctx.caches.proj, ctx.bindings_cacheable(depth), key, || {
        let (columns, exprs) = expand_items(core, schema, has_full_join, ctx)?;
        let scopes = bind_scopes(outer_scopes, schema);
        let bound = exprs
            .iter()
            .map(|e| {
                let mut binder = Binder::new(&scopes, depth);
                Ok(Rc::new(binder.bind(e)?))
            })
            .collect::<Result<_>>()?;
        Ok(Rc::new(ProjBindings {
            columns,
            exprs,
            bound,
        }))
    })
}

/// Resolve and bind the grouped-execution state (group keys, projection,
/// HAVING, aggregate slots), once per statement — same keying rules as
/// [`projection_bindings`].
fn grouped_bindings(
    core: &CorePlan,
    schema: &Schema,
    ctx: &EngineCtx,
    outer_scopes: &[Frame],
    depth: u32,
) -> Result<Rc<GroupedBindings>> {
    let key = core as *const CorePlan as usize;
    get_or_build(
        &ctx.caches.grouped,
        ctx.bindings_cacheable(depth),
        key,
        || {
            // Resolve positional GROUP BY entries to projection expressions.
            let mut group_exprs: Vec<Expr> = Vec::with_capacity(core.group_by.len());
            for g in &core.group_by {
                match g {
                    Expr::Literal(Value::Int(k)) => {
                        let idx = (*k - 1) as usize;
                        let item = core.items.get(idx).ok_or_else(|| {
                            Error::Eval(format!("GROUP BY position {k} out of range"))
                        })?;
                        match item {
                            SelectItem::Expr { expr, .. } => group_exprs.push(expr.clone()),
                            _ => {
                                return Err(Error::Eval(
                                    "GROUP BY position must reference an expression".into(),
                                ))
                            }
                        }
                    }
                    other => group_exprs.push(other.clone()),
                }
            }
            let scopes = bind_scopes(outer_scopes, schema);
            // Group keys bind in non-aggregate scope (aggregates are illegal
            // in GROUP BY), each through its own binder like any clause root.
            let group_bound: Vec<Rc<BoundExpr>> = group_exprs
                .iter()
                .map(|g| {
                    let mut binder = Binder::new(&scopes, depth);
                    Ok(Rc::new(binder.bind(g)?))
                })
                .collect::<Result<_>>()?;
            // Bind projection items and HAVING through one binder so every
            // distinct aggregate expression gets a single slot; the per-group
            // value table is indexed by those slots. (These always evaluate
            // the bound form — slot assignment belongs to this binder, so the
            // per-row rebinding baseline does not apply here.)
            let (columns, proj_exprs) = expand_items_grouped(core)?;
            let mut binder = Binder::new(&scopes, depth);
            let bound_projs: Vec<BoundExpr> = proj_exprs
                .iter()
                .map(|e| binder.bind_aggregate(e))
                .collect::<Result<_>>()?;
            let bound_having = match &core.having {
                Some(h) => Some(binder.bind_aggregate(h)?),
                None => None,
            };
            let agg_specs = binder.into_agg_specs();
            // Debug builds verify the grouped bound forms: group keys are
            // aggregate-free, and every aggregate slot in the projection /
            // HAVING indexes the collected spec table.
            #[cfg(debug_assertions)]
            if ctx.bugs.is_clean() {
                let mut violations = Vec::new();
                for g in &group_bound {
                    violations.extend(crate::validate::validate_bound(g, &scopes, None));
                }
                for b in bound_projs.iter().chain(bound_having.iter()) {
                    violations.extend(crate::validate::validate_bound(
                        b,
                        &scopes,
                        Some(agg_specs.len()),
                    ));
                }
                assert!(
                    violations.is_empty(),
                    "binder produced an out-of-bounds grouped form: {violations:?}"
                );
            }
            Ok(Rc::new(GroupedBindings {
                group_exprs,
                group_bound,
                columns,
                bound_projs,
                bound_having,
                agg_specs,
            }))
        },
    )
}

/// Is a bound expression invariant across the rows of the local frame —
/// no local column loads, no aggregate slots, and no subqueries (whose
/// bodies this walker does not analyze)? An invariant expression
/// evaluates to the same value (or the same error) for every row of one
/// operator instantiation.
fn row_invariant(e: &BoundExpr) -> bool {
    match e {
        BoundExpr::Literal(_) => true,
        BoundExpr::Column(c) => c.up > 0,
        BoundExpr::Unary { expr, .. }
        | BoundExpr::Cast { expr, .. }
        | BoundExpr::IsNull { expr, .. } => row_invariant(expr),
        BoundExpr::Binary { left, right, .. } => row_invariant(left) && row_invariant(right),
        BoundExpr::Between {
            expr, low, high, ..
        } => row_invariant(expr) && row_invariant(low) && row_invariant(high),
        BoundExpr::InList { expr, list, .. } => {
            row_invariant(expr) && list.iter().all(row_invariant)
        }
        BoundExpr::InSubquery { .. }
        | BoundExpr::Exists { .. }
        | BoundExpr::Scalar { .. }
        | BoundExpr::Quantified { .. }
        | BoundExpr::Agg { .. } => false,
        BoundExpr::Case {
            operand,
            whens,
            else_expr,
            ..
        } => {
            operand.as_deref().is_none_or(row_invariant)
                && whens
                    .iter()
                    .all(|(w, t)| row_invariant(w) && row_invariant(t))
                && else_expr.as_deref().is_none_or(row_invariant)
        }
        BoundExpr::Func { args, .. } => args.iter().all(row_invariant),
        BoundExpr::Like { expr, pattern, .. } => row_invariant(expr) && row_invariant(pattern),
    }
}

/// Short-circuit filter for `column <cmp> row-invariant` predicates (and
/// the flipped orientation) — the dominant shape of correlated subquery
/// filters, where the invariant side reads only outer columns.
///
/// The invariant side is evaluated **once**; each row then classifies by
/// a direct [`Value::sql_cmp`], skipping the per-row interpreter walk.
/// Exactness:
///
/// * For operand pairs that never mix TEXT with another storage class,
///   [`crate::eval::compare`] reduces to `sql_cmp` — a pure function with
///   no dialect coercion, no errors and no mutant hooks. Any TEXT /
///   non-TEXT mix among non-NULL operands falls back to the per-row loop
///   (which then reproduces MySQL-family coercion, strict-dialect type
///   errors and the `MysqlTextIntCompareWhere` hook bit for bit).
/// * The `SqliteIndexedCmpNullTrue` filter-site hook is gated off here;
///   `CockroachAndNullTopConjunct` needs an AND root, never a bare
///   comparison; `DuckdbSubqueryBoolCoerce` needs a subquery operand,
///   which `row_invariant` excludes; local columns with a recorded
///   collision alternative are rejected (the name-collision mutant may
///   redirect their loads).
/// * Coverage parity: one representative row per outcome class
///   (pass/drop/null) re-runs the full per-row evaluation, firing exactly
///   the (idempotent) coverage bits the plain loop would; fuel is charged
///   identically (one unit per row).
///
/// Returns `None` when the predicate does not fit — caller runs the
/// per-row loop.
#[allow(clippy::too_many_arguments)]
fn apply_cmp_filter_fast(
    rows: &[Row],
    schema: &Schema,
    pred: &Prepared,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    info: ExprCtx,
) -> Result<Option<Vec<Row>>> {
    use crate::eval::cmp_matches;

    if ctx.rebind_per_row || rows.is_empty() {
        return Ok(None);
    }
    if info.via_index && ctx.bugs.active(BugId::SqliteIndexedCmpNullTrue) {
        return Ok(None);
    }
    let BoundExpr::Binary { op, left, right } = pred.bound() else {
        return Ok(None);
    };
    if !op.is_comparison() {
        return Ok(None);
    }
    // Orient: which side is the local column, which is row-invariant?
    let local_col = |e: &BoundExpr| match e {
        BoundExpr::Column(c) if c.up == 0 && c.collision_alt.is_none() => Some(c.index as usize),
        _ => None,
    };
    let (ord, invariant, col_is_left) = match (local_col(left), local_col(right)) {
        (Some(ord), _) if row_invariant(right) => (ord, &**right, true),
        (_, Some(ord)) if row_invariant(left) => (ord, &**left, false),
        _ => return Ok(None),
    };

    // Evaluate the invariant side once. Errors surface exactly as the
    // per-row loop's first row would (rows is non-empty); its coverage
    // bits and outer-read records are the same every row, so once is
    // enough.
    let mut frames = frame_stack(outer_scopes, schema);
    set_local_row(&mut frames, schema, &rows[0]);
    let env = EvalEnv {
        ctx,
        scopes: &frames,
        aggs: None,
        ctes,
        info,
    };
    let inv_val = eval_bound(invariant, env.child())?;

    // Any TEXT / non-TEXT mix among non-NULL operands leaves `sql_cmp`
    // territory (coercion, strict errors, mutants) — exact path instead.
    // This pre-pass runs before fuel is charged so a fallback consumes
    // exactly what the per-row loop will.
    let inv_null = inv_val.is_null();
    let inv_text = matches!(inv_val, Value::Text(_));
    if !inv_null {
        for row in rows {
            let v = &row[ord];
            if !v.is_null() && matches!(v, Value::Text(_)) != inv_text {
                return Ok(None);
            }
        }
    }

    ctx.consume_fuel(rows.len() as u64)?;
    let mut out: Vec<Row> = Vec::new();
    // Representative row per outcome class: pass, drop, null.
    let mut reps: [Option<usize>; 3] = [None; 3];
    for (i, row) in rows.iter().enumerate() {
        let v = &row[ord];
        let class = if inv_null || v.is_null() {
            2
        } else {
            let o = if col_is_left {
                v.sql_cmp(&inv_val)
            } else {
                inv_val.sql_cmp(v)
            };
            match o {
                Some(o) if cmp_matches(*op, o) => 0,
                _ => 1,
            }
        };
        if reps[class].is_none() {
            reps[class] = Some(i);
        }
        if class == 0 {
            out.push(row.clone());
        }
    }

    // Fire the authentic per-row coverage bits once per outcome class by
    // running the real evaluation on a representative row (bits are
    // idempotent, and within a class every row takes the identical path).
    for (class, rep) in reps.iter().enumerate() {
        let Some(ri) = *rep else { continue };
        set_local_row(&mut frames, schema, &rows[ri]);
        let env = EvalEnv {
            ctx,
            scopes: &frames,
            aggs: None,
            ctes,
            info,
        };
        let v = pred.eval(env)?;
        let t = truthiness(&v, ctx)?;
        ctx.cov.hit(match t {
            Some(true) => pt::EXEC_FILTER_PASS,
            Some(false) => pt::EXEC_FILTER_DROP,
            None => pt::EXEC_FILTER_NULL,
        });
        debug_assert_eq!(
            t,
            [Some(true), Some(false), None][class],
            "fast filter classification diverged from evaluation"
        );
    }
    Ok(Some(out))
}

/// Apply a WHERE filter, including the filter-site bug hooks. The
/// predicate is bound once by the caller; classified-vectorizable
/// predicates evaluate chunk-at-a-time through [`crate::vec_eval`]
/// (exact per-chunk fallback to the row loop on any erroring lane,
/// active filter-site mutant, or insufficient fuel); everything else
/// runs the per-row loop with a reused frame stack.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_filter(
    rows: Vec<Row>,
    schema: &Schema,
    pred: &Prepared,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    info: ExprCtx,
) -> Result<Vec<Row>> {
    if let Some(out) = apply_cmp_filter_fast(&rows, schema, pred, ctx, ctes, outer_scopes, info)? {
        return Ok(out);
    }
    // The comparison/AND shapes the filter-site mutants key on.
    let cmp_shape = matches!(pred.ast(), Expr::Binary { op, .. } if op.is_comparison());
    let and_shape = matches!(
        pred.ast(),
        Expr::Binary {
            op: crate::ast::BinaryOp::And,
            ..
        }
    );

    // Vectorize only when no filter-site mutant can fire (the chunk
    // kernels do not model the keep-on-NULL hooks) and the predicate
    // classifies as vectorizable under the active mutant set.
    let use_vec = ctx.vec_enabled()
        && !rows.is_empty()
        && !(info.via_index && cmp_shape && ctx.bugs.active(BugId::SqliteIndexedCmpNullTrue))
        && !(and_shape && ctx.bugs.active(BugId::CockroachAndNullTopConjunct))
        && crate::vec_eval::classify(pred.bound(), ctx).is_ok();

    let mut keep = vec![false; rows.len()];
    {
        let mut frames = frame_stack(outer_scopes, schema);
        let mut start = 0usize;
        while start < rows.len() {
            let end = (start + crate::vec_eval::CHUNK).min(rows.len());
            let chunk = &rows[start..end];
            // The budget must cover the whole chunk up front: a fuel
            // exhaustion must hang at exactly the row the per-row loop
            // would reach, so short-budget chunks take the scalar loop.
            if use_vec
                && ctx.fuel_left() >= chunk.len() as u64
                && crate::vec_eval::filter_chunk(
                    pred.bound(),
                    chunk,
                    outer_scopes,
                    ctx,
                    info,
                    &mut keep[start..end],
                )
            {
                ctx.consume_fuel(chunk.len() as u64)?;
                start = end;
                continue;
            }
            // Row-at-a-time (fallback) loop for this chunk. A failed
            // vectorized attempt may have set some keep flags: reset.
            for k in &mut keep[start..end] {
                *k = false;
            }
            for (i, row) in chunk.iter().enumerate() {
                ctx.consume_fuel(1)?;
                set_local_row(&mut frames, schema, row);
                let env = EvalEnv {
                    ctx,
                    scopes: &frames,
                    aggs: None,
                    ctes,
                    info,
                };
                let v = pred.eval(env)?;
                let t = truthiness(&v, ctx)?;

                // Bug hook: SqliteIndexedCmpNullTrue — under an index scan
                // a NULL comparison keeps the row.
                if t.is_none()
                    && info.via_index
                    && cmp_shape
                    && ctx.bugs.active(BugId::SqliteIndexedCmpNullTrue)
                {
                    keep[start + i] = true;
                    continue;
                }
                // Bug hook: CockroachAndNullTopConjunct — a top-level AND
                // that evaluates to NULL keeps the row.
                if t.is_none() && and_shape && ctx.bugs.active(BugId::CockroachAndNullTopConjunct) {
                    keep[start + i] = true;
                    continue;
                }

                match t {
                    Some(true) => {
                        ctx.cov.hit(pt::EXEC_FILTER_PASS);
                        keep[start + i] = true;
                    }
                    Some(false) => ctx.cov.hit(pt::EXEC_FILTER_DROP),
                    None => ctx.cov.hit(pt::EXEC_FILTER_NULL),
                }
            }
            start = end;
        }
    }
    let mut out = Vec::with_capacity(rows.len());
    for (row, keep) in rows.into_iter().zip(keep) {
        if keep {
            out.push(row);
        }
    }
    Ok(out)
}

/// The WHERE stage over an index-seek FROM result: evaluate the filter
/// over the emitted rows and replay, for every row the seek skipped, the
/// observable effects the ScanOnly baseline produces — one fuel unit per
/// row, plus the authentic drop-path coverage bits, fired once per
/// skipped outcome class by evaluating the predicate on the class's
/// representative row (the same within-class invariant
/// [`apply_cmp_filter_fast`] rests on). Every skipped row has a FALSE
/// consumed conjunct, which short-circuits the rest of the clause, so a
/// representative evaluation never reads non-key columns and never
/// errors.
///
/// When the predicate is the infallible bulk-charging comparison shape,
/// the stage collapses to one fuel deduction plus the replays and row
/// evaluations in any order (nothing observable distinguishes the
/// interleavings once exhaustion and errors are impossible). Otherwise
/// the whole ledger runs as ONE walk in **storage order** — gap
/// stretches deduct their fuel in bulk (draining to zero on exhaustion,
/// like the per-row loop), representatives replay exactly at their
/// storage position, emitted rows charge-then-evaluate like the baseline
/// row loop — so an erroring residual conjunct *and* a mid-filter fuel
/// exhaustion both surface with exactly the coverage and fuel the
/// baseline accumulates up to the same row. Ordered seeks only change
/// the *emission* order: keep flags are collected during the walk and
/// the kept rows come back in the seek's key order.
#[allow(clippy::too_many_arguments)]
fn seek_filter(
    rows: Vec<Row>,
    seek: &SeekInfo,
    schema: &Schema,
    pred: &Prepared,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    info: ExprCtx,
) -> Result<Vec<Row>> {
    // One representative evaluation per skipped outcome class.
    #[allow(clippy::too_many_arguments)]
    fn replay<'a>(
        frames: &mut Vec<Frame<'a>>,
        schema: &'a Schema,
        rep: &'a Row,
        pred: &Prepared,
        ctx: &EngineCtx,
        ctes: &CteEnv,
        info: ExprCtx,
        assert_reps: bool,
    ) -> Result<()> {
        set_local_row(frames, schema, rep);
        let env = EvalEnv {
            ctx,
            scopes: frames,
            aggs: None,
            ctes,
            info,
        };
        let v = pred.eval(env)?;
        let t = truthiness(&v, ctx)?;
        ctx.cov.hit(pt::EXEC_FILTER_DROP);
        if assert_reps {
            assert_eq!(
                t,
                Some(false),
                "index seek skipped a row the WHERE clause keeps"
            );
        }
        Ok(())
    }

    // With an index mutant active the skip set is deliberately wrong, so
    // a representative may well evaluate non-FALSE — that divergence is
    // the campaign's signal, not a replay defect.
    let assert_reps = cfg!(debug_assertions) && ctx.bugs.enabled_index().next().is_none();

    // Predicate shapes that [`apply_cmp_filter_fast`] handles charge all
    // rows in one refusable `consume_fuel` call, so a short budget hangs
    // with fuel untouched instead of draining row by row. Mirror that
    // here: the seek's exactness gate already rules out the fast path's
    // TEXT-mix fallback (the probe column is class-uniform), so the
    // structural test alone decides which charging regime the baseline
    // scan would use. Either regime charges exactly `seek.total`.
    let local_col =
        |e: &BoundExpr| matches!(e, BoundExpr::Column(c) if c.up == 0 && c.collision_alt.is_none());
    let bulk_charge = !(ctx.rebind_per_row
        || (info.via_index && ctx.bugs.active(BugId::SqliteIndexedCmpNullTrue)))
        && matches!(pred.bound(), BoundExpr::Binary { op, left, right }
            if op.is_comparison()
                && ((local_col(left) && row_invariant(right))
                    || (local_col(right) && row_invariant(left))));
    if bulk_charge && ctx.fuel_left() < seek.total as u64 {
        return Err(Error::Hang);
    }

    // Skipped-class representatives, synthesized on demand: the class
    // key's values at the key columns, NULL elsewhere — safe because
    // consumed conjuncts read key columns only and the FALSE one
    // short-circuits the rest of the clause. On the bulk-charge path the
    // whole stage is infallible (the refusal above was the only exit),
    // so replay order against the walk is unobservable and any class
    // member serves (`lazy`, one bounded index probe per class); the
    // per-row path needs each class's first row in storage order, where
    // a mid-walk fuel exhaustion would cut the baseline's ledger.
    let data = ctx
        .catalog
        .index(&seek.index)
        .and_then(|i| i.data.as_ref())
        .expect("seeked index vanished mid-statement");
    let reps: Vec<(usize, Row)> = data
        .skip_reps(&seek.eq, seek.range_probe.clone(), bulk_charge)
        .into_iter()
        .map(|(p, key)| {
            let mut vals = vec![Value::Null; schema.cols.len()];
            for (&c, ov) in seek.key_cols.iter().zip(key) {
                vals[c] = ov.0;
            }
            (p, Row::new(vals))
        })
        .collect();
    let mut frames = frame_stack(outer_scopes, schema);

    // Walk order: `positions[i]` is the storage position of `rows[i]`.
    // Unordered seeks already emit ascending; ordered ones emit in key
    // order, so sort a view back into storage order for the ledger.
    let mut order: Vec<usize> = (0..rows.len()).collect();
    if seek.ordered {
        order.sort_unstable_by_key(|&i| seek.positions[i]);
    }

    // Bulk path: one deduction for the whole stage (it cannot fail — the
    // refusal above already ruled that out), then every replay and row
    // evaluation in sequence. With no exhaustion or error possible, the
    // interleaving the per-row walk reconstructs is unobservable.
    if bulk_charge {
        ctx.consume_fuel(seek.total as u64)?;
        for (_, rep) in &reps {
            replay(&mut frames, schema, rep, pred, ctx, ctes, info, assert_reps)?;
        }
    }

    // One gap stretch: the baseline charges each skipped row one fuel
    // unit, and a stretch with no representative inside has no other
    // observable effect — so deduct it in a single call. On exhaustion
    // the per-row loop drains fuel to zero before erroring, so the bulk
    // deduction mirrors that drain exactly instead of refusing intact.
    let charge_rows = |n: u64| -> Result<()> {
        if n == 0 {
            return Ok(());
        }
        let left = ctx.fuel_left();
        if left < n {
            ctx.consume_fuel(left)?;
            return Err(Error::Hang);
        }
        ctx.consume_fuel(n)
    };
    // A representative fires exactly when the walk meets its storage
    // position; one whose position an (mutant-skewed) emission already
    // passed stays stuck and silences every later replay, same as the
    // per-row walk's equality test.
    let mut rep_i = 0usize;
    let mut cursor = 0usize;
    macro_rules! walk_gap_to {
        ($p:expr) => {{
            let p: usize = $p;
            while cursor < p {
                match reps.get(rep_i) {
                    Some(&(rp, _)) if (cursor..p).contains(&rp) => {
                        // Charge through the representative's own row,
                        // then replay it — the baseline meets the row
                        // right after that charge.
                        charge_rows((rp + 1 - cursor) as u64)?;
                        replay(
                            &mut frames,
                            schema,
                            &reps[rep_i].1,
                            pred,
                            ctx,
                            ctes,
                            info,
                            assert_reps,
                        )?;
                        rep_i += 1;
                        cursor = rp + 1;
                    }
                    _ => {
                        charge_rows((p - cursor) as u64)?;
                        cursor = p;
                    }
                }
            }
        }};
    }

    // The per-row branch is the baseline row loop verbatim (the
    // `via_index` comparison hook cannot apply here: seeks are never
    // selected while that mutant is active, and they report
    // `via_index: false`).
    let and_shape = matches!(
        pred.ast(),
        Expr::Binary {
            op: crate::ast::BinaryOp::And,
            ..
        }
    );
    let mut keep = vec![false; rows.len()];
    for &i in &order {
        if !bulk_charge {
            walk_gap_to!(seek.positions[i]);
            cursor = seek.positions[i] + 1;
            ctx.consume_fuel(1)?;
        }
        set_local_row(&mut frames, schema, &rows[i]);
        let env = EvalEnv {
            ctx,
            scopes: &frames,
            aggs: None,
            ctes,
            info,
        };
        let v = pred.eval(env)?;
        let t = truthiness(&v, ctx)?;
        // Bug hook: CockroachAndNullTopConjunct — a top-level AND that
        // evaluates to NULL keeps the row (skipped rows are immune: their
        // clause value is FALSE, never NULL).
        if t.is_none() && and_shape && ctx.bugs.active(BugId::CockroachAndNullTopConjunct) {
            keep[i] = true;
            continue;
        }
        match t {
            Some(true) => {
                ctx.cov.hit(pt::EXEC_FILTER_PASS);
                keep[i] = true;
            }
            Some(false) => ctx.cov.hit(pt::EXEC_FILTER_DROP),
            None => ctx.cov.hit(pt::EXEC_FILTER_NULL),
        }
    }
    if !bulk_charge {
        walk_gap_to!(seek.total);
    }

    // Emission keeps the seek's own order (storage order, or key order
    // for sort elimination): filter `rows` in place by the keep flags.
    let mut out = Vec::with_capacity(rows.len());
    for (row, keep) in rows.into_iter().zip(keep) {
        if keep {
            out.push(row);
        }
    }
    Ok(out)
}

fn collect_cte_scans(from: &FromPlan, out: &mut Vec<String>) {
    match from {
        FromPlan::CteScan { name, .. } => out.push(name.clone()),
        FromPlan::Join { left, right, .. } => {
            collect_cte_scans(left, out);
            collect_cte_scans(right, out);
        }
        FromPlan::Filtered { input, .. } => collect_cte_scans(input, out),
        _ => {}
    }
}

fn count_joins(from: &FromPlan) -> usize {
    match from {
        FromPlan::Join { left, right, .. } => 1 + count_joins(left) + count_joins(right),
        FromPlan::Filtered { input, .. } => count_joins(input),
        _ => 0,
    }
}

/// May this FROM subtree's materialized result be shared across operator
/// re-instantiations? Conservative: base-table scans, joins and pushed
/// filters qualify; CTE scans are excluded (an external CTE's read
/// counter — and its `exec::cte_reuse` coverage — must advance per
/// instantiation), and derived tables, VALUES and subquery-bearing
/// predicates are excluded because they may reach CTEs or arbitrary
/// nested evaluation the walker does not analyze.
fn from_result_cacheable(from: &FromPlan, ctx: &EngineCtx) -> bool {
    match from {
        FromPlan::SeqScan { .. } => true,
        FromPlan::IndexScan { index, .. } => ctx
            .catalog
            .index(index)
            .is_some_and(|i| !i.exprs.iter().any(Expr::contains_subquery)),
        FromPlan::IndexSeek { .. } => true,
        FromPlan::Derived { .. } | FromPlan::ValuesScan { .. } | FromPlan::CteScan { .. } => false,
        FromPlan::Join {
            on,
            hash_keys,
            residual,
            left,
            right,
            ..
        } => {
            from_result_cacheable(left, ctx)
                && from_result_cacheable(right, ctx)
                && !on.as_ref().is_some_and(Expr::contains_subquery)
                && !residual.as_ref().is_some_and(Expr::contains_subquery)
                && !hash_keys
                    .iter()
                    .any(|(l, r)| l.contains_subquery() || r.contains_subquery())
        }
        FromPlan::Filtered { input, pred, .. } => {
            from_result_cacheable(input, ctx) && !pred.contains_subquery()
        }
    }
}

/// Execute a FROM subtree. FROM internals evaluate on rootless frame
/// stacks (no outer columns in scope), so the result is a deterministic
/// function of table state — for cacheable subtrees (see
/// [`from_result_cacheable`]) it is materialized once per statement and
/// shared across the per-outer-key re-instantiations of a correlated
/// subquery. [`ScanMode::Cloning`] disables the cache along with row
/// sharing.
fn exec_from(
    from: &FromPlan,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    depth: u32,
) -> Result<Rc<FromResult>> {
    let cacheable =
        ctx.bindings_cacheable(depth) && !ctx.clone_scans && from_result_cacheable(from, ctx);
    get_or_build(
        &ctx.caches.from_results,
        cacheable,
        from as *const FromPlan as usize,
        || Ok(Rc::new(exec_from_uncached(from, ctx, ctes, depth)?)),
    )
}

fn exec_from_uncached(
    from: &FromPlan,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    depth: u32,
) -> Result<FromResult> {
    match from {
        FromPlan::SeqScan { table, alias } => {
            let t = ctx.catalog.table(table)?;
            ctx.consume_fuel(t.rows.len() as u64)?;
            let schema = Schema {
                cols: t
                    .columns
                    .iter()
                    .map(|c| ColMeta::new(Some(alias), &c.name))
                    .collect(),
            };
            // Zero-copy scan: hand out shared references to table
            // storage (the Cloning baseline deep-copies, as the pipeline
            // did before rows were shared).
            let rows = if ctx.clone_scans {
                t.rows.iter().map(Row::deep_clone).collect()
            } else {
                t.rows.clone()
            };
            Ok(FromResult {
                schema,
                rows,
                via_index: false,
                has_cte: false,
                has_full_join: false,
                seek: None,
            })
        }
        FromPlan::IndexScan {
            table,
            alias,
            index,
            reverse,
        } => {
            let t = ctx.catalog.table(table)?;
            let idx = ctx
                .catalog
                .index(index)
                .ok_or_else(|| Error::Catalog(format!("no such index: {index}")))?;
            ctx.consume_fuel(2 * t.rows.len() as u64)?;
            let schema = Schema {
                cols: t
                    .columns
                    .iter()
                    .map(|c| ColMeta::new(Some(alias), &c.name))
                    .collect(),
            };
            // Evaluate the indexed expressions (bound once) per row and
            // visit rows in index order — row-identical to a seq scan,
            // different order. Multi-expression indexes order by the
            // composite key.
            let prepared: Vec<Prepared> = idx
                .exprs
                .iter()
                .map(|e| Prepared::new(e, &[&schema], depth, ctx))
                .collect::<Result<_>>()?;
            let mut keyed: Vec<(Vec<OrdValue>, usize)> = Vec::with_capacity(t.rows.len());
            for (i, row) in t.rows.iter().enumerate() {
                let frames = [Frame {
                    schema: &schema,
                    row,
                }];
                let mut key = Vec::with_capacity(prepared.len());
                for p in &prepared {
                    let env = EvalEnv {
                        ctx,
                        scopes: &frames,
                        aggs: None,
                        ctes,
                        info: ExprCtx {
                            depth,
                            ..ExprCtx::new(Clause::IndexExpr)
                        },
                    };
                    key.push(OrdValue(p.eval(env)?));
                }
                keyed.push((key, i));
            }
            keyed.sort_by(|(a, ia), (b, ib)| a.cmp(b).then(ia.cmp(ib)));
            if *reverse {
                keyed.reverse();
            }
            let rows = keyed
                .into_iter()
                .map(|(_, i)| {
                    if ctx.clone_scans {
                        t.rows[i].deep_clone()
                    } else {
                        t.rows[i].clone()
                    }
                })
                .collect();
            Ok(FromResult {
                schema,
                rows,
                via_index: true,
                has_cte: false,
                has_full_join: false,
                seek: None,
            })
        }
        FromPlan::IndexSeek {
            table,
            alias,
            index,
            eq,
            range,
            ordered,
            reverse,
        } => {
            let t = ctx.catalog.table(table)?;
            // Same FROM-stage charge as a seq scan: the seek's fuel
            // saving is accounted at the filter stage (the skipped rows'
            // filter units are replayed there), keeping the total ledger
            // identical to the ScanOnly baseline.
            ctx.consume_fuel(t.rows.len() as u64)?;
            let schema = Schema {
                cols: t
                    .columns
                    .iter()
                    .map(|c| ColMeta::new(Some(alias), &c.name))
                    .collect(),
            };
            let data = ctx.catalog.index(index).and_then(|i| i.data.as_ref());
            // Runtime exactness gate, mirroring the fast-filter
            // discipline: for each consumed key column, the probe's
            // TEXT-ness must be uniform with every non-NULL key value, or
            // ordered-key comparison could disagree with SQL comparison.
            let exact = data.is_some_and(|d| {
                eq.iter()
                    .chain(range.iter().map(|(_, v)| v))
                    .enumerate()
                    .all(|(j, v)| {
                        let s = &d.stats[j];
                        if matches!(v, Value::Text(_)) {
                            s.text == s.nonnull
                        } else {
                            s.text == 0
                        }
                    })
            });
            if ctx.scan_only || !exact {
                // Plain scan, no seek metadata — the filter runs the
                // baseline path and ORDER BY still sorts.
                let rows = if ctx.clone_scans {
                    t.rows.iter().map(Row::deep_clone).collect()
                } else {
                    t.rows.clone()
                };
                return Ok(FromResult {
                    schema,
                    rows,
                    via_index: false,
                    has_cte: false,
                    has_full_join: false,
                    seek: None,
                });
            }
            let data = data.unwrap();
            // The RangeBoundOffByOne and SortElimWrongDirection hooks
            // corrupt the *plan* (see `plan::select_seek` and
            // `plan::eliminate_sort`): the executor faithfully runs the
            // seek it was handed.
            // Bug hook: EqSeekMissesDuplicates — equality seeks return
            // only the first row of each duplicate key group.
            let dedup = ctx.bugs.index_active(IndexBugId::EqSeekMissesDuplicates);
            let out = data.seek(eq, range.clone(), *ordered, *reverse, dedup);
            let rows: Vec<Row> = out
                .emit
                .iter()
                .map(|&p| {
                    if ctx.clone_scans {
                        t.rows[p].deep_clone()
                    } else {
                        t.rows[p].clone()
                    }
                })
                .collect();
            Ok(FromResult {
                schema,
                rows,
                via_index: false,
                has_cte: false,
                has_full_join: false,
                seek: Some(SeekInfo {
                    positions: out.emit,
                    total: t.rows.len(),
                    index: index.clone(),
                    key_cols: data.cols.clone(),
                    eq: eq.clone(),
                    range_probe: range.clone(),
                    ordered: *ordered,
                    filter_suppressed: ctx.bugs.index_active(IndexBugId::PrefixSeekIgnoresResidual),
                }),
            })
        }
        FromPlan::Derived {
            plan,
            alias,
            columns,
            from_view,
        } => {
            let rel = exec_select_plan(plan, ctx, ctes, &[], depth)?;
            let names: Vec<String> = if columns.is_empty() {
                rel.columns.iter().map(|c| c.to_ascii_lowercase()).collect()
            } else {
                if columns.len() != rel.columns.len() {
                    return Err(Error::Catalog(format!(
                        "{alias} declares {} columns but its query returns {}",
                        columns.len(),
                        rel.columns.len()
                    )));
                }
                columns.iter().map(|c| c.to_ascii_lowercase()).collect()
            };
            let schema = Schema {
                cols: names
                    .iter()
                    .map(|name| ColMeta::new(Some(alias), name).from_view(*from_view))
                    .collect(),
            };
            Ok(FromResult {
                schema,
                rows: rel.rows,
                via_index: false,
                has_cte: false,
                has_full_join: false,
                seek: None,
            })
        }
        FromPlan::ValuesScan {
            rows,
            alias,
            columns,
        } => {
            ctx.cov.hit(pt::EXEC_VALUES_ROWS);
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                ctx.consume_fuel(1)?;
                let mut vals = Vec::with_capacity(row.len());
                for e in row {
                    let env = EvalEnv {
                        ctx,
                        scopes: &[],
                        aggs: None,
                        ctes,
                        info: ExprCtx {
                            depth,
                            ..ExprCtx::new(Clause::SelectList)
                        },
                    };
                    vals.push(eval_expr(e, env)?);
                }
                out.push(Row::new(vals));
            }
            let arity = rows.first().map(|r| r.len()).unwrap_or(0);
            let names: Vec<String> = if columns.is_empty() {
                (1..=arity).map(|i| format!("column{i}")).collect()
            } else {
                if columns.len() != arity {
                    return Err(Error::Catalog(format!(
                        "{alias} declares {} columns but VALUES has {arity}",
                        columns.len()
                    )));
                }
                columns.clone()
            };
            let schema = Schema {
                cols: names
                    .iter()
                    .map(|name| ColMeta::new(Some(alias), name))
                    .collect(),
            };
            Ok(FromResult {
                schema,
                rows: out,
                via_index: false,
                has_cte: false,
                has_full_join: false,
                seek: None,
            })
        }
        FromPlan::CteScan { name, alias } => {
            let data = ctes
                .lookup(name)
                .ok_or_else(|| Error::Catalog(format!("no such CTE: {name}")))?;
            if data.reads.get() > 0 {
                ctx.cov.hit(pt::EXEC_CTE_REUSE);
            }
            data.reads.set(data.reads.get() + 1);
            ctx.consume_fuel(data.rel.rows.len() as u64)?;
            let schema = Schema {
                cols: data
                    .columns
                    .iter()
                    .map(|c| ColMeta::new(Some(alias), c).from_cte(true))
                    .collect(),
            };
            let rows = if ctx.clone_scans {
                data.rel.rows.iter().map(Row::deep_clone).collect()
            } else {
                data.rel.rows.clone()
            };
            Ok(FromResult {
                schema,
                rows,
                via_index: false,
                has_cte: true,
                has_full_join: false,
                seek: None,
            })
        }
        FromPlan::Join {
            kind,
            on,
            hash_keys,
            residual,
            left,
            right,
        } => {
            let l = exec_from(left, ctx, ctes, depth)?;
            let r = exec_from(right, ctx, ctes, depth)?;
            exec_join(
                *kind,
                on.as_ref(),
                hash_keys,
                residual.as_ref(),
                &l,
                &r,
                ctx,
                ctes,
                depth,
            )
        }
        FromPlan::Filtered {
            input,
            pred,
            is_clause_root,
        } => {
            let input_res = exec_from(input, ctx, ctes, depth)?;
            // An uncached input is uniquely owned and moves out; a cached
            // (shared) one clones, which for shared rows is a refcount
            // bump per row plus the schema.
            let mut res =
                Rc::try_unwrap(input_res).unwrap_or_else(|shared| FromResult::clone(&shared));
            // A pushed predicate is still the clause's top-level
            // expression only if it was the entire WHERE clause;
            // conjunction fragments are not.
            let info = ExprCtx {
                clause: Clause::Where,
                top_level: *is_clause_root,
                via_index: res.via_index,
                from_has_cte: res.has_cte,
                depth,
            };
            let prepared = Prepared::new(pred, &[&res.schema], depth, ctx)?;
            let rows = std::mem::take(&mut res.rows);
            res.rows = apply_filter(rows, &res.schema, &prepared, ctx, ctes, &[], info)?;
            Ok(res)
        }
    }
}

fn is_inequality(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Binary { op, .. }
            if matches!(op, crate::ast::BinaryOp::Lt | crate::ast::BinaryOp::Le
                | crate::ast::BinaryOp::Gt | crate::ast::BinaryOp::Ge)
    )
}

/// Concatenate two row halves into a fresh output row.
fn concat_row(l: &[Value], r: &[Value]) -> Row {
    let mut out = Vec::with_capacity(l.len() + r.len());
    out.extend_from_slice(l);
    out.extend_from_slice(r);
    Row::new(out)
}

/// A row padded with NULLs on the right (unmatched left row of an outer
/// join).
fn pad_right(l: &[Value], n: usize) -> Row {
    let mut out = Vec::with_capacity(l.len() + n);
    out.extend_from_slice(l);
    out.extend(std::iter::repeat_with(|| Value::Null).take(n));
    Row::new(out)
}

/// A row padded with NULLs on the left (unmatched right row).
fn pad_left(n: usize, r: &[Value]) -> Row {
    let mut out = Vec::with_capacity(n + r.len());
    out.extend(std::iter::repeat_with(|| Value::Null).take(n));
    out.extend_from_slice(r);
    Row::new(out)
}

#[allow(clippy::too_many_arguments)]
fn exec_join(
    kind: JoinKind,
    on: Option<&Expr>,
    hash_keys: &[(Expr, Expr)],
    residual: Option<&Expr>,
    left: &FromResult,
    right: &FromResult,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    depth: u32,
) -> Result<FromResult> {
    let schema = left.schema.clone().concat(right.schema.clone());
    let lw = left.schema.cols.len();
    let rw = right.schema.cols.len();

    // Crash hooks: the DuckDB IEJoin bugs (both fixed upstream; modelled
    // here as Error::Crash instead of a process abort).
    if let Some(on_expr) = on {
        if ctx.bugs.active(BugId::DuckdbCrashIEJoinRange) {
            if let Expr::Binary {
                op: crate::ast::BinaryOp::And,
                left: a,
                right: b,
            } = on_expr
            {
                if is_inequality(a) && is_inequality(b) {
                    return Err(Error::Crash(
                        "segmentation fault in IEJoin (index out of bounds)".into(),
                    ));
                }
            }
        }
        if ctx.bugs.active(BugId::DuckdbCrashIEJoinTypes) && is_inequality(on_expr) {
            if let (Some(lrow), Some(rrow)) = (left.rows.first(), right.rows.first()) {
                let combined = concat_row(lrow, rrow);
                if let Expr::Binary {
                    left: a, right: b, ..
                } = on_expr
                {
                    let frames = [Frame {
                        schema: &schema,
                        row: &combined,
                    }];
                    let env = EvalEnv {
                        ctx,
                        scopes: &frames,
                        aggs: None,
                        ctes,
                        info: ExprCtx {
                            depth,
                            ..ExprCtx::new(Clause::JoinOn)
                        },
                    };
                    let av = eval_expr(a, env).unwrap_or(Value::Null);
                    let bv = eval_expr(b, env).unwrap_or(Value::Null);
                    let mixed = matches!(
                        (&av, &bv),
                        (Value::Int(_), Value::Real(_)) | (Value::Real(_), Value::Int(_))
                    );
                    if mixed {
                        return Err(Error::Crash(
                            "segmentation fault in IEJoin (operand type mismatch)".into(),
                        ));
                    }
                }
            }
        }
    }

    // Bug hook: SqliteJoinOnViewLeftTrue — a *comparison* ON predicate
    // that reads a view-sourced column is treated as TRUE under outer
    // joins (the rewrite pattern-matches bare comparisons, so a folded
    // CASE predicate escapes it).
    let on_forced_true = match (on, kind) {
        (Some(pred), JoinKind::Left | JoinKind::Full)
            if ctx.bugs.active(BugId::SqliteJoinOnViewLeftTrue)
                && matches!(pred, Expr::Binary { op, .. } if op.is_comparison()) =>
        {
            pred.shallow_column_refs().iter().any(|c| {
                schema.cols.iter().any(|col| {
                    col.from_view
                        && col.name == c.column.to_ascii_lowercase()
                        && match &c.table {
                            Some(t) => {
                                col.table.as_deref() == Some(t.to_ascii_lowercase().as_str())
                            }
                            None => true,
                        }
                })
            })
        }
        _ => false,
    };

    let info = ExprCtx {
        clause: Clause::JoinOn,
        top_level: true,
        via_index: false,
        from_has_cte: left.has_cte || right.has_cte,
        depth,
    };

    // Hash path: the planner recognized equality keys. Falls through to
    // the nested loop when the mutant above forces the ON true (the
    // nested loop implements that), when nested loops are forced for
    // differential testing / the per-row baseline, or when the key
    // values' storage classes break hash-key transitivity at runtime.
    if !hash_keys.is_empty() && !on_forced_true && !ctx.force_nested_loop && !ctx.rebind_per_row {
        if let Some(rows) = hash_join(
            kind, hash_keys, residual, left, right, &schema, ctx, ctes, depth, info,
        )? {
            return Ok(FromResult {
                schema,
                rows,
                via_index: left.via_index || right.via_index,
                has_cte: left.has_cte || right.has_cte,
                has_full_join: kind == JoinKind::Full || left.has_full_join || right.has_full_join,
                seek: None,
            });
        }
        ctx.cov.hit(pt::EXEC_HASH_JOIN_FALLBACK);
    }

    // Bind the ON predicate once against the combined schema; the probe
    // loop below evaluates the bound form per row pair.
    let on_prepared = match on {
        Some(pred) => Some(Prepared::new(pred, &[&schema], depth, ctx)?),
        None => None,
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut right_matched = vec![false; right.rows.len()];

    for lrow in &left.rows {
        let mut matched = false;
        for (ri, rrow) in right.rows.iter().enumerate() {
            ctx.consume_fuel(1)?;
            let combined = concat_row(lrow, rrow);
            let is_match = if on_forced_true {
                true
            } else {
                match &on_prepared {
                    None => true,
                    Some(pred) => {
                        let frames = [Frame {
                            schema: &schema,
                            row: &combined,
                        }];
                        let env = EvalEnv {
                            ctx,
                            scopes: &frames,
                            aggs: None,
                            ctes,
                            info,
                        };
                        let v = pred.eval(env)?;
                        truthiness(&v, ctx)? == Some(true)
                    }
                }
            };
            if is_match {
                ctx.cov.hit(pt::EXEC_JOIN_PROBE_MATCH);
                matched = true;
                right_matched[ri] = true;
                rows.push(combined);
            } else {
                ctx.cov.hit(pt::EXEC_JOIN_PROBE_MISS);
            }
        }
        if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
            ctx.cov.hit(pt::EXEC_JOIN_PAD_LEFT);
            rows.push(pad_right(lrow, rw));
        }
    }
    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        for (ri, rrow) in right.rows.iter().enumerate() {
            if !right_matched[ri] {
                ctx.cov.hit(pt::EXEC_JOIN_PAD_RIGHT);
                rows.push(pad_left(lw, rrow));
            }
        }
    }

    Ok(FromResult {
        schema,
        rows,
        via_index: left.via_index || right.via_index,
        has_cte: left.has_cte || right.has_cte,
        has_full_join: kind == JoinKind::Full || left.has_full_join || right.has_full_join,
        seek: None,
    })
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

/// The largest magnitude at which every i64 is exactly representable as
/// f64 (2^53). Above it, SQL's int↔real comparison — which goes through
/// f64 — stops being transitive, so hash keying is unsound and the join
/// falls back to the nested loop.
const MAX_EXACT_INT: u64 = 1 << 53;

/// A join-key value normalized so that `JoinKey` equality coincides with
/// SQL `=` (when [`KeyClassStats::hashable`] holds for the key column).
/// NULL has no key: a NULL never equals anything, so NULL-keyed rows skip
/// the table entirely (and surface only as outer-join padding).
#[derive(PartialEq, Eq, Hash)]
enum JoinKey {
    Int(i64),
    Real(u64),
    Text(String),
    Bool(bool),
}

fn join_key(v: &Value) -> Option<JoinKey> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(JoinKey::Int(*i)),
        Value::Bool(b) => Some(JoinKey::Bool(*b)),
        Value::Text(s) => Some(JoinKey::Text(s.clone())),
        Value::Real(r) => {
            // An integral real keys with the ints it compares equal to.
            // The bit-exact round trip keeps -0.0 (not SQL-equal to
            // integer 0 under `total_cmp`) and out-of-range reals (not
            // equal to the saturated int) on distinct keys.
            let i = *r as i64;
            if (i as f64).to_bits() == r.to_bits() {
                Some(JoinKey::Int(i))
            } else {
                Some(JoinKey::Real(r.to_bits()))
            }
        }
    }
}

/// Storage classes observed across both sides of one key column. The
/// hash table is usable only when per-pair comparison is guaranteed to
/// agree with key equality in every dialect: text mixed with any other
/// class coerces pairwise (MySQL-family) or errors (strict dialects), and
/// reals mixed with over-2^53 ints compare with f64 rounding — all
/// non-transitive, all delegated to the nested loop.
#[derive(Default)]
struct KeyClassStats {
    text: bool,
    boolean: bool,
    int: bool,
    real: bool,
    big_int: bool,
    null: bool,
}

impl KeyClassStats {
    fn note(&mut self, v: &Value) {
        match v {
            Value::Null => self.null = true,
            Value::Int(i) => {
                self.int = true;
                if i.unsigned_abs() > MAX_EXACT_INT {
                    self.big_int = true;
                }
            }
            Value::Real(_) => self.real = true,
            Value::Text(_) => self.text = true,
            Value::Bool(_) => self.boolean = true,
        }
    }

    fn hashable(&self) -> bool {
        if self.text && (self.int || self.real || self.boolean) {
            return false;
        }
        !(self.real && self.big_int)
    }
}

/// Build/probe hash join over the bound key ordinals: build a `Value`-keyed
/// table on the right input, probe it with the left input, and evaluate
/// the residual ON conjuncts per key-matching candidate. Emits rows in
/// the exact order of the nested loop (left-major, right index ascending)
/// so the two strategies are row-for-row interchangeable. Returns
/// `Ok(None)` when runtime key classes force the nested-loop fallback.
#[allow(clippy::too_many_arguments)]
fn hash_join(
    kind: JoinKind,
    hash_keys: &[(Expr, Expr)],
    residual: Option<&Expr>,
    left: &FromResult,
    right: &FromResult,
    schema: &Schema,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    depth: u32,
    info: ExprCtx,
) -> Result<Option<Vec<Row>>> {
    let lw = left.schema.cols.len();
    let rw = right.schema.cols.len();
    let nkeys = hash_keys.len();
    // Key bindings are per-statement state: a join inside a correlated
    // subquery re-executes per outer row, but its keys bind once. The
    // `hash_keys` buffer lives in the (retained) plan, so its address is
    // a sound cache key under the same rules as `Prepared::new`.
    let bound_keys = get_or_build(
        &ctx.caches.join_keys,
        ctx.bindings_cacheable(depth),
        hash_keys.as_ptr() as usize,
        || {
            Ok(Rc::new(bind_join_keys(
                hash_keys,
                &left.schema,
                &right.schema,
                depth,
            )?))
        },
    )?;
    let (lbound, rbound) = (&bound_keys.0, &bound_keys.1);

    // Key expressions evaluate once per row (not per pair), in the same
    // context the nested loop hands to ON sub-expressions.
    let key_info = info.child();

    // A key-expression evaluation error aborts the hash strategy and
    // delegates to the nested loop, which reproduces the nested-loop
    // error semantics exactly: per probed pair, in left-major order —
    // and *no* error at all when the opposite side is empty.
    let mut stats: Vec<KeyClassStats> = (0..nkeys).map(|_| KeyClassStats::default()).collect();
    let eval_keys = |rows: &[Row],
                     side_schema: &Schema,
                     bound: &[BoundExpr],
                     stats: &mut [KeyClassStats]|
     -> Option<Vec<Vec<Value>>> {
        let mut out = Vec::with_capacity(rows.len());
        let mut frames = frame_stack(&[], side_schema);
        for row in rows {
            set_local_row(&mut frames, side_schema, row);
            let mut keys = Vec::with_capacity(bound.len());
            for (k, b) in bound.iter().enumerate() {
                let env = EvalEnv {
                    ctx,
                    scopes: &frames,
                    aggs: None,
                    ctes,
                    info: key_info,
                };
                match eval_bound(b, env) {
                    Ok(v) => {
                        stats[k].note(&v);
                        keys.push(v);
                    }
                    Err(_) => return None,
                }
            }
            out.push(keys);
        }
        Some(out)
    };
    let Some(rvals) = eval_keys(&right.rows, &right.schema, rbound, &mut stats) else {
        return Ok(None);
    };
    let Some(lvals) = eval_keys(&left.rows, &left.schema, lbound, &mut stats) else {
        return Ok(None);
    };
    if stats.iter().any(|s| !s.hashable()) {
        return Ok(None);
    }
    // Skip-exactness (see `recognize_hash_join`): a NULL key does not
    // short-circuit the ON conjunction, so with a residual present the
    // nested loop would still evaluate it on NULL-keyed pairs — pairs the
    // hash join never visits. Delegate those joins to the nested loop.
    if residual.is_some() && stats.iter().any(|s| s.null) {
        return Ok(None);
    }

    // Fuel is charged only once the hash path commits — a fallback must
    // not leave JoinMode::Auto with less fuel than the nested loop alone
    // would have.
    ctx.consume_fuel((left.rows.len() + right.rows.len()) as u64)?;

    // Build on the right side; duplicate keys chain in row order.
    ctx.cov.hit(pt::EXEC_HASH_JOIN_BUILD);
    let mut table: HashMap<Vec<JoinKey>, Vec<usize>> = HashMap::with_capacity(right.rows.len());
    let mut saw_null_key = false;
    'build: for (ri, keys) in rvals.iter().enumerate() {
        let mut norm = Vec::with_capacity(nkeys);
        for v in keys {
            match join_key(v) {
                Some(k) => norm.push(k),
                None => {
                    saw_null_key = true;
                    continue 'build;
                }
            }
        }
        table.entry(norm).or_default().push(ri);
    }

    // Residual ON conjuncts, bound once against the combined schema.
    // Fragments of the original conjunction are never the clause root.
    let residual_prepared = match residual {
        Some(pred) => Some(Prepared::new(pred, &[schema], depth, ctx)?),
        None => None,
    };
    let residual_info = info.child();

    let mut rows: Vec<Row> = Vec::new();
    let mut right_matched = vec![false; right.rows.len()];
    for (li, lrow) in left.rows.iter().enumerate() {
        let mut matched = false;
        let mut norm = Vec::with_capacity(nkeys);
        let mut has_null = false;
        for v in &lvals[li] {
            match join_key(v) {
                Some(k) => norm.push(k),
                None => {
                    has_null = true;
                    break;
                }
            }
        }
        if has_null {
            saw_null_key = true;
        } else if let Some(candidates) = table.get(&norm) {
            for &ri in candidates {
                ctx.consume_fuel(1)?;
                let combined = concat_row(lrow, &right.rows[ri]);
                let keep = match &residual_prepared {
                    None => true,
                    Some(pred) => {
                        let frames = [Frame {
                            schema,
                            row: &combined,
                        }];
                        let env = EvalEnv {
                            ctx,
                            scopes: &frames,
                            aggs: None,
                            ctes,
                            info: residual_info,
                        };
                        let v = pred.eval(env)?;
                        truthiness(&v, ctx)? == Some(true)
                    }
                };
                if keep {
                    ctx.cov.hit(pt::EXEC_JOIN_PROBE_MATCH);
                    matched = true;
                    right_matched[ri] = true;
                    rows.push(combined);
                }
            }
        }
        if !matched {
            ctx.cov.hit(pt::EXEC_JOIN_PROBE_MISS);
            if matches!(kind, JoinKind::Left | JoinKind::Full) {
                ctx.cov.hit(pt::EXEC_JOIN_PAD_LEFT);
                rows.push(pad_right(lrow, rw));
            }
        }
    }
    if saw_null_key {
        ctx.cov.hit(pt::EXEC_HASH_JOIN_NULL_KEY);
    }
    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        for (ri, rrow) in right.rows.iter().enumerate() {
            if !right_matched[ri] {
                ctx.cov.hit(pt::EXEC_JOIN_PAD_RIGHT);
                rows.push(pad_left(lw, rrow));
            }
        }
    }
    Ok(Some(rows))
}
